//! Cross-crate integration tests for deepxplore-rs.
//!
//! The tests live under `tests/tests/`; this library only hosts shared
//! fixtures. Everything runs at [`dx_models::Scale::Test`] so the whole
//! suite stays laptop-fast; the first run trains the needed zoo models and
//! caches their weights in `.dx-cache/`, later runs load them in
//! milliseconds.

use dx_models::{Scale, Zoo, ZooConfig};

/// A zoo at test scale sharing the workspace weight cache.
pub fn test_zoo() -> Zoo {
    Zoo::new(ZooConfig::new(Scale::Test))
}
