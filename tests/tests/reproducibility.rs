//! Reproducibility guarantees: deterministic datasets, byte-stable weight
//! caching across zoo instances, and serialization round trips for every
//! architecture in the zoo.

use deepxplore::generator::{Generator, TaskKind};
use deepxplore::{Constraint, Hyperparams};
use dx_coverage::{CoverageConfig, SignalSpec};
use dx_integration::test_zoo;
use dx_models::{arch, DatasetKind, Scale, Zoo, ZooConfig};
use dx_nn::serialize::{read_weights, write_weights};
use dx_nn::util::gather_rows;
use dx_tensor::rng;

#[test]
fn all_fifteen_architectures_serialize_round_trip() {
    for spec in &arch::SPECS {
        let mut net = arch::build(spec);
        net.init_weights(&mut rng::rng(7));
        let mut buf = Vec::new();
        write_weights(&net, &mut buf).unwrap();
        let mut clone = arch::build(spec);
        read_weights(&mut clone, &mut buf.as_slice()).unwrap();
        let shape = spec.dataset.input_shape();
        let mut batched = vec![1usize];
        batched.extend_from_slice(&shape);
        let x = rng::uniform(&mut rng::rng(8), &batched, 0.0, 1.0);
        assert_eq!(
            net.output(&x),
            clone.output(&x),
            "{} output changed across serialization",
            spec.id
        );
    }
}

#[test]
fn zoo_instances_share_identical_models() {
    let mut a = test_zoo();
    let mut b = test_zoo();
    let m1 = a.model("APP_C2");
    let m2 = b.model("APP_C2");
    for (p, q) in m1.params().iter().zip(m2.params().iter()) {
        assert_eq!(p, q);
    }
}

#[test]
fn datasets_are_identical_across_zoos() {
    let mut a = test_zoo();
    let mut b = test_zoo();
    assert_eq!(a.dataset(DatasetKind::Mnist).train_x, b.dataset(DatasetKind::Mnist).train_x);
    assert_eq!(a.dataset(DatasetKind::Drebin).test_x, b.dataset(DatasetKind::Drebin).test_x);
}

#[test]
fn generation_replays_bit_for_bit() {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Pdf);
    let ds = zoo.dataset(DatasetKind::Pdf).clone();
    let scale = ds.feature_scale.as_ref().unwrap().data().to_vec();
    let seeds = gather_rows(&ds.test_x, &(0..15).collect::<Vec<_>>());
    let run = || {
        let mut gen = Generator::new(
            models.clone(),
            TaskKind::Classification,
            Hyperparams::pdf_defaults(),
            Constraint::PdfFeatures { scale: scale.clone() },
            CoverageConfig::default(),
            616,
        );
        gen.run(&seeds)
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.stats.differences_found, r2.stats.differences_found);
    assert_eq!(r1.stats.total_iterations, r2.stats.total_iterations);
    for (a, b) in r1.tests.iter().zip(r2.tests.iter()) {
        assert_eq!(a.input, b.input);
        assert_eq!(a.predictions, b.predictions);
    }
}

#[test]
fn campaign_with_one_worker_replays_bit_for_bit() {
    // Same master RNG seed + one worker => the whole campaign is a pure
    // function of its inputs: identical corpus (ids, inputs, energies) and
    // identical difference count/archive across two runs.
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let seeds = gather_rows(&ds.test_x, &(0..10).collect::<Vec<_>>());
    let run = || {
        let suite = dx_campaign::ModelSuite {
            models: models.clone(),
            kind: TaskKind::Classification,
            hp: Hyperparams::image_defaults(),
            constraint: Constraint::Lighting,
            signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
        };
        let mut campaign = dx_campaign::Campaign::new(
            suite,
            &seeds,
            dx_campaign::CampaignConfig {
                workers: 1,
                epochs: 2,
                batch_per_epoch: 8,
                seed: 616,
                ..Default::default()
            },
        );
        campaign.run().expect("no checkpointing, cannot fail");
        campaign
    };
    let a = run();
    let b = run();
    assert_eq!(a.diffs().len(), b.diffs().len());
    assert_eq!(a.corpus().len(), b.corpus().len());
    assert_eq!(a.coverage(), b.coverage());
    for (ea, eb) in a.corpus().entries().iter().zip(b.corpus().entries()) {
        assert_eq!(ea.id, eb.id);
        assert_eq!(ea.parent, eb.parent);
        assert_eq!(ea.input, eb.input, "corpus entry {} diverged", ea.id);
        assert_eq!(ea.energy.to_bits(), eb.energy.to_bits());
        assert_eq!(ea.times_fuzzed, eb.times_fuzzed);
        assert_eq!(ea.exhausted, eb.exhausted);
    }
    for (da, db) in a.diffs().iter().zip(b.diffs()) {
        assert_eq!(da.seed_id, db.seed_id);
        assert_eq!(da.input, db.input);
        assert_eq!(da.predictions, db.predictions);
    }
}

#[test]
fn campaign_checkpoint_round_trips_corpus_exactly() {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let seeds = gather_rows(&ds.test_x, &(0..6).collect::<Vec<_>>());
    let dir = std::env::temp_dir().join("dx_campaign_repro_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let config = dx_campaign::CampaignConfig {
        workers: 1,
        epochs: 1,
        batch_per_epoch: 6,
        checkpoint_dir: Some(dir.clone()),
        seed: 99,
        ..Default::default()
    };
    let suite = dx_campaign::ModelSuite {
        models: models.clone(),
        kind: TaskKind::Classification,
        hp: Hyperparams::image_defaults(),
        constraint: Constraint::Lighting,
        signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
    };
    let mut campaign = dx_campaign::Campaign::new(suite.clone(), &seeds, config.clone());
    campaign.run().unwrap();
    let resumed = dx_campaign::Campaign::resume(suite, config).unwrap();
    assert_eq!(resumed.epochs_done(), campaign.epochs_done());
    assert_eq!(resumed.diffs().len(), campaign.diffs().len());
    for (ea, eb) in resumed.corpus().entries().iter().zip(campaign.corpus().entries()) {
        assert_eq!(ea.id, eb.id);
        assert_eq!(ea.input, eb.input, "entry {} changed across checkpoint", ea.id);
        assert_eq!(ea.energy.to_bits(), eb.energy.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn composite_campaign_outcovers_multisection_and_resumes_bit_identically() {
    // The corner-region acceptance property on the MNIST trio: steering by
    // `multisection:4+boundary` must find strictly more covered units than
    // `multisection:4` alone (the corner regions are invisible to the
    // latter), and a composite campaign interrupted at its checkpoint must
    // continue bit-identically to the uninterrupted run.
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let seeds = gather_rows(&ds.test_x, &(0..8).collect::<Vec<_>>());
    let prime = 64.min(ds.train_x.shape()[0]);
    let ms =
        SignalSpec::of(CoverageConfig::scaled(0.25), "multisection:4".parse().unwrap(), Vec::new())
            .primed(&models, &ds.train_x, prime);
    // The composite shares the multisection profiles: same ranges, so the
    // two campaigns disagree only in which units they can count.
    let composite = SignalSpec::of(
        CoverageConfig::scaled(0.25),
        "multisection:4+boundary".parse().unwrap(),
        ms.profiles.clone(),
    );
    let suite_with = |signal: SignalSpec| dx_campaign::ModelSuite {
        models: models.clone(),
        kind: TaskKind::Classification,
        hp: Hyperparams::image_defaults(),
        constraint: Constraint::Lighting,
        signal,
    };
    let cfg = |epochs: usize, dir: Option<std::path::PathBuf>| dx_campaign::CampaignConfig {
        workers: 1,
        epochs,
        batch_per_epoch: 6,
        checkpoint_dir: dir,
        seed: 321,
        ..Default::default()
    };

    let mut ms_campaign = dx_campaign::Campaign::new(suite_with(ms), &seeds, cfg(2, None));
    ms_campaign.run().unwrap();
    let mut comp_campaign =
        dx_campaign::Campaign::new(suite_with(composite.clone()), &seeds, cfg(2, None));
    comp_campaign.run().unwrap();
    assert!(
        comp_campaign.covered_units() > ms_campaign.covered_units(),
        "composite must cover corner units multisection cannot ({} vs {})",
        comp_campaign.covered_units(),
        ms_campaign.covered_units()
    );
    // Both components show progress in the per-component view.
    let per = comp_campaign.component_coverage();
    assert_eq!(per.len(), 2);
    assert!(per[0] > 0.0, "section component stalled: {per:?}");
    assert!(per[1] > 0.0, "boundary component never hit a corner: {per:?}");

    // Bit-identical resume: 4 uninterrupted epochs vs 2 + checkpoint + 2.
    let dir = std::env::temp_dir().join("dx_composite_resume");
    let _ = std::fs::remove_dir_all(&dir);
    let mut full = dx_campaign::Campaign::new(suite_with(composite.clone()), &seeds, cfg(4, None));
    full.run().unwrap();
    let mut half = dx_campaign::Campaign::new(
        suite_with(composite.clone()),
        &seeds,
        cfg(2, Some(dir.clone())),
    );
    half.run().unwrap();
    let mut resumed =
        dx_campaign::Campaign::resume(suite_with(composite), cfg(2, Some(dir.clone()))).unwrap();
    resumed.run().unwrap();
    assert_eq!(resumed.epochs_done(), full.epochs_done());
    assert_eq!(resumed.covered_units(), full.covered_units());
    assert_eq!(resumed.coverage(), full.coverage());
    assert_eq!(resumed.diffs().len(), full.diffs().len());
    assert_eq!(resumed.corpus().len(), full.corpus().len());
    for (ea, eb) in resumed.corpus().entries().iter().zip(full.corpus().entries()) {
        assert_eq!(ea.id, eb.id);
        assert_eq!(ea.input, eb.input, "entry {} diverged across resume", ea.id);
        assert_eq!(ea.energy.to_bits(), eb.energy.to_bits());
        assert_eq!(ea.times_fuzzed, eb.times_fuzzed);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scale_separation_in_cache_names() {
    // Test- and full-scale weights must never collide in the cache.
    let dir = std::env::temp_dir().join("dx_scale_sep");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg_t = ZooConfig::new(Scale::Test);
    cfg_t.cache_dir = dir.clone();
    let mut zoo_t = Zoo::new(cfg_t);
    let _ = zoo_t.model("APP_C2");
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(files.iter().any(|f| f.contains("_test_")), "files: {files:?}");
    assert!(!files.iter().any(|f| f.contains("_full_")));
    std::fs::remove_dir_all(&dir).ok();
}
