//! End-to-end distributed campaigns on the MNIST trio: a coordinator and
//! worker fleet over real localhost TCP sockets.
//!
//! This is the ISSUE's acceptance scenario: a 2-worker dist campaign
//! reaches the same coverage target as a single-process campaign, and a
//! SIGTERM-style drain leaves a valid checkpoint the whole fleet resumes
//! from.

use std::time::Duration;

use deepxplore::constraints::Constraint;
use deepxplore::Hyperparams;
use dx_campaign::{Campaign, CampaignConfig, ModelSuite};
use dx_coverage::{CoverageConfig, SignalSpec};
use dx_dist::{run_local, serve_local, Coordinator, CoordinatorConfig, WorkerConfig};
use dx_integration::test_zoo;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::{rng, Tensor};

const LABEL: &str = "mnist@test";
const TARGET: f32 = 0.65;

fn mnist_suite() -> (ModelSuite, Tensor) {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let suite = ModelSuite {
        models,
        kind: deepxplore::generator::TaskKind::Classification,
        hp: Hyperparams { max_iters: 30, ..Hyperparams::image_defaults() },
        constraint: Constraint::Lighting,
        signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
    };
    let mut r = rng::rng(0xd157_0001);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), 12.min(ds.test_len()));
    (suite, gather_rows(&ds.test_x, &picks))
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dx_integration_dist_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn two_worker_fleet_reaches_the_single_process_coverage_target() {
    let (suite, seeds) = mnist_suite();
    // Reference: a single-process campaign run to the target.
    let mut solo = Campaign::new(
        suite.clone(),
        &seeds,
        CampaignConfig {
            epochs: 50,
            batch_per_epoch: 8,
            desired_coverage: Some(TARGET),
            ..Default::default()
        },
    );
    solo.run().unwrap();
    assert!(
        solo.mean_coverage() >= TARGET,
        "single-process campaign never reached the target: {}",
        solo.mean_coverage()
    );

    // The same campaign as a 2-worker fleet over the wire.
    let cfg = CoordinatorConfig {
        target_coverage: Some(TARGET),
        batch_per_round: 8,
        lease_size: 2,
        ..Default::default()
    };
    let (report, workers) =
        run_local(&suite, LABEL, &seeds, cfg, WorkerConfig::default(), 2).unwrap();
    let merged = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
    assert!(merged >= TARGET, "fleet stopped below the target: {merged}");

    // The merged union dominates every worker's local coverage, and the
    // fleet really ran distributed work.
    for w in &workers {
        let local = w.coverage.iter().sum::<f32>() / w.coverage.len() as f32;
        assert!(merged >= local - 1e-6, "merged {merged} < worker {} local {local}", w.slot);
    }
    assert!(report.steps_done > 0);
    assert!(!report.report.epochs.is_empty());
}

#[test]
fn drained_fleet_checkpoint_is_valid_and_resumable() {
    let (suite, seeds) = mnist_suite();
    let dir = tmp_dir("drain_resume");
    let cfg = CoordinatorConfig {
        checkpoint_dir: Some(dir.clone()),
        batch_per_round: 4,
        lease_size: 2,
        lease_timeout: Duration::from_secs(10),
        ..Default::default() // Unbounded: only the drain stops it.
    };
    let coordinator = Coordinator::new(&suite, LABEL, &seeds, cfg);
    let handle = coordinator.drain_handle();
    // SIGTERM stand-in while the fleet is mid-flight.
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(1500));
        handle.drain();
    });
    let (first, _) = serve_local(&coordinator, &suite, LABEL, WorkerConfig::default(), 2).unwrap();
    stopper.join().unwrap();

    // The drain checkpoint parses as a plain campaign checkpoint, with the
    // global coverage union persisted exactly.
    let state = dx_campaign::checkpoint::load(&dir).unwrap();
    let masks = state.coverage.expect("coverage bitmaps persisted");
    for (mask, cov) in masks.iter().zip(&first.coverage) {
        let from_mask = mask.iter().filter(|&&c| c).count() as f32 / mask.len() as f32;
        assert!((from_mask - cov).abs() < 1e-6, "persisted union differs: {from_mask} vs {cov}");
    }

    // ... and it is also resumable in-process by the campaign engine.
    let resumed_solo = Campaign::resume(
        suite.clone(),
        CampaignConfig { checkpoint_dir: Some(dir.clone()), epochs: 1, ..Default::default() },
    )
    .unwrap();
    assert_eq!(resumed_solo.coverage(), first.coverage);

    // ... and the whole fleet resumes and continues counting.
    let resumed = Coordinator::resume(
        &suite,
        LABEL,
        CoordinatorConfig {
            checkpoint_dir: Some(dir.clone()),
            max_steps: Some(first.steps_done + 8),
            batch_per_round: 4,
            lease_size: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.steps_done(), first.steps_done);
    let (second, _) = serve_local(&resumed, &suite, LABEL, WorkerConfig::default(), 2).unwrap();
    assert!(second.steps_done >= first.steps_done + 8);
    let before = first.coverage.iter().sum::<f32>() / first.coverage.len() as f32;
    let after = second.coverage.iter().sum::<f32>() / second.coverage.len() as f32;
    assert!(after >= before - 1e-6, "coverage regressed across resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dist_smoke_merged_coverage_dominates_single_worker() {
    // The CI smoke: coordinator + 2 workers on a tiny budget; the merged
    // union must be at least what a single worker achieves alone on the
    // same seeds and budget.
    let (suite, seeds) = mnist_suite();
    let budget = 8;
    let cfg = |seed: u64| CoordinatorConfig {
        max_steps: Some(budget),
        batch_per_round: 4,
        lease_size: 2,
        seed,
        ..Default::default()
    };
    let (solo_run, _) =
        run_local(&suite, LABEL, &seeds, cfg(42), WorkerConfig::default(), 1).unwrap();
    let (duo_run, _) =
        run_local(&suite, LABEL, &seeds, cfg(42), WorkerConfig::default(), 2).unwrap();
    let solo = solo_run.coverage.iter().sum::<f32>() / solo_run.coverage.len() as f32;
    let duo = duo_run.coverage.iter().sum::<f32>() / duo_run.coverage.len() as f32;
    assert!(solo > 0.0 && duo > 0.0);
    assert!(duo >= solo - 0.02, "2-worker merged coverage {duo} fell below single-worker {solo}");
    assert!(duo_run.steps_done >= budget);
}
