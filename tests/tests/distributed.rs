//! End-to-end distributed campaigns on the MNIST trio: a coordinator and
//! worker fleet over real localhost TCP sockets.
//!
//! This is the ISSUE's acceptance scenario: a 2-worker dist campaign
//! reaches the same coverage target as a single-process campaign, and a
//! SIGTERM-style drain leaves a valid checkpoint the whole fleet resumes
//! from.

use std::time::Duration;

use deepxplore::constraints::Constraint;
use deepxplore::Hyperparams;
use dx_campaign::{Campaign, CampaignConfig, ModelSuite};
use dx_coverage::{CoverageConfig, SignalSpec};
use dx_dist::{run_local, serve_local, Coordinator, CoordinatorConfig, WorkerConfig};
use dx_integration::test_zoo;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::{rng, Tensor};

const LABEL: &str = "mnist@test";
const TARGET: f32 = 0.65;

fn mnist_suite() -> (ModelSuite, Tensor) {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let suite = ModelSuite {
        models,
        kind: deepxplore::generator::TaskKind::Classification,
        hp: Hyperparams { max_iters: 30, ..Hyperparams::image_defaults() },
        constraint: Constraint::Lighting,
        signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
    };
    let mut r = rng::rng(0xd157_0001);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), 12.min(ds.test_len()));
    (suite, gather_rows(&ds.test_x, &picks))
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dx_integration_dist_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn two_worker_fleet_reaches_the_single_process_coverage_target() {
    let (suite, seeds) = mnist_suite();
    // Reference: a single-process campaign run to the target.
    let mut solo = Campaign::new(
        suite.clone(),
        &seeds,
        CampaignConfig {
            epochs: 50,
            batch_per_epoch: 8,
            desired_coverage: Some(TARGET),
            ..Default::default()
        },
    );
    solo.run().unwrap();
    assert!(
        solo.mean_coverage() >= TARGET,
        "single-process campaign never reached the target: {}",
        solo.mean_coverage()
    );

    // The same campaign as a 2-worker fleet over the wire.
    let cfg = CoordinatorConfig {
        target_coverage: Some(TARGET),
        batch_per_round: 8,
        lease_size: 2,
        ..Default::default()
    };
    let (report, workers) =
        run_local(&suite, LABEL, &seeds, cfg, WorkerConfig::default(), 2).unwrap();
    let merged = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
    assert!(merged >= TARGET, "fleet stopped below the target: {merged}");

    // The merged union dominates every worker's local coverage, and the
    // fleet really ran distributed work.
    for w in &workers {
        let local = w.coverage.iter().sum::<f32>() / w.coverage.len() as f32;
        assert!(merged >= local - 1e-6, "merged {merged} < worker {} local {local}", w.slot);
    }
    assert!(report.steps_done > 0);
    assert!(!report.report.epochs.is_empty());
}

#[test]
fn drained_fleet_checkpoint_is_valid_and_resumable() {
    let (suite, seeds) = mnist_suite();
    let dir = tmp_dir("drain_resume");
    let cfg = CoordinatorConfig {
        checkpoint_dir: Some(dir.clone()),
        batch_per_round: 4,
        lease_size: 2,
        lease_timeout: Duration::from_secs(10),
        ..Default::default() // Unbounded: only the drain stops it.
    };
    let coordinator = Coordinator::new(&suite, LABEL, &seeds, cfg);
    let handle = coordinator.drain_handle();
    // SIGTERM stand-in while the fleet is mid-flight.
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(1500));
        handle.drain();
    });
    let (first, _) = serve_local(&coordinator, &suite, LABEL, WorkerConfig::default(), 2).unwrap();
    stopper.join().unwrap();

    // The drain checkpoint parses as a plain campaign checkpoint, with the
    // global coverage union persisted exactly.
    let state = dx_campaign::checkpoint::load(&dir).unwrap();
    let masks = state.coverage.expect("coverage bitmaps persisted");
    for (mask, cov) in masks.iter().zip(&first.coverage) {
        let from_mask = mask.iter().filter(|&&c| c).count() as f32 / mask.len() as f32;
        assert!((from_mask - cov).abs() < 1e-6, "persisted union differs: {from_mask} vs {cov}");
    }

    // ... and it is also resumable in-process by the campaign engine.
    let resumed_solo = Campaign::resume(
        suite.clone(),
        CampaignConfig { checkpoint_dir: Some(dir.clone()), epochs: 1, ..Default::default() },
    )
    .unwrap();
    assert_eq!(resumed_solo.coverage(), first.coverage);

    // ... and the whole fleet resumes and continues counting.
    let resumed = Coordinator::resume(
        &suite,
        LABEL,
        CoordinatorConfig {
            checkpoint_dir: Some(dir.clone()),
            max_steps: Some(first.steps_done + 8),
            batch_per_round: 4,
            lease_size: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(resumed.steps_done(), first.steps_done);
    let (second, _) = serve_local(&resumed, &suite, LABEL, WorkerConfig::default(), 2).unwrap();
    assert!(second.steps_done >= first.steps_done + 8);
    let before = first.coverage.iter().sum::<f32>() / first.coverage.len() as f32;
    let after = second.coverage.iter().sum::<f32>() / second.coverage.len() as f32;
    assert!(after >= before - 1e-6, "coverage regressed across resume");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Worker death mid-lease: a real OS process takes a lease at gunpoint of
// SIGKILL. Uses a synthetic model suite (deterministic from seeds, no zoo)
// so the re-exec'd child derives the identical admission fingerprint
// without touching the training cache.

const DEATH_LABEL: &str = "death@test";
const DEATH_TOKEN: &str = "death-fleet-secret";

fn synthetic_suite() -> (ModelSuite, Tensor) {
    use dx_nn::layer::Layer;
    let mut base = dx_nn::Network::new(
        &[16],
        vec![Layer::dense(16, 14), Layer::relu(), Layer::dense(14, 3), Layer::softmax()],
    );
    base.init_weights(&mut rng::rng(0xdead));
    let suite = ModelSuite {
        models: vec![
            base.clone(),
            base.perturbed(0.04, 0xdead + 1),
            base.perturbed(0.04, 0xdead + 2),
        ],
        kind: deepxplore::generator::TaskKind::Classification,
        hp: Hyperparams { step: 0.25, lambda1: 2.0, max_iters: 30, ..Default::default() },
        constraint: Constraint::Clip,
        signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
    };
    let seeds = rng::uniform(&mut rng::rng(0xbeef), &[10, 16], 0.2, 0.8);
    (suite, seeds)
}

/// Not a test on its own: the re-exec'd child role for
/// [`worker_death_mid_lease_requeues_and_resumes_with_trust_state`]. With
/// the env var unset (every normal test run) it is an instant no-op; in
/// the child process it authenticates, takes a lease, and then hangs
/// holding it until the parent SIGKILLs the process.
#[test]
fn lease_holder_child() {
    let Ok(addr) = std::env::var("DX_TEST_LEASE_HOLDER") else { return };
    use dx_dist::proto::Msg;
    use dx_dist::wire::{read_frame, write_frame};
    let exchange = |stream: &mut std::net::TcpStream, msg: &Msg| -> Msg {
        write_frame(stream, &msg.to_json()).unwrap();
        Msg::from_json(&read_frame(stream).unwrap()).unwrap()
    };
    let (suite, _) = synthetic_suite();
    let fingerprint = dx_dist::suite_fingerprint(&suite, DEATH_LABEL);
    let worker_id = format!("lease-holder-{}", std::process::id());
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reply = exchange(
        &mut stream,
        &Msg::Hello {
            version: dx_dist::PROTOCOL_VERSION,
            fingerprint,
            worker_id: worker_id.clone(),
        },
    );
    if let Msg::Challenge { nonce } = &reply {
        let proof = dx_dist::auth::proof(DEATH_TOKEN, nonce, &worker_id);
        reply = exchange(&mut stream, &Msg::AuthProof { proof });
    }
    let Msg::Welcome { slot, .. } = reply else { panic!("child not welcomed: {reply:?}") };
    let reply = exchange(&mut stream, &Msg::LeaseRequest { slot, want: 3 });
    let Msg::Lease { lease, .. } = reply else { panic!("child got no lease: {reply:?}") };
    // Keep the lease alive once, then go catatonic holding it.
    let _ = exchange(&mut stream, &Msg::Heartbeat { slot, lease });
    std::thread::sleep(Duration::from_secs(300));
}

#[test]
fn worker_death_mid_lease_requeues_and_resumes_with_trust_state() {
    let (suite, seeds) = synthetic_suite();
    let dir = tmp_dir("worker_death");
    let budget = 10;
    let cfg = CoordinatorConfig {
        max_steps: Some(budget),
        batch_per_round: 4,
        lease_size: 3,
        lease_timeout: Duration::from_millis(500),
        checkpoint_dir: Some(dir.clone()),
        auth_token: Some(DEATH_TOKEN.into()),
        spot_check_rate: 1.0,
        ..Default::default()
    };
    let coordinator = Coordinator::new(&suite, DEATH_LABEL, &seeds, cfg.clone());
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let first = std::thread::scope(|scope| {
        // Re-exec this test binary as the doomed lease holder.
        let exe = std::env::current_exe().unwrap();
        let mut child = std::process::Command::new(exe)
            .args(["lease_holder_child", "--exact", "--nocapture"])
            .env("DX_TEST_LEASE_HOLDER", addr.to_string())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        let honest = {
            let suite = suite.clone();
            let coord = &coordinator;
            scope.spawn(move || {
                // Wait until the child process really holds a lease, then
                // kill it (SIGKILL — no goodbye frame, no flush).
                let deadline = std::time::Instant::now() + Duration::from_secs(60);
                while coord.outstanding_leases() == 0 {
                    assert!(std::time::Instant::now() < deadline, "child never took a lease");
                    std::thread::sleep(Duration::from_millis(20));
                }
                child.kill().unwrap();
                child.wait().unwrap();
                // An honest worker must be able to finish the whole budget,
                // including the seeds the corpse still nominally held.
                let wcfg = dx_dist::WorkerConfig {
                    auth_token: Some(DEATH_TOKEN.into()),
                    ..Default::default()
                };
                dx_dist::run_worker(addr, suite, DEATH_LABEL, wcfg).unwrap()
            })
        };
        let report = coordinator.serve(listener).unwrap();
        honest.join().unwrap();
        report
    });
    assert!(first.steps_done >= budget, "requeue failed: {} steps", first.steps_done);

    // The checkpoint's dist.json carries the trust layer's state.
    let dist_json = std::fs::read_to_string(dir.join("dist.json")).unwrap();
    assert!(dist_json.contains("\"trust\""), "no trust state in dist.json: {dist_json}");
    assert!(dist_json.contains("\"quarantined_total\""), "{dist_json}");

    // Resume restores the fleet exactly: steps continue counting, and the
    // coverage union equals the persisted bitmaps bit for bit.
    let resumed = Coordinator::resume(
        &suite,
        DEATH_LABEL,
        CoordinatorConfig { max_steps: Some(first.steps_done + 4), ..cfg },
    )
    .unwrap();
    assert_eq!(resumed.steps_done(), first.steps_done);
    let state = dx_campaign::checkpoint::load(&dir).unwrap();
    let masks = state.coverage.expect("coverage bitmaps persisted");
    for (mask, cov) in masks.iter().zip(&first.coverage) {
        let from_mask = mask.iter().filter(|&&c| c).count() as f32 / mask.len() as f32;
        assert_eq!(from_mask.to_bits(), cov.to_bits(), "resume not bit-identical");
    }
    let wcfg = dx_dist::WorkerConfig { auth_token: Some(DEATH_TOKEN.into()), ..Default::default() };
    let (second, _) = serve_local(&resumed, &suite, DEATH_LABEL, wcfg, 1).unwrap();
    assert!(second.steps_done >= first.steps_done + 4);
    // Trust accounting survived the round trip: the honest worker's
    // spot-check history is still on the books.
    let checked_first: usize = first.per_worker.iter().map(|(_, w)| w.spot_checked).sum();
    let checked_second: usize = second.per_worker.iter().map(|(_, w)| w.spot_checked).sum();
    assert!(checked_second >= checked_first, "trust state lost across resume");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dist_smoke_merged_coverage_dominates_single_worker() {
    // The CI smoke: coordinator + 2 workers on a tiny budget; the merged
    // union must be at least what a single worker achieves alone on the
    // same seeds and budget.
    let (suite, seeds) = mnist_suite();
    let budget = 8;
    let cfg = |seed: u64| CoordinatorConfig {
        max_steps: Some(budget),
        batch_per_round: 4,
        lease_size: 2,
        seed,
        ..Default::default()
    };
    let (solo_run, _) =
        run_local(&suite, LABEL, &seeds, cfg(42), WorkerConfig::default(), 1).unwrap();
    let (duo_run, _) =
        run_local(&suite, LABEL, &seeds, cfg(42), WorkerConfig::default(), 2).unwrap();
    let solo = solo_run.coverage.iter().sum::<f32>() / solo_run.coverage.len() as f32;
    let duo = duo_run.coverage.iter().sum::<f32>() / duo_run.coverage.len() as f32;
    assert!(solo > 0.0 && duo > 0.0);
    assert!(duo >= solo - 0.02, "2-worker merged coverage {duo} fell below single-worker {solo}");
    assert!(duo_run.steps_done >= budget);
}
