//! Service-plane acceptance: many tenant campaigns over one shared
//! worker fleet, driven end-to-end through the HTTP control plane.
//!
//! All tests run on a small synthetic classifier trio (16 -> 14 -> 3)
//! so they are dataset-free and fast; the MNIST-scale plumbing is
//! exercised by the dedicated-coordinator tests in `distributed.rs`
//! (the service reuses the same protocol-v6 workers).

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use deepxplore::constraints::Constraint;
use deepxplore::generator::TaskKind;
use deepxplore::Hyperparams;
use dx_campaign::codec::parse_doc;
use dx_campaign::json::Json;
use dx_campaign::ModelSuite;
use dx_coverage::{CoverageConfig, SignalSpec};
use dx_dist::{run_worker, WorkerConfig, WorkerSummary};
use dx_nn::layer::Layer;
use dx_nn::Network;
use dx_service::{Service, ServiceConfig};
use dx_telemetry::http::request;
use dx_tensor::{rng, Tensor};

const LABEL: &str = "svc@test";

fn suite() -> ModelSuite {
    let mut base = Network::new(
        &[16],
        vec![Layer::dense(16, 14), Layer::relu(), Layer::dense(14, 3), Layer::softmax()],
    );
    base.init_weights(&mut rng::rng(0xdead));
    // Tiny sibling perturbation: seeds the models *already* disagree on
    // are retired as "preexisting" without fuzzing, and these tests need
    // corpora that stay alive long enough to hit step budgets.
    ModelSuite {
        models: vec![base.clone(), base.perturbed(0.02, 1), base.perturbed(0.02, 2)],
        kind: TaskKind::Classification,
        hp: Hyperparams { step: 0.25, max_iters: 10, ..Default::default() },
        constraint: Constraint::Clip,
        signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
    }
}

fn pool() -> Tensor {
    rng::uniform(&mut rng::rng(0xbeef), &[12, 16], 0.2, 0.8)
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dx_integration_service_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_cfg(state_dir: Option<std::path::PathBuf>) -> ServiceConfig {
    ServiceConfig { state_dir, batch_per_round: 4, ..Default::default() }
}

/// Starts `svc.serve` on an ephemeral port plus `n` in-process workers.
/// Returns the fleet address and the handles to join after
/// `svc.stop_handle().stop()`.
#[allow(clippy::type_complexity)]
fn start_fleet(
    svc: &Arc<Service>,
    n: usize,
) -> (SocketAddr, JoinHandle<std::io::Result<()>>, Vec<JoinHandle<std::io::Result<WorkerSummary>>>)
{
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let served = {
        let svc = Arc::clone(svc);
        thread::spawn(move || svc.serve(listener))
    };
    let workers = (0..n)
        .map(|_| {
            let suite = suite();
            thread::spawn(move || run_worker(addr, suite, LABEL, WorkerConfig::default()))
        })
        .collect();
    (addr, served, workers)
}

fn get_json(api: SocketAddr, path: &str) -> Json {
    let (status, body) = request(api, "GET", path, "").unwrap();
    assert_eq!(status, 200, "GET {path}: {body}");
    parse_doc(&body).unwrap()
}

fn post(api: SocketAddr, path: &str, body: &str) -> (u16, String) {
    request(api, "POST", path, body).unwrap()
}

fn field(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("no `{key}` in {doc}"))
}

fn status_of(doc: &Json) -> String {
    doc.get("status").and_then(Json::as_str).expect("status field").to_string()
}

fn wait_until(what: &str, secs: u64, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out after {secs}s waiting for {what}");
}

/// The tentpole acceptance path: two tenants submitted over HTTP run
/// concurrently on one two-worker fleet, both complete, their metrics
/// stay disjoint under the `tenant` label, a graceful stop checkpoints
/// them, and a daemon restart resumes both — then picks up a third,
/// half-finished tenant from its namespaced checkpoint and finishes it.
#[test]
fn two_tenants_complete_over_http_and_a_restart_resumes_them() {
    let dir = tmp_dir("restart");
    let svc =
        Arc::new(Service::new(&suite(), LABEL, &pool(), service_cfg(Some(dir.clone()))).unwrap());
    let api = dx_service::api::router(Arc::clone(&svc)).serve("127.0.0.1:0").unwrap();
    let api_addr = api.addr();
    let (_, served, workers) = start_fleet(&svc, 2);

    let (status, body) =
        post(api_addr, "/campaigns", r#"{"name":"alpha","seeds":4,"seed":7,"max_steps":12}"#);
    assert_eq!(status, 200, "{body}");
    let alpha = field(&parse_doc(&body).unwrap(), "id");
    let (status, body) = post(
        api_addr,
        "/campaigns",
        r#"{"name":"beta","seeds":4,"seed_offset":4,"seed":9,"max_steps":12,"quota":0.5}"#,
    );
    assert_eq!(status, 200, "{body}");
    let beta = field(&parse_doc(&body).unwrap(), "id");

    wait_until("both tenants to finish", 120, || {
        [alpha, beta]
            .iter()
            .all(|id| status_of(&get_json(api_addr, &format!("/campaigns/{id}"))) == "done")
    });
    let alpha_doc = get_json(api_addr, &format!("/campaigns/{alpha}"));
    let beta_doc = get_json(api_addr, &format!("/campaigns/{beta}"));
    assert!(field(&alpha_doc, "steps_done") >= 12, "{alpha_doc}");
    assert!(field(&beta_doc, "steps_done") >= 12, "{beta_doc}");

    // Per-tenant series are disjoint under the `tenant` label and both
    // non-zero; fleet-level series carry no tenant label.
    let (status, metrics) = request(api_addr, "GET", "/metrics", "").unwrap();
    assert_eq!(status, 200);
    for name in ["alpha", "beta"] {
        let needle = format!("dx_seeds_total{{tenant=\"{name}\"}} ");
        let line = metrics
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("no {needle} in {metrics}"));
        let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value >= 12.0, "{line}");
    }
    assert!(metrics.contains("dx_workers_connected 2"), "{metrics}");

    // The report and event feed answer over HTTP too.
    let (status, report) =
        request(api_addr, "GET", &format!("/campaigns/{alpha}/report"), "").unwrap();
    assert_eq!(status, 200);
    assert!(report.contains("alpha"), "{report}");
    let (status, events) =
        request(api_addr, "GET", &format!("/campaigns/{alpha}/events"), "").unwrap();
    assert_eq!(status, 200);
    assert!(events.lines().next().unwrap().contains("submitted"), "{events}");
    assert!(events.contains("\"event\":\"done\""), "{events}");

    // A third tenant with a budget the fleet will NOT finish before the
    // daemon stops: it must come back mid-flight after the restart.
    let (status, body) =
        post(api_addr, "/campaigns", r#"{"name":"gamma","seeds":6,"seed":11,"max_steps":400}"#);
    assert_eq!(status, 200, "{body}");
    let gamma = field(&parse_doc(&body).unwrap(), "id");
    wait_until("gamma to make progress", 60, || {
        field(&get_json(api_addr, &format!("/campaigns/{gamma}")), "steps_done") >= 8
    });

    // Graceful stop: drains in-flight leases, checkpoints every tenant,
    // releases the fleet.
    svc.stop_handle().stop();
    served.join().unwrap().unwrap();
    for w in workers {
        w.join().unwrap().unwrap();
    }
    drop(api);
    let gamma_steps_at_stop = {
        let st = get_steps_from_checkpoint(&dir.join(gamma.to_string()));
        assert!(st >= 8, "final checkpoint must hold gamma's progress, got {st}");
        st
    };

    // Restart: a fresh daemon over the same state dir resumes all three
    // tenants from their namespaced checkpoints.
    let svc =
        Arc::new(Service::new(&suite(), LABEL, &pool(), service_cfg(Some(dir.clone()))).unwrap());
    let api = dx_service::api::router(Arc::clone(&svc)).serve("127.0.0.1:0").unwrap();
    let api_addr = api.addr();
    let all = get_json(api_addr, "/campaigns");
    let Json::Arr(all) = all else { panic!("list must be an array") };
    assert_eq!(all.len(), 3, "all tenants resumed");
    for doc in &all {
        match field(doc, "id") {
            id if id == gamma => {
                assert_eq!(status_of(doc), "running");
                assert!(field(doc, "steps_done") >= gamma_steps_at_stop, "{doc}");
            }
            _ => assert_eq!(status_of(doc), "done", "{doc}"),
        }
    }

    // And the resumed fleet finishes gamma's remaining budget.
    let (_, served, workers) = start_fleet(&svc, 2);
    wait_until("gamma to finish after restart", 120, || {
        status_of(&get_json(api_addr, &format!("/campaigns/{gamma}"))) == "done"
    });
    assert!(field(&get_json(api_addr, &format!("/campaigns/{gamma}")), "steps_done") >= 400);
    svc.stop_handle().stop();
    served.join().unwrap().unwrap();
    for w in workers {
        w.join().unwrap().unwrap();
    }
}

/// Reads `steps_done` back out of a tenant's on-disk `tenant.json`.
fn get_steps_from_checkpoint(dir: &std::path::Path) -> u64 {
    let doc = parse_doc(&std::fs::read_to_string(dir.join("tenant.json")).unwrap()).unwrap();
    field(&doc, "steps_done")
}

/// Isolation: a tenant sharing the daemon with another produces exactly
/// the campaign a solo tenant of the same spec does. One worker makes
/// both runs deterministic; the multiplexed run interleaves `other`'s
/// leases between `alpha`'s, and nothing about `alpha`'s stream, corpus
/// schedule, or coverage union may notice.
#[test]
fn a_tenant_matches_the_same_campaign_run_solo() {
    let alpha_spec = r#"{"name":"alpha","seeds":5,"seed":21,"max_steps":24}"#;
    let run = |specs: &[&str], watch: u64| -> Json {
        let svc = Arc::new(Service::new(&suite(), LABEL, &pool(), service_cfg(None)).unwrap());
        let api = dx_service::api::router(Arc::clone(&svc)).serve("127.0.0.1:0").unwrap();
        let api_addr = api.addr();
        let (_, served, workers) = start_fleet(&svc, 1);
        for spec in specs {
            let (status, body) = post(api_addr, "/campaigns", spec);
            assert_eq!(status, 200, "{body}");
        }
        wait_until("watched tenant to finish", 120, || {
            status_of(&get_json(api_addr, &format!("/campaigns/{watch}"))) == "done"
        });
        let doc = get_json(api_addr, &format!("/campaigns/{watch}"));
        svc.stop_handle().stop();
        served.join().unwrap().unwrap();
        for w in workers {
            w.join().unwrap().unwrap();
        }
        doc
    };

    let multiplexed = run(
        &[alpha_spec, r#"{"name":"other","seeds":5,"seed_offset":5,"seed":33,"max_steps":40}"#],
        0,
    );
    let solo = run(&[alpha_spec], 0);
    for key in ["steps_done", "diffs", "corpus", "epochs"] {
        assert_eq!(
            field(&multiplexed, key),
            field(&solo, key),
            "`{key}` diverged: {multiplexed} vs {solo}"
        );
    }
    let cov = |d: &Json| d.get("mean_coverage").and_then(Json::as_f64).unwrap();
    let (a, b) = (cov(&multiplexed), cov(&solo));
    assert!((a - b).abs() < 1e-6, "coverage diverged: {a} vs {b}");
}

/// Stride scheduling skews fleet shares toward the heavier weight while
/// both tenants stay live.
#[test]
fn weights_skew_fleet_shares() {
    let svc = Arc::new(Service::new(&suite(), LABEL, &pool(), service_cfg(None)).unwrap());
    let api = dx_service::api::router(Arc::clone(&svc)).serve("127.0.0.1:0").unwrap();
    let api_addr = api.addr();
    let (_, served, workers) = start_fleet(&svc, 1);
    let (status, _) =
        post(api_addr, "/campaigns", r#"{"name":"light","seeds":6,"seed":3,"weight":1.0}"#);
    assert_eq!(status, 200);
    let (status, _) = post(
        api_addr,
        "/campaigns",
        r#"{"name":"heavy","seeds":6,"seed_offset":6,"seed":5,"weight":4.0}"#,
    );
    assert_eq!(status, 200);
    // Unbounded budgets: let the fleet run a while, then freeze both and
    // compare shares.
    wait_until("both tenants to accumulate steps", 60, || {
        field(&get_json(api_addr, "/campaigns/0"), "steps_done") >= 20
    });
    let (status, _) = post(api_addr, "/campaigns/0/pause", "");
    assert_eq!(status, 200);
    let (status, _) = post(api_addr, "/campaigns/1/pause", "");
    assert_eq!(status, 200);
    let light = field(&get_json(api_addr, "/campaigns/0"), "steps_done");
    let heavy = field(&get_json(api_addr, "/campaigns/1"), "steps_done");
    assert!(
        heavy > light,
        "weight-4 tenant must out-run weight-1 under stride scheduling: {heavy} vs {light}"
    );
    svc.stop_handle().stop();
    served.join().unwrap().unwrap();
    for w in workers {
        w.join().unwrap().unwrap();
    }
}
