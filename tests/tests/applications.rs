//! End-to-end §7.3 applications: majority-vote retraining and
//! pollution detection, on the real (test-scale) zoo.

use deepxplore::generator::{Generator, TaskKind};
use deepxplore::hyper::Hyperparams;
use deepxplore::Constraint;
use dx_apps::augment::{majority_vote, retrain_with_eval};
use dx_apps::pollution::{detection_quality, rank_suspects};
use dx_coverage::CoverageConfig;
use dx_datasets::{mnist, pollute_labels};
use dx_integration::test_zoo;
use dx_models::variants::{lenet1_wider, train_variant};
use dx_models::DatasetKind;
use dx_nn::util::{gather_rows, row};
use dx_tensor::Tensor;

#[test]
fn majority_vote_retraining_does_not_regress() {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let mut gen = Generator::new(
        models.clone(),
        TaskKind::Classification,
        Hyperparams { max_iters: 30, ..Hyperparams::image_defaults() },
        Constraint::Lighting,
        CoverageConfig::scaled(0.25),
        5150,
    );
    let seeds = gather_rows(&ds.test_x, &(0..40).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    let extra: Vec<(Tensor, usize)> = result
        .tests
        .iter()
        .filter_map(|t| majority_vote(&models, &t.input).map(|l| (t.input.clone(), l)))
        .collect();
    assert!(!extra.is_empty(), "no auto-labelled tests to retrain on");
    let mut net = zoo.model("MNI_C1");
    let outcome = retrain_with_eval(
        &mut net,
        &ds.train_x,
        ds.train_labels.classes(),
        &extra,
        &ds.test_x,
        ds.test_labels.classes(),
        3,
        1,
    );
    assert!(
        outcome.best() + 0.02 >= outcome.initial_accuracy,
        "retraining collapsed accuracy: {outcome:?}"
    );
}

#[test]
fn pollution_detection_recovers_flipped_samples() {
    // Small-scale §7.3: pollute 30% of the 9s as 1s, train clean and
    // polluted LeNet-1 variants, find disagreement inputs (clean says 9,
    // polluted says 1), and trace them back to training samples by SSIM.
    let ds =
        mnist::generate(&mnist::MnistConfig { n_train: 700, n_test: 100, seed: 404, side: 28 });
    let clean_labels = ds.train_labels.classes().to_vec();
    let (polluted_labels, flipped) = pollute_labels(&clean_labels, 9, 1, 0.3, 18);
    assert!(!flipped.is_empty());

    let clean = train_variant(lenet1_wider(0), &ds.train_x, &clean_labels, 700, 2, 3);
    let polluted = train_variant(lenet1_wider(0), &ds.train_x, &polluted_labels, 700, 2, 3);

    // Error-inducing inputs: grow from test 9s until the two models split
    // into (clean: 9, polluted: 1).
    let mut gen = Generator::new(
        vec![clean.clone(), polluted.clone()],
        TaskKind::Classification,
        Hyperparams { max_iters: 30, ..Hyperparams::image_defaults() },
        Constraint::Lighting,
        CoverageConfig::default(),
        5,
    );
    let nines: Vec<usize> =
        (0..ds.test_len()).filter(|&i| ds.test_labels.classes()[i] == 9).collect();
    let seeds = gather_rows(&ds.test_x, &nines);
    let result = gen.run(&seeds);
    let mut error_inputs: Vec<Tensor> = result
        .tests
        .iter()
        .filter(|t| {
            clean.predict_classes(&t.input)[0] == 9 && polluted.predict_classes(&t.input)[0] == 1
        })
        .map(|t| t.input.clone())
        .collect();
    // Direct disagreements on raw test nines count too (clean 9 vs
    // polluted 1 without any gradient steps).
    for &i in &nines {
        let x = gather_rows(&ds.test_x, &[i]);
        if clean.predict_classes(&x)[0] == 9 && polluted.predict_classes(&x)[0] == 1 {
            error_inputs.push(x);
        }
    }
    if error_inputs.is_empty() {
        // The pollution did not bite at this scale; nothing to trace.
        eprintln!("pollution did not change polluted-model behaviour; skipping trace");
        return;
    }

    // Candidates: training samples the polluted set labels 1 (real 1s plus
    // the flipped 9s).
    let candidates: Vec<usize> = (0..700).filter(|&i| polluted_labels[i] == 1).collect();
    let ranked = rank_suspects(&error_inputs, &ds.train_x, &candidates);
    let suspects: Vec<usize> = ranked.iter().take(flipped.len()).map(|(i, _)| *i).collect();
    let (precision, recall) = detection_quality(&suspects, &flipped);
    // The flipped samples are drawings of 9 labelled 1 — structurally much
    // closer to error inputs grown from 9s than true 1s are.
    assert!(
        precision > 0.5 && recall > 0.5,
        "weak pollution detection: precision {precision}, recall {recall}"
    );
}

#[test]
fn suspects_are_visually_nines() {
    // Independent sanity check of the SSIM tracing idea: rank candidates
    // against an actual 9 and confirm a flipped 9 outranks true 1s.
    let ds = mnist::generate(&mnist::MnistConfig { n_train: 300, n_test: 30, seed: 90, side: 28 });
    let labels = ds.train_labels.classes();
    let nine = (0..300).find(|&i| labels[i] == 9).expect("a nine exists");
    let one_indices: Vec<usize> = (0..300).filter(|&i| labels[i] == 1).collect();
    let mut candidates = one_indices.clone();
    candidates.push(nine); // Pretend this nine was flipped into class 1.
    let probe = row(&ds.train_x, nine);
    let ranked = rank_suspects(&[probe], &ds.train_x, &candidates);
    assert_eq!(ranked[0].0, nine, "the mislabelled nine should rank first");
}
