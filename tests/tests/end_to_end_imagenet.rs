//! End-to-end: the ImageNet-class trio (VGG-Mini-16/19 and ResNet-Mini)
//! with the occlusion constraints.

use deepxplore::constraints::Constraint;
use deepxplore::generator::{Generator, TaskKind};
use deepxplore::hyper::Hyperparams;
use dx_coverage::CoverageConfig;
use dx_integration::test_zoo;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;

#[test]
fn imagenet_models_learn() {
    let mut zoo = test_zoo();
    for id in ["IMG_C1", "IMG_C2", "IMG_C3"] {
        let acc = zoo.accuracy(id);
        assert!(acc > 0.6, "{id} test accuracy {acc}");
    }
}

#[test]
fn occlusion_differences_on_cnn_trio() {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Imagenet);
    let ds = zoo.dataset(DatasetKind::Imagenet).clone();
    let mut gen = Generator::new(
        models,
        TaskKind::Classification,
        Hyperparams { max_iters: 30, step: 0.2, ..Hyperparams::image_defaults() },
        Constraint::MultiRects { size: 4, count: 4 },
        CoverageConfig::default(),
        2718,
    );
    let seeds = gather_rows(&ds.test_x, &(0..20).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    assert!(result.stats.differences_found >= 1, "no occlusion differences: {:?}", result.stats);
    // Multi-rect occlusion may only darken pixels.
    for test in &result.tests {
        let seed = gather_rows(&ds.test_x, &[test.seed_index]);
        for (a, b) in test.input.data().iter().zip(seed.data().iter()) {
            assert!(*a <= b + 1e-5, "occlusion brightened a pixel");
        }
    }
}
