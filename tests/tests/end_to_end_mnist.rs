//! End-to-end: train the MNIST LeNet trio, run DeepXplore with image
//! constraints, and validate the generated difference-inducing inputs.

use deepxplore::constraints::Constraint;
use deepxplore::diff::differs;
use deepxplore::generator::{Generator, TaskKind};
use deepxplore::hyper::Hyperparams;
use dx_coverage::CoverageConfig;
use dx_integration::test_zoo;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;

#[test]
fn lenets_learn_the_synthetic_digits() {
    let mut zoo = test_zoo();
    for id in ["MNI_C1", "MNI_C2", "MNI_C3"] {
        let acc = zoo.accuracy(id);
        assert!(acc > 0.75, "{id} test accuracy {acc}");
    }
}

#[test]
fn deepxplore_finds_differences_with_lighting() {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let mut gen = Generator::new(
        models,
        TaskKind::Classification,
        Hyperparams { max_iters: 40, ..Hyperparams::image_defaults() },
        Constraint::Lighting,
        CoverageConfig::default(),
        777,
    );
    let seeds = gather_rows(&ds.test_x, &(0..30).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    assert!(
        result.stats.differences_found >= 1,
        "no lighting-induced differences in 30 seeds: {:?}",
        result.stats
    );
    for test in &result.tests {
        // The oracle really fired.
        assert!(differs(&test.predictions, 0.0));
        // Pixels stay valid.
        assert!(test.input.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Lighting only shifts brightness. Per-step shifts are uniform;
        // cumulatively, clamping can leave pixels at different offsets, so
        // we assert the two structural consequences instead: the image
        // content is preserved (high correlation with the seed) and the
        // most common per-pixel delta dominates.
        let seed = gather_rows(&ds.test_x, &[test.seed_index]);
        let deltas: Vec<f32> = test
            .input
            .data()
            .iter()
            .zip(seed.data().iter())
            .map(|(&out, &inp)| out - inp)
            .collect();
        let mut counts = std::collections::HashMap::new();
        for d in &deltas {
            *counts.entry((d * 1000.0).round() as i64).or_insert(0usize) += 1;
        }
        let modal = counts.values().max().copied().unwrap_or(0);
        assert!(
            modal * 10 >= deltas.len() * 4,
            "no dominant lighting shift: modal {} of {}",
            modal,
            deltas.len()
        );
    }
}

#[test]
fn deepxplore_occlusion_constraints_localize_changes() {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let mut gen = Generator::new(
        models,
        TaskKind::Classification,
        Hyperparams { max_iters: 40, step: 0.3, ..Hyperparams::image_defaults() },
        Constraint::SingleRect { h: 8, w: 8 },
        CoverageConfig::default(),
        77,
    );
    let seeds = gather_rows(&ds.test_x, &(0..25).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    for test in &result.tests {
        let seed = gather_rows(&ds.test_x, &[test.seed_index]);
        // Changed pixels must fit inside some 8x8 bounding box per step;
        // across iterations windows can move, but the total changed area
        // stays far below the whole image.
        let changed = test
            .input
            .data()
            .iter()
            .zip(seed.data().iter())
            .filter(|(a, b)| (**a - **b).abs() > 1e-6)
            .count();
        assert!(changed < 28 * 28 / 2, "occlusion changed {changed} of {} pixels", 28 * 28);
    }
}

#[test]
fn coverage_increases_with_generated_tests() {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let mut gen = Generator::new(
        models,
        TaskKind::Classification,
        Hyperparams::image_defaults(),
        Constraint::Lighting,
        CoverageConfig::scaled(0.25),
        55,
    );
    let before = gen.mean_coverage();
    let seeds = gather_rows(&ds.test_x, &(0..20).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    if result.stats.differences_found > 0 {
        assert!(gen.mean_coverage() > before);
    }
}
