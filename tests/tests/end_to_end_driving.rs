//! End-to-end: the DAVE steering regressors — the paper's only regression
//! task — with the left/right differential oracle of Figure 1.

use deepxplore::constraints::Constraint;
use deepxplore::diff::{differs, direction, Prediction};
use deepxplore::generator::{Generator, TaskKind};
use deepxplore::hyper::Hyperparams;
use dx_coverage::CoverageConfig;
use dx_datasets::driving::STEER_DIRECTION_THRESHOLD;
use dx_integration::test_zoo;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;

#[test]
fn dave_models_learn_steering() {
    let mut zoo = test_zoo();
    for id in ["DRV_C1", "DRV_C2", "DRV_C3"] {
        let one_minus_mse = zoo.accuracy(id);
        assert!(one_minus_mse > 0.9, "{id} 1-MSE = {one_minus_mse}");
    }
}

#[test]
fn dave_models_steer_in_the_right_direction() {
    // Sanity beyond MSE: predictions correlate with ground-truth curvature.
    let mut zoo = test_zoo();
    let net = zoo.model("DRV_C2");
    let ds = zoo.dataset(DatasetKind::Driving).clone();
    let n = ds.test_len().min(100);
    let idx: Vec<usize> = (0..n).collect();
    let x = gather_rows(&ds.test_x, &idx);
    let out = net.output(&x);
    let truth = ds.test_labels.values();
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let (a, b) = (out.at(&[i, 0]), truth.at(&[i, 0]));
        num += a * b;
        da += a * a;
        db += b * b;
    }
    let corr = num / (da.sqrt() * db.sqrt() + 1e-9);
    assert!(corr > 0.8, "steering correlation {corr}");
}

#[test]
fn deepxplore_splits_steering_directions() {
    let mut zoo = test_zoo();
    let models = zoo.trio(DatasetKind::Driving);
    let ds = zoo.dataset(DatasetKind::Driving).clone();
    let mut gen = Generator::new(
        models,
        TaskKind::Regression { direction_threshold: STEER_DIRECTION_THRESHOLD },
        Hyperparams { max_iters: 60, ..Hyperparams::image_defaults() },
        Constraint::Lighting,
        CoverageConfig::default(),
        4242,
    );
    let seeds = gather_rows(&ds.test_x, &(0..30).collect::<Vec<_>>());
    let result = gen.run(&seeds);
    assert!(
        result.stats.differences_found >= 1,
        "no steering disagreements found: {:?}",
        result.stats
    );
    for test in &result.tests {
        assert!(differs(&test.predictions, STEER_DIRECTION_THRESHOLD));
        // At least two distinct directions among the trio — e.g. one model
        // says left while another says right/straight (Figure 1).
        let dirs: Vec<_> = test
            .predictions
            .iter()
            .map(|p| match p {
                Prediction::Value(v) => direction(*v, STEER_DIRECTION_THRESHOLD),
                Prediction::Class(_) => unreachable!("regression task"),
            })
            .collect();
        assert!(dirs.windows(2).any(|w| w[0] != w[1]) || dirs[0] != dirs[dirs.len() - 1]);
    }
}
