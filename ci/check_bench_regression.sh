#!/usr/bin/env bash
# Compares per-arm seeds/s between two bench_results directories and fails
# when any arm regressed more than the allowed percentage.
#
# Usage: ci/check_bench_regression.sh <baseline_dir> <fresh_dir> [max_regression_pct]
#
# The scaling bench tables end every data row with the speedup column
# ("1.23x"); the seeds/s value is always the 4th field from the end, and
# everything before it is the arm name. New arms present only in the fresh
# results are reported but do not fail the check (baselines are updated by
# the PR that introduces the arm); arms *missing* from the fresh results
# fail it.
set -euo pipefail

baseline_dir=${1:?usage: check_bench_regression.sh <baseline_dir> <fresh_dir> [max_pct]}
fresh_dir=${2:?usage: check_bench_regression.sh <baseline_dir> <fresh_dir> [max_pct]}
max_pct=${3:-25}

extract() {
  awk '$NF ~ /^[0-9]+\.[0-9]+x$/ {
    name = $1
    for (i = 2; i <= NF - 5; i++) name = name " " $i
    print name "\t" $(NF - 4)
  }' "$1"
}

fail=0
for bench in campaign_scaling dist_scaling; do
  base_file="$baseline_dir/$bench.txt"
  fresh_file="$fresh_dir/$bench.txt"
  if [ ! -f "$base_file" ]; then
    echo "FAIL $bench: missing baseline $base_file"
    fail=1
    continue
  fi
  if [ ! -f "$fresh_file" ]; then
    echo "FAIL $bench: missing fresh results $fresh_file"
    fail=1
    continue
  fi
  base_table=$(extract "$base_file")
  fresh_table=$(extract "$fresh_file")
  if [ -z "$base_table" ]; then
    echo "FAIL $bench: no parseable arms in $base_file"
    fail=1
    continue
  fi
  while IFS=$'\t' read -r arm base_value; do
    fresh_value=$(printf '%s\n' "$fresh_table" | awk -F'\t' -v a="$arm" '$1 == a { print $2; exit }')
    if [ -z "$fresh_value" ]; then
      echo "FAIL $bench / $arm: arm missing from fresh results"
      fail=1
      continue
    fi
    if ! awk -v base="$base_value" -v fresh="$fresh_value" -v max="$max_pct" \
             -v tag="$bench / $arm" 'BEGIN {
          floor = base * (1 - max / 100)
          if (fresh < floor) {
            printf "FAIL %s: %.2f seeds/s < %.2f floor (baseline %.2f, max -%s%%)\n",
                   tag, fresh, floor, base, max
            exit 1
          }
          printf "ok   %s: %.2f seeds/s (baseline %.2f)\n", tag, fresh, base
        }'; then
      fail=1
    fi
  done <<< "$base_table"
done
exit $fail
