#!/usr/bin/env bash
# Compares per-arm *scaling* between two bench_results directories and
# fails when any arm regressed more than the allowed percentage.
#
# Usage: ci/check_bench_regression.sh <baseline_dir> <fresh_dir> \
#            [max_regression_pct] [max_overhead_pct] [min_batched_ratio]
#
# What is compared is the speedup column — the last field of every data
# row ("1.23x"). Speedup is a *same-run* ratio: each arm is normalized
# against its own run's baseline arm, so the comparison survives the
# baselines having been recorded on different hardware. Raw seeds/s is
# deliberately NOT compared — absolute throughput across machines (CI
# runner vs the laptop that committed the baseline) is noise, and gating
# on it produced both false failures and false passes.
#
# New arms present only in the fresh results are reported but do not fail
# the check (baselines are updated by the PR that introduces the arm);
# arms *missing* from the fresh results fail it.
#
# The campaign_scaling bench also emits a "telemetry overhead:" line — a
# same-run pair of identical arms with the hot-path phase timers disabled
# vs enabled. That overhead must stay under max_overhead_pct (default 5).
#
# It further emits a "batched speedup:" line — the same-run seeds/s ratio
# of the tile-8 batched generator arm over the tile-1 scalar arm, on
# bit-identical work. That ratio must stay at or above min_batched_ratio
# (default 0.85): on the conv-dominated test-scale workload the two arms
# measure at parity (per-sample im2col dominates), so the gate's job is
# to catch the batched path regressing into a pessimization, with a 15%
# noise allowance. Raise the floor if batched conv lands and the measured
# ratio moves.
set -euo pipefail

baseline_dir=${1:?usage: check_bench_regression.sh <baseline_dir> <fresh_dir> [max_pct] [max_overhead_pct] [min_batched_ratio]}
fresh_dir=${2:?usage: check_bench_regression.sh <baseline_dir> <fresh_dir> [max_pct] [max_overhead_pct] [min_batched_ratio]}
max_pct=${3:-25}
max_overhead_pct=${4:-5}
min_batched_ratio=${5:-0.85}

# Data rows end with the speedup column; everything before the numeric
# columns is the arm name. Emits "<arm>\t<speedup>" with the x stripped.
extract() {
  awk '$NF ~ /^[0-9]+\.[0-9]+x$/ {
    name = $1
    for (i = 2; i <= NF - 5; i++) name = name " " $i
    ratio = $NF
    sub(/x$/, "", ratio)
    print name "\t" ratio
  }' "$1"
}

fail=0
for bench in campaign_scaling dist_scaling; do
  base_file="$baseline_dir/$bench.txt"
  fresh_file="$fresh_dir/$bench.txt"
  if [ ! -f "$base_file" ]; then
    echo "FAIL $bench: missing baseline $base_file"
    fail=1
    continue
  fi
  if [ ! -f "$fresh_file" ]; then
    echo "FAIL $bench: missing fresh results $fresh_file"
    fail=1
    continue
  fi
  base_table=$(extract "$base_file")
  fresh_table=$(extract "$fresh_file")
  if [ -z "$base_table" ]; then
    echo "FAIL $bench: no parseable arms in $base_file"
    fail=1
    continue
  fi
  while IFS=$'\t' read -r arm base_value; do
    fresh_value=$(printf '%s\n' "$fresh_table" | awk -F'\t' -v a="$arm" '$1 == a { print $2; exit }')
    if [ -z "$fresh_value" ]; then
      echo "FAIL $bench / $arm: arm missing from fresh results"
      fail=1
      continue
    fi
    if ! awk -v base="$base_value" -v fresh="$fresh_value" -v max="$max_pct" \
             -v tag="$bench / $arm" 'BEGIN {
          floor = base * (1 - max / 100)
          if (fresh < floor) {
            printf "FAIL %s: %.2fx speedup < %.2fx floor (baseline %.2fx, max -%s%%)\n",
                   tag, fresh, floor, base, max
            exit 1
          }
          printf "ok   %s: %.2fx speedup (baseline %.2fx)\n", tag, fresh, base
        }'; then
      fail=1
    fi
  done <<< "$base_table"
  # Arms only in the fresh results: informational, baselines catch up with
  # the next commit to bench_results/.
  while IFS=$'\t' read -r arm _; do
    [ -z "$arm" ] && continue
    known=$(printf '%s\n' "$base_table" | awk -F'\t' -v a="$arm" '$1 == a { print 1; exit }')
    if [ -z "$known" ]; then
      echo "new  $bench / $arm: no baseline yet"
    fi
  done <<< "$fresh_table"
done

# Instrumentation-overhead budget: timers-on vs timers-off, same run,
# same machine. Negative overhead (noise) passes.
overhead=$(awk '/^telemetry overhead:/ { v = $3; sub(/%$/, "", v); print v; exit }' \
  "$fresh_dir/campaign_scaling.txt" 2>/dev/null || true)
if [ -z "$overhead" ]; then
  echo "FAIL campaign_scaling: no 'telemetry overhead:' line in fresh results"
  fail=1
elif ! awk -v o="$overhead" -v max="$max_overhead_pct" 'BEGIN {
    if (o > max) {
      printf "FAIL telemetry overhead: %.1f%% > %s%% budget\n", o, max
      exit 1
    }
    printf "ok   telemetry overhead: %.1f%% (budget %s%%)\n", o, max
  }'; then
  fail=1
fi

# Batched/scalar floor: the tile-8 and tile-1 arms run identical work in
# the same process, so the ratio is hardware-independent. Below the floor
# the batched path has stopped paying for itself.
batched=$(awk '/^batched speedup:/ { v = $3; sub(/x$/, "", v); print v; exit }' \
  "$fresh_dir/campaign_scaling.txt" 2>/dev/null || true)
if [ -z "$batched" ]; then
  echo "FAIL campaign_scaling: no 'batched speedup:' line in fresh results"
  fail=1
elif ! awk -v r="$batched" -v min="$min_batched_ratio" 'BEGIN {
    if (r < min) {
      printf "FAIL batched speedup: %.2fx < %sx floor (batched generator path regressed vs scalar)\n", r, min
      exit 1
    }
    printf "ok   batched speedup: %.2fx (floor %sx)\n", r, min
  }'; then
  fail=1
fi
exit $fail
