//! One tenant: an isolated campaign sharing the fleet.
//!
//! A tenant owns everything a dedicated coordinator would — corpus,
//! global coverage union, found diffs, round statistics, requeue, its
//! own scheduling RNG — plus the service-specific extras: a pausable
//! status machine, a per-tenant metrics registry whose series surface
//! with a `tenant` label, an append-only JSONL event feed, and worker
//! generator RNG streams keyed by *worker identity* (a worker may serve
//! many tenants, and its stream for each must survive reconnects).
//!
//! On disk a tenant is one directory under the daemon's state dir, named
//! by its campaign id: the standard campaign checkpoint files (readable
//! by `dx_campaign::Campaign::resume_from` and every existing tool),
//! plus `tenant.json` (spec, status, requeue, per-identity RNG) and
//! `events.jsonl`.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use dx_campaign::checkpoint::{self, Meta, SignalCheckpoint};
use dx_campaign::codec::{
    field_usize, parse_doc, rng_state_from_json, rng_state_json, u64_from_json, u64_json,
};
use dx_campaign::json::{build, Json};
use dx_campaign::{CampaignReport, Corpus, EnergyModel, EpochStats, FoundDiff};
use dx_coverage::CoverageSignal;
use dx_telemetry::{Counter, Gauge, MetricsRegistry};
use dx_tensor::{rng, Tensor};

use crate::spec::CampaignSpec;

/// A tenant's lifecycle state. `Running → Paused` and back are the only
/// reversible edges; `Done` and `Cancelled` are terminal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Schedulable: the dispatcher may grant its seeds to workers.
    Running,
    /// Not schedulable; outstanding leases still land normally.
    Paused,
    /// Finished by budget, coverage target, or corpus exhaustion.
    Done,
    /// Cancelled by the tenant; terminal.
    Cancelled,
}

impl Status {
    /// The wire/disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Running => "running",
            Status::Paused => "paused",
            Status::Done => "done",
            Status::Cancelled => "cancelled",
        }
    }

    /// Parses a disk/wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "running" => Some(Status::Running),
            "paused" => Some(Status::Paused),
            "done" => Some(Status::Done),
            "cancelled" => Some(Status::Cancelled),
            _ => None,
        }
    }

    /// Whether no further scheduling can ever happen.
    pub fn is_terminal(self) -> bool {
        matches!(self, Status::Done | Status::Cancelled)
    }
}

/// Per-round accumulators, flushed into an [`EpochStats`] line.
#[derive(Default)]
pub(crate) struct RoundAccum {
    pub seeds_run: usize,
    pub diffs_found: usize,
    pub iterations: usize,
    pub newly_covered: usize,
}

/// Cached handles for the tenant registry's series. The registry itself
/// is rendered with a `tenant="<name>"` label by the daemon's `/metrics`.
pub(crate) struct TenantMetrics {
    pub registry: MetricsRegistry,
    pub steps: Arc<Counter>,
    pub diffs: Arc<Counter>,
    pub leases: Arc<Counter>,
    pub requeue_depth: Arc<Gauge>,
    pub corpus_size: Arc<Gauge>,
    pub coverage_mean: Arc<Gauge>,
}

impl TenantMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        registry.set_help("dx_seeds_total", "Seed steps absorbed for this tenant.");
        registry.set_help("dx_diffs_total", "Difference-inducing inputs absorbed.");
        registry.set_help("dx_leases_total", "Leases granted to workers.");
        registry.set_help("dx_requeue_depth", "Seeds waiting in the requeue.");
        registry.set_help("dx_corpus_size", "Corpus entries.");
        registry.set_help("dx_coverage_mean", "Mean global coverage across models.");
        Self {
            steps: registry.counter("dx_seeds_total", &[]),
            diffs: registry.counter("dx_diffs_total", &[]),
            leases: registry.counter("dx_leases_total", &[]),
            requeue_depth: registry.gauge("dx_requeue_depth", &[]),
            corpus_size: registry.gauge("dx_corpus_size", &[]),
            coverage_mean: registry.gauge("dx_coverage_mean", &[]),
            registry,
        }
    }
}

/// One tenant's full in-memory state; see the module docs.
pub struct Tenant {
    pub(crate) id: u64,
    pub(crate) spec: CampaignSpec,
    pub(crate) status: Status,
    pub(crate) corpus: Corpus,
    pub(crate) global: Vec<CoverageSignal>,
    pub(crate) diffs: Vec<FoundDiff>,
    pub(crate) epochs: Vec<EpochStats>,
    pub(crate) round: RoundAccum,
    pub(crate) round_started: Instant,
    pub(crate) steps_done: usize,
    /// Requeued seed ids (expired/abandoned leases), served before fresh
    /// scheduling.
    pub(crate) pending: VecDeque<usize>,
    pub(crate) sched_rng: rng::Rng,
    /// Worker generator RNG streams, keyed by authenticated worker
    /// identity — a worker keeps its per-tenant stream across reconnects
    /// even if it lands on a different fleet slot.
    pub(crate) worker_rng: BTreeMap<String, [u64; 4]>,
    /// Stride-scheduling virtual time: grows by `granted / weight` on
    /// every grant; the runnable tenant with the smallest pass goes next.
    pub(crate) pass: f64,
    /// Jobs currently out on this tenant's leases.
    pub(crate) outstanding: usize,
    /// The JSONL event feed, in memory; persisted whole at checkpoints.
    pub(crate) events: Vec<String>,
    pub(crate) metrics: TenantMetrics,
    /// Monotonic checkpoint snapshot counter (see the daemon's writer).
    pub(crate) ckpt_seq: u64,
}

impl Tenant {
    /// A fresh tenant over `inputs` (one tensor per seed row).
    pub(crate) fn new(
        id: u64,
        spec: CampaignSpec,
        inputs: Vec<Tensor>,
        template: &[CoverageSignal],
        max_corpus: usize,
        energy: EnergyModel,
    ) -> Self {
        let corpus = Corpus::new(inputs, max_corpus).with_energy_model(energy);
        let sched_rng = rng::rng(rng::derive_seed(spec.seed, 0xd157));
        let metrics = TenantMetrics::new();
        metrics.corpus_size.set(corpus.len() as f64);
        Self {
            id,
            spec,
            status: Status::Running,
            corpus,
            global: template.to_vec(),
            diffs: Vec::new(),
            epochs: Vec::new(),
            round: RoundAccum::default(),
            round_started: Instant::now(),
            steps_done: 0,
            pending: VecDeque::new(),
            sched_rng,
            worker_rng: BTreeMap::new(),
            pass: 0.0,
            outstanding: 0,
            events: Vec::new(),
            metrics,
            ckpt_seq: 0,
        }
    }

    /// Restores a tenant from its directory: `tenant.json` + the campaign
    /// checkpoint + the event feed. The tenant id is re-read from
    /// `tenant.json`, not the directory name.
    ///
    /// # Errors
    ///
    /// Missing or malformed files.
    pub(crate) fn load(
        dir: &Path,
        template: &[CoverageSignal],
        max_corpus: usize,
        energy: EnergyModel,
    ) -> io::Result<Self> {
        let doc = parse_doc(&std::fs::read_to_string(dir.join("tenant.json"))?)?;
        let id = doc
            .get("id")
            .and_then(u64_from_json)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "tenant.json id"))?;
        let status = doc
            .get("status")
            .and_then(Json::as_str)
            .and_then(Status::parse)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "tenant.json status"))?;
        let spec = CampaignSpec::from_json(
            doc.get("spec")
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "tenant.json spec"))?,
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let state = checkpoint::load(dir)?;
        let corpus = Corpus::from_entries(state.corpus, max_corpus).with_energy_model(energy);
        let mut global = template.to_vec();
        let masks_fit = state.coverage.as_ref().is_some_and(|masks| {
            masks.len() == global.len()
                && masks.iter().zip(global.iter()).all(|(m, g)| m.len() == g.total())
        });
        if let Some(masks) = state.coverage.as_ref().filter(|_| masks_fit) {
            for (g, mask) in global.iter_mut().zip(masks) {
                g.set_covered_mask(mask);
            }
        }
        let pending: VecDeque<usize> = doc
            .get("pending")
            .and_then(Json::as_arr)
            .map(|xs| {
                xs.iter()
                    .filter_map(Json::as_usize)
                    .filter(|&sid| corpus.get(sid).is_some())
                    .collect()
            })
            .unwrap_or_default();
        let mut worker_rng = BTreeMap::new();
        if let Some(entries) = doc.get("worker_rng").and_then(Json::as_arr) {
            for e in entries {
                let wid = e.get("worker_id").and_then(Json::as_str).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "tenant.json worker_id")
                })?;
                let rng_state = rng_state_from_json(e.get("state").ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "tenant.json worker state")
                })?)?;
                worker_rng.insert(wid.to_string(), rng_state);
            }
        }
        let events: Vec<String> = std::fs::read_to_string(dir.join("events.jsonl"))
            .map(|t| t.lines().map(str::to_string).collect())
            .unwrap_or_default();
        let steps_done = field_usize(&doc, "steps_done")?;
        // Not persisted (the coordinator's precedent): a restart
        // re-derives the stream; scheduling stays well-distributed, just
        // not replay-identical.
        let sched_rng = rng::rng(rng::derive_seed(spec.seed, 0xd157));
        let metrics = TenantMetrics::new();
        // The feed and the counters describe the same history; resuming
        // tops the fresh registry up so `/metrics` never moves backwards
        // across a daemon restart.
        metrics.steps.inc_by(steps_done as u64);
        metrics.diffs.inc_by(state.diffs.len() as u64);
        metrics.requeue_depth.set(pending.len() as f64);
        metrics.corpus_size.set(corpus.len() as f64);
        metrics.coverage_mean.set(f64::from(mean_coverage(&global)));
        Ok(Self {
            id,
            spec,
            status,
            corpus,
            global,
            diffs: state.diffs,
            epochs: state.epochs,
            round: RoundAccum::default(),
            round_started: Instant::now(),
            steps_done,
            pending,
            sched_rng,
            worker_rng,
            pass: 0.0,
            outstanding: 0,
            events,
            metrics,
            ckpt_seq: 0,
        })
    }

    /// Appends a JSONL event (`{"event":...,"steps":...,...}`) to the
    /// in-memory feed; persistence rides the next checkpoint write.
    pub(crate) fn event(&mut self, kind: &str, extra: Vec<(&str, Json)>) {
        let mut fields = vec![
            ("event", build::str(kind)),
            ("seq", build::int(self.events.len())),
            ("steps", build::int(self.steps_done)),
            ("coverage", build::num(f64::from(mean_coverage(&self.global)))),
        ];
        fields.extend(extra);
        self.events.push(build::obj(fields).to_string());
    }

    /// Mean global coverage across models.
    pub(crate) fn mean_coverage(&self) -> f32 {
        mean_coverage(&self.global)
    }

    /// The tenant's public status document.
    pub(crate) fn status_json(&self) -> Json {
        build::obj(vec![
            // Ids are small counters; a plain number is kinder to curl
            // and jq than the string form big u64s need.
            ("id", build::int(usize::try_from(self.id).unwrap_or(usize::MAX))),
            ("name", build::str(&self.spec.name)),
            ("status", build::str(self.status.as_str())),
            ("steps_done", build::int(self.steps_done)),
            ("diffs", build::int(self.diffs.len())),
            ("mean_coverage", build::num(f64::from(self.mean_coverage()))),
            ("corpus", build::int(self.corpus.len())),
            ("epochs", build::int(self.epochs.len())),
            ("outstanding", build::int(self.outstanding)),
            ("pending", build::int(self.pending.len())),
            ("spec", self.spec.to_json()),
        ])
    }

    /// The `tenant.json` document.
    pub(crate) fn doc(&self, pending: &[usize]) -> Json {
        let worker_rng = Json::Arr(
            self.worker_rng
                .iter()
                .map(|(wid, st)| {
                    build::obj(vec![("worker_id", build::str(wid)), ("state", rng_state_json(st))])
                })
                .collect(),
        );
        build::obj(vec![
            ("version", build::int(1)),
            ("id", u64_json(self.id)),
            ("status", build::str(self.status.as_str())),
            ("steps_done", build::int(self.steps_done)),
            ("pending", build::ints(pending)),
            ("spec", self.spec.to_json()),
            ("worker_rng", worker_rng),
        ])
    }

    /// Snapshots everything the tenant's checkpoint writer needs — cheap
    /// clones under the service lock; serialization happens outside it.
    pub(crate) fn snapshot(&mut self, leased: Vec<usize>) -> TenantCkpt {
        self.ckpt_seq += 1;
        let mut pending: Vec<usize> = self.pending.iter().copied().collect();
        pending.extend(leased);
        let workers = self.worker_rng.len().max(1);
        TenantCkpt {
            tenant: self.id,
            seq: self.ckpt_seq,
            corpus: self.corpus.clone(),
            report: CampaignReport { epochs: self.epochs.clone(), workers },
            diffs: self.diffs.clone(),
            masks: self.global.iter().map(CoverageSignal::covered_mask).collect(),
            signal: SignalCheckpoint::of(&self.global),
            meta: Meta {
                epochs_done: self.epochs.len(),
                campaign_seed: self.spec.seed,
                workers,
                // Streams are keyed by identity in tenant.json, not by
                // the in-process worker index.
                worker_rng: Vec::new(),
            },
            doc: self.doc(&pending),
            events: self.events.join("\n") + "\n",
        }
    }
}

/// A tenant checkpoint snapshot, written outside the service lock.
pub(crate) struct TenantCkpt {
    pub tenant: u64,
    pub seq: u64,
    pub corpus: Corpus,
    pub report: CampaignReport,
    pub diffs: Vec<FoundDiff>,
    pub masks: Vec<Vec<bool>>,
    pub signal: SignalCheckpoint,
    pub meta: Meta,
    pub doc: Json,
    pub events: String,
}

pub(crate) fn mean_coverage(global: &[CoverageSignal]) -> f32 {
    if global.is_empty() {
        return 0.0;
    }
    global.iter().map(CoverageSignal::coverage).sum::<f32>() / global.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_machine_names_round_trip() {
        for s in [Status::Running, Status::Paused, Status::Done, Status::Cancelled] {
            assert_eq!(Status::parse(s.as_str()), Some(s));
        }
        assert_eq!(Status::parse("zombie"), None);
        assert!(Status::Done.is_terminal() && Status::Cancelled.is_terminal());
        assert!(!Status::Running.is_terminal() && !Status::Paused.is_terminal());
    }
}
