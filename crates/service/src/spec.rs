//! Tenant campaign specifications: what a `POST /campaigns` body may say.
//!
//! A spec is everything a tenant chooses about its campaign — which rows
//! of the daemon's seed pool to fuzz, the master seed its worker RNG
//! streams derive from, stop conditions, and its share of the fleet
//! (scheduling weight and lease quota). Everything else (the model suite,
//! the coverage metric, the domain constraint) is fixed per daemon, so a
//! spec may only *assert* those via the optional `metric`/`constraint`
//! fields; a mismatch is a `400`, not a silently different campaign.

use dx_campaign::json::{build, Json};
use dx_dist::Fingerprint;

/// A submitted campaign: seeds, budget, and fleet-share knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Tenant name: the `tenant` label on metrics and the human handle in
    /// reports. Must be unique for the daemon's lifetime (including
    /// checkpointed tenants), `[A-Za-z0-9_-]+`, at most 64 bytes.
    pub name: String,
    /// Campaign master seed; worker generator streams derive from it
    /// exactly as in a dedicated coordinator, so a service tenant and a
    /// dedicated run of the same spec produce the same stream.
    pub seed: u64,
    /// How many rows of the daemon's seed pool this tenant fuzzes.
    pub seeds: usize,
    /// First pool row of this tenant's slice — two tenants may share rows
    /// or partition the pool.
    pub seed_offset: usize,
    /// Total seed-step budget; `None` is unbounded.
    pub max_steps: Option<usize>,
    /// Stop once mean global coverage reaches this level.
    pub target_coverage: Option<f32>,
    /// Ceiling on this tenant's share of in-flight leased jobs, in
    /// `(0, 1]`. Every runnable tenant is always guaranteed one lease.
    pub quota: f32,
    /// Deficit-weighted fair-share weight (> 0): a weight-2 tenant is
    /// granted twice the jobs of a weight-1 tenant under contention.
    pub weight: f32,
    /// Optional assertion of the fleet's coverage metric (e.g. `neuron`).
    pub metric: Option<String>,
    /// Optional assertion of the fleet's constraint digest (e.g.
    /// `lighting`).
    pub constraint: Option<String>,
}

impl CampaignSpec {
    /// A spec with defaults for everything but the name.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            seed: 42,
            seeds: 8,
            seed_offset: 0,
            max_steps: None,
            target_coverage: None,
            quota: 1.0,
            weight: 1.0,
            metric: None,
            constraint: None,
        }
    }

    /// Parses a submission body. Unknown fields are ignored; wrong types
    /// and a missing name are errors (the HTTP layer's `400`).
    ///
    /// # Errors
    ///
    /// A human-readable reason, returned verbatim in the response body.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let Json::Obj(_) = doc else { return Err("body must be a JSON object".into()) };
        let name = match doc.get("name") {
            Some(v) => v.as_str().ok_or("`name` must be a string")?.to_string(),
            None => return Err("`name` is required".into()),
        };
        let mut spec = Self::named(&name);
        if let Some(v) = doc.get("seed") {
            // Accepts both a plain number and the decimal-string form
            // `to_json` writes (full u64 seeds don't fit in an f64).
            spec.seed =
                dx_campaign::codec::u64_from_json(v).ok_or("`seed` must be an unsigned integer")?;
        }
        if let Some(v) = doc.get("seeds") {
            spec.seeds = v.as_usize().ok_or("`seeds` must be an unsigned integer")?;
        }
        if let Some(v) = doc.get("seed_offset") {
            spec.seed_offset = v.as_usize().ok_or("`seed_offset` must be an unsigned integer")?;
        }
        if let Some(v) = doc.get("max_steps") {
            spec.max_steps = Some(v.as_usize().ok_or("`max_steps` must be an unsigned integer")?);
        }
        if let Some(v) = doc.get("target_coverage") {
            let t = v.as_f64().ok_or("`target_coverage` must be a number")? as f32;
            spec.target_coverage = Some(t);
        }
        if let Some(v) = doc.get("quota") {
            spec.quota = v.as_f64().ok_or("`quota` must be a number")? as f32;
        }
        if let Some(v) = doc.get("weight") {
            spec.weight = v.as_f64().ok_or("`weight` must be a number")? as f32;
        }
        if let Some(v) = doc.get("metric") {
            spec.metric = Some(v.as_str().ok_or("`metric` must be a string")?.to_string());
        }
        if let Some(v) = doc.get("constraint") {
            spec.constraint = Some(v.as_str().ok_or("`constraint` must be a string")?.to_string());
        }
        Ok(spec)
    }

    /// Validates a parsed spec against the daemon's fleet: name shape,
    /// knob ranges, the seed slice against the pool, and the optional
    /// metric/constraint assertions against the admission fingerprint.
    ///
    /// # Errors
    ///
    /// A human-readable reason (the HTTP layer's `400`).
    pub fn validate(&self, fp: &Fingerprint, pool_rows: usize) -> Result<(), String> {
        if self.name.is_empty() || self.name.len() > 64 {
            return Err("`name` must be 1..=64 bytes".into());
        }
        if !self.name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
            return Err("`name` may only contain [A-Za-z0-9_-]".into());
        }
        if self.seeds == 0 {
            return Err("`seeds` must be at least 1".into());
        }
        if self.seed_offset.saturating_add(self.seeds) > pool_rows {
            return Err(format!(
                "seed slice {}..{} exceeds the daemon's pool of {pool_rows} rows",
                self.seed_offset,
                self.seed_offset + self.seeds
            ));
        }
        if !(self.quota > 0.0 && self.quota <= 1.0) {
            return Err("`quota` must be in (0, 1]".into());
        }
        if !(self.weight > 0.0 && self.weight.is_finite()) {
            return Err("`weight` must be a positive finite number".into());
        }
        if let Some(t) = self.target_coverage {
            if !(t > 0.0 && t <= 1.0) {
                return Err("`target_coverage` must be in (0, 1]".into());
            }
        }
        if let Some(m) = &self.metric {
            if m != &fp.metric {
                return Err(format!("requested metric `{m}` but the fleet runs `{}`", fp.metric));
            }
        }
        if let Some(c) = &self.constraint {
            if c != &fp.constraint {
                return Err(format!(
                    "requested constraint `{c}` but the fleet runs `{}`",
                    fp.constraint
                ));
            }
        }
        Ok(())
    }

    /// The spec as JSON — submission echo and `tenant.json` persistence.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", build::str(&self.name)),
            ("seed", dx_campaign::codec::u64_json(self.seed)),
            ("seeds", build::int(self.seeds)),
            ("seed_offset", build::int(self.seed_offset)),
            ("quota", build::num(f64::from(self.quota))),
            ("weight", build::num(f64::from(self.weight))),
        ];
        if let Some(m) = self.max_steps {
            fields.push(("max_steps", build::int(m)));
        }
        if let Some(t) = self.target_coverage {
            fields.push(("target_coverage", build::num(f64::from(t))));
        }
        if let Some(m) = &self.metric {
            fields.push(("metric", build::str(m)));
        }
        if let Some(c) = &self.constraint {
            fields.push(("constraint", build::str(c)));
        }
        build::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Fingerprint {
        Fingerprint {
            label: "t@test".into(),
            metric: "neuron".into(),
            units: vec![10, 10],
            profiles: "none".into(),
            hyper: "h".into(),
            constraint: "lighting".into(),
        }
    }

    #[test]
    fn parses_full_and_minimal_bodies() {
        let doc = dx_campaign::codec::parse_doc(
            r#"{"name":"acme","seed":7,"seeds":4,"seed_offset":2,"max_steps":100,
                "target_coverage":0.5,"quota":0.25,"weight":2.0,"metric":"neuron"}"#,
        )
        .unwrap();
        let spec = CampaignSpec::from_json(&doc).unwrap();
        assert_eq!(spec.name, "acme");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.seeds, 4);
        assert_eq!(spec.seed_offset, 2);
        assert_eq!(spec.max_steps, Some(100));
        assert_eq!(spec.quota, 0.25);
        assert_eq!(spec.weight, 2.0);
        spec.validate(&fp(), 8).unwrap();

        let minimal = dx_campaign::codec::parse_doc(r#"{"name":"n"}"#).unwrap();
        let spec = CampaignSpec::from_json(&minimal).unwrap();
        assert_eq!(spec, CampaignSpec::named("n"));
        spec.validate(&fp(), 8).unwrap();
    }

    #[test]
    fn rejects_malformed_bodies() {
        for (body, why) in [
            (r#"[1,2]"#, "object"),
            (r#"{"seeds":4}"#, "`name`"),
            (r#"{"name":7}"#, "`name`"),
            (r#"{"name":"n","seeds":"four"}"#, "`seeds`"),
            (r#"{"name":"n","quota":"all"}"#, "`quota`"),
        ] {
            let doc = dx_campaign::codec::parse_doc(body).unwrap();
            let err = CampaignSpec::from_json(&doc).unwrap_err();
            assert!(err.contains(why), "{body}: {err}");
        }
    }

    #[test]
    fn validation_bounds_every_knob() {
        #[allow(clippy::type_complexity)]
        let cases: Vec<(Box<dyn Fn(&mut CampaignSpec)>, &str)> = vec![
            (Box::new(|s| s.name = String::new()), "name"),
            (Box::new(|s| s.name = "bad name!".into()), "name"),
            (Box::new(|s| s.seeds = 0), "seeds"),
            (Box::new(|s| s.seed_offset = 7), "pool"),
            (Box::new(|s| s.quota = 0.0), "quota"),
            (Box::new(|s| s.quota = 1.5), "quota"),
            (Box::new(|s| s.weight = 0.0), "weight"),
            (Box::new(|s| s.weight = f32::NAN), "weight"),
            (Box::new(|s| s.target_coverage = Some(0.0)), "target_coverage"),
            (Box::new(|s| s.metric = Some("multisection".into())), "metric"),
            (Box::new(|s| s.constraint = Some("clip".into())), "constraint"),
        ];
        for (mutate, why) in cases {
            let mut spec = CampaignSpec::named("ok");
            spec.seeds = 4;
            mutate(&mut spec);
            let err = spec.validate(&fp(), 8).unwrap_err();
            assert!(err.to_lowercase().contains(why), "{why}: {err}");
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = CampaignSpec::named("acme");
        spec.seed = 9;
        spec.seeds = 3;
        spec.max_steps = Some(50);
        spec.target_coverage = Some(0.75);
        spec.quota = 0.5;
        spec.weight = 3.0;
        spec.metric = Some("neuron".into());
        let doc = dx_campaign::codec::parse_doc(&spec.to_json().to_string()).unwrap();
        assert_eq!(CampaignSpec::from_json(&doc).unwrap(), spec);
    }
}
