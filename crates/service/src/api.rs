//! The tenant-facing HTTP/JSON API.
//!
//! Built on the `dx-telemetry` router, so handlers are plain closures
//! over an `Arc<Service>` and unit-testable via [`Router::respond`]
//! without a socket. Surface:
//!
//! | Method | Path                     | Body / query      | Returns |
//! |--------|--------------------------|-------------------|---------|
//! | GET    | `/healthz`               | —                 | `ok` |
//! | GET    | `/metrics`               | —                 | Prometheus text, per-tenant series labeled `tenant="<name>"` |
//! | POST   | `/campaigns`             | [`CampaignSpec`] JSON | status document |
//! | GET    | `/campaigns`             | —                 | array of status documents |
//! | GET    | `/campaigns/<id>`        | —                 | status document |
//! | GET    | `/campaigns/<id>/report` | —                 | rendered campaign report (text) |
//! | GET    | `/campaigns/<id>/events` | `?from=N`         | JSONL event feed from line `N` |
//! | POST   | `/campaigns/<id>/pause`  | —                 | status document |
//! | POST   | `/campaigns/<id>/resume` | —                 | status document |
//! | POST   | `/campaigns/<id>/cancel` | —                 | status document |
//!
//! Errors are plain-text bodies with the obvious statuses: `400`
//! invalid spec or body, `404` unknown campaign, `409` invalid
//! transition or duplicate name, `429` over the live-tenant cap.

use std::sync::Arc;

use dx_campaign::codec::parse_doc;
use dx_telemetry::http::{Request, Response, Router};

use crate::{ApiError, CampaignSpec, Service};

fn fail(e: ApiError) -> Response {
    Response::text(e.reason).status(e.status)
}

fn ok_json(doc: &dx_campaign::json::Json) -> Response {
    Response::json(doc.to_string())
}

/// The campaign id and trailing action from a `/campaigns/<id>[/...]`
/// path, e.g. `/campaigns/3/pause` → `(3, "pause")`; no trailing
/// segment yields an empty action.
fn id_and_action(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/campaigns/")?;
    let (id, action) = match rest.split_once('/') {
        Some((id, action)) => (id, action),
        None => (rest, ""),
    };
    Some((id.parse().ok()?, action))
}

fn get_campaign(svc: &Service, req: &Request) -> Response {
    let Some((id, action)) = id_and_action(&req.path) else { return Response::not_found() };
    let result = match action {
        "" => svc.status(id).map(|doc| ok_json(&doc)),
        "report" => svc.report(id).map(Response::text),
        "events" => {
            let from = req.query_param("from").and_then(|v| v.parse().ok()).unwrap_or(0);
            svc.events(id, from).map(Response::text)
        }
        _ => return Response::not_found(),
    };
    result.unwrap_or_else(fail)
}

fn post_campaign(svc: &Service, req: &Request) -> Response {
    let Some((id, action)) = id_and_action(&req.path) else { return Response::not_found() };
    let result = match action {
        "pause" => svc.pause(id),
        "resume" => svc.resume(id),
        "cancel" => svc.cancel(id),
        _ => return Response::not_found(),
    };
    result.map(|doc| ok_json(&doc)).unwrap_or_else(fail)
}

fn submit(svc: &Service, req: &Request) -> Response {
    let doc = match parse_doc(&req.body) {
        Ok(doc) => doc,
        Err(e) => return Response::text(format!("invalid JSON: {e}")).status(400),
    };
    let spec = match CampaignSpec::from_json(&doc) {
        Ok(spec) => spec,
        Err(reason) => return Response::text(reason).status(400),
    };
    svc.submit(spec).map(|doc| ok_json(&doc)).unwrap_or_else(fail)
}

/// The service's full route table over a shared daemon handle. Serve it
/// with [`Router::serve`]; tests drive it directly via
/// [`Router::respond`].
pub fn router(svc: Arc<Service>) -> Router {
    let (metrics, post, list) = (Arc::clone(&svc), Arc::clone(&svc), Arc::clone(&svc));
    let (get_one, post_one) = (Arc::clone(&svc), svc);
    Router::new()
        .route("GET", "/healthz", |_| Response::text("ok"))
        .route("GET", "/metrics", move |_| Response::text(metrics.render_metrics()))
        .route("POST", "/campaigns", move |req| submit(&post, req))
        .route("GET", "/campaigns", move |_| ok_json(&list.list()))
        .route_prefix("GET", "/campaigns/", move |req| get_campaign(&get_one, req))
        .route_prefix("POST", "/campaigns/", move |req| post_campaign(&post_one, req))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use deepxplore::constraints::Constraint;
    use deepxplore::generator::TaskKind;
    use deepxplore::Hyperparams;
    use dx_campaign::json::Json;
    use dx_campaign::ModelSuite;
    use dx_coverage::{CoverageConfig, SignalSpec};
    use dx_nn::layer::Layer;
    use dx_nn::Network;
    use dx_tensor::rng;

    fn suite() -> ModelSuite {
        let mut base = Network::new(
            &[16],
            vec![Layer::dense(16, 14), Layer::relu(), Layer::dense(14, 3), Layer::softmax()],
        );
        base.init_weights(&mut rng::rng(0xdead));
        ModelSuite {
            models: vec![base.clone(), base.perturbed(0.1, 1), base.perturbed(0.1, 2)],
            kind: TaskKind::Classification,
            hp: Hyperparams { step: 0.25, max_iters: 10, ..Default::default() },
            constraint: Constraint::Clip,
            signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
        }
    }

    fn service(max_tenants: usize) -> Arc<Service> {
        let pool = rng::uniform(&mut rng::rng(0xbeef), &[10, 16], 0.2, 0.8);
        let cfg = ServiceConfig { max_tenants, ..Default::default() };
        Arc::new(Service::new(&suite(), "api@test", &pool, cfg).unwrap())
    }

    fn hit(router: &Router, method: &str, path: &str, body: &str) -> (u16, String) {
        let resp = router.respond(&Request::new(method, path, body));
        (resp.status, resp.body)
    }

    fn parse(body: &str) -> Json {
        parse_doc(body).unwrap()
    }

    #[test]
    fn submit_then_drive_the_full_lifecycle() {
        let router = router(service(8));
        let (status, body) = hit(&router, "POST", "/campaigns", r#"{"name":"acme","seeds":4}"#);
        assert_eq!(status, 200, "{body}");
        let doc = parse(&body);
        let id = doc.get("id").and_then(Json::as_u64).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("running"));

        let (status, body) = hit(&router, "GET", "/campaigns", "");
        assert_eq!(status, 200);
        let Json::Arr(all) = parse(&body) else { panic!("list must be an array: {body}") };
        assert_eq!(all.len(), 1);

        let (status, _) = hit(&router, "GET", &format!("/campaigns/{id}"), "");
        assert_eq!(status, 200);

        let (status, body) = hit(&router, "POST", &format!("/campaigns/{id}/pause"), "");
        assert_eq!(status, 200);
        assert_eq!(parse(&body).get("status").and_then(Json::as_str), Some("paused"));
        let (status, body) = hit(&router, "POST", &format!("/campaigns/{id}/pause"), "");
        assert_eq!(status, 409, "double pause must conflict: {body}");
        let (status, _) = hit(&router, "POST", &format!("/campaigns/{id}/resume"), "");
        assert_eq!(status, 200);

        let (status, body) = hit(&router, "GET", &format!("/campaigns/{id}/report"), "");
        assert_eq!(status, 200);
        assert!(body.contains("acme"), "{body}");

        let (status, body) = hit(&router, "POST", &format!("/campaigns/{id}/cancel"), "");
        assert_eq!(status, 200);
        assert_eq!(parse(&body).get("status").and_then(Json::as_str), Some("cancelled"));
        let (status, _) = hit(&router, "POST", &format!("/campaigns/{id}/cancel"), "");
        assert_eq!(status, 409, "cancel is terminal");
        let (status, _) = hit(&router, "POST", &format!("/campaigns/{id}/resume"), "");
        assert_eq!(status, 409, "no resume out of cancelled");
    }

    #[test]
    fn malformed_bodies_and_unknown_ids() {
        let router = router(service(8));
        for (body, why) in [
            ("{not json", "unparseable"),
            (r#"{"seeds":4}"#, "missing name"),
            (r#"{"name":"x","quota":7}"#, "quota out of range"),
            (r#"{"name":"x","seeds":999}"#, "slice beyond the pool"),
            (r#"{"name":"x","metric":"multisection"}"#, "metric mismatch"),
        ] {
            let (status, b) = hit(&router, "POST", "/campaigns", body);
            assert_eq!(status, 400, "{why}: {b}");
        }
        for path in
            ["/campaigns/99", "/campaigns/acme", "/campaigns/99/report", "/campaigns/99/events"]
        {
            let (status, _) = hit(&router, "GET", path, "");
            assert_eq!(status, 404, "{path}");
        }
        let (status, _) = hit(&router, "POST", "/campaigns/99/pause", "");
        assert_eq!(status, 404);
        let (status, _) = hit(&router, "POST", "/campaigns/0/explode", "");
        assert_eq!(status, 404, "unknown action");
        let (status, _) = hit(&router, "DELETE", "/campaigns", "");
        assert_eq!(status, 405, "known path, wrong method");
    }

    #[test]
    fn duplicate_names_conflict_and_the_tenant_cap_throttles() {
        let router = router(service(2));
        let (status, _) = hit(&router, "POST", "/campaigns", r#"{"name":"a","seeds":2}"#);
        assert_eq!(status, 200);
        let (status, body) = hit(&router, "POST", "/campaigns", r#"{"name":"a","seeds":2}"#);
        assert_eq!(status, 409, "duplicate name: {body}");
        let (status, _) = hit(&router, "POST", "/campaigns", r#"{"name":"b","seeds":2}"#);
        assert_eq!(status, 200);
        let (status, body) = hit(&router, "POST", "/campaigns", r#"{"name":"c","seeds":2}"#);
        assert_eq!(status, 429, "cap of 2 live tenants: {body}");
        // Cancelling frees a live slot — but the dead name stays taken
        // (metric labels and state directories are keyed by it).
        let (status, _) = hit(&router, "POST", "/campaigns/0/cancel", "");
        assert_eq!(status, 200);
        let (status, _) = hit(&router, "POST", "/campaigns", r#"{"name":"c","seeds":2}"#);
        assert_eq!(status, 200);
        let (status, _) = hit(&router, "POST", "/campaigns", r#"{"name":"a","seeds":2}"#);
        assert_eq!(status, 409, "names are daemon-lifetime unique");
    }

    #[test]
    fn pause_then_cancel_is_legal_and_terminal_wins() {
        let router = router(service(8));
        let (_, body) = hit(&router, "POST", "/campaigns", r#"{"name":"t","seeds":2}"#);
        let id = parse(&body).get("id").and_then(Json::as_u64).unwrap();
        let (status, _) = hit(&router, "POST", &format!("/campaigns/{id}/pause"), "");
        assert_eq!(status, 200);
        // Cancel must work from paused (the common "wind it down" path)...
        let (status, body) = hit(&router, "POST", &format!("/campaigns/{id}/cancel"), "");
        assert_eq!(status, 200);
        assert_eq!(parse(&body).get("status").and_then(Json::as_str), Some("cancelled"));
        // ...and afterwards every transition loses to the terminal state.
        for action in ["pause", "resume", "cancel"] {
            let (status, _) = hit(&router, "POST", &format!("/campaigns/{id}/{action}"), "");
            assert_eq!(status, 409, "{action} after cancel");
        }
    }

    #[test]
    fn events_feed_pages_with_the_from_cursor() {
        let router = router(service(8));
        let (_, body) = hit(&router, "POST", "/campaigns", r#"{"name":"ev","seeds":2}"#);
        let id = parse(&body).get("id").and_then(Json::as_u64).unwrap();
        hit(&router, "POST", &format!("/campaigns/{id}/pause"), "");
        hit(&router, "POST", &format!("/campaigns/{id}/resume"), "");
        let (status, body) = hit(&router, "GET", &format!("/campaigns/{id}/events"), "");
        assert_eq!(status, 200);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3, "{body}");
        assert!(lines[0].contains("submitted") && lines[2].contains("resumed"), "{body}");
        // The cursor is "lines already consumed".
        let (_, rest) = hit(&router, "GET", &format!("/campaigns/{id}/events?from=2"), "");
        assert_eq!(rest.lines().count(), 1);
        assert!(rest.contains("resumed"), "{rest}");
    }

    #[test]
    fn health_and_metrics_expose_the_tenant_label() {
        let svc = service(8);
        let router = router(Arc::clone(&svc));
        let (status, body) = hit(&router, "GET", "/healthz", "");
        assert_eq!((status, body.as_str()), (200, "ok"));
        hit(&router, "POST", "/campaigns", r#"{"name":"m1","seeds":2}"#);
        hit(&router, "POST", "/campaigns", r#"{"name":"m2","seeds":2}"#);
        let (status, body) = hit(&router, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("dx_service_tenants 2"), "{body}");
        assert!(body.contains(r#"dx_seeds_total{tenant="m1"} 0"#), "{body}");
        assert!(body.contains(r#"dx_seeds_total{tenant="m2"} 0"#), "{body}");
    }
}
