//! The worker-facing half of the daemon: the protocol-v6 dispatcher.
//!
//! One TCP listener, one handler thread per worker connection, exactly
//! the coordinator's serving skeleton — nonblocking accept under a
//! polling loop, identity-keyed admission with the optional HMAC
//! challenge/response, a small frame cap until admission completes —
//! but leases are drawn from *many* tenants instead of one campaign:
//!
//! * **Tenant choice** is stride scheduling. Every runnable tenant
//!   carries a virtual-time `pass`; a grant advances it by
//!   `granted / weight`, and the smallest pass goes next, so fleet
//!   shares converge to the weight ratio under contention.
//! * **Quota** caps a tenant's share of all in-flight leased jobs
//!   ([`quota_allowance`]), with a one-lease minimum so a small quota
//!   shrinks a tenant's share without ever starving it.
//! * **Coverage views are per connection *and per campaign***: the
//!   `cov` news on a lease, heartbeat ack, or results ack is computed
//!   against what this connection's worker knows about *that tenant's*
//!   union — workers keep one generator context per campaign, and
//!   cross-tenant news would corrupt them.
//!
//! Unlike the dedicated coordinator, the dispatcher never drains itself
//! when tenants finish — a daemon with zero runnable tenants parks its
//! workers on `wait` and keeps serving the API. Only a [`StopHandle`]
//! or a SIGTERM/SIGINT (via `dx_dist::shutdown`) drains the fleet. The
//! service also does not spot-check claimed diffs; see the crate docs.

use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use dx_campaign::json::build;
use dx_campaign::{EpochStats, FoundDiff};
use dx_coverage::CoverageSignal;
use dx_dist::proto::{
    coverage_news, CovDelta, Fingerprint, Job, JobResult, Msg, TelemetrySnapshot, PROTOCOL_VERSION,
};
use dx_dist::wire::{write_frame, FrameReader, MAX_FRAME};
use dx_dist::{auth, shutdown};
use dx_telemetry::events::{emit, Level};
use dx_telemetry::phase::{Phase, TIME_BUCKETS};

use crate::tenant::{Status, Tenant, TenantCkpt};
use crate::{leased_ids, Service, SvcLease, SvcState};

/// How often connection handlers and the accept loop wake up to check
/// deadlines and flags.
const POLL: Duration = Duration::from_millis(100);

/// Idle polls (no traffic from a drained, lease-less worker) before its
/// connection is closed server-side.
const DRAIN_GRACE_POLLS: u32 = 20;

/// Frame cap for connections that have not completed admission.
const HELLO_FRAME_CAP: usize = 1 << 16;

/// How long a connection may sit without completing admission.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// How long workers are told to wait when nothing is schedulable.
const IDLE_WAIT_MILLIS: u64 = 200;

/// Per-connection protocol state, owned by the handler thread.
struct Conn {
    /// Assigned slot, once admitted.
    slot: Option<u64>,
    /// The authenticated identity, once admitted — per-tenant RNG
    /// streams are keyed to it.
    worker: Option<String>,
    /// What this worker is known to know about each tenant's coverage
    /// union, by campaign id. Created on the first lease for a tenant.
    views: HashMap<u64, Vec<CoverageSignal>>,
    /// Fingerprint parked at `hello` until the auth proof arrives.
    pending_fp: Option<Fingerprint>,
    /// The identity announced at `hello`, pending the auth proof.
    pending_id: Option<String>,
    /// The outstanding challenge nonce (auth-enabled daemons only).
    nonce: Option<String>,
}

enum Reply {
    Send(Msg),
    SendThenClose(Msg),
    Close,
}

/// A granted lease, ready to become a `lease` frame.
struct Grant {
    lease: u64,
    campaign: u64,
    campaign_seed: u64,
    jobs: Vec<Job>,
    rng_state: Option<[u64; 4]>,
}

/// How many jobs a tenant with `outstanding` in-flight jobs may be
/// granted (up to `cap`) without its share of all in-flight jobs
/// exceeding `quota`. A tenant with nothing outstanding is always
/// granted up to `cap` — the one-lease minimum that keeps a tiny quota
/// from starving it (and bootstraps an idle fleet, where every share
/// would otherwise be 0/0).
pub(crate) fn quota_allowance(
    outstanding: usize,
    total_outstanding: usize,
    quota: f32,
    cap: usize,
) -> usize {
    if outstanding == 0 {
        return cap;
    }
    if quota >= 1.0 {
        return cap;
    }
    // Largest g with (outstanding + g) <= quota * (total + g):
    // g * (1 - quota) <= quota * total - outstanding.
    let headroom = f64::from(quota) * total_outstanding as f64 - outstanding as f64;
    if headroom <= 0.0 {
        return 0;
    }
    ((headroom / f64::from(1.0 - quota)).floor() as usize).min(cap)
}

/// Whether a tenant has finished, and why.
fn done_reason(t: &Tenant) -> Option<&'static str> {
    if t.spec.max_steps.is_some_and(|m| t.steps_done >= m) {
        return Some("budget");
    }
    if t.spec.target_coverage.is_some_and(|tc| t.mean_coverage() >= tc) {
        return Some("target");
    }
    if t.corpus.all_exhausted() && t.outstanding == 0 {
        return Some("exhausted");
    }
    None
}

/// Closes a tenant's statistics round into an [`EpochStats`] line and a
/// `round` event.
fn flush_round(t: &mut Tenant) {
    let round = std::mem::take(&mut t.round);
    let epoch = t.epochs.len();
    t.epochs.push(EpochStats {
        epoch,
        seeds_run: round.seeds_run,
        diffs_found: round.diffs_found,
        iterations: round.iterations,
        newly_covered: round.newly_covered,
        mean_coverage: t.mean_coverage(),
        component_coverage: dx_coverage::mean_component_coverage(&t.global),
        corpus_len: t.corpus.len(),
        elapsed: t.round_started.elapsed(),
    });
    t.round_started = Instant::now();
    t.event(
        "round",
        vec![
            ("epoch", build::int(epoch)),
            ("seeds_run", build::int(round.seeds_run)),
            ("diffs_found", build::int(round.diffs_found)),
        ],
    );
}

/// Picks up to `want` of a tenant's seed ids: requeued seeds first, then
/// an energy-weighted draw excluding everything leased or queued.
fn pick_seeds(t: &mut Tenant, leased: &[usize], want: usize) -> Vec<usize> {
    let mut ids = Vec::with_capacity(want);
    while ids.len() < want {
        let Some(id) = t.pending.pop_front() else { break };
        let alive = t.corpus.get(id).is_some_and(|e| !e.exhausted);
        if alive && !ids.contains(&id) {
            ids.push(id);
        }
    }
    if ids.len() < want {
        let mut excluded = leased.to_vec();
        excluded.extend(t.pending.iter().copied());
        excluded.extend(ids.iter().copied());
        let n = want - ids.len();
        let Tenant { corpus, sched_rng, .. } = t;
        ids.extend(corpus.schedule_excluding(n, sched_rng, &excluded));
    }
    ids
}

/// The payload of a `results` frame.
struct ResultsFrame {
    lease: u64,
    campaign: u64,
    items: Vec<JobResult>,
    cov: CovDelta,
    rng_state: [u64; 4],
    telemetry: Option<TelemetrySnapshot>,
}

impl Service {
    /// Serves the worker fleet on `listener` until a [`crate::StopHandle`]
    /// or an installed SIGTERM/SIGINT handler requests a drain; then
    /// waits for in-flight leases, checkpoints every tenant, and returns.
    /// Tenants finishing never drains the fleet — idle workers park on
    /// `wait` frames until new tenants arrive.
    ///
    /// # Errors
    ///
    /// Listener failures and final-checkpoint I/O errors. Individual
    /// connection errors only drop that worker.
    pub fn serve(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut drained_at: Option<Instant> = None;
        std::thread::scope(|scope| -> io::Result<()> {
            loop {
                if shutdown::requested() {
                    self.drain.store(true, Ordering::SeqCst);
                }
                for job in self.housekeep() {
                    self.log_ckpt_error(self.write_ckpt(job));
                }
                if self.drain.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    let since = *drained_at.get_or_insert(now);
                    let st = self.lock();
                    let idle = st.leases.is_empty() && st.connected == 0;
                    drop(st);
                    if idle {
                        // Sweep the accept backlog before closing: a
                        // queued worker gets a polite `drain`, not a
                        // reset.
                        match listener.accept() {
                            Ok((stream, _)) => {
                                scope.spawn(move || self.handle(stream));
                                continue;
                            }
                            Err(e)
                                if e.kind() == io::ErrorKind::WouldBlock
                                    || e.kind() == io::ErrorKind::TimedOut =>
                            {
                                break
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    if now.duration_since(since) > self.cfg.lease_timeout + 10 * POLL {
                        // Workers that never came back: stop waiting.
                        self.force_close.store(true, Ordering::SeqCst);
                    }
                }
                match listener.accept() {
                    Ok((stream, peer)) => {
                        emit(
                            Level::Debug,
                            "service",
                            "connection",
                            &[("peer", peer.to_string().into())],
                        );
                        scope.spawn(move || self.handle(stream));
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL)
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        })?;
        self.finish()
    }

    fn log_ckpt_error(&self, r: io::Result<()>) {
        if let Err(e) = r {
            emit(Level::Error, "service", "checkpoint_failed", &[("error", e.to_string().into())]);
        }
    }

    /// Periodic bookkeeping: expire overdue leases back to their tenants'
    /// requeues, and retire tenants that hit a stop condition.
    fn housekeep(&self) -> Vec<TenantCkpt> {
        let mut st = self.lock();
        let now = Instant::now();
        let expired: Vec<u64> =
            st.leases.iter().filter(|(_, l)| now >= l.deadline).map(|(&id, _)| id).collect();
        for id in expired {
            let Some(lease) = st.leases.remove(&id) else { continue };
            self.metrics.lease_expired.inc();
            emit(
                Level::Info,
                "service",
                "lease_expired",
                &[
                    ("lease", id.into()),
                    ("campaign", lease.tenant.into()),
                    ("seeds", lease.seed_ids.len().into()),
                ],
            );
            if let Some(t) = st.tenants.get_mut(&lease.tenant) {
                t.outstanding = t.outstanding.saturating_sub(lease.seed_ids.len());
                if !t.status.is_terminal() {
                    t.pending.extend(lease.seed_ids);
                }
                t.metrics.requeue_depth.set(t.pending.len() as f64);
            }
        }
        self.retire_finished(&mut st)
    }

    /// Moves every `Running` tenant that hit a stop condition to `Done`,
    /// snapshotting each for the checkpoint writer.
    fn retire_finished(&self, st: &mut SvcState) -> Vec<TenantCkpt> {
        let ids: Vec<u64> = st.tenants.keys().copied().collect();
        let mut jobs = Vec::new();
        for id in ids {
            let leased = leased_ids(st, id);
            let Some(t) = st.tenants.get_mut(&id) else { continue };
            if t.status != Status::Running {
                continue;
            }
            let Some(reason) = done_reason(t) else { continue };
            t.status = Status::Done;
            t.event("done", vec![("reason", build::str(reason))]);
            emit(
                Level::Info,
                "service",
                "tenant_done",
                &[("id", id.into()), ("reason", reason.to_string().into())],
            );
            if self.cfg.state_dir.is_some() {
                jobs.push(t.snapshot(leased));
            }
        }
        self.metrics.tenants_live.set(st.live_tenants() as f64);
        jobs
    }

    /// Requeues whatever is still leased, flushes partial rounds, and
    /// writes every tenant's final checkpoint.
    fn finish(&self) -> io::Result<()> {
        let jobs = {
            let mut st = self.lock();
            let outstanding: Vec<u64> = st.leases.keys().copied().collect();
            for id in outstanding {
                let Some(lease) = st.leases.remove(&id) else { continue };
                if let Some(t) = st.tenants.get_mut(&lease.tenant) {
                    t.outstanding = t.outstanding.saturating_sub(lease.seed_ids.len());
                    if !t.status.is_terminal() {
                        t.pending.extend(lease.seed_ids);
                    }
                }
            }
            let mut jobs = self.retire_finished(&mut st);
            let ids: Vec<u64> = st.tenants.keys().copied().collect();
            for id in ids {
                let Some(t) = st.tenants.get_mut(&id) else { continue };
                if t.round.seeds_run > 0 {
                    flush_round(t);
                }
                if self.cfg.state_dir.is_some() {
                    jobs.push(t.snapshot(Vec::new()));
                }
            }
            jobs
        };
        for job in jobs {
            self.write_ckpt(job)?;
        }
        Ok(())
    }

    /// One worker connection, request/response until it closes. The same
    /// hostile-input posture as the coordinator: small frame cap and a
    /// timeout until admission, best-effort `reject` on garbage, and a
    /// per-connection error never touches the accept loop.
    fn handle(&self, mut stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL));
        let mut reader = FrameReader::with_cap(HELLO_FRAME_CAP);
        let mut conn = Conn {
            slot: None,
            worker: None,
            views: HashMap::new(),
            pending_fp: None,
            pending_id: None,
            nonce: None,
        };
        let opened = Instant::now();
        let mut idle_polls: u32 = 0;
        let result: io::Result<()> = (|| loop {
            match reader.poll(&mut stream) {
                Ok(None) => {
                    if self.force_close.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    if conn.slot.is_none() && opened.elapsed() >= HELLO_TIMEOUT {
                        let reject = Msg::Reject { reason: "admission timed out".into() };
                        let _ = write_frame(&mut stream, &reject.to_json());
                        return Ok(());
                    }
                    if self.drain.load(Ordering::SeqCst) {
                        let has_lease = match conn.slot {
                            Some(s) => self.lock().leases.values().any(|l| l.slot == s),
                            None => false,
                        };
                        if !has_lease {
                            idle_polls += 1;
                            if idle_polls > DRAIN_GRACE_POLLS {
                                return Ok(());
                            }
                        }
                    }
                }
                Ok(Some(doc)) => {
                    idle_polls = 0;
                    let msg = match Msg::from_json(&doc) {
                        Ok(m) => m,
                        Err(e) => {
                            let reject = Msg::Reject { reason: format!("malformed message: {e}") };
                            let _ = write_frame(&mut stream, &reject.to_json());
                            return Err(e);
                        }
                    };
                    let (reply, jobs) = self.reply_for(msg, &mut conn);
                    if conn.slot.is_some() {
                        reader.set_cap(MAX_FRAME);
                    }
                    // Reply first — checkpoint writes are this handler's
                    // own time, not the worker's.
                    let closing = match reply {
                        Reply::Send(m) => {
                            write_frame(&mut stream, &m.to_json())?;
                            false
                        }
                        Reply::SendThenClose(m) => {
                            write_frame(&mut stream, &m.to_json())?;
                            true
                        }
                        Reply::Close => true,
                    };
                    for job in jobs {
                        self.log_ckpt_error(self.write_ckpt(job));
                    }
                    if closing {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    let reject = Msg::Reject { reason: format!("bad frame: {e}") };
                    let _ = write_frame(&mut stream, &reject.to_json());
                    return Err(e);
                }
                Err(e) => return Err(e),
            }
        })();
        if let Err(e) = &result {
            if e.kind() != io::ErrorKind::UnexpectedEof {
                emit(
                    Level::Warn,
                    "service",
                    "connection_error",
                    &[("error", e.to_string().into())],
                );
            }
        }
        if let Some(s) = conn.slot {
            self.disconnect(s);
        }
    }

    fn disconnect(&self, slot: u64) {
        let mut st = self.lock();
        st.live_slots.remove(&slot);
        st.connected = st.connected.saturating_sub(1);
        self.metrics.connected.set(st.connected as f64);
        // A dead worker's leases go straight back to their tenants.
        let orphaned: Vec<u64> =
            st.leases.iter().filter(|(_, l)| l.slot == slot).map(|(&id, _)| id).collect();
        for id in orphaned {
            let Some(lease) = st.leases.remove(&id) else { continue };
            if let Some(t) = st.tenants.get_mut(&lease.tenant) {
                t.outstanding = t.outstanding.saturating_sub(lease.seed_ids.len());
                if !t.status.is_terminal() {
                    t.pending.extend(lease.seed_ids);
                }
                t.metrics.requeue_depth.set(t.pending.len() as f64);
            }
        }
        drop(st);
        emit(Level::Debug, "service", "worker_disconnected", &[("slot", slot.into())]);
    }

    /// Verifies the fingerprint and resolves the identity to a slot —
    /// the coordinator's admission minus the eviction ledger (the
    /// service keeps no per-worker trust records).
    fn admit(&self, fingerprint: Fingerprint, worker_id: &str, conn: &mut Conn) -> Reply {
        if fingerprint != self.fingerprint {
            let reason =
                format!("suite fingerprint {:?} != service {:?}", fingerprint, self.fingerprint);
            return Reply::SendThenClose(Msg::Reject { reason });
        }
        let mut st = self.lock();
        let known = st.identities.iter().find(|(_, id)| id.as_str() == worker_id).map(|(&s, _)| s);
        let s = match known {
            Some(s) if st.live_slots.contains(&s) => {
                drop(st);
                let reason = "worker identity already connected".to_string();
                return Reply::SendThenClose(Msg::Reject { reason });
            }
            Some(s) => s,
            None => {
                // Fresh identity: next slot not held by a live returning
                // identity.
                while st.live_slots.contains(&st.next_slot) {
                    st.next_slot += 1;
                }
                let s = st.next_slot;
                st.next_slot += 1;
                s
            }
        };
        st.identities.insert(s, worker_id.to_string());
        st.live_slots.insert(s);
        st.connected += 1;
        self.metrics.connected.set(st.connected as f64);
        drop(st);
        conn.slot = Some(s);
        conn.worker = Some(worker_id.to_string());
        emit(
            Level::Info,
            "service",
            "worker_joined",
            &[("slot", s.into()), ("worker_id", worker_id.to_string().into())],
        );
        // The seed is advisory in v6 (workers build generator contexts
        // lazily from the per-campaign seed on each `lease` frame), so a
        // multi-campaign daemon has nothing meaningful to put here.
        Reply::Send(Msg::Welcome { slot: s, campaign_seed: 0, rng_state: None })
    }

    fn reply_for(&self, msg: Msg, conn: &mut Conn) -> (Reply, Vec<TenantCkpt>) {
        let reply = match msg {
            Msg::Hello { version, fingerprint, worker_id } => {
                if conn.slot.is_some() {
                    let reason = "already admitted".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                }
                if version != PROTOCOL_VERSION {
                    let reason =
                        format!("protocol version {version} != service {PROTOCOL_VERSION}");
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                }
                if worker_id.is_empty() {
                    let reason = "empty worker identity".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                }
                if self.cfg.auth_token.is_some() {
                    let nonce = auth::nonce();
                    conn.nonce = Some(nonce.clone());
                    conn.pending_fp = Some(fingerprint);
                    conn.pending_id = Some(worker_id);
                    Reply::Send(Msg::Challenge { nonce })
                } else {
                    self.admit(fingerprint, &worker_id, conn)
                }
            }
            Msg::AuthProof { proof } => {
                let (Some(token), Some(nonce), Some(fingerprint), Some(worker_id)) = (
                    &self.cfg.auth_token,
                    conn.nonce.take(),
                    conn.pending_fp.take(),
                    conn.pending_id.take(),
                ) else {
                    let reason = "no challenge outstanding".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                };
                if !auth::verify(token, &nonce, &worker_id, &proof) {
                    emit(Level::Warn, "service", "auth_failed", &[]);
                    let reason = "authentication failed".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                }
                self.admit(fingerprint, &worker_id, conn)
            }
            Msg::LeaseRequest { slot: s, want } => {
                if Some(s) != conn.slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                }
                if self.drain.load(Ordering::SeqCst) {
                    return (Reply::Send(Msg::Drain), Vec::new());
                }
                let Some(worker) = conn.worker.clone() else {
                    let reason = "authenticate first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                };
                let mut st = self.lock();
                match self
                    .grant(&mut st, s, &worker, want)
                    .and_then(|grant| st.tenants.get(&grant.campaign).map(|t| (grant, t)))
                {
                    Some((grant, t)) => {
                        let view = conn
                            .views
                            .entry(grant.campaign)
                            .or_insert_with(|| self.template.clone());
                        let cov = coverage_news(&t.global, view);
                        Reply::Send(Msg::Lease {
                            lease: grant.lease,
                            jobs: grant.jobs,
                            cov,
                            campaign: grant.campaign,
                            campaign_seed: grant.campaign_seed,
                            rng_state: grant.rng_state,
                        })
                    }
                    // Nothing schedulable right now — paused, quota-capped,
                    // everything leased, or no live tenants at all. The
                    // daemon outlives its tenants, so the worker parks
                    // instead of draining.
                    None => Reply::Send(Msg::Wait { millis: IDLE_WAIT_MILLIS }),
                }
            }
            Msg::Heartbeat { slot: s, lease } => {
                if Some(s) != conn.slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                }
                self.metrics.heartbeats.inc();
                let mut st = self.lock();
                let campaign = match st.leases.get_mut(&lease) {
                    Some(l) if l.slot == s => {
                        l.deadline = Instant::now() + self.cfg.lease_timeout;
                        Some(l.tenant)
                    }
                    _ => None,
                };
                // The ack's news must be for the campaign the worker is
                // heartbeating — it applies the delta to that lease's
                // generator context.
                let cov = match campaign.and_then(|c| st.tenants.get(&c)) {
                    Some(t) => {
                        let view = conn.views.entry(t.id).or_insert_with(|| self.template.clone());
                        coverage_news(&t.global, view)
                    }
                    // Expired lease: a well-formed empty delta (the
                    // worker validates the model count).
                    None => vec![Vec::new(); self.template.len()],
                };
                Reply::Send(Msg::Ack { cov })
            }
            Msg::Results { slot: s, lease, campaign, items, cov, rng_state, telemetry } => {
                if Some(s) != conn.slot {
                    let reason = "say hello first".to_string();
                    return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
                }
                let frame = ResultsFrame { lease, campaign, items, cov, rng_state, telemetry };
                return self.handle_results(s, frame, conn);
            }
            Msg::Bye => Reply::Close,
            // Worker-bound messages arriving at the service.
            Msg::Welcome { .. }
            | Msg::Lease { .. }
            | Msg::Wait { .. }
            | Msg::Ack { .. }
            | Msg::Drain
            | Msg::Challenge { .. }
            | Msg::Reject { .. } => {
                Reply::SendThenClose(Msg::Reject { reason: "unexpected message".into() })
            }
        };
        (reply, Vec::new())
    }

    /// Picks the tenant and seeds for one lease: stride scheduling over
    /// runnable tenants, quota-capped grant size, requeue-first seed
    /// draw. `None` when nothing is schedulable.
    fn grant(&self, st: &mut SvcState, slot: u64, worker: &str, want: usize) -> Option<Grant> {
        let cap = want.clamp(1, self.cfg.lease_size);
        let total_out: usize = st.tenants.values().map(|t| t.outstanding).sum();
        let mut order: Vec<(u64, f64)> = st
            .tenants
            .values()
            .filter(|t| t.status == Status::Running)
            .map(|t| (t.id, t.pass))
            .collect();
        order.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        for (id, _) in order {
            let leased = leased_ids(st, id);
            let Some(t) = st.tenants.get_mut(&id) else { continue };
            let allowed = quota_allowance(t.outstanding, total_out, t.spec.quota, cap);
            if allowed == 0 {
                continue;
            }
            let ids = pick_seeds(t, &leased, allowed);
            if ids.is_empty() {
                continue;
            }
            let granted = ids.len();
            let jobs: Vec<Job> = ids
                .iter()
                .filter_map(|&sid| {
                    Some(Job { seed_id: sid, input: t.corpus.get(sid)?.input.clone() })
                })
                .collect();
            t.pass += granted as f64 / f64::from(t.spec.weight);
            t.outstanding += granted;
            t.metrics.leases.inc();
            t.metrics.requeue_depth.set(t.pending.len() as f64);
            let campaign_seed = t.spec.seed;
            let rng_state = t.worker_rng.get(worker).copied();
            let lease = st.next_lease;
            st.next_lease += 1;
            st.leases.insert(
                lease,
                SvcLease {
                    tenant: id,
                    slot,
                    seed_ids: ids,
                    deadline: Instant::now() + self.cfg.lease_timeout,
                },
            );
            self.metrics.leases.inc();
            emit(
                Level::Debug,
                "service",
                "lease_granted",
                &[
                    ("lease", lease.into()),
                    ("campaign", id.into()),
                    ("slot", slot.into()),
                    ("seeds", granted.into()),
                ],
            );
            return Some(Grant { lease, campaign: id, campaign_seed, jobs, rng_state });
        }
        None
    }

    /// Folds a `results` frame into its tenant. One locked phase — the
    /// service runs no spot-checks, so nothing needs to happen outside
    /// the lock between validation and absorption.
    fn handle_results(
        &self,
        s: u64,
        frame: ResultsFrame,
        conn: &mut Conn,
    ) -> (Reply, Vec<TenantCkpt>) {
        let ResultsFrame { lease, campaign, items, cov, rng_state, telemetry } = frame;
        enum Plan {
            Lease(Vec<usize>),
            /// Lease id owned by another slot: the items are not ours to
            /// count.
            Collision,
            /// The lease already expired; salvage what is still pending.
            Expired,
        }
        let mut st = self.lock();
        let Some(t) = st.tenants.get(&campaign) else {
            let reason = format!("unknown campaign {campaign}");
            return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
        };
        // Validate delta indices before anything touches the union.
        for (m, idx) in cov.iter().enumerate() {
            let total = t.global.get(m).map_or(0, CoverageSignal::total);
            if m >= t.global.len() || idx.iter().any(|&i| i >= total) {
                let reason = "coverage delta out of range".to_string();
                return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
            }
        }
        // Validate result tensor shapes: a fabricated tensor of the wrong
        // shape would otherwise panic whatever resumes the corpus.
        let shape_ok = items.iter().all(|i| {
            i.run.test.as_ref().is_none_or(|gt| gt.input.shape() == self.sample_shape)
                && i.run.corpus_candidate.as_ref().is_none_or(|c| c.shape() == self.sample_shape)
        });
        if !shape_ok {
            let reason = "result tensor shape mismatch".to_string();
            return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
        }
        if lease >= st.next_lease {
            let reason = "unknown lease id".to_string();
            return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
        }
        let plan = match st.leases.get(&lease) {
            Some(l) if l.slot == s && l.tenant != campaign => {
                let reason = format!("lease {lease} is not for campaign {campaign}");
                return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
            }
            Some(l) if l.slot == s => match st.leases.remove(&lease) {
                Some(l) => Plan::Lease(l.seed_ids),
                None => Plan::Expired,
            },
            Some(_) => Plan::Collision,
            None => Plan::Expired,
        };
        if let Some(snap) = &telemetry {
            self.merge_worker_telemetry(snap);
        }
        let Some(worker) = conn.worker.clone() else {
            let reason = "authenticate first".to_string();
            return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
        };
        let leased_now = leased_ids(&st, campaign);
        let batch = self.cfg.batch_per_round;
        let persist = self.cfg.state_dir.is_some();
        let Some(t) = st.tenants.get_mut(&campaign) else {
            let reason = format!("unknown campaign {campaign}");
            return (Reply::SendThenClose(Msg::Reject { reason }), Vec::new());
        };
        // The worker's delta goes into the tenant union *and* this
        // connection's view of it — otherwise the next news would echo
        // the worker's own delta straight back at it.
        let view = conn.views.entry(campaign).or_insert_with(|| self.template.clone());
        let mut contributed = 0;
        for ((g, v), idx) in t.global.iter_mut().zip(view.iter_mut()).zip(&cov) {
            contributed += g.apply_covered_indices(idx);
            v.apply_covered_indices(idx);
        }
        t.round.newly_covered += contributed;
        t.worker_rng.insert(worker, rng_state);
        let absorbed: Vec<&JobResult> = match &plan {
            Plan::Lease(seed_ids) => {
                t.outstanding = t.outstanding.saturating_sub(seed_ids.len());
                items.iter().filter(|i| seed_ids.contains(&i.seed_id)).collect()
            }
            Plan::Collision => Vec::new(),
            Plan::Expired => {
                // Salvage results whose seeds are still waiting in the
                // requeue (counted instead of redone); seeds already
                // re-leased are dropped.
                let salvage: Vec<&JobResult> =
                    items.iter().filter(|i| t.pending.contains(&i.seed_id)).collect();
                for item in &salvage {
                    t.pending.retain(|&sid| sid != item.seed_id);
                }
                t.metrics.requeue_depth.set(t.pending.len() as f64);
                salvage
            }
        };
        let mut jobs = Vec::new();
        if !absorbed.is_empty() {
            absorb_items(t, &absorbed);
            if t.round.seeds_run >= batch {
                flush_round(t);
                if persist {
                    jobs.push(t.snapshot(leased_now));
                }
            }
        }
        jobs.extend(self.retire_finished(&mut st));
        // Fresh news for this campaign (covers the no-op case too: the
        // view was already folded above). `retire_finished` never removes
        // tenants, but a graceful empty delta beats trusting that.
        let cov = match (st.tenants.get(&campaign), conn.views.get_mut(&campaign)) {
            (Some(t), Some(view)) => {
                let cov = coverage_news(&t.global, view);
                t.metrics.coverage_mean.set(f64::from(t.mean_coverage()));
                cov
            }
            _ => vec![Vec::new(); self.template.len()],
        };
        let reply = if self.drain.load(Ordering::SeqCst) {
            Reply::Send(Msg::Drain)
        } else {
            Reply::Send(Msg::Ack { cov })
        };
        (reply, jobs)
    }

    /// Folds a worker's advisory telemetry snapshot into the fleet
    /// registry — same guard rails as the coordinator (known phase names
    /// only; foreign bucket layouts dropped by `merge_local`).
    fn merge_worker_telemetry(&self, t: &TelemetrySnapshot) {
        let reg = &self.cfg.registry;
        for (name, hist) in &t.phases {
            let Some(phase) = Phase::ALL.iter().find(|p| p.name() == name) else { continue };
            reg.histogram("dx_phase_seconds", &[("phase", phase.name())], &TIME_BUCKETS)
                .merge_local(hist);
        }
    }
}

/// Folds completed job results into a tenant: corpus energy, found
/// diffs, round statistics, metrics. Callers have already filtered
/// `items` down to seeds this worker legitimately held.
fn absorb_items(t: &mut Tenant, items: &[&JobResult]) {
    // Per-component saturation, so the rarity energy model credits a
    // find against its own component's union.
    let global_coverage = dx_coverage::mean_component_coverage(&t.global);
    let epoch = t.epochs.len();
    let mut diffs = 0u64;
    for item in items {
        t.steps_done += 1;
        t.round.seeds_run += 1;
        t.round.iterations += item.run.iterations;
        let diff_test = if item.run.found_difference() { item.run.test.as_ref() } else { None };
        if let Some(test) = diff_test {
            t.round.diffs_found += 1;
            diffs += 1;
            t.diffs.push(FoundDiff {
                seed_id: item.seed_id,
                epoch,
                input: test.input.clone(),
                predictions: test.predictions.clone(),
                iterations: test.iterations,
                target_model: test.target_model,
            });
        }
        t.corpus.absorb(item.seed_id, &item.run, &global_coverage);
    }
    t.metrics.steps.inc_by(items.len() as u64);
    t.metrics.diffs.inc_by(diffs);
    t.metrics.corpus_size.set(t.corpus.len() as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_allowance_caps_the_share_of_in_flight_jobs() {
        // Nothing outstanding: always the full cap (one-lease minimum).
        assert_eq!(quota_allowance(0, 100, 0.01, 4), 4);
        // Full quota: never constrained.
        assert_eq!(quota_allowance(50, 50, 1.0, 4), 4);
        // Half quota, balanced fleet: 4 out of 12 in flight is under
        // half of 16 after an 4-grant, so the whole cap fits.
        assert_eq!(quota_allowance(4, 12, 0.5, 4), 4);
        // Over quota already: nothing more.
        assert_eq!(quota_allowance(8, 12, 0.5, 4), 0);
        // Partially constrained: g*(1-q) <= q*total - out with q=0.25,
        // total=30, out=6 gives g <= 2.
        assert_eq!(quota_allowance(6, 30, 0.25, 4), 2);
    }

    #[test]
    fn quota_allowance_never_exceeds_the_cap() {
        for out in 0..10 {
            for total in out..30 {
                for &q in &[0.1f32, 0.3, 0.5, 0.9, 1.0] {
                    let g = quota_allowance(out, total, q, 3);
                    assert!(g <= 3, "allowance {g} over cap for out={out} total={total} q={q}");
                    // The invariant the cap exists for: a nonzero grant
                    // to a tenant with outstanding work keeps it within
                    // quota.
                    if g > 0 && out > 0 && q < 1.0 {
                        assert!(
                            (out + g) as f32 <= q * (total + g) as f32 + 1e-4,
                            "grant {g} breaks quota for out={out} total={total} q={q}"
                        );
                    }
                }
            }
        }
    }
}
