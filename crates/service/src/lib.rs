//! Campaign-as-a-service: a multi-tenant control plane over one worker
//! fleet.
//!
//! A dedicated [`dx_dist::Coordinator`] runs *one* campaign and exits
//! when it drains. This crate runs many: a long-lived [`Service`] daemon
//! owns a shared seed pool and a shared fleet of protocol-v6 workers,
//! and multiplexes any number of concurrent *tenant* campaigns over
//! them. Tenants arrive over an HTTP/JSON API ([`api`]), each with its
//! own seeds, budget, master seed, fair-share weight and lease quota
//! ([`spec::CampaignSpec`]); the dispatcher tags every lease with its
//! tenant's campaign id, and v6 workers keep independent generator
//! contexts per campaign — so one worker interleaves work for many
//! tenants without cross-contaminating their RNG streams or coverage
//! unions.
//!
//! **Fairness.** Lease grants use stride scheduling: each tenant carries
//! a virtual-time `pass` that advances by `granted / weight` on every
//! grant, and the runnable tenant with the smallest pass goes next — so
//! long-run fleet shares converge to the weight ratio regardless of
//! arrival order. A tenant's `quota` additionally caps its share of all
//! in-flight leased jobs, with a one-lease minimum so a tiny quota can
//! never starve a tenant entirely.
//!
//! **Isolation.** Each tenant is checkpointed under its own
//! `state_dir/<id>/` directory — the standard campaign JSONL files plus
//! `tenant.json` and `events.jsonl` — so a daemon restart resumes every
//! tenant, and any single tenant's directory doubles as a plain campaign
//! checkpoint for `deepxplore campaign --preexisting` or
//! `Campaign::resume_from`. Each tenant also owns a private
//! [`MetricsRegistry`]; the daemon's `/metrics` endpoint renders them
//! with a `tenant="<name>"` label merged after the fleet-level series.
//!
//! **Trust.** Admission is the same as a dedicated coordinator's:
//! fingerprint match, plus the HMAC challenge/response when an auth
//! token is configured, with identity-keyed slots. The service does
//! *not* spot-check claimed diffs (there is no per-tenant trust ledger
//! yet); run service fleets with workers you trust, or behind the
//! coordinator for adversarial settings.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashSet};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use dx_campaign::checkpoint::{self, write_atomic};
use dx_campaign::json::{build, Json};
use dx_campaign::{CampaignReport, EnergyModel, ModelSuite};
use dx_coverage::CoverageSignal;
use dx_dist::proto::Fingerprint;
use dx_dist::suite_fingerprint;
use dx_nn::util::gather_rows;
use dx_telemetry::events::{emit, Level};
use dx_telemetry::{merge_renders, Counter, Gauge, MetricsRegistry};
use dx_tensor::Tensor;

pub mod api;
mod dispatcher;
pub mod spec;
pub mod tenant;

pub use spec::CampaignSpec;
pub use tenant::Status;

use tenant::{Tenant, TenantCkpt};

/// Service-wide scheduling, persistence and admission knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Root directory for per-tenant checkpoints (`<state_dir>/<id>/`);
    /// `None` disables persistence (tenants die with the daemon).
    pub state_dir: Option<PathBuf>,
    /// Cap on concurrently *live* (non-terminal) tenants; submissions
    /// beyond it get `429`.
    pub max_tenants: usize,
    /// Absorbed seed steps per per-tenant statistics round.
    pub batch_per_round: usize,
    /// Max jobs per lease.
    pub lease_size: usize,
    /// How long a lease may go without results or a heartbeat before its
    /// seeds are requeued.
    pub lease_timeout: Duration,
    /// Per-tenant corpus size cap.
    pub max_corpus: usize,
    /// Corpus energy model for every tenant.
    pub energy: EnergyModel,
    /// Shared secret workers must prove at admission; `None` admits any
    /// fingerprint-matching peer.
    pub auth_token: Option<String>,
    /// Registry receiving fleet-level metrics (worker/lease gauges).
    /// Per-tenant series live in per-tenant registries regardless.
    pub registry: MetricsRegistry,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            state_dir: None,
            max_tenants: 8,
            batch_per_round: 16,
            lease_size: 4,
            lease_timeout: Duration::from_secs(30),
            max_corpus: 4096,
            energy: EnergyModel::Classic,
            auth_token: None,
            registry: MetricsRegistry::new(),
        }
    }
}

/// An API-layer failure: the HTTP status plus a human-readable reason
/// (returned verbatim as the response body).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Why, for the response body.
    pub reason: String,
}

impl ApiError {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        Self { status, reason: reason.into() }
    }
}

/// Fleet-level metric handles (the unlabeled series on `/metrics`).
struct FleetMetrics {
    connected: Arc<Gauge>,
    tenants_live: Arc<Gauge>,
    leases: Arc<Counter>,
    lease_expired: Arc<Counter>,
    heartbeats: Arc<Counter>,
}

impl FleetMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        registry.set_help("dx_workers_connected", "Currently admitted worker connections.");
        registry.set_help("dx_service_tenants", "Live (non-terminal) tenant campaigns.");
        registry.set_help("dx_service_leases_total", "Leases granted across all tenants.");
        registry.set_help("dx_service_lease_expired_total", "Leases that timed out.");
        registry.set_help("dx_service_heartbeats_total", "Heartbeat frames handled.");
        Self {
            connected: registry.gauge("dx_workers_connected", &[]),
            tenants_live: registry.gauge("dx_service_tenants", &[]),
            leases: registry.counter("dx_service_leases_total", &[]),
            lease_expired: registry.counter("dx_service_lease_expired_total", &[]),
            heartbeats: registry.counter("dx_service_heartbeats_total", &[]),
        }
    }
}

/// One outstanding lease: which tenant's seeds and which fleet slot
/// holds them. (RNG streams are keyed to the connection's authenticated
/// identity, not stored here.)
pub(crate) struct SvcLease {
    pub tenant: u64,
    pub slot: u64,
    pub seed_ids: Vec<usize>,
    pub deadline: Instant,
}

/// Everything behind the service lock.
pub(crate) struct SvcState {
    pub tenants: BTreeMap<u64, Tenant>,
    pub next_id: u64,
    /// Persistent worker identity per slot (in-memory; a restart admits
    /// everyone fresh — per-tenant RNG streams are keyed by identity, so
    /// nothing is lost).
    pub identities: BTreeMap<u64, String>,
    pub live_slots: HashSet<u64>,
    pub next_slot: u64,
    // BTreeMap, not HashMap: lease ids iterate in issue order, so
    // `leased_ids` snapshots and dispatcher sweeps are deterministic.
    pub leases: BTreeMap<u64, SvcLease>,
    pub next_lease: u64,
    pub connected: usize,
}

impl SvcState {
    fn live_tenants(&self) -> usize {
        self.tenants.values().filter(|t| !t.status.is_terminal()).count()
    }
}

/// Asks a running [`Service::serve`] to drain from another thread — the
/// programmatic stand-in for SIGTERM.
#[derive(Clone)]
pub struct StopHandle(Arc<AtomicBool>);

impl StopHandle {
    /// Requests a graceful drain: finish in-flight leases, checkpoint
    /// every tenant, release the fleet.
    pub fn stop(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// The control-plane daemon; see the module docs.
pub struct Service {
    pub(crate) cfg: ServiceConfig,
    pub(crate) fingerprint: Fingerprint,
    /// The shape every result tensor must have (`[1, sample dims...]`).
    pub(crate) sample_shape: Vec<usize>,
    /// Empty signals, cloned per tenant union and per connection view.
    pub(crate) template: Vec<CoverageSignal>,
    /// The shared seed pool tenants slice rows from.
    pool: Tensor,
    pub(crate) metrics: FleetMetrics,
    pub(crate) state: Mutex<SvcState>,
    pub(crate) drain: Arc<AtomicBool>,
    pub(crate) force_close: AtomicBool,
    /// Serializes checkpoint writes per tenant and remembers the newest
    /// snapshot written (absent until the first write this process, which
    /// therefore rewrites instead of appending).
    ckpt_io: Mutex<BTreeMap<u64, u64>>,
}

impl Service {
    /// Creates a daemon over a seed pool (rows of `pool`), resuming any
    /// tenants checkpointed under `cfg.state_dir`.
    ///
    /// # Errors
    ///
    /// A malformed tenant directory. (A missing state dir is created on
    /// first checkpoint, not here.)
    ///
    /// # Panics
    ///
    /// Panics on an empty pool or zero `batch_per_round`/`lease_size`.
    pub fn new(
        suite: &ModelSuite,
        label: &str,
        pool: &Tensor,
        cfg: ServiceConfig,
    ) -> io::Result<Self> {
        let rows = pool.shape().first().copied().unwrap_or(0);
        assert!(rows > 0, "service needs a non-empty seed pool");
        assert!(cfg.batch_per_round >= 1, "batch_per_round must be at least 1");
        assert!(cfg.lease_size >= 1, "lease_size must be at least 1");
        let template: Vec<CoverageSignal> = suite.signal.build(&suite.models);
        let sample_shape = {
            let mut s = pool.shape().to_vec();
            if let Some(first) = s.first_mut() {
                *first = 1;
            }
            s
        };
        let fingerprint = suite_fingerprint(suite, label);
        let metrics = FleetMetrics::new(&cfg.registry);
        let mut tenants: BTreeMap<u64, Tenant> = BTreeMap::new();
        if let Some(dir) = &cfg.state_dir {
            if dir.is_dir() {
                for entry in std::fs::read_dir(dir)? {
                    let path = entry?.path();
                    if !path.join("tenant.json").is_file() {
                        continue;
                    }
                    let t = Tenant::load(&path, &template, cfg.max_corpus, cfg.energy)?;
                    emit(
                        Level::Info,
                        "service",
                        "tenant_resumed",
                        &[
                            ("id", t.id.into()),
                            ("name", t.spec.name.clone().into()),
                            ("status", t.status.as_str().to_string().into()),
                        ],
                    );
                    tenants.insert(t.id, t);
                }
            }
        }
        let next_id = tenants.keys().max().map_or(0, |&m| m + 1);
        metrics
            .tenants_live
            .set(tenants.values().filter(|t| !t.status.is_terminal()).count() as f64);
        Ok(Self {
            fingerprint,
            sample_shape,
            template,
            pool: pool.clone(),
            metrics,
            state: Mutex::new(SvcState {
                tenants,
                next_id,
                identities: BTreeMap::new(),
                live_slots: HashSet::new(),
                next_slot: 0,
                leases: BTreeMap::new(),
                next_lease: 0,
                connected: 0,
            }),
            drain: Arc::new(AtomicBool::new(false)),
            force_close: AtomicBool::new(false),
            ckpt_io: Mutex::new(BTreeMap::new()),
            cfg,
        })
    }

    /// A handle that asks [`Service::serve`] to drain, from any thread.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle(Arc::clone(&self.drain))
    }

    /// The admission fingerprint workers must present.
    pub fn fingerprint(&self) -> &Fingerprint {
        &self.fingerprint
    }

    /// Rows in the shared seed pool.
    pub fn pool_rows(&self) -> usize {
        self.pool.shape().first().copied().unwrap_or(0)
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, SvcState> {
        // Poison-tolerant: a panicking connection thread must not wedge
        // the daemon; tenant state mutations are small and re-validated.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // ---------------------------------------------------------------
    // Control-plane operations (the API handlers' core).

    /// Admits a new tenant campaign. Returns its status document.
    ///
    /// # Errors
    ///
    /// `400` for an invalid spec, `409` for a name the daemon has already
    /// seen (metrics labels and directories are keyed by name and must
    /// stay unambiguous for the daemon's lifetime), `429` over the live
    /// tenant cap.
    pub fn submit(&self, spec: CampaignSpec) -> Result<Json, ApiError> {
        spec.validate(&self.fingerprint, self.pool_rows())
            .map_err(|reason| ApiError::new(400, reason))?;
        let (doc, ckpt) = {
            let mut st = self.lock();
            if st.tenants.values().any(|t| t.spec.name == spec.name) {
                return Err(ApiError::new(409, format!("campaign `{}` already exists", spec.name)));
            }
            if st.live_tenants() >= self.cfg.max_tenants {
                return Err(ApiError::new(
                    429,
                    format!("tenant cap reached ({} live campaigns)", self.cfg.max_tenants),
                ));
            }
            let id = st.next_id;
            st.next_id += 1;
            let inputs: Vec<Tensor> = (spec.seed_offset..spec.seed_offset + spec.seeds)
                .map(|i| gather_rows(&self.pool, &[i]))
                .collect();
            let mut t =
                Tenant::new(id, spec, inputs, &self.template, self.cfg.max_corpus, self.cfg.energy);
            // A newcomer starts at the smallest live pass, not zero —
            // otherwise it would monopolize the fleet until it caught up
            // with tenants that have been running for hours.
            let floor = st
                .tenants
                .values()
                .filter(|t| t.status == Status::Running)
                .map(|t| t.pass)
                .fold(f64::INFINITY, f64::min);
            if floor.is_finite() {
                t.pass = floor;
            }
            t.event("submitted", vec![("name", build::str(&t.spec.name))]);
            emit(
                Level::Info,
                "service",
                "tenant_submitted",
                &[("id", id.into()), ("name", t.spec.name.clone().into())],
            );
            let ckpt = self.cfg.state_dir.as_ref().map(|_| t.snapshot(Vec::new()));
            let doc = t.status_json();
            st.tenants.insert(id, t);
            self.metrics.tenants_live.set(st.live_tenants() as f64);
            (doc, ckpt)
        };
        if let Some(job) = ckpt {
            self.write_ckpt(job).map_err(|e| ApiError::new(500, e.to_string()))?;
        }
        Ok(doc)
    }

    /// All tenants' status documents, id-ordered.
    pub fn list(&self) -> Json {
        let st = self.lock();
        Json::Arr(st.tenants.values().map(Tenant::status_json).collect())
    }

    /// One tenant's status document.
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn status(&self, id: u64) -> Result<Json, ApiError> {
        let st = self.lock();
        st.tenants
            .get(&id)
            .map(Tenant::status_json)
            .ok_or_else(|| ApiError::new(404, format!("no campaign {id}")))
    }

    /// Pauses a running tenant: no new leases; in-flight leases land
    /// normally.
    ///
    /// # Errors
    ///
    /// `404` unknown id, `409` if not `Running`.
    pub fn pause(&self, id: u64) -> Result<Json, ApiError> {
        self.transition(id, Status::Paused, "paused", |s| s == Status::Running)
    }

    /// Resumes a paused tenant.
    ///
    /// # Errors
    ///
    /// `404` unknown id, `409` if not `Paused`.
    pub fn resume(&self, id: u64) -> Result<Json, ApiError> {
        self.transition(id, Status::Running, "resumed", |s| s == Status::Paused)
    }

    /// Cancels a tenant (terminal). Its requeue is cleared; results from
    /// in-flight leases are still absorbed, so the final checkpoint is
    /// consistent.
    ///
    /// # Errors
    ///
    /// `404` unknown id, `409` if already terminal.
    pub fn cancel(&self, id: u64) -> Result<Json, ApiError> {
        self.transition(id, Status::Cancelled, "cancelled", |s| !s.is_terminal())
    }

    fn transition(
        &self,
        id: u64,
        to: Status,
        event: &str,
        allowed: impl Fn(Status) -> bool,
    ) -> Result<Json, ApiError> {
        let (doc, ckpt) = {
            let mut st = self.lock();
            let leased = leased_ids(&st, id);
            let t = st
                .tenants
                .get_mut(&id)
                .ok_or_else(|| ApiError::new(404, format!("no campaign {id}")))?;
            if !allowed(t.status) {
                return Err(ApiError::new(
                    409,
                    format!("cannot {event}: campaign {id} is {}", t.status.as_str()),
                ));
            }
            t.status = to;
            if to == Status::Cancelled {
                t.pending.clear();
                t.metrics.requeue_depth.set(0.0);
            }
            t.event(event, Vec::new());
            emit(
                Level::Info,
                "service",
                "tenant_transition",
                &[("id", id.into()), ("to", to.as_str().to_string().into())],
            );
            let ckpt = self.cfg.state_dir.as_ref().map(|_| t.snapshot(leased));
            let doc = t.status_json();
            self.metrics.tenants_live.set(st.live_tenants() as f64);
            (doc, ckpt)
        };
        if let Some(job) = ckpt {
            self.write_ckpt(job).map_err(|e| ApiError::new(500, e.to_string()))?;
        }
        Ok(doc)
    }

    /// The tenant's rendered campaign report (the same text a dedicated
    /// run prints).
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn report(&self, id: u64) -> Result<String, ApiError> {
        let st = self.lock();
        let t =
            st.tenants.get(&id).ok_or_else(|| ApiError::new(404, format!("no campaign {id}")))?;
        let report =
            CampaignReport { epochs: t.epochs.clone(), workers: t.worker_rng.len().max(1) };
        let mut out = format!(
            "campaign {} ({}): {} — {} steps, {} diffs, mean coverage {:.4}\n",
            t.id,
            t.spec.name,
            t.status.as_str(),
            t.steps_done,
            t.diffs.len(),
            t.mean_coverage(),
        );
        out.push_str(&report.render());
        Ok(out)
    }

    /// The tenant's JSONL event feed from line `from` on (the `?from=N`
    /// cursor: pass the number of lines already consumed).
    ///
    /// # Errors
    ///
    /// `404` for an unknown id.
    pub fn events(&self, id: u64, from: usize) -> Result<String, ApiError> {
        let st = self.lock();
        let t =
            st.tenants.get(&id).ok_or_else(|| ApiError::new(404, format!("no campaign {id}")))?;
        let mut out = String::new();
        for line in t.events.iter().skip(from) {
            out.push_str(line);
            out.push('\n');
        }
        Ok(out)
    }

    /// The `/metrics` payload: fleet-level series, then every tenant's
    /// registry rendered with its `tenant="<name>"` label.
    pub fn render_metrics(&self) -> String {
        let parts: Vec<String> = {
            let st = self.lock();
            let mut parts = vec![self.cfg.registry.render_prometheus()];
            for t in st.tenants.values() {
                parts.push(
                    t.metrics.registry.render_prometheus_labeled(&[("tenant", &t.spec.name)]),
                );
            }
            parts
        };
        merge_renders(&parts)
    }

    // ---------------------------------------------------------------
    // Checkpointing.

    /// Writes a tenant snapshot under `state_dir/<id>/`. Writes are
    /// serialized per daemon; a snapshot that lost the race to a newer
    /// one for the same tenant is discarded.
    pub(crate) fn write_ckpt(&self, job: TenantCkpt) -> io::Result<()> {
        let Some(root) = self.cfg.state_dir.clone() else { return Ok(()) };
        // Poison-tolerant for the same reason as `lock()`.
        let mut last = self.ckpt_io.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let prev = last.get(&job.tenant).copied();
        if prev.is_some_and(|l| l >= job.seq) {
            return Ok(());
        }
        let dir = root.join(job.tenant.to_string());
        std::fs::create_dir_all(&dir)?;
        // First write this process rewrites stats/diffs; later writes
        // append (the directory may hold the pre-restart campaign).
        checkpoint::save(
            &dir,
            &job.corpus,
            &job.report,
            &job.diffs,
            &job.masks,
            &job.signal,
            &job.meta,
            prev.is_some(),
        )?;
        write_atomic(&dir.join("tenant.json"), &(job.doc.to_string() + "\n"))?;
        write_atomic(&dir.join("events.jsonl"), &job.events)?;
        last.insert(job.tenant, job.seq);
        Ok(())
    }
}

/// Seed ids currently leased out for `tenant` (for checkpoint snapshots:
/// a checkpoint outlives every lease, so they fold into `pending`).
pub(crate) fn leased_ids(st: &SvcState, tenant: u64) -> Vec<usize> {
    st.leases
        .values()
        .filter(|l| l.tenant == tenant)
        .flat_map(|l| l.seed_ids.iter().copied())
        .collect()
}
