//! Property-based tests for the neural-network engine.

use dx_nn::layer::Layer;
use dx_nn::network::Network;
use dx_nn::util::{gather_rows, one_hot, stack};
use dx_nn::{loss, optim::Optimizer};
use dx_tensor::{Tensor, Workspace};
use proptest::prelude::*;

/// Strategy: a batched `[n, f]` tensor with bounded entries.
fn batch(n: usize, f: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, n * f).prop_map(move |v| Tensor::from_vec(v, &[n, f]))
}

/// A small deterministic MLP (weights fixed by seed, not by proptest).
fn mlp(seed: u64) -> Network {
    let mut net = Network::new(
        &[5],
        vec![Layer::dense(5, 8), Layer::tanh(), Layer::dense(8, 3), Layer::softmax()],
    );
    net.init_weights(&mut dx_tensor::rng::rng(seed));
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_is_deterministic(x in batch(3, 5)) {
        let net = mlp(1);
        prop_assert_eq!(net.output(&x), net.output(&x));
    }

    #[test]
    fn softmax_outputs_are_distributions(x in batch(4, 5)) {
        let net = mlp(2);
        let y = net.output(&x);
        for i in 0..4 {
            let row_sum: f32 = (0..3).map(|j| y.at(&[i, j])).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            prop_assert!((0..3).all(|j| y.at(&[i, j]) >= 0.0));
        }
    }

    #[test]
    fn batch_forward_equals_per_sample(x in batch(4, 5)) {
        // Processing a batch must equal processing each row alone.
        let net = mlp(3);
        let full = net.output(&x);
        for i in 0..4 {
            let alone = net.output(&gather_rows(&x, &[i]));
            for j in 0..3 {
                prop_assert!((full.at(&[i, j]) - alone.at(&[0, j])).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn input_gradient_is_linear_in_injection(x in batch(1, 5), a in 0.1f32..3.0) {
        // g(a·seed) == a·g(seed).
        let net = mlp(4);
        let pass = net.forward(&x);
        let mut seed = Tensor::zeros(&[1, 3]);
        seed.set(&[0, 1], 1.0);
        let g1 = net.input_gradient(&pass, &[(net.num_layers(), seed.clone())]);
        let ga = net.input_gradient(&pass, &[(net.num_layers(), seed.scale(a))]);
        for i in 0..g1.len() {
            prop_assert!((ga.data()[i] - a * g1.data()[i]).abs() < 1e-3 * (1.0 + a));
        }
    }

    #[test]
    fn nll_loss_is_nonnegative(x in batch(4, 5)) {
        let net = mlp(5);
        let probs = net.output(&x);
        let (l, _) = loss::nll_loss(&probs, &[0, 1, 2, 0]);
        prop_assert!(l >= 0.0);
        prop_assert!(l.is_finite());
    }

    #[test]
    fn mse_loss_is_zero_iff_equal(x in batch(2, 5)) {
        let net = mlp(6);
        let y = net.output(&x);
        let (l, g) = loss::mse_loss(&y, &y);
        prop_assert_eq!(l, 0.0);
        prop_assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sgd_step_reduces_loss_on_smooth_net(x in batch(8, 5)) {
        // One small SGD step on a smooth network must not blow the loss up;
        // for a fresh net it should typically reduce it.
        let mut net = mlp(7);
        let labels = [0usize, 1, 2, 0, 1, 2, 0, 1];
        let pass = net.forward(&x);
        let (before, grad) = loss::nll_loss(pass.output(), &labels);
        let layer_grads = net.backward_params(&pass, &grad);
        let flat: Vec<Tensor> = layer_grads.into_iter().flatten().collect();
        let mut opt = Optimizer::sgd(0.01);
        let mut params = net.params_mut();
        opt.step(&mut params, &flat);
        let (after, _) = loss::nll_loss(net.forward(&x).output(), &labels);
        prop_assert!(after <= before + 0.05, "loss rose {before} -> {after}");
    }

    #[test]
    fn perturbed_clone_stays_close(x in batch(2, 5), noise in 0.0f32..0.01) {
        let net = mlp(8);
        let other = net.perturbed(noise, 9);
        let (a, b) = (net.output(&x), other.output(&x));
        for i in 0..a.len() {
            prop_assert!((a.data()[i] - b.data()[i]).abs() < 0.5);
        }
    }

    #[test]
    fn one_hot_stack_round_trip(labels in proptest::collection::vec(0usize..4, 1..6)) {
        let t = one_hot(&labels, 4);
        prop_assert_eq!(t.shape()[0], labels.len());
        for (i, &l) in labels.iter().enumerate() {
            prop_assert_eq!(t.at(&[i, l]), 1.0);
            let row_sum: f32 = (0..4).map(|j| t.at(&[i, j])).sum();
            prop_assert_eq!(row_sum, 1.0);
        }
    }

    #[test]
    fn stack_gather_inverse(rows in proptest::collection::vec(
        proptest::collection::vec(-1.0f32..1.0, 6), 1..5)
    ) {
        let tensors: Vec<Tensor> = rows.iter().map(|r| Tensor::from_slice(r)).collect();
        let batch = stack(&tensors);
        for (i, t) in tensors.iter().enumerate() {
            prop_assert_eq!(&dx_nn::util::row(&batch, i), t);
        }
    }
}

/// A small conv stack covering every lite-pass layer kind: conv, relu,
/// maxpool (full-forward fallback), flatten, dense, softmax.
fn convnet(seed: u64) -> Network {
    let mut net = Network::new(
        &[1, 6, 6],
        vec![
            Layer::conv2d(1, 2, 3, 1, 0),
            Layer::relu(),
            Layer::maxpool2d(2),
            Layer::flatten(),
            Layer::dense(2 * 2 * 2, 3),
            Layer::softmax(),
        ],
    );
    net.init_weights(&mut dx_tensor::rng::rng(seed));
    net
}

/// Strategy: a batched `[n, 1, 6, 6]` image tensor.
fn images(n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.0f32..1.0, n * 36)
        .prop_map(move |v| Tensor::from_vec(v, &[n, 1, 6, 6]))
}

// Batched-path pins: the workspace-backed lite forward and backward must
// be bit-identical to the cache-carrying reference path (the dense
// backward's transposed-rhs kernel may flip a zero's sign, which nothing
// downstream observes), at every batch width.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lite_forward_is_bitwise_equal_to_cached_forward(x in images(4)) {
        let net = convnet(11);
        let mut ws = Workspace::new();
        let full = net.forward(&x);
        let lite = net.forward_lite(&x, &mut ws);
        prop_assert_eq!(full.activations.len(), lite.activations.len());
        for (f, l) in full.activations.iter().zip(lite.activations.iter()) {
            prop_assert_eq!(f.shape(), l.shape());
            for (a, b) in f.data().iter().zip(l.data().iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn batched_lite_forward_matches_per_row_lite_forward(x in images(5)) {
        // Batch width is pure execution tiling: every row of a batched
        // lite pass must be bit-identical to running that row alone.
        let net = convnet(12);
        let mut ws = Workspace::new();
        let batched = net.forward_lite(&x, &mut ws);
        for i in 0..5 {
            let alone = net.forward_lite(&gather_rows(&x, &[i]), &mut ws);
            for (b, a) in batched.activations.iter().zip(alone.activations.iter()) {
                let per = a.len();
                let brow = &b.data()[i * per..(i + 1) * per];
                for (x_, y_) in brow.iter().zip(a.data().iter()) {
                    prop_assert_eq!(x_.to_bits(), y_.to_bits(), "{} vs {}", x_, y_);
                }
            }
        }
    }

    #[test]
    fn workspace_input_gradient_matches_reference_up_to_zero_sign(x in images(3)) {
        let net = convnet(13);
        let mut ws = Workspace::new();
        let full = net.forward(&x);
        let lite = net.forward_lite(&x, &mut ws);
        let mut seed = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            seed.set(&[i, i % 3], 1.0);
        }
        let inj = vec![(net.num_layers(), seed)];
        let want = net.input_gradient(&full, &inj);
        let got = net.input_gradient_ws(&lite, &inj, &mut ws);
        prop_assert_eq!(want.shape(), got.shape());
        for (w, g) in want.data().iter().zip(got.data().iter()) {
            prop_assert!(
                w.to_bits() == g.to_bits() || (*w == 0.0 && *g == 0.0),
                "{} vs {}", w, g
            );
        }
    }
}
