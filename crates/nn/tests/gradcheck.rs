//! Finite-difference gradient checks.
//!
//! DeepXplore's whole premise is that `∂obj/∂x` is computed correctly, so
//! every layer's backward pass — for both inputs and parameters — is checked
//! against central finite differences through full networks. Networks use
//! smooth activations (sigmoid/tanh) where possible so the checks are not
//! confounded by ReLU kinks; ReLU and max-pool get their own checks at
//! inputs sampled away from their non-differentiable sets.

#![allow(clippy::needless_range_loop)] // Tests co-index several parallel arrays.
use dx_nn::layer::Layer;
use dx_nn::network::Network;
use dx_tensor::{rng, Tensor};

/// Scalar objective: a fixed random linear functional of the output, which
/// exercises every output coordinate at once.
fn objective(net: &Network, x: &Tensor, probe: &Tensor) -> f32 {
    net.output(x).hadamard(probe).sum()
}

/// Analytic input gradient of [`objective`] via gradient injection.
fn analytic_input_grad(net: &Network, x: &Tensor, probe: &Tensor) -> Tensor {
    let pass = net.forward(x);
    net.input_gradient(&pass, &[(net.num_layers(), probe.clone())])
}

/// Checks the analytic input gradient against central differences.
///
/// Tolerances are relative to the gradient magnitude; f32 arithmetic with
/// h = 1e-2 gives ~3 significant digits on smooth nets.
fn check_input_gradient(net: &Network, x: &Tensor, probe: &Tensor, tol: f32) {
    let analytic = analytic_input_grad(net, x, probe);
    let h = 1e-2f32;
    let scale = analytic.data().iter().fold(0.0f32, |a, &b| a.max(b.abs())).max(1e-3);
    for i in 0..x.len() {
        let mut plus = x.clone();
        plus.data_mut()[i] += h;
        let mut minus = x.clone();
        minus.data_mut()[i] -= h;
        let fd = (objective(net, &plus, probe) - objective(net, &minus, probe)) / (2.0 * h);
        let a = analytic.data()[i];
        assert!(
            (fd - a).abs() <= tol * scale,
            "input grad mismatch at {i}: fd {fd} vs analytic {a} (scale {scale})"
        );
    }
}

/// Checks every parameter gradient against central differences.
fn check_param_gradients(net: &mut Network, x: &Tensor, probe: &Tensor, tol: f32) {
    let pass = net.forward(x);
    let layer_grads = net.backward_params(&pass, probe);
    let flat: Vec<Tensor> = layer_grads.into_iter().flatten().collect();
    let h = 1e-2f32;
    let n_params = net.params().len();
    for p_idx in 0..n_params {
        let scale = flat[p_idx].data().iter().fold(0.0f32, |a, &b| a.max(b.abs())).max(1e-3);
        // Probe a handful of coordinates per parameter tensor.
        let len = net.params()[p_idx].len();
        let step = (len / 5).max(1);
        for i in (0..len).step_by(step) {
            let orig = net.params()[p_idx].data()[i];
            net.params_mut()[p_idx].data_mut()[i] = orig + h;
            let up = objective(net, x, probe);
            net.params_mut()[p_idx].data_mut()[i] = orig - h;
            let down = objective(net, x, probe);
            net.params_mut()[p_idx].data_mut()[i] = orig;
            let fd = (up - down) / (2.0 * h);
            let a = flat[p_idx].data()[i];
            assert!(
                (fd - a).abs() <= tol * scale,
                "param {p_idx}[{i}] grad mismatch: fd {fd} vs analytic {a} (scale {scale})"
            );
        }
    }
}

fn smooth_mlp(seed: u64) -> Network {
    let mut net = Network::new(
        &[5],
        vec![
            Layer::dense(5, 7),
            Layer::sigmoid(),
            Layer::dense(7, 6),
            Layer::tanh(),
            Layer::dense(6, 4),
            Layer::softmax(),
        ],
    );
    net.init_weights(&mut rng::rng(seed));
    net
}

#[test]
fn dense_sigmoid_tanh_softmax_input_gradient() {
    let net = smooth_mlp(0);
    let mut r = rng::rng(1);
    let x = rng::uniform(&mut r, &[1, 5], -1.0, 1.0);
    let probe = rng::uniform(&mut r, &[1, 4], -1.0, 1.0);
    check_input_gradient(&net, &x, &probe, 0.02);
}

#[test]
fn dense_sigmoid_tanh_softmax_param_gradients() {
    let mut net = smooth_mlp(2);
    let mut r = rng::rng(3);
    let x = rng::uniform(&mut r, &[2, 5], -1.0, 1.0);
    let probe = rng::uniform(&mut r, &[2, 4], -1.0, 1.0);
    check_param_gradients(&mut net, &x, &probe, 0.02);
}

#[test]
fn conv_avgpool_input_gradient() {
    let mut net = Network::new(
        &[2, 6, 6],
        vec![
            Layer::conv2d(2, 3, 3, 1, 1),
            Layer::tanh(),
            Layer::avgpool2d(2),
            Layer::flatten(),
            Layer::dense(3 * 3 * 3, 3),
            Layer::softmax(),
        ],
    );
    let mut r = rng::rng(4);
    net.init_weights(&mut r);
    let x = rng::uniform(&mut r, &[1, 2, 6, 6], -1.0, 1.0);
    let probe = rng::uniform(&mut r, &[1, 3], -1.0, 1.0);
    check_input_gradient(&net, &x, &probe, 0.02);
}

#[test]
fn conv_param_gradients() {
    let mut net = Network::new(
        &[1, 5, 5],
        vec![
            Layer::conv2d(1, 2, 3, 2, 1),
            Layer::sigmoid(),
            Layer::flatten(),
            Layer::dense(2 * 3 * 3, 2),
        ],
    );
    let mut r = rng::rng(5);
    net.init_weights(&mut r);
    let x = rng::uniform(&mut r, &[2, 1, 5, 5], -1.0, 1.0);
    let probe = rng::uniform(&mut r, &[2, 2], -1.0, 1.0);
    check_param_gradients(&mut net, &x, &probe, 0.02);
}

#[test]
fn relu_input_gradient_away_from_kinks() {
    let mut net = Network::new(&[4], vec![Layer::dense(4, 8), Layer::relu(), Layer::dense(8, 3)]);
    let mut r = rng::rng(6);
    net.init_weights(&mut r);
    // Sample until no pre-activation is near zero, so finite differences do
    // not straddle a kink.
    let x = loop {
        let cand = rng::uniform(&mut r, &[1, 4], 0.5, 1.5);
        let pass = net.forward(&cand);
        let pre = &pass.activations[1];
        if pre.data().iter().all(|v| v.abs() > 0.05) {
            break cand;
        }
    };
    let probe = rng::uniform(&mut r, &[1, 3], -1.0, 1.0);
    check_input_gradient(&net, &x, &probe, 0.02);
}

#[test]
fn maxpool_input_gradient_with_distinct_maxima() {
    let mut net =
        Network::new(&[1, 4, 4], vec![Layer::maxpool2d(2), Layer::flatten(), Layer::dense(4, 2)]);
    let mut r = rng::rng(7);
    net.init_weights(&mut r);
    // A permutation-like input guarantees unique window maxima, away from
    // ties where the max-pool gradient is non-differentiable.
    let x = Tensor::from_vec(
        vec![
            0.9, 0.1, 0.3, 0.5, //
            0.2, 0.4, 0.8, 0.0, //
            0.7, 0.15, 0.35, 0.65, //
            0.05, 0.45, 0.25, 0.95,
        ],
        &[1, 1, 4, 4],
    );
    let probe = rng::uniform(&mut r, &[1, 2], -1.0, 1.0);
    check_input_gradient(&net, &x, &probe, 0.02);
}

#[test]
fn batchnorm_eval_input_gradient() {
    let mut net = Network::new(
        &[1, 4, 4],
        vec![
            Layer::conv2d(1, 2, 3, 1, 1),
            Layer::batch_norm(2),
            Layer::tanh(),
            Layer::flatten(),
            Layer::dense(2 * 4 * 4, 2),
        ],
    );
    let mut r = rng::rng(8);
    net.init_weights(&mut r);
    // Populate running statistics with a few training batches first.
    for _ in 0..5 {
        let xb = rng::uniform(&mut r, &[8, 1, 4, 4], -1.0, 1.0);
        net.forward_train(&xb, &mut r);
    }
    let x = rng::uniform(&mut r, &[1, 1, 4, 4], -1.0, 1.0);
    let probe = rng::uniform(&mut r, &[1, 2], -1.0, 1.0);
    check_input_gradient(&net, &x, &probe, 0.02);
}

#[test]
fn hidden_neuron_injection_matches_finite_difference() {
    // The DeepXplore obj2 path: differentiate a single hidden neuron's
    // output with respect to the input, via injection at the hidden layer.
    let mut net = Network::new(
        &[1, 6, 6],
        vec![
            Layer::conv2d(1, 2, 3, 1, 0),
            Layer::tanh(),
            Layer::flatten(),
            Layer::dense(2 * 4 * 4, 3),
            Layer::softmax(),
        ],
    );
    let mut r = rng::rng(9);
    net.init_weights(&mut r);
    let x = rng::uniform(&mut r, &[1, 1, 6, 6], -1.0, 1.0);
    let pass = net.forward(&x);

    // Target neuron: channel 1, position (2, 3) of the tanh output.
    let mut seed = Tensor::zeros(pass.activations[2].shape());
    seed.set(&[0, 1, 2, 3], 1.0);
    let analytic = net.input_gradient(&pass, &[(2, seed)]);

    let neuron_value = |net: &Network, x: &Tensor| -> f32 {
        let p = net.forward(x);
        p.activations[2].at(&[0, 1, 2, 3])
    };
    let h = 1e-2f32;
    for i in 0..x.len() {
        let mut plus = x.clone();
        plus.data_mut()[i] += h;
        let mut minus = x.clone();
        minus.data_mut()[i] -= h;
        let fd = (neuron_value(&net, &plus) - neuron_value(&net, &minus)) / (2.0 * h);
        let a = analytic.data()[i];
        assert!(
            (fd - a).abs() < 0.02 * (a.abs().max(0.01)).max(0.01),
            "neuron grad mismatch at {i}: fd {fd} vs analytic {a}"
        );
    }
}

#[test]
fn joint_objective_gradient_is_sum_of_parts() {
    // Gradient of obj1 + λ·obj2 computed jointly must equal the sum of the
    // separately computed gradients — the linearity DeepXplore relies on.
    let mut net = Network::new(
        &[3],
        vec![Layer::dense(3, 5), Layer::sigmoid(), Layer::dense(5, 2), Layer::softmax()],
    );
    let mut r = rng::rng(10);
    net.init_weights(&mut r);
    let x = rng::uniform(&mut r, &[1, 3], 0.0, 1.0);
    let pass = net.forward(&x);

    let mut out_seed = Tensor::zeros(&[1, 2]);
    out_seed.set(&[0, 0], 1.0);
    let mut hid_seed = Tensor::zeros(&[1, 5]);
    hid_seed.set(&[0, 3], 0.7);

    let g1 = net.input_gradient(&pass, &[(4, out_seed.clone())]);
    let g2 = net.input_gradient(&pass, &[(2, hid_seed.clone())]);
    let joint = net.input_gradient(&pass, &[(4, out_seed), (2, hid_seed)]);
    for i in 0..joint.len() {
        let want = g1.data()[i] + g2.data()[i];
        assert!((joint.data()[i] - want).abs() < 1e-5);
    }
}
