//! First-order optimizers for training the model zoo.

use dx_tensor::Tensor;

/// A gradient-descent optimizer with per-parameter state.
///
/// State vectors are allocated lazily on the first [`Optimizer::step`] so an
/// optimizer can be constructed before the network it trains.
#[derive(Clone, Debug)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with classical momentum.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (typically 0.9).
        mu: f32,
        /// Per-parameter velocity.
        velocity: Vec<Tensor>,
    },
    /// Adam (Kingma & Ba, 2015).
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Stability constant.
        eps: f32,
        /// Step counter.
        t: u32,
        /// First moments.
        m: Vec<Tensor>,
        /// Second moments.
        v: Vec<Tensor>,
    },
}

impl Optimizer {
    /// Plain SGD.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }

    /// SGD with momentum 0.9.
    pub fn momentum(lr: f32) -> Self {
        Optimizer::Momentum { lr, mu: 0.9, velocity: Vec::new() }
    }

    /// Adam with the standard β₁ = 0.9, β₂ = 0.999.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update step.
    ///
    /// `params` and `grads` must align (same order and shapes on every
    /// call); this is guaranteed when both come from the same
    /// [`crate::Network`].
    ///
    /// # Panics
    ///
    /// Panics on length or shape mismatches.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "optimizer got {} params but {} grads",
            params.len(),
            grads.len()
        );
        match self {
            Optimizer::Sgd { lr } => {
                for (p, g) in params.iter_mut().zip(grads.iter()) {
                    p.add_scaled(g, -*lr);
                }
            }
            Optimizer::Momentum { lr, mu, velocity } => {
                if velocity.is_empty() {
                    *velocity = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
                }
                for ((p, g), v) in params.iter_mut().zip(grads.iter()).zip(velocity.iter_mut()) {
                    // v = mu*v - lr*g ; p += v.
                    *v = v.scale(*mu);
                    v.add_scaled(g, -*lr);
                    p.add_scaled(v, 1.0);
                }
            }
            Optimizer::Adam { lr, beta1, beta2, eps, t, m, v } => {
                if m.is_empty() {
                    *m = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
                    *v = grads.iter().map(|g| Tensor::zeros(g.shape())).collect();
                }
                *t += 1;
                let bc1 = 1.0 - beta1.powi(*t as i32);
                let bc2 = 1.0 - beta2.powi(*t as i32);
                for ((p, g), (mi, vi)) in
                    params.iter_mut().zip(grads.iter()).zip(m.iter_mut().zip(v.iter_mut()))
                {
                    *mi = mi.scale(*beta1);
                    mi.add_scaled(g, 1.0 - *beta1);
                    *vi = vi.scale(*beta2);
                    let g2 = g.hadamard(g);
                    vi.add_scaled(&g2, 1.0 - *beta2);
                    let update = mi.zip(vi, |mh, vh| {
                        let m_hat = mh / bc1;
                        let v_hat = vh / bc2;
                        m_hat / (v_hat.sqrt() + *eps)
                    });
                    p.add_scaled(&update, -*lr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(p) = (p - 3)² from p = 0 and returns the trajectory end.
    fn descend(opt: &mut Optimizer, steps: usize) -> f32 {
        let mut p = Tensor::from_slice(&[0.0]);
        for _ in 0..steps {
            let g = Tensor::from_slice(&[2.0 * (p.data()[0] - 3.0)]);
            let mut refs = [&mut p];
            opt.step(&mut refs, &[g]);
        }
        p.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let end = descend(&mut Optimizer::sgd(0.1), 100);
        assert!((end - 3.0).abs() < 1e-3, "ended at {end}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let end = descend(&mut Optimizer::momentum(0.02), 200);
        assert!((end - 3.0).abs() < 1e-2, "ended at {end}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let end = descend(&mut Optimizer::adam(0.1), 400);
        assert!((end - 3.0).abs() < 1e-2, "ended at {end}");
    }

    #[test]
    fn sgd_step_is_exactly_lr_times_grad() {
        let mut p = Tensor::from_slice(&[1.0, 2.0]);
        let g = Tensor::from_slice(&[0.5, -0.5]);
        let mut opt = Optimizer::sgd(0.2);
        let mut refs = [&mut p];
        opt.step(&mut refs, &[g]);
        assert_eq!(p.data(), &[0.9, 2.1]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = Tensor::from_slice(&[0.0]);
        let g = Tensor::from_slice(&[1.0]);
        let mut opt = Optimizer::momentum(0.1);
        for _ in 0..2 {
            let mut refs = [&mut p];
            opt.step(&mut refs, std::slice::from_ref(&g));
        }
        // Step 1: v = -0.1, p = -0.1. Step 2: v = -0.19, p = -0.29.
        assert!((p.data()[0] + 0.29).abs() < 1e-6, "p = {}", p.data()[0]);
    }

    #[test]
    #[should_panic(expected = "grads")]
    fn mismatched_lengths_panic() {
        let mut p = Tensor::from_slice(&[0.0]);
        let mut refs = [&mut p];
        Optimizer::sgd(0.1).step(&mut refs, &[]);
    }
}
