//! Weight initialization schemes.
//!
//! The zoo uses [`Init::HeNormal`] for ReLU networks and
//! [`Init::XavierUniform`] for sigmoid/tanh networks, matching the
//! conventions of the architectures the paper evaluates. `DAVE-NormInit`
//! (Table 1) differs from `DAVE-Orig` precisely in its initialization,
//! which is why the scheme is part of the public API.

use dx_tensor::{rng, Tensor};

/// A weight-initialization scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Init {
    /// All zeros (used for biases).
    Zeros,
    /// Uniform on `[-limit, limit]` with `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Normal with `std = sqrt(2 / fan_in)` (He et al., for ReLU).
    HeNormal,
    /// Normal with `std = sqrt(1 / fan_in)` (LeCun, used by DAVE-NormInit).
    LecunNormal,
}

impl Init {
    /// Samples a tensor of the given shape.
    ///
    /// `fan_in`/`fan_out` must be the effective fan of the layer (for conv
    /// layers, channel count times receptive-field size).
    pub fn sample(
        self,
        r: &mut rng::Rng,
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
    ) -> Tensor {
        match self {
            Init::Zeros => Tensor::zeros(shape),
            Init::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
                rng::uniform(r, shape, -limit, limit)
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in as f32).sqrt();
                rng::normal(r, shape, 0.0, std)
            }
            Init::LecunNormal => {
                let std = (1.0 / fan_in as f32).sqrt();
                rng::normal(r, shape, 0.0, std)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_are_zero() {
        let t = Init::Zeros.sample(&mut rng::rng(0), &[10], 5, 5);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xavier_respects_limit() {
        let t = Init::XavierUniform.sample(&mut rng::rng(1), &[1000], 50, 50);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= limit));
    }

    #[test]
    fn he_normal_std_is_plausible() {
        let t = Init::HeNormal.sample(&mut rng::rng(2), &[20000], 8, 8);
        let std = t.map(|v| v * v).mean().sqrt();
        let want = (2.0f32 / 8.0).sqrt();
        assert!((std - want).abs() / want < 0.1, "std {std}, want {want}");
    }

    #[test]
    fn lecun_normal_std_is_plausible() {
        let t = Init::LecunNormal.sample(&mut rng::rng(3), &[20000], 16, 16);
        let std = t.map(|v| v * v).mean().sqrt();
        let want = (1.0f32 / 16.0).sqrt();
        assert!((std - want).abs() / want < 0.1, "std {std}, want {want}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Init::HeNormal.sample(&mut rng::rng(7), &[32], 4, 4);
        let b = Init::HeNormal.sample(&mut rng::rng(7), &[32], 4, 4);
        assert_eq!(a, b);
    }
}
