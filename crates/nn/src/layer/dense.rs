//! Fully connected layer.

use dx_tensor::{kernels, rng::Rng, FusedAct, Tensor, Workspace};

use crate::init::Init;
use crate::layer::Cache;

/// Affine map `y = xW + b` over batched vectors `[N, I] -> [N, O]`.
///
/// The weight is stored `[I, O]` so the forward pass is a single
/// row-major matmul.
#[derive(Clone, Debug)]
pub struct Dense {
    /// Weight matrix, `[in_features, out_features]`.
    pub weight: Tensor,
    /// Bias vector, `[out_features]`.
    pub bias: Tensor,
    /// Input width.
    pub in_features: usize,
    /// Output width.
    pub out_features: usize,
    /// Initialization scheme used by [`Dense::init_weights`].
    pub init: Init,
}

impl Dense {
    /// Creates a dense layer with zeroed parameters (call
    /// `init_weights` before training).
    pub fn new(in_features: usize, out_features: usize, init: Init) -> Self {
        Self {
            weight: Tensor::zeros(&[in_features, out_features]),
            bias: Tensor::zeros(&[out_features]),
            in_features,
            out_features,
            init,
        }
    }

    /// Samples fresh weights; biases reset to zero.
    pub fn init_weights(&mut self, r: &mut Rng) {
        self.weight = self.init.sample(
            r,
            &[self.in_features, self.out_features],
            self.in_features,
            self.out_features,
        );
        self.bias = Tensor::zeros(&[self.out_features]);
    }

    /// Output shape (without batch) for shape validation.
    ///
    /// # Panics
    ///
    /// Panics unless the input is a vector of width `in_features`.
    pub fn output_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            in_shape,
            &[self.in_features],
            "Dense({}→{}) got input shape {in_shape:?}",
            self.in_features,
            self.out_features
        );
        vec![self.out_features]
    }

    /// Forward pass over `[N, I]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, in_features]`.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Cache) {
        assert_eq!(x.rank(), 2, "Dense expects [N, I], got {:?}", x.shape());
        assert_eq!(
            x.shape()[1],
            self.in_features,
            "Dense({}→{}) got input shape {:?}",
            self.in_features,
            self.out_features,
            x.shape()
        );
        let mut y = x.matmul(&self.weight);
        let (n, o) = (y.shape()[0], y.shape()[1]);
        let bias = self.bias.data();
        let data = y.data_mut();
        for i in 0..n {
            for j in 0..o {
                data[i * o + j] += bias[j];
            }
        }
        (y, Cache::Input(x.clone()))
    }

    /// Forward pass over `[N, I]` through the fused matmul+bias kernel,
    /// writing into a workspace buffer.
    ///
    /// Bit-identical to [`Dense::forward`] (the fused kernel completes the
    /// matmul sum before adding the bias, exactly like the separate steps)
    /// but allocation-free in steady state and cache-light: the returned
    /// [`Cache::None`] reflects that the input-gradient backward needs no
    /// cached tensors at all (`dx = g · Wᵀ` only touches the weight).
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, in_features]`.
    pub fn forward_ws(&self, x: &Tensor, ws: &mut Workspace) -> (Tensor, Cache) {
        assert_eq!(x.rank(), 2, "Dense expects [N, I], got {:?}", x.shape());
        assert_eq!(
            x.shape()[1],
            self.in_features,
            "Dense({}→{}) got input shape {:?}",
            self.in_features,
            self.out_features,
            x.shape()
        );
        let n = x.shape()[0];
        let mut out = ws.take(n * self.out_features);
        kernels::matmul_bias_act(
            x.data(),
            self.weight.data(),
            self.bias.data(),
            n,
            self.in_features,
            self.out_features,
            FusedAct::Identity,
            &mut out,
        );
        (Tensor::from_vec(out, &[n, self.out_features]), Cache::None)
    }

    /// Input gradient only, via the transposed-rhs kernel into a workspace
    /// buffer: `dx = g · Wᵀ` without materializing the transpose.
    pub fn backward_input_ws(&self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(grad_out.rank(), 2, "Dense backward expects [N, O], got {:?}", grad_out.shape());
        let n = grad_out.shape()[0];
        let mut out = ws.take(n * self.in_features);
        kernels::matmul_bt_acc(
            grad_out.data(),
            self.weight.data(),
            n,
            self.out_features,
            self.in_features,
            &mut out,
        );
        Tensor::from_vec(out, &[n, self.in_features])
    }

    /// Backward pass: `(dx, [dW, db])`.
    pub fn backward(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        want_param_grads: bool,
    ) -> (Tensor, Vec<Tensor>) {
        let dx = grad_out.matmul(&self.weight.transpose());
        if !want_param_grads {
            return (dx, vec![]);
        }
        let dw = x.transpose().matmul(grad_out);
        let (n, o) = (grad_out.shape()[0], grad_out.shape()[1]);
        let mut db = vec![0.0f32; o];
        let g = grad_out.data();
        for i in 0..n {
            for j in 0..o {
                db[j] += g[i * o + j];
            }
        }
        (dx, vec![dw, Tensor::from_vec(db, &[o])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    fn layer() -> Dense {
        let mut d = Dense::new(3, 2, Init::XavierUniform);
        d.weight = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, -1.0], &[3, 2]);
        d.bias = Tensor::from_slice(&[0.5, -0.5]);
        d
    }

    #[test]
    fn forward_known_values() {
        let d = layer();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let (y, _) = d.forward(&x);
        // y0 = 1*1 + 2*0 + 3*2 + 0.5 = 7.5 ; y1 = 1*0 + 2*1 + 3*(-1) - 0.5 = -1.5.
        assert_eq!(y.data(), &[7.5, -1.5]);
    }

    #[test]
    fn forward_batched() {
        let d = layer();
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0], &[2, 3]);
        let (y, _) = d.forward(&x);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.data(), &[1.5, -0.5, 0.5, 0.5]);
    }

    #[test]
    fn backward_shapes() {
        let d = layer();
        let x = rng::uniform(&mut rng::rng(0), &[4, 3], -1.0, 1.0);
        let (_, cache) = d.forward(&x);
        let g = rng::uniform(&mut rng::rng(1), &[4, 2], -1.0, 1.0);
        if let Cache::Input(xc) = cache {
            let (dx, grads) = d.backward(&xc, &g, true);
            assert_eq!(dx.shape(), &[4, 3]);
            assert_eq!(grads[0].shape(), &[3, 2]);
            assert_eq!(grads[1].shape(), &[2]);
        } else {
            panic!("wrong cache kind");
        }
    }

    #[test]
    fn backward_bias_grad_is_column_sum() {
        let d = layer();
        let x = Tensor::zeros(&[3, 3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let (_, grads) = d.backward(&x, &g, true);
        assert_eq!(grads[1].data(), &[9.0, 12.0]);
    }

    #[test]
    fn input_only_backward_skips_param_grads() {
        let d = layer();
        let x = Tensor::zeros(&[1, 3]);
        let g = Tensor::ones(&[1, 2]);
        let (_, grads) = d.backward(&x, &g, false);
        assert!(grads.is_empty());
    }

    #[test]
    fn init_weights_resamples() {
        let mut d = Dense::new(4, 4, Init::HeNormal);
        d.init_weights(&mut rng::rng(3));
        assert!(d.weight.data().iter().any(|&v| v != 0.0));
        assert!(d.bias.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "got input shape")]
    fn wrong_width_panics() {
        layer().forward(&Tensor::zeros(&[1, 4]));
    }
}
