//! 2-D convolution via im2col + matmul.

use dx_tensor::{kernels, rng::Rng, Tensor, Workspace};

use crate::init::Init;
use crate::layer::Cache;

/// 2-D convolution over `[N, C, H, W]` with square kernels.
///
/// The forward pass lowers each sample to an im2col matrix and performs a
/// single matmul against the `[out_ch, in_ch·k·k]` weight view — the same
/// strategy the large frameworks use, which keeps the fifteen-model zoo
/// trainable on a laptop CPU.
#[derive(Clone, Debug)]
pub struct Conv2d {
    /// Kernel weights, `[out_ch, in_ch, k, k]`.
    pub weight: Tensor,
    /// Per-output-channel bias, `[out_ch]`.
    pub bias: Tensor,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on all sides.
    pub pad: usize,
    /// Initialization scheme used by [`Conv2d::init_weights`].
    pub init: Init,
}

impl Conv2d {
    /// Creates a convolution with zeroed parameters.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        init: Init,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        Self {
            weight: Tensor::zeros(&[out_ch, in_ch, kernel, kernel]),
            bias: Tensor::zeros(&[out_ch]),
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            init,
        }
    }

    /// Samples fresh weights; biases reset to zero.
    pub fn init_weights(&mut self, r: &mut Rng) {
        let fan_in = self.in_ch * self.kernel * self.kernel;
        let fan_out = self.out_ch * self.kernel * self.kernel;
        self.weight = self.init.sample(
            r,
            &[self.out_ch, self.in_ch, self.kernel, self.kernel],
            fan_in,
            fan_out,
        );
        self.bias = Tensor::zeros(&[self.out_ch]);
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad).checked_sub(self.kernel).map(|v| v / self.stride + 1);
        let ow = (w + 2 * self.pad).checked_sub(self.kernel).map(|v| v / self.stride + 1);
        match (oh, ow) {
            (Some(oh), Some(ow)) if oh > 0 && ow > 0 => (oh, ow),
            _ => panic!(
                "Conv2d k{} s{} p{} cannot consume a {h}x{w} input",
                self.kernel, self.stride, self.pad
            ),
        }
    }

    /// Output shape (without batch) for shape validation.
    ///
    /// # Panics
    ///
    /// Panics unless the input is `[in_ch, H, W]` with the kernel fitting.
    pub fn output_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(in_shape.len(), 3, "Conv2d expects [C, H, W] input, got {in_shape:?}");
        assert_eq!(
            in_shape[0], self.in_ch,
            "Conv2d expects {} input channels, got shape {in_shape:?}",
            self.in_ch
        );
        let (oh, ow) = self.out_hw(in_shape[1], in_shape[2]);
        vec![self.out_ch, oh, ow]
    }

    /// Forward pass over `[N, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Cache) {
        assert_eq!(x.rank(), 4, "Conv2d expects [N, C, H, W], got {:?}", x.shape());
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.in_ch, "Conv2d expects {} channels, got {:?}", self.in_ch, x.shape());
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let rows = c * k * k;
        let cols = oh * ow;
        let w_mat = self.weight.reshape(&[self.out_ch, rows]);
        let mut out = Tensor::zeros(&[n, self.out_ch, oh, ow]);
        let sample_in = c * h * w;
        let sample_out = self.out_ch * oh * ow;
        let mut col_buf = vec![0.0f32; rows * cols];
        for i in 0..n {
            let xin = &x.data()[i * sample_in..(i + 1) * sample_in];
            im2col(xin, c, h, w, k, self.stride, self.pad, oh, ow, &mut col_buf);
            let cols_t = Tensor::from_vec(col_buf.clone(), &[rows, cols]);
            let y = w_mat.matmul(&cols_t);
            let dst = &mut out.data_mut()[i * sample_out..(i + 1) * sample_out];
            for oc in 0..self.out_ch {
                let b = self.bias.data()[oc];
                let src = &y.data()[oc * cols..(oc + 1) * cols];
                let d = &mut dst[oc * cols..(oc + 1) * cols];
                for (dv, &sv) in d.iter_mut().zip(src.iter()) {
                    *dv = sv + b;
                }
            }
        }
        (out, Cache::Input(x.clone()))
    }

    /// Forward pass over `[N, C, H, W]` with all intermediates (im2col
    /// matrix, per-sample matmul output, result) drawn from the workspace.
    ///
    /// Bit-identical to [`Conv2d::forward`]: the `[out_ch, C·k·k]` weight
    /// view is the weight's own contiguous buffer (the reshape the old path
    /// cloned per call), and the per-sample matmul runs the same blocked
    /// kernel. Returns [`Cache::Shape`] — the input-gradient backward needs
    /// only the input shape, not the input.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn forward_ws(&self, x: &Tensor, ws: &mut Workspace) -> (Tensor, Cache) {
        assert_eq!(x.rank(), 4, "Conv2d expects [N, C, H, W], got {:?}", x.shape());
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.in_ch, "Conv2d expects {} channels, got {:?}", self.in_ch, x.shape());
        let (oh, ow) = self.out_hw(h, w);
        let k = self.kernel;
        let rows = c * k * k;
        let cols = oh * ow;
        let w_mat = self.weight.data();
        let sample_in = c * h * w;
        let sample_out = self.out_ch * oh * ow;
        let mut out = ws.take(n * sample_out);
        let mut col_buf = ws.take(rows * cols);
        let mut y_buf = ws.take(sample_out);
        for i in 0..n {
            let xin = &x.data()[i * sample_in..(i + 1) * sample_in];
            im2col(xin, c, h, w, k, self.stride, self.pad, oh, ow, &mut col_buf);
            y_buf.fill(0.0);
            kernels::matmul_acc(w_mat, &col_buf, self.out_ch, rows, cols, &mut y_buf);
            let dst = &mut out[i * sample_out..(i + 1) * sample_out];
            for oc in 0..self.out_ch {
                let b = self.bias.data()[oc];
                let src = &y_buf[oc * cols..(oc + 1) * cols];
                let d = &mut dst[oc * cols..(oc + 1) * cols];
                for (dv, &sv) in d.iter_mut().zip(src.iter()) {
                    *dv = sv + b;
                }
            }
        }
        ws.put(col_buf);
        ws.put(y_buf);
        (Tensor::from_vec(out, &[n, self.out_ch, oh, ow]), Cache::Shape(x.shape().to_vec()))
    }

    /// Input gradient only, with all intermediates (transposed weight view,
    /// per-sample column gradients, result) drawn from the workspace.
    ///
    /// The transposed weight is built once per call and amortized across the
    /// batch — same cost shape as [`Conv2d::backward`], minus its per-sample
    /// `g.to_vec()` clone and matmul allocation.
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` does not match the output shape for `in_shape`.
    pub fn backward_input_ws(
        &self,
        in_shape: &[usize],
        grad_out: &Tensor,
        ws: &mut Workspace,
    ) -> Tensor {
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(
            grad_out.shape(),
            &[n, self.out_ch, oh, ow],
            "Conv2d backward: grad shape {:?} does not match output",
            grad_out.shape()
        );
        let k = self.kernel;
        let rows = c * k * k;
        let cols = oh * ow;
        let w_mat = self.weight.data();
        let mut w_mat_t = ws.take(rows * self.out_ch);
        for oc in 0..self.out_ch {
            for (r, &wv) in w_mat[oc * rows..(oc + 1) * rows].iter().enumerate() {
                w_mat_t[r * self.out_ch + oc] = wv;
            }
        }
        let sample_in = c * h * w;
        let sample_out = self.out_ch * oh * ow;
        let mut dx = ws.take(n * sample_in);
        let mut dcols = ws.take(rows * cols);
        for i in 0..n {
            let g = &grad_out.data()[i * sample_out..(i + 1) * sample_out];
            dcols.fill(0.0);
            kernels::matmul_acc(&w_mat_t, g, rows, self.out_ch, cols, &mut dcols);
            let dxi = &mut dx[i * sample_in..(i + 1) * sample_in];
            col2im(&dcols, c, h, w, k, self.stride, self.pad, oh, ow, dxi);
        }
        ws.put(w_mat_t);
        ws.put(dcols);
        Tensor::from_vec(dx, in_shape)
    }

    /// Backward pass: `(dx, [dW, db])`. The im2col matrix is re-derived from
    /// the cached input rather than stored, trading a little compute for a
    /// much smaller forward-pass footprint.
    pub fn backward(
        &self,
        x: &Tensor,
        grad_out: &Tensor,
        want_param_grads: bool,
    ) -> (Tensor, Vec<Tensor>) {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(
            grad_out.shape(),
            &[n, self.out_ch, oh, ow],
            "Conv2d backward: grad shape {:?} does not match output",
            grad_out.shape()
        );
        let k = self.kernel;
        let rows = c * k * k;
        let cols = oh * ow;
        let w_mat = self.weight.reshape(&[self.out_ch, rows]);
        let w_mat_t = w_mat.transpose();
        let mut dx = Tensor::zeros(x.shape());
        let mut dw_mat = Tensor::zeros(&[self.out_ch, rows]);
        let mut db = vec![0.0f32; self.out_ch];
        let sample_in = c * h * w;
        let sample_out = self.out_ch * oh * ow;
        let mut col_buf = vec![0.0f32; rows * cols];
        for i in 0..n {
            let g = &grad_out.data()[i * sample_out..(i + 1) * sample_out];
            let g_mat = Tensor::from_vec(g.to_vec(), &[self.out_ch, cols]);
            // dCols = W^T · dY, scattered back to input positions.
            let dcols = w_mat_t.matmul(&g_mat);
            let dxi = &mut dx.data_mut()[i * sample_in..(i + 1) * sample_in];
            col2im(dcols.data(), c, h, w, k, self.stride, self.pad, oh, ow, dxi);
            if want_param_grads {
                let xin = &x.data()[i * sample_in..(i + 1) * sample_in];
                im2col(xin, c, h, w, k, self.stride, self.pad, oh, ow, &mut col_buf);
                let cols_t = Tensor::from_vec(col_buf.clone(), &[rows, cols]);
                // dW += dY · cols^T.
                dw_mat += &g_mat.matmul(&cols_t.transpose());
                for oc in 0..self.out_ch {
                    db[oc] += g[oc * cols..(oc + 1) * cols].iter().sum::<f32>();
                }
            }
        }
        if want_param_grads {
            let dw = dw_mat.reshape(&[self.out_ch, self.in_ch, k, k]);
            (dx, vec![dw, Tensor::from_vec(db, &[self.out_ch])])
        } else {
            (dx, vec![])
        }
    }
}

/// Lowers one `[C, H, W]` sample into an im2col matrix of shape
/// `[C·k·k, OH·OW]` (row-major into `out`). Out-of-bounds taps are zero.
#[allow(clippy::too_many_arguments)]
fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let cols = oh * ow;
    debug_assert_eq!(out.len(), c * k * k * cols);
    for ch in 0..c {
        let plane = &x[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let dst = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let base = oy * ow;
                    if iy < 0 || iy >= h as isize {
                        dst[base..base + ow].fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        dst[base + ox] =
                            if ix < 0 || ix >= w as isize { 0.0 } else { src_row[ix as usize] };
                    }
                }
            }
        }
    }
}

/// Scatter-adds an im2col-shaped gradient back onto the input plane —
/// the adjoint of [`im2col`].
#[allow(clippy::too_many_arguments)]
fn col2im(
    cols_grad: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let cols = oh * ow;
    for ch in 0..c {
        let plane = &mut out[ch * h * w..(ch + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let src = &cols_grad[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let base = oy * ow;
                    let dst_row = &mut plane[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix >= 0 && ix < w as isize {
                            dst_row[ix as usize] += src[base + ox];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    /// Direct (quadruple-loop) convolution used as a test oracle.
    fn conv_oracle(x: &Tensor, layer: &Conv2d) -> Tensor {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = layer.out_hw(h, w);
        let k = layer.kernel;
        let mut out = Tensor::zeros(&[n, layer.out_ch, oh, ow]);
        for i in 0..n {
            for oc in 0..layer.out_ch {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = layer.bias.data()[oc];
                        for ic in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * layer.stride + ky) as isize - layer.pad as isize;
                                    let ix = (ox * layer.stride + kx) as isize - layer.pad as isize;
                                    if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w
                                    {
                                        acc += x.at(&[i, ic, iy as usize, ix as usize])
                                            * layer.weight.at(&[oc, ic, ky, kx]);
                                    }
                                }
                            }
                        }
                        out.set(&[i, oc, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    fn random_layer(in_ch: usize, out_ch: usize, k: usize, s: usize, p: usize) -> Conv2d {
        let mut l = Conv2d::new(in_ch, out_ch, k, s, p, Init::XavierUniform);
        l.init_weights(&mut rng::rng(42));
        l.bias = rng::uniform(&mut rng::rng(43), &[out_ch], -0.5, 0.5);
        l
    }

    #[test]
    fn matches_direct_convolution_no_pad() {
        let layer = random_layer(2, 3, 3, 1, 0);
        let x = rng::uniform(&mut rng::rng(1), &[2, 2, 6, 6], -1.0, 1.0);
        let (y, _) = layer.forward(&x);
        let want = conv_oracle(&x, &layer);
        assert_eq!(y.shape(), want.shape());
        for (a, b) in y.data().iter().zip(want.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn matches_direct_convolution_with_pad_and_stride() {
        let layer = random_layer(3, 4, 3, 2, 1);
        let x = rng::uniform(&mut rng::rng(2), &[1, 3, 7, 7], -1.0, 1.0);
        let (y, _) = layer.forward(&x);
        let want = conv_oracle(&x, &layer);
        assert_eq!(y.shape(), want.shape());
        for (a, b) in y.data().iter().zip(want.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn output_shape_formula() {
        let layer = Conv2d::new(1, 8, 5, 1, 0, Init::HeNormal);
        assert_eq!(layer.output_shape(&[1, 28, 28]), vec![8, 24, 24]);
        let strided = Conv2d::new(3, 24, 5, 2, 0, Init::HeNormal);
        assert_eq!(strided.output_shape(&[3, 66, 200]), vec![24, 31, 98]);
    }

    #[test]
    #[should_panic(expected = "cannot consume")]
    fn kernel_too_large_panics() {
        Conv2d::new(1, 1, 9, 1, 0, Init::HeNormal).output_shape(&[1, 4, 4]);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A single 1x1 kernel with weight 1 and bias 0 is the identity.
        let mut layer = Conv2d::new(1, 1, 1, 1, 0, Init::Zeros);
        layer.weight = Tensor::ones(&[1, 1, 1, 1]);
        let x = rng::uniform(&mut rng::rng(3), &[2, 1, 4, 4], -1.0, 1.0);
        let (y, _) = layer.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn backward_shapes() {
        let layer = random_layer(2, 3, 3, 1, 1);
        let x = rng::uniform(&mut rng::rng(4), &[2, 2, 5, 5], -1.0, 1.0);
        let (y, cache) = layer.forward(&x);
        let g = Tensor::ones(y.shape());
        if let Cache::Input(xc) = cache {
            let (dx, grads) = layer.backward(&xc, &g, true);
            assert_eq!(dx.shape(), x.shape());
            assert_eq!(grads[0].shape(), layer.weight.shape());
            assert_eq!(grads[1].shape(), layer.bias.shape());
        } else {
            panic!("wrong cache kind");
        }
    }

    #[test]
    fn bias_gradient_counts_positions() {
        // With dY = 1 everywhere, db equals the number of output positions.
        let layer = random_layer(1, 2, 3, 1, 0);
        let x = rng::uniform(&mut rng::rng(5), &[1, 1, 5, 5], -1.0, 1.0);
        let (y, cache) = layer.forward(&x);
        let g = Tensor::ones(y.shape());
        if let Cache::Input(xc) = cache {
            let (_, grads) = layer.backward(&xc, &g, true);
            let positions = (y.shape()[2] * y.shape()[3]) as f32;
            assert_eq!(grads[1].data(), &[positions, positions]);
        } else {
            panic!("wrong cache kind");
        }
    }
}
