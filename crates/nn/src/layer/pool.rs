//! Spatial pooling layers.

use dx_tensor::Tensor;

use crate::layer::Cache;

/// Max pooling over `[N, C, H, W]` with a square window.
///
/// Windows are anchored at multiples of `stride`; trailing rows/columns that
/// do not fill a complete window are dropped (floor semantics, matching the
/// LeNet/VGG conventions of the paper's models).
#[derive(Clone, Debug)]
pub struct MaxPool2d {
    /// Window side.
    pub kernel: usize,
    /// Stride between window anchors.
    pub stride: usize,
}

/// Average pooling with the same window/stride semantics as [`MaxPool2d`].
#[derive(Clone, Debug)]
pub struct AvgPool2d {
    /// Window side.
    pub kernel: usize,
    /// Stride between window anchors.
    pub stride: usize,
}

fn pooled_hw(kernel: usize, stride: usize, h: usize, w: usize) -> (usize, usize) {
    assert!(h >= kernel && w >= kernel, "pool window {kernel} does not fit a {h}x{w} input");
    ((h - kernel) / stride + 1, (w - kernel) / stride + 1)
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        Self { kernel, stride }
    }

    /// Output shape (without batch).
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[C, H, W]` or the window does not fit.
    pub fn output_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(in_shape.len(), 3, "MaxPool2d expects [C, H, W], got {in_shape:?}");
        let (oh, ow) = pooled_hw(self.kernel, self.stride, in_shape[1], in_shape[2]);
        vec![in_shape[0], oh, ow]
    }

    /// Forward pass; caches the argmax offsets for the backward scatter.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Cache) {
        assert_eq!(x.rank(), 4, "MaxPool2d expects [N, C, H, W], got {:?}", x.shape());
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = pooled_hw(self.kernel, self.stride, h, w);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut indices = vec![0usize; n * c * oh * ow];
        let xd = x.data();
        let od = out.data_mut();
        let mut oidx = 0;
        for i in 0..n {
            for ch in 0..c {
                let plane_off = (i * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best_v = f32::NEG_INFINITY;
                        let mut best_i = 0;
                        for ky in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            for kx in 0..self.kernel {
                                let ix = ox * self.stride + kx;
                                let off = plane_off + iy * w + ix;
                                if xd[off] > best_v {
                                    best_v = xd[off];
                                    best_i = off;
                                }
                            }
                        }
                        od[oidx] = best_v;
                        indices[oidx] = best_i;
                        oidx += 1;
                    }
                }
            }
        }
        (out, Cache::ArgMax { indices, in_shape: x.shape().to_vec() })
    }

    /// Backward pass: routes each output gradient to its argmax position.
    pub fn backward(&self, indices: &[usize], in_shape: &[usize], grad_out: &Tensor) -> Tensor {
        let mut dx = Tensor::zeros(in_shape);
        let dxd = dx.data_mut();
        for (&idx, &g) in indices.iter().zip(grad_out.data().iter()) {
            dxd[idx] += g;
        }
        dx
    }
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        Self { kernel, stride }
    }

    /// Output shape (without batch).
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[C, H, W]` or the window does not fit.
    pub fn output_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert_eq!(in_shape.len(), 3, "AvgPool2d expects [C, H, W], got {in_shape:?}");
        let (oh, ow) = pooled_hw(self.kernel, self.stride, in_shape[1], in_shape[2]);
        vec![in_shape[0], oh, ow]
    }

    /// Forward pass.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Cache) {
        assert_eq!(x.rank(), 4, "AvgPool2d expects [N, C, H, W], got {:?}", x.shape());
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = pooled_hw(self.kernel, self.stride, h, w);
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let xd = x.data();
        let od = out.data_mut();
        let mut oidx = 0;
        for i in 0..n {
            for ch in 0..c {
                let plane_off = (i * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ky in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            let row = plane_off + iy * w + ox * self.stride;
                            for kx in 0..self.kernel {
                                acc += xd[row + kx];
                            }
                        }
                        od[oidx] = acc * inv;
                        oidx += 1;
                    }
                }
            }
        }
        (out, Cache::Shape(x.shape().to_vec()))
    }

    /// Backward pass: spreads each output gradient evenly over its window.
    pub fn backward(&self, in_shape: &[usize], grad_out: &Tensor) -> Tensor {
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (oh, ow) = pooled_hw(self.kernel, self.stride, h, w);
        let inv = 1.0 / (self.kernel * self.kernel) as f32;
        let mut dx = Tensor::zeros(in_shape);
        let dxd = dx.data_mut();
        let gd = grad_out.data();
        let mut oidx = 0;
        for i in 0..n {
            for ch in 0..c {
                let plane_off = (i * c + ch) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = gd[oidx] * inv;
                        oidx += 1;
                        for ky in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            let row = plane_off + iy * w + ox * self.stride;
                            for kx in 0..self.kernel {
                                dxd[row + kx] += g;
                            }
                        }
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    #[test]
    fn maxpool_known_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, _) = MaxPool2d::new(2, 2).forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avgpool_known_values() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, _) = AvgPool2d::new(2, 2).forward(&x);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]);
        let layer = MaxPool2d::new(2, 2);
        let (_, cache) = layer.forward(&x);
        if let Cache::ArgMax { indices, in_shape } = cache {
            let g = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]);
            let dx = layer.backward(&indices, &in_shape, &g);
            assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
        } else {
            panic!("wrong cache kind");
        }
    }

    #[test]
    fn avgpool_backward_spreads_evenly() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let layer = AvgPool2d::new(2, 2);
        let (_, cache) = layer.forward(&x);
        if let Cache::Shape(shape) = cache {
            let g = Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]);
            let dx = layer.backward(&shape, &g);
            assert_eq!(dx.data(), &[2.0, 2.0, 2.0, 2.0]);
        } else {
            panic!("wrong cache kind");
        }
    }

    #[test]
    fn floor_semantics_drop_partial_windows() {
        let layer = MaxPool2d::new(2, 2);
        assert_eq!(layer.output_shape(&[3, 5, 5]), vec![3, 2, 2]);
    }

    #[test]
    fn pooling_preserves_channel_independence() {
        let mut x = Tensor::zeros(&[1, 2, 2, 2]);
        x.set(&[0, 0, 0, 0], 5.0);
        x.set(&[0, 1, 1, 1], 7.0);
        let (y, _) = MaxPool2d::new(2, 2).forward(&x);
        assert_eq!(y.data(), &[5.0, 7.0]);
    }

    #[test]
    fn overlapping_stride() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let (y, _) = MaxPool2d::new(2, 1).forward(&x);
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 6.0);
        assert_eq!(y.at(&[0, 0, 2, 2]), 16.0);
    }

    #[test]
    fn batched_pooling_isolates_samples() {
        let mut r = rng::rng(0);
        let x = rng::uniform(&mut r, &[3, 2, 4, 4], -1.0, 1.0);
        let (y, _) = MaxPool2d::new(2, 2).forward(&x);
        // Pool each sample independently and compare.
        for i in 0..3 {
            let xi = Tensor::from_vec(x.data()[i * 32..(i + 1) * 32].to_vec(), &[1, 2, 4, 4]);
            let (yi, _) = MaxPool2d::new(2, 2).forward(&xi);
            assert_eq!(&y.data()[i * 8..(i + 1) * 8], yi.data());
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn window_too_large_panics() {
        MaxPool2d::new(4, 4).output_shape(&[1, 3, 3]);
    }
}
