//! Layer types and the dispatch enum composing them into networks.
//!
//! Layers are plain data (weights + hyperparameters) with pure
//! `forward`/`backward` methods. Dispatch is a closed `enum` rather than
//! trait objects: the set of layer types the paper's fifteen models need is
//! fixed and small, and the enum keeps serialization, shape inference and
//! exhaustive testing straightforward.

mod activation;
mod conv;
mod dense;
mod norm;
mod pool;
mod residual;

pub use activation::{relu_backward, sigmoid_backward, softmax_backward, tanh_backward};
pub use conv::Conv2d;
pub use dense::Dense;
pub use norm::{BatchNorm, Dropout};
pub use pool::{AvgPool2d, MaxPool2d};
pub use residual::Residual;

use dx_tensor::{rng::Rng, Tensor, Workspace};

use crate::init::Init;

/// Values a layer computes during `forward` that its `backward` needs.
///
/// Caches are returned by value inside a [`crate::ForwardPass`] so a pass is
/// immutable and can be differentiated repeatedly (the DeepXplore inner loop
/// reuses one pass for both objectives).
#[derive(Clone, Debug)]
pub enum Cache {
    /// The layer input (dense and conv layers; conv re-derives im2col).
    Input(Tensor),
    /// The layer output (sigmoid, tanh, softmax — their derivative is a
    /// function of the output).
    Output(Tensor),
    /// A 0/1 (or scaled, for dropout) multiplicative mask.
    Mask(Tensor),
    /// Flat input offsets of each pooled maximum plus the input shape.
    ArgMax {
        /// Flat offset of the maximum within the layer input, per output.
        indices: Vec<usize>,
        /// The layer's input shape (batched).
        in_shape: Vec<usize>,
    },
    /// Just the input shape (flatten, average pooling).
    Shape(Vec<usize>),
    /// Batch-norm cache.
    BatchNorm {
        /// The normalized input `x̂`.
        xhat: Tensor,
        /// Per-feature inverse standard deviation.
        inv_std: Tensor,
        /// Per-feature reduction count (batch × spatial positions).
        count: usize,
        /// Whether the forward pass used batch statistics (training mode).
        train: bool,
    },
    /// Residual-block cache: one cache per body layer plus the projection's.
    Residual {
        /// Caches of the body layers, in forward order.
        inner: Vec<Cache>,
        /// Cache of the 1×1 projection, when present.
        proj: Option<Box<Cache>>,
    },
    /// Layers that need nothing (identity-like eval dropout).
    None,
}

/// One network layer.
///
/// Constructors are provided for each variant (e.g. [`Layer::dense`],
/// [`Layer::conv2d`]); the enum itself is public so downstream code can
/// inspect architectures (the coverage crate does).
#[derive(Clone, Debug)]
pub enum Layer {
    /// Fully connected affine map over `[N, I] -> [N, O]`.
    Dense(Dense),
    /// 2-D convolution over `[N, C, H, W]`.
    Conv2d(Conv2d),
    /// Max pooling over non-overlapping (or strided) windows.
    MaxPool2d(MaxPool2d),
    /// Average pooling.
    AvgPool2d(AvgPool2d),
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Row-wise softmax over `[N, K]`.
    Softmax,
    /// Reshape `[N, C, H, W] -> [N, C·H·W]`.
    Flatten,
    /// Inverted dropout (identity at inference).
    Dropout(Dropout),
    /// Batch normalization (per feature or per channel).
    BatchNorm(BatchNorm),
    /// Residual block `y = body(x) + skip(x)`.
    Residual(Residual),
}

impl Layer {
    /// Fully connected layer with He-normal initialization.
    pub fn dense(in_features: usize, out_features: usize) -> Self {
        Layer::Dense(Dense::new(in_features, out_features, Init::HeNormal))
    }

    /// Fully connected layer with an explicit initialization scheme.
    pub fn dense_init(in_features: usize, out_features: usize, init: Init) -> Self {
        Layer::Dense(Dense::new(in_features, out_features, init))
    }

    /// Convolution with square kernel, He-normal initialization.
    pub fn conv2d(in_ch: usize, out_ch: usize, kernel: usize, stride: usize, pad: usize) -> Self {
        Layer::Conv2d(Conv2d::new(in_ch, out_ch, kernel, stride, pad, Init::HeNormal))
    }

    /// Convolution with an explicit initialization scheme.
    pub fn conv2d_init(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        init: Init,
    ) -> Self {
        Layer::Conv2d(Conv2d::new(in_ch, out_ch, kernel, stride, pad, init))
    }

    /// Max pooling with square window `kernel` and stride equal to it.
    pub fn maxpool2d(kernel: usize) -> Self {
        Layer::MaxPool2d(MaxPool2d::new(kernel, kernel))
    }

    /// Average pooling with square window `kernel` and stride equal to it.
    pub fn avgpool2d(kernel: usize) -> Self {
        Layer::AvgPool2d(AvgPool2d::new(kernel, kernel))
    }

    /// ReLU activation.
    pub fn relu() -> Self {
        Layer::Relu
    }

    /// Sigmoid activation.
    pub fn sigmoid() -> Self {
        Layer::Sigmoid
    }

    /// Tanh activation.
    pub fn tanh() -> Self {
        Layer::Tanh
    }

    /// Softmax output layer.
    pub fn softmax() -> Self {
        Layer::Softmax
    }

    /// Flattening layer.
    pub fn flatten() -> Self {
        Layer::Flatten
    }

    /// Dropout with the given drop probability.
    pub fn dropout(p: f32) -> Self {
        Layer::Dropout(Dropout::new(p))
    }

    /// Batch normalization over `features` channels/features.
    pub fn batch_norm(features: usize) -> Self {
        Layer::BatchNorm(BatchNorm::new(features))
    }

    /// Identity-skip residual block.
    pub fn residual(body: Vec<Layer>) -> Self {
        Layer::Residual(Residual::new(body))
    }

    /// Residual block with a 1×1 projection skip for channel/stride changes.
    pub fn residual_projected(body: Vec<Layer>, projection: Conv2d) -> Self {
        Layer::Residual(Residual::with_projection(body, projection))
    }

    /// Short human-readable name (used in `Network::describe`).
    pub fn name(&self) -> String {
        match self {
            Layer::Dense(d) => format!("Dense({}→{})", d.in_features, d.out_features),
            Layer::Conv2d(c) => format!(
                "Conv2d({}→{}, k{}, s{}, p{})",
                c.in_ch, c.out_ch, c.kernel, c.stride, c.pad
            ),
            Layer::MaxPool2d(p) => format!("MaxPool2d(k{})", p.kernel),
            Layer::AvgPool2d(p) => format!("AvgPool2d(k{})", p.kernel),
            Layer::Relu => "ReLU".into(),
            Layer::Sigmoid => "Sigmoid".into(),
            Layer::Tanh => "Tanh".into(),
            Layer::Softmax => "Softmax".into(),
            Layer::Flatten => "Flatten".into(),
            Layer::Dropout(d) => format!("Dropout({})", d.p),
            Layer::BatchNorm(b) => format!("BatchNorm({})", b.features),
            Layer::Residual(r) => format!(
                "Residual({} layers{})",
                r.body.len(),
                if r.projection.is_some() { ", projected" } else { "" }
            ),
        }
    }

    /// Whether this layer's output participates in neuron coverage.
    ///
    /// Following the original implementation, coverage is read at the
    /// post-activation output of each computational block: activations,
    /// pooling layers and the softmax output. Structural layers (flatten,
    /// dropout) and pre-activation linear outputs do not count.
    pub fn is_coverage_layer(&self) -> bool {
        matches!(
            self,
            Layer::Relu
                | Layer::Sigmoid
                | Layer::Tanh
                | Layer::Softmax
                | Layer::MaxPool2d(_)
                | Layer::AvgPool2d(_)
                | Layer::Residual(_)
        )
    }

    /// Output shape (without the batch dimension) for a given input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer — this is
    /// how `Network::new` validates an architecture at build time.
    pub fn output_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        match self {
            Layer::Dense(d) => d.output_shape(in_shape),
            Layer::Conv2d(c) => c.output_shape(in_shape),
            Layer::MaxPool2d(p) => p.output_shape(in_shape),
            Layer::AvgPool2d(p) => p.output_shape(in_shape),
            Layer::BatchNorm(b) => b.output_shape(in_shape),
            Layer::Residual(r) => r.output_shape(in_shape),
            Layer::Flatten => {
                vec![in_shape.iter().product()]
            }
            Layer::Relu | Layer::Sigmoid | Layer::Tanh | Layer::Dropout(_) => in_shape.to_vec(),
            Layer::Softmax => {
                assert_eq!(in_shape.len(), 1, "softmax expects a vector input, got {in_shape:?}");
                in_shape.to_vec()
            }
        }
    }

    /// Evaluation-mode forward pass over a batched input.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Cache) {
        match self {
            Layer::Dense(d) => d.forward(x),
            Layer::Conv2d(c) => c.forward(x),
            Layer::MaxPool2d(p) => p.forward(x),
            Layer::AvgPool2d(p) => p.forward(x),
            Layer::Relu => activation::relu_forward(x),
            Layer::Sigmoid => activation::sigmoid_forward(x),
            Layer::Tanh => activation::tanh_forward(x),
            Layer::Softmax => activation::softmax_forward(x),
            Layer::Flatten => flatten_forward(x),
            Layer::Dropout(_) => (x.clone(), Cache::None),
            Layer::BatchNorm(b) => b.forward_eval(x),
            Layer::Residual(r) => r.forward(x),
        }
    }

    /// Evaluation-mode forward pass drawing intermediates from a workspace
    /// and recording only the *lite* caches the input-gradient backward
    /// needs.
    ///
    /// Bit-identical outputs to [`Layer::forward`], but: dense and conv run
    /// through the workspace kernels, elementwise activations write straight
    /// into pooled buffers, and no derivative tensors (masks, output copies)
    /// are materialized — the backward sweep re-derives them from the
    /// recorded activations (see `Network::input_gradient_ws`). Layers
    /// without a lite path (pooling, batch-norm, dropout, residual) fall
    /// back to [`Layer::forward`], whose caches the backward dispatch also
    /// accepts.
    ///
    /// Passes built this way support input gradients but **not**
    /// `backward_params` (dense/conv inputs are not cached) — the campaign
    /// hot path never trains.
    pub fn forward_lite(&self, x: &Tensor, ws: &mut Workspace) -> (Tensor, Cache) {
        match self {
            Layer::Dense(d) => d.forward_ws(x, ws),
            Layer::Conv2d(c) => c.forward_ws(x, ws),
            Layer::Relu => {
                let mut buf = ws.take_empty(x.len());
                buf.extend(x.data().iter().map(|&v| v.max(0.0)));
                (Tensor::from_vec(buf, x.shape()), Cache::None)
            }
            Layer::Sigmoid => {
                let mut buf = ws.take_empty(x.len());
                buf.extend(x.data().iter().map(|&v| 1.0 / (1.0 + (-v).exp())));
                (Tensor::from_vec(buf, x.shape()), Cache::None)
            }
            Layer::Tanh => {
                let mut buf = ws.take_empty(x.len());
                buf.extend(x.data().iter().map(|&v| v.tanh()));
                (Tensor::from_vec(buf, x.shape()), Cache::None)
            }
            Layer::Softmax => (activation::softmax_forward_ws(x, ws), Cache::None),
            Layer::Flatten => {
                let n = x.shape()[0];
                let rest: usize = x.shape()[1..].iter().product();
                let buf = ws.take_copy(x.data());
                (Tensor::from_vec(buf, &[n, rest]), Cache::Shape(x.shape().to_vec()))
            }
            Layer::Dropout(_) => (Tensor::from_vec(ws.take_copy(x.data()), x.shape()), Cache::None),
            other => other.forward(x),
        }
    }

    /// Training-mode forward pass; updates batch-norm running statistics and
    /// samples dropout masks.
    pub fn forward_train(&mut self, x: &Tensor, r: &mut Rng) -> (Tensor, Cache) {
        match self {
            Layer::Dropout(d) => d.forward_train(x, r),
            Layer::BatchNorm(b) => b.forward_train(x),
            Layer::Residual(res) => res.forward_train(x, r),
            other => other.forward(x),
        }
    }

    /// Backward pass: returns the gradient with respect to the layer input
    /// and — when `want_param_grads` — the gradients of the layer parameters
    /// (in [`Layer::params`] order).
    ///
    /// # Panics
    ///
    /// Panics if `cache` does not belong to this layer type.
    pub fn backward(
        &self,
        cache: &Cache,
        grad_out: &Tensor,
        want_param_grads: bool,
    ) -> (Tensor, Vec<Tensor>) {
        match (self, cache) {
            (Layer::Dense(d), Cache::Input(x)) => d.backward(x, grad_out, want_param_grads),
            (Layer::Conv2d(c), Cache::Input(x)) => c.backward(x, grad_out, want_param_grads),
            (Layer::MaxPool2d(p), Cache::ArgMax { indices, in_shape }) => {
                (p.backward(indices, in_shape, grad_out), vec![])
            }
            (Layer::AvgPool2d(p), Cache::Shape(in_shape)) => {
                (p.backward(in_shape, grad_out), vec![])
            }
            (Layer::Relu, Cache::Mask(mask)) => (relu_backward(mask, grad_out), vec![]),
            (Layer::Sigmoid, Cache::Output(y)) => (sigmoid_backward(y, grad_out), vec![]),
            (Layer::Tanh, Cache::Output(y)) => (tanh_backward(y, grad_out), vec![]),
            (Layer::Softmax, Cache::Output(y)) => (softmax_backward(y, grad_out), vec![]),
            (Layer::Flatten, Cache::Shape(in_shape)) => (grad_out.reshape(in_shape), vec![]),
            (Layer::Dropout(_), Cache::None) => (grad_out.clone(), vec![]),
            (Layer::Dropout(_), Cache::Mask(mask)) => (grad_out.hadamard(mask), vec![]),
            (Layer::BatchNorm(b), Cache::BatchNorm { xhat, inv_std, count, train }) => {
                b.backward(xhat, inv_std, *count, *train, grad_out, want_param_grads)
            }
            (Layer::Residual(r), Cache::Residual { inner, proj }) => {
                r.backward(inner, proj.as_deref(), grad_out, want_param_grads)
            }
            (layer, cache) => panic!("cache {cache:?} does not belong to layer {}", layer.name()),
        }
    }

    /// Trainable parameters, in a fixed order.
    pub fn params(&self) -> Vec<&Tensor> {
        match self {
            Layer::Dense(d) => vec![&d.weight, &d.bias],
            Layer::Conv2d(c) => vec![&c.weight, &c.bias],
            Layer::BatchNorm(b) => vec![&b.gamma, &b.beta],
            Layer::Residual(r) => r.params(),
            _ => vec![],
        }
    }

    /// Trainable parameters, mutably.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::Dense(d) => vec![&mut d.weight, &mut d.bias],
            Layer::Conv2d(c) => vec![&mut c.weight, &mut c.bias],
            Layer::BatchNorm(b) => vec![&mut b.gamma, &mut b.beta],
            Layer::Residual(r) => r.params_mut(),
            _ => vec![],
        }
    }

    /// Non-trainable state tensors (batch-norm running statistics); included
    /// in serialization but not touched by optimizers.
    pub fn state(&self) -> Vec<&Tensor> {
        match self {
            Layer::BatchNorm(b) => vec![&b.running_mean, &b.running_var],
            Layer::Residual(r) => r.state(),
            _ => vec![],
        }
    }

    /// Non-trainable state tensors, mutably.
    pub fn state_mut(&mut self) -> Vec<&mut Tensor> {
        match self {
            Layer::BatchNorm(b) => vec![&mut b.running_mean, &mut b.running_var],
            Layer::Residual(r) => r.state_mut(),
            _ => vec![],
        }
    }

    /// (Re)samples this layer's weights.
    pub fn init_weights(&mut self, r: &mut Rng) {
        match self {
            Layer::Dense(d) => d.init_weights(r),
            Layer::Conv2d(c) => c.init_weights(r),
            Layer::BatchNorm(b) => b.reset(),
            Layer::Residual(res) => res.init_weights(r),
            _ => {}
        }
    }
}

fn flatten_forward(x: &Tensor) -> (Tensor, Cache) {
    let n = x.shape()[0];
    let rest: usize = x.shape()[1..].iter().product();
    (x.reshape(&[n, rest]), Cache::Shape(x.shape().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    #[test]
    fn names_are_informative() {
        assert_eq!(Layer::dense(3, 4).name(), "Dense(3→4)");
        assert_eq!(Layer::conv2d(1, 8, 3, 1, 1).name(), "Conv2d(1→8, k3, s1, p1)");
        assert_eq!(Layer::relu().name(), "ReLU");
        assert_eq!(Layer::dropout(0.25).name(), "Dropout(0.25)");
    }

    #[test]
    fn coverage_layer_classification() {
        assert!(Layer::relu().is_coverage_layer());
        assert!(Layer::softmax().is_coverage_layer());
        assert!(Layer::maxpool2d(2).is_coverage_layer());
        assert!(!Layer::dense(2, 2).is_coverage_layer());
        assert!(!Layer::flatten().is_coverage_layer());
        assert!(!Layer::dropout(0.5).is_coverage_layer());
    }

    #[test]
    fn flatten_round_trip() {
        let x = rng::uniform(&mut rng::rng(0), &[2, 3, 4, 5], -1.0, 1.0);
        let layer = Layer::flatten();
        let (y, cache) = layer.forward(&x);
        assert_eq!(y.shape(), &[2, 60]);
        let (gx, grads) = layer.backward(&cache, &y, true);
        assert_eq!(gx.shape(), x.shape());
        assert!(grads.is_empty());
        assert_eq!(gx.data(), x.data());
    }

    #[test]
    fn output_shape_chain() {
        let shape = Layer::conv2d(1, 4, 5, 1, 0).output_shape(&[1, 28, 28]);
        assert_eq!(shape, vec![4, 24, 24]);
        let shape = Layer::maxpool2d(2).output_shape(&shape);
        assert_eq!(shape, vec![4, 12, 12]);
        let shape = Layer::flatten().output_shape(&shape);
        assert_eq!(shape, vec![576]);
        let shape = Layer::dense(576, 10).output_shape(&shape);
        assert_eq!(shape, vec![10]);
    }

    #[test]
    #[should_panic(expected = "does not belong to layer")]
    fn mismatched_cache_panics() {
        let layer = Layer::relu();
        layer.backward(&Cache::Shape(vec![1]), &Tensor::zeros(&[1, 1]), false);
    }

    #[test]
    fn eval_dropout_is_identity() {
        let x = rng::uniform(&mut rng::rng(1), &[4, 6], -1.0, 1.0);
        let layer = Layer::dropout(0.9);
        let (y, _) = layer.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn stateless_layers_have_no_params() {
        for layer in [Layer::relu(), Layer::flatten(), Layer::softmax(), Layer::maxpool2d(2)] {
            assert!(layer.params().is_empty());
            assert!(layer.state().is_empty());
        }
        assert_eq!(Layer::dense(2, 3).params().len(), 2);
        assert_eq!(Layer::batch_norm(4).params().len(), 2);
        assert_eq!(Layer::batch_norm(4).state().len(), 2);
    }
}
