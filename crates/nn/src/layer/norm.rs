//! Batch normalization and dropout.
//!
//! These two layers are what distinguish the paper's three DAVE self-driving
//! variants (Table 1): `DAVE-Orig` carries a batch-normalization layer,
//! `DAVE-NormInit` removes it in favour of normalized initialization, and
//! `DAVE-Dropout` adds dropout between its final dense layers.

use dx_tensor::{rng::Rng, Tensor};
use rand::Rng as _;

use crate::layer::Cache;

/// Batch normalization over the channel axis.
///
/// Accepts `[N, C, H, W]` (per-channel statistics over batch and space) or
/// `[N, C]` (per-feature statistics over the batch). Training-mode forward
/// uses batch statistics and updates running averages; evaluation-mode
/// forward — the mode DeepXplore differentiates through — uses the frozen
/// running statistics, making the layer an affine map with a well-defined
/// input gradient.
#[derive(Clone, Debug)]
pub struct BatchNorm {
    /// Scale, `[C]`.
    pub gamma: Tensor,
    /// Shift, `[C]`.
    pub beta: Tensor,
    /// Running mean, `[C]` (state, not trained).
    pub running_mean: Tensor,
    /// Running variance, `[C]` (state, not trained).
    pub running_var: Tensor,
    /// Number of channels/features.
    pub features: usize,
    /// Numerical-stability constant.
    pub eps: f32,
    /// Exponential-moving-average decay for running statistics.
    pub momentum: f32,
}

impl BatchNorm {
    /// Creates a batch-norm layer with identity affine parameters.
    pub fn new(features: usize) -> Self {
        Self {
            gamma: Tensor::ones(&[features]),
            beta: Tensor::zeros(&[features]),
            running_mean: Tensor::zeros(&[features]),
            running_var: Tensor::ones(&[features]),
            features,
            eps: 1e-5,
            momentum: 0.9,
        }
    }

    /// Resets affine parameters and running statistics.
    pub fn reset(&mut self) {
        self.gamma = Tensor::ones(&[self.features]);
        self.beta = Tensor::zeros(&[self.features]);
        self.running_mean = Tensor::zeros(&[self.features]);
        self.running_var = Tensor::ones(&[self.features]);
    }

    /// Output shape (without batch): identity.
    ///
    /// # Panics
    ///
    /// Panics if the channel axis does not match `features`.
    pub fn output_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        assert!(
            !in_shape.is_empty() && in_shape[0] == self.features,
            "BatchNorm({}) got input shape {in_shape:?}",
            self.features
        );
        in_shape.to_vec()
    }

    /// Returns `(channels, count-per-channel, spatial)` for a batched shape.
    fn geometry(&self, shape: &[usize]) -> (usize, usize, usize) {
        match shape.len() {
            2 => {
                assert_eq!(shape[1], self.features, "BatchNorm features mismatch {shape:?}");
                (shape[1], shape[0], 1)
            }
            4 => {
                assert_eq!(shape[1], self.features, "BatchNorm channels mismatch {shape:?}");
                (shape[1], shape[0] * shape[2] * shape[3], shape[2] * shape[3])
            }
            _ => panic!("BatchNorm expects [N, C] or [N, C, H, W], got {shape:?}"),
        }
    }

    /// Iterates `f(channel, flat_offset)` over every element of a batched
    /// tensor, channel-major within each sample.
    fn for_each(shape: &[usize], mut f: impl FnMut(usize, usize)) {
        if shape.len() == 2 {
            let (n, c) = (shape[0], shape[1]);
            for i in 0..n {
                for ch in 0..c {
                    f(ch, i * c + ch);
                }
            }
        } else {
            let (n, c, hw) = (shape[0], shape[1], shape[2] * shape[3]);
            for i in 0..n {
                for ch in 0..c {
                    let base = (i * c + ch) * hw;
                    for s in 0..hw {
                        f(ch, base + s);
                    }
                }
            }
        }
    }

    /// Training-mode forward: batch statistics + running-average update.
    pub fn forward_train(&mut self, x: &Tensor) -> (Tensor, Cache) {
        let (c, count, _) = self.geometry(x.shape());
        let mut mean = vec![0.0f32; c];
        Self::for_each(x.shape(), |ch, off| mean[ch] += x.data()[off]);
        for m in &mut mean {
            *m /= count as f32;
        }
        let mut var = vec![0.0f32; c];
        Self::for_each(x.shape(), |ch, off| {
            let d = x.data()[off] - mean[ch];
            var[ch] += d * d;
        });
        for v in &mut var {
            *v /= count as f32;
        }
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(x.shape());
        let mut y = Tensor::zeros(x.shape());
        {
            let xd = x.data();
            let xh = xhat.data_mut();
            Self::for_each(x.shape(), |ch, off| {
                xh[off] = (xd[off] - mean[ch]) * inv_std[ch];
            });
            let yd = y.data_mut();
            Self::for_each(x.shape(), |ch, off| {
                yd[off] = self.gamma.data()[ch] * xh[off] + self.beta.data()[ch];
            });
        }
        for ch in 0..c {
            let rm = &mut self.running_mean.data_mut()[ch];
            *rm = self.momentum * *rm + (1.0 - self.momentum) * mean[ch];
            let rv = &mut self.running_var.data_mut()[ch];
            *rv = self.momentum * *rv + (1.0 - self.momentum) * var[ch];
        }
        (y, Cache::BatchNorm { xhat, inv_std: Tensor::from_vec(inv_std, &[c]), count, train: true })
    }

    /// Evaluation-mode forward using the frozen running statistics.
    pub fn forward_eval(&self, x: &Tensor) -> (Tensor, Cache) {
        let (c, count, _) = self.geometry(x.shape());
        let inv_std: Vec<f32> =
            self.running_var.data().iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(x.shape());
        let mut y = Tensor::zeros(x.shape());
        {
            let xd = x.data();
            let xh = xhat.data_mut();
            let rm = self.running_mean.data();
            Self::for_each(x.shape(), |ch, off| {
                xh[off] = (xd[off] - rm[ch]) * inv_std[ch];
            });
            let yd = y.data_mut();
            Self::for_each(x.shape(), |ch, off| {
                yd[off] = self.gamma.data()[ch] * xh[off] + self.beta.data()[ch];
            });
        }
        (
            y,
            Cache::BatchNorm {
                xhat,
                inv_std: Tensor::from_vec(inv_std, &[c]),
                count,
                train: false,
            },
        )
    }

    /// Backward pass: `(dx, [dgamma, dbeta])`.
    ///
    /// In evaluation mode the statistics are constants, so
    /// `dx = dy · γ · inv_std` exactly; in training mode the full
    /// batch-statistics Jacobian is applied.
    pub fn backward(
        &self,
        xhat: &Tensor,
        inv_std: &Tensor,
        count: usize,
        train: bool,
        grad_out: &Tensor,
        want_param_grads: bool,
    ) -> (Tensor, Vec<Tensor>) {
        let c = self.features;
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        {
            let g = grad_out.data();
            let xh = xhat.data();
            Self::for_each(grad_out.shape(), |ch, off| {
                dgamma[ch] += g[off] * xh[off];
                dbeta[ch] += g[off];
            });
        }
        let mut dx = Tensor::zeros(grad_out.shape());
        {
            let g = grad_out.data();
            let xh = xhat.data();
            let dxd = dx.data_mut();
            let m = count as f32;
            if train {
                Self::for_each(grad_out.shape(), |ch, off| {
                    let scale = self.gamma.data()[ch] * inv_std.data()[ch] / m;
                    dxd[off] = scale * (m * g[off] - xh[off] * dgamma[ch] - dbeta[ch]);
                });
            } else {
                Self::for_each(grad_out.shape(), |ch, off| {
                    dxd[off] = g[off] * self.gamma.data()[ch] * inv_std.data()[ch];
                });
            }
        }
        if want_param_grads {
            (dx, vec![Tensor::from_vec(dgamma, &[c]), Tensor::from_vec(dbeta, &[c])])
        } else {
            (dx, vec![])
        }
    }
}

/// Inverted dropout: at training time each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`; at evaluation the
/// layer is the identity.
#[derive(Clone, Debug)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability {p} must be in [0, 1)");
        Self { p }
    }

    /// Training-mode forward with a freshly sampled mask.
    pub fn forward_train(&self, x: &Tensor, r: &mut Rng) -> (Tensor, Cache) {
        if self.p == 0.0 {
            return (x.clone(), Cache::None);
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.shape());
        for v in mask.data_mut() {
            *v = if r.gen_range(0.0..1.0f32) < keep { scale } else { 0.0 };
        }
        (x.hadamard(&mask), Cache::Mask(mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    #[test]
    fn train_forward_normalizes_batch() {
        let mut bn = BatchNorm::new(2);
        let x = rng::normal(&mut rng::rng(0), &[64, 2], 3.0, 2.0);
        let (y, _) = bn.forward_train(&x);
        // Per-feature mean ≈ 0, var ≈ 1.
        for ch in 0..2 {
            let vals: Vec<f32> = (0..64).map(|i| y.at(&[i, ch])).collect();
            let mean: f32 = vals.iter().sum::<f32>() / 64.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn running_stats_converge_to_population() {
        let mut bn = BatchNorm::new(1);
        let mut r = rng::rng(1);
        for _ in 0..200 {
            let x = rng::normal(&mut r, &[32, 1], 5.0, 1.0);
            bn.forward_train(&x);
        }
        assert!((bn.running_mean.data()[0] - 5.0).abs() < 0.2);
        assert!((bn.running_var.data()[0] - 1.0).abs() < 0.3);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        bn.running_mean = Tensor::from_slice(&[10.0]);
        bn.running_var = Tensor::from_slice(&[4.0]);
        let x = Tensor::from_vec(vec![12.0], &[1, 1]);
        let (y, _) = bn.forward_eval(&x);
        // (12 - 10) / 2 = 1.
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rank4_statistics_are_per_channel() {
        let mut bn = BatchNorm::new(2);
        let mut x = Tensor::zeros(&[2, 2, 2, 2]);
        // Channel 0 constant 1, channel 1 constant 3 — variance zero, so the
        // normalized output is zero and y = beta = 0 everywhere.
        for i in 0..2 {
            for y_ in 0..2 {
                for x_ in 0..2 {
                    x.set(&[i, 0, y_, x_], 1.0);
                    x.set(&[i, 1, y_, x_], 3.0);
                }
            }
        }
        let (y, _) = bn.forward_train(&x);
        assert!(y.data().iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn eval_backward_is_affine_scale() {
        let mut bn = BatchNorm::new(1);
        bn.gamma = Tensor::from_slice(&[3.0]);
        bn.running_var = Tensor::from_slice(&[0.25 - 1e-5]);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let (_, cache) = bn.forward_eval(&x);
        if let Cache::BatchNorm { xhat, inv_std, count, train } = cache {
            let g = Tensor::ones(&[2, 1]);
            let (dx, grads) = bn.backward(&xhat, &inv_std, count, train, &g, true);
            // dy * gamma / sqrt(var+eps) = 1 * 3 / 0.5 = 6.
            assert!(dx.data().iter().all(|v| (v - 6.0).abs() < 1e-3));
            assert_eq!(grads.len(), 2);
        } else {
            panic!("wrong cache kind");
        }
    }

    #[test]
    fn train_backward_annihilates_constant_grad() {
        // In training mode the normalization removes the batch mean, so a
        // constant upstream gradient produces (near-)zero input gradient.
        let mut bn = BatchNorm::new(1);
        let x = rng::normal(&mut rng::rng(2), &[16, 1], 0.0, 1.0);
        let (_, cache) = bn.forward_train(&x);
        if let Cache::BatchNorm { xhat, inv_std, count, train } = cache {
            let g = Tensor::ones(&[16, 1]);
            let (dx, _) = bn.backward(&xhat, &inv_std, count, train, &g, false);
            assert!(dx.data().iter().all(|v| v.abs() < 1e-4));
        } else {
            panic!("wrong cache kind");
        }
    }

    #[test]
    fn dropout_eval_identity_train_scales() {
        let d = Dropout::new(0.5);
        let x = Tensor::ones(&[1, 1000]);
        let (y, cache) = d.forward_train(&x, &mut rng::rng(3));
        if let Cache::Mask(mask) = &cache {
            // Mask entries are 0 or 2 (1 / keep).
            assert!(mask.data().iter().all(|&v| v == 0.0 || v == 2.0));
        } else {
            panic!("wrong cache kind");
        }
        // Expected value preserved within tolerance.
        assert!((y.mean() - 1.0).abs() < 0.15);
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let d = Dropout::new(0.0);
        let x = rng::uniform(&mut rng::rng(4), &[2, 8], -1.0, 1.0);
        let (y, cache) = d.forward_train(&x, &mut rng::rng(5));
        assert_eq!(y, x);
        assert!(matches!(cache, Cache::None));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1)")]
    fn dropout_rejects_p_one() {
        Dropout::new(1.0);
    }
}
