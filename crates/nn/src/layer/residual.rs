//! Residual blocks (He et al. 2016) — `y = f(x) + skip(x)`.
//!
//! The paper's ImageNet trio includes ResNet50; skip connections are the
//! architectural property that distinguishes it from the VGG models, so the
//! engine supports them as a composite layer: a sequential `body` plus an
//! optional 1×1 projection on the skip path for channel/stride changes.

use dx_tensor::{rng::Rng, Tensor};

use crate::layer::{Cache, Conv2d, Layer};

/// A residual block: `y = body(x) + skip(x)` where `skip` is the identity
/// or a 1×1 projection convolution.
#[derive(Clone, Debug)]
pub struct Residual {
    /// The residual function `f`, a sequential layer chain.
    pub body: Vec<Layer>,
    /// Optional projection aligning the skip path with the body output
    /// (needed when the body changes channels or stride).
    pub projection: Option<Conv2d>,
}

impl Residual {
    /// Creates an identity-skip residual block.
    pub fn new(body: Vec<Layer>) -> Self {
        assert!(!body.is_empty(), "residual body cannot be empty");
        Self { body, projection: None }
    }

    /// Creates a residual block with a 1×1 projection skip.
    pub fn with_projection(body: Vec<Layer>, projection: Conv2d) -> Self {
        assert!(!body.is_empty(), "residual body cannot be empty");
        assert_eq!(projection.kernel, 1, "skip projection must be 1x1");
        Self { body, projection: Some(projection) }
    }

    /// Output shape; validates that body and skip paths agree.
    ///
    /// # Panics
    ///
    /// Panics if the two paths produce different shapes.
    pub fn output_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let mut cur = in_shape.to_vec();
        for layer in &self.body {
            cur = layer.output_shape(&cur);
        }
        let skip_shape = match &self.projection {
            Some(p) => p.output_shape(in_shape),
            None => in_shape.to_vec(),
        };
        assert_eq!(cur, skip_shape, "residual paths disagree: body {cur:?} vs skip {skip_shape:?}");
        cur
    }

    /// Evaluation-mode forward pass.
    pub fn forward(&self, x: &Tensor) -> (Tensor, Cache) {
        let mut inner = Vec::with_capacity(self.body.len());
        let mut cur = x.clone();
        for layer in &self.body {
            let (y, cache) = layer.forward(&cur);
            inner.push(cache);
            cur = y;
        }
        let (skip, proj_cache) = match &self.projection {
            Some(p) => {
                let (s, c) = p.forward(x);
                (s, Some(Box::new(c)))
            }
            None => (x.clone(), None),
        };
        (&cur + &skip, Cache::Residual { inner, proj: proj_cache })
    }

    /// Training-mode forward pass (inner dropout/batch-norm active).
    pub fn forward_train(&mut self, x: &Tensor, r: &mut Rng) -> (Tensor, Cache) {
        let mut inner = Vec::with_capacity(self.body.len());
        let mut cur = x.clone();
        for layer in &mut self.body {
            let (y, cache) = layer.forward_train(&cur, r);
            inner.push(cache);
            cur = y;
        }
        let (skip, proj_cache) = match &self.projection {
            Some(p) => {
                let (s, c) = p.forward(x);
                (s, Some(Box::new(c)))
            }
            None => (x.clone(), None),
        };
        (&cur + &skip, Cache::Residual { inner, proj: proj_cache })
    }

    /// Backward pass: gradients flow through both paths and sum at the
    /// input. Parameter gradients are body-first then projection, matching
    /// [`Residual::params`] order.
    pub fn backward(
        &self,
        inner: &[Cache],
        proj: Option<&Cache>,
        grad_out: &Tensor,
        want_param_grads: bool,
    ) -> (Tensor, Vec<Tensor>) {
        let mut grad = grad_out.clone();
        let mut rev_param_grads: Vec<Vec<Tensor>> = Vec::with_capacity(self.body.len());
        for i in (0..self.body.len()).rev() {
            let (gin, pg) = self.body[i].backward(&inner[i], &grad, want_param_grads);
            rev_param_grads.push(pg);
            grad = gin;
        }
        let mut param_grads: Vec<Tensor> = rev_param_grads.into_iter().rev().flatten().collect();
        let skip_grad = match (&self.projection, proj) {
            (Some(p), Some(cache)) => {
                let x = match cache {
                    Cache::Input(x) => x,
                    other => panic!("projection cache mismatch: {other:?}"),
                };
                let (gin, pg) = p.backward(x, grad_out, want_param_grads);
                param_grads.extend(pg);
                gin
            }
            (None, None) => grad_out.clone(),
            _ => panic!("projection/cache presence mismatch"),
        };
        (&grad + &skip_grad, param_grads)
    }

    /// Trainable parameters: body layers in order, then the projection.
    pub fn params(&self) -> Vec<&Tensor> {
        let mut p: Vec<&Tensor> = self.body.iter().flat_map(|l| l.params()).collect();
        if let Some(proj) = &self.projection {
            p.push(&proj.weight);
            p.push(&proj.bias);
        }
        p
    }

    /// Trainable parameters, mutably.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p: Vec<&mut Tensor> = self.body.iter_mut().flat_map(|l| l.params_mut()).collect();
        if let Some(proj) = &mut self.projection {
            p.push(&mut proj.weight);
            p.push(&mut proj.bias);
        }
        p
    }

    /// Non-trainable state (inner batch-norm running statistics).
    pub fn state(&self) -> Vec<&Tensor> {
        self.body.iter().flat_map(|l| l.state()).collect()
    }

    /// Non-trainable state, mutably.
    pub fn state_mut(&mut self) -> Vec<&mut Tensor> {
        self.body.iter_mut().flat_map(|l| l.state_mut()).collect()
    }

    /// (Re)samples all weights in the block.
    pub fn init_weights(&mut self, r: &mut Rng) {
        for layer in &mut self.body {
            layer.init_weights(r);
        }
        if let Some(proj) = &mut self.projection {
            proj.init_weights(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use dx_tensor::rng;

    fn identity_block() -> Residual {
        Residual::new(vec![
            Layer::conv2d(2, 2, 3, 1, 1),
            Layer::tanh(),
            Layer::conv2d(2, 2, 3, 1, 1),
        ])
    }

    #[test]
    fn zero_body_is_identity() {
        // With zero weights the body contributes nothing: y = x.
        let block = identity_block();
        let x = rng::uniform(&mut rng::rng(0), &[1, 2, 4, 4], -1.0, 1.0);
        let (y, _) = block.forward(&x);
        assert_eq!(y, x);
    }

    #[test]
    fn output_shape_validates_paths() {
        let block = identity_block();
        assert_eq!(block.output_shape(&[2, 4, 4]), vec![2, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "residual paths disagree")]
    fn mismatched_paths_panic() {
        let block = Residual::new(vec![Layer::conv2d(2, 4, 3, 1, 1)]);
        block.output_shape(&[2, 4, 4]);
    }

    #[test]
    fn projection_handles_channel_change() {
        let body = vec![Layer::conv2d(2, 4, 3, 2, 1), Layer::relu(), Layer::conv2d(4, 4, 3, 1, 1)];
        let proj = Conv2d::new(2, 4, 1, 2, 0, Init::HeNormal);
        let block = Residual::with_projection(body, proj);
        assert_eq!(block.output_shape(&[2, 8, 8]), vec![4, 4, 4]);
        let mut block = block;
        block.init_weights(&mut rng::rng(1));
        let x = rng::uniform(&mut rng::rng(2), &[2, 2, 8, 8], -1.0, 1.0);
        let (y, _) = block.forward(&x);
        assert_eq!(y.shape(), &[2, 4, 4, 4]);
    }

    #[test]
    fn backward_sums_both_paths() {
        // For the identity block with zero weights, dy/dx = I (body grads
        // are zero through zero conv weights), so dx == grad_out.
        let block = identity_block();
        let x = rng::uniform(&mut rng::rng(3), &[1, 2, 4, 4], -1.0, 1.0);
        let (_, cache) = block.forward(&x);
        let g = rng::uniform(&mut rng::rng(4), &[1, 2, 4, 4], -1.0, 1.0);
        if let Cache::Residual { inner, proj } = cache {
            let (dx, _) = block.backward(&inner, proj.as_deref(), &g, false);
            assert_eq!(dx, g);
        } else {
            panic!("wrong cache kind");
        }
    }

    #[test]
    fn param_order_is_stable() {
        let mut block = identity_block();
        block.init_weights(&mut rng::rng(5));
        let n = block.params().len();
        assert_eq!(n, 4); // Two convs, weight+bias each.
        assert_eq!(block.params_mut().len(), n);
    }

    #[test]
    fn finite_difference_through_block() {
        let mut block = Residual::new(vec![Layer::conv2d(1, 1, 3, 1, 1), Layer::tanh()]);
        block.init_weights(&mut rng::rng(6));
        let x = rng::uniform(&mut rng::rng(7), &[1, 1, 3, 3], -0.5, 0.5);
        let probe = rng::uniform(&mut rng::rng(8), &[1, 1, 3, 3], -1.0, 1.0);
        let (_, cache) = block.forward(&x);
        let (dx, _) = match &cache {
            Cache::Residual { inner, proj } => {
                block.backward(inner, proj.as_deref(), &probe, false)
            }
            _ => panic!("wrong cache"),
        };
        let f = |x: &Tensor| -> f32 {
            let (y, _) = block.forward(x);
            y.hadamard(&probe).sum()
        };
        let h = 1e-2;
        for i in 0..x.len() {
            let mut plus = x.clone();
            plus.data_mut()[i] += h;
            let mut minus = x.clone();
            minus.data_mut()[i] -= h;
            let fd = (f(&plus) - f(&minus)) / (2.0 * h);
            assert!((fd - dx.data()[i]).abs() < 2e-2, "fd {fd} vs analytic {}", dx.data()[i]);
        }
    }
}
