//! Elementwise activations and the row-wise softmax.

use dx_tensor::{Tensor, Workspace};

use crate::layer::Cache;

/// ReLU forward; the cache is the 0/1 derivative mask.
pub fn relu_forward(x: &Tensor) -> (Tensor, Cache) {
    let y = x.map(|v| v.max(0.0));
    let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    (y, Cache::Mask(mask))
}

/// ReLU backward: `dx = dy ⊙ mask`.
pub fn relu_backward(mask: &Tensor, grad_out: &Tensor) -> Tensor {
    grad_out.hadamard(mask)
}

/// Sigmoid forward; the cache is the output.
pub fn sigmoid_forward(x: &Tensor) -> (Tensor, Cache) {
    let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
    (y.clone(), Cache::Output(y))
}

/// Sigmoid backward: `dx = dy ⊙ y(1-y)`.
pub fn sigmoid_backward(y: &Tensor, grad_out: &Tensor) -> Tensor {
    grad_out.zip(y, |g, yv| g * yv * (1.0 - yv))
}

/// Tanh forward; the cache is the output.
pub fn tanh_forward(x: &Tensor) -> (Tensor, Cache) {
    let y = x.map(f32::tanh);
    (y.clone(), Cache::Output(y))
}

/// Tanh backward: `dx = dy ⊙ (1 - y²)`.
pub fn tanh_backward(y: &Tensor, grad_out: &Tensor) -> Tensor {
    grad_out.zip(y, |g, yv| g * (1.0 - yv * yv))
}

/// Row-wise softmax over `[N, K]`; the cache is the output.
///
/// # Panics
///
/// Panics unless the input is rank-2.
pub fn softmax_forward(x: &Tensor) -> (Tensor, Cache) {
    assert_eq!(x.rank(), 2, "softmax expects [N, K], got {:?}", x.shape());
    let (n, k) = (x.shape()[0], x.shape()[1]);
    let mut y = Tensor::zeros(&[n, k]);
    for i in 0..n {
        let row = &x.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        let out_row = &mut y.data_mut()[i * k..(i + 1) * k];
        for (o, &v) in out_row.iter_mut().zip(row.iter()) {
            *o = (v - max).exp();
            denom += *o;
        }
        for o in out_row.iter_mut() {
            *o /= denom;
        }
    }
    (y.clone(), Cache::Output(y))
}

/// Row-wise softmax into a workspace buffer, cache-free.
///
/// Bit-identical to [`softmax_forward`] (same per-row max/exp/denominator
/// order); the output is recoverable from the recorded activations, so the
/// lite forward path stores no cache.
pub(crate) fn softmax_forward_ws(x: &Tensor, ws: &mut Workspace) -> Tensor {
    assert_eq!(x.rank(), 2, "softmax expects [N, K], got {:?}", x.shape());
    let (n, k) = (x.shape()[0], x.shape()[1]);
    let mut buf = ws.take(n * k);
    for i in 0..n {
        let row = &x.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        let out_row = &mut buf[i * k..(i + 1) * k];
        for (o, &v) in out_row.iter_mut().zip(row.iter()) {
            *o = (v - max).exp();
            denom += *o;
        }
        for o in out_row.iter_mut() {
            *o /= denom;
        }
    }
    Tensor::from_vec(buf, x.shape())
}

/// Softmax backward: per row, `dx = y ⊙ (dy - <dy, y>)`.
pub fn softmax_backward(y: &Tensor, grad_out: &Tensor) -> Tensor {
    let (n, k) = (y.shape()[0], y.shape()[1]);
    let mut dx = Tensor::zeros(&[n, k]);
    for i in 0..n {
        let yr = &y.data()[i * k..(i + 1) * k];
        let gr = &grad_out.data()[i * k..(i + 1) * k];
        let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
        let dr = &mut dx.data_mut()[i * k..(i + 1) * k];
        for j in 0..k {
            dr[j] = yr[j] * (gr[j] - dot);
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]).reshape(&[1, 3]);
        let (y, cache) = relu_forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        if let Cache::Mask(m) = cache {
            assert_eq!(m.data(), &[0.0, 0.0, 1.0]);
        } else {
            panic!("wrong cache");
        }
    }

    #[test]
    fn sigmoid_range_and_midpoint() {
        let x = Tensor::from_slice(&[0.0, 10.0, -10.0]).reshape(&[1, 3]);
        let (y, _) = sigmoid_forward(&x);
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        assert!(y.data()[1] > 0.999);
        assert!(y.data()[2] < 0.001);
    }

    #[test]
    fn tanh_is_odd() {
        let x = Tensor::from_slice(&[1.3, -1.3]).reshape(&[1, 2]);
        let (y, _) = tanh_forward(&x);
        assert!((y.data()[0] + y.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let x = rng::uniform(&mut rng::rng(0), &[4, 7], -5.0, 5.0);
        let (y, _) = softmax_forward(&x);
        for i in 0..4 {
            let row_sum: f32 = y.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_of_uniform_grad_is_zero() {
        // Softmax outputs sum to one, so a constant upstream gradient has no
        // effect — the Jacobian annihilates constants.
        let x = rng::uniform(&mut rng::rng(1), &[2, 5], -2.0, 2.0);
        let (y, _) = softmax_forward(&x);
        let g = Tensor::ones(&[2, 5]);
        let dx = softmax_backward(&y, &g);
        assert!(dx.data().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn sigmoid_backward_peak_at_half() {
        let y = Tensor::from_slice(&[0.5, 0.9]).reshape(&[1, 2]);
        let g = Tensor::ones(&[1, 2]);
        let dx = sigmoid_backward(&y, &g);
        assert!((dx.data()[0] - 0.25).abs() < 1e-6);
        assert!((dx.data()[1] - 0.09).abs() < 1e-6);
    }
}
