//! Byte-stable binary weight serialization.
//!
//! Format (little-endian):
//!
//! ```text
//! magic  b"DXW1"
//! u32    tensor count
//! per tensor:
//!   u32      rank
//!   u32[rank] dims
//!   f32[...] data
//! ```
//!
//! Trainable parameters are written first, then state tensors (batch-norm
//! running statistics), both in network order. Loading validates every
//! shape against the target network, so a cache file from a different
//! architecture is rejected instead of silently misloaded.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use dx_tensor::Tensor;

use crate::network::Network;

const MAGIC: &[u8; 4] = b"DXW1";

/// Errors from weight (de)serialization.
#[derive(Debug)]
pub enum WeightsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file is not a DXW1 weight file.
    BadMagic,
    /// Tensor count or a tensor shape does not match the target network.
    ShapeMismatch(String),
}

impl std::fmt::Display for WeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightsError::Io(e) => write!(f, "weights io error: {e}"),
            WeightsError::BadMagic => write!(f, "not a DXW1 weight file"),
            WeightsError::ShapeMismatch(msg) => write!(f, "weight shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for WeightsError {}

impl From<io::Error> for WeightsError {
    fn from(e: io::Error) -> Self {
        WeightsError::Io(e)
    }
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    w.write_all(&(t.rank() as u32).to_le_bytes())?;
    for &d in t.shape() {
        w.write_all(&(d as u32).to_le_bytes())?;
    }
    for &v in t.data() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_tensor(r: &mut impl Read) -> Result<Tensor, WeightsError> {
    let rank = read_u32(r)? as usize;
    if rank > 8 {
        return Err(WeightsError::ShapeMismatch(format!("implausible rank {rank}")));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(read_u32(r)? as usize);
    }
    let n: usize = shape.iter().product();
    let mut data = vec![0.0f32; n];
    let mut buf = [0u8; 4];
    for v in &mut data {
        r.read_exact(&mut buf)?;
        *v = f32::from_le_bytes(buf);
    }
    Ok(Tensor::from_vec(data, &shape))
}

/// Serializes a network's parameters and state to a writer.
pub fn write_weights(net: &Network, w: &mut impl Write) -> io::Result<()> {
    let tensors: Vec<&Tensor> = net.params().into_iter().chain(net.state()).collect();
    w.write_all(MAGIC)?;
    w.write_all(&(tensors.len() as u32).to_le_bytes())?;
    for t in tensors {
        write_tensor(w, t)?;
    }
    Ok(())
}

/// Deserializes parameters and state into an existing network.
///
/// The network must have the exact architecture the file was saved from.
pub fn read_weights(net: &mut Network, r: &mut impl Read) -> Result<(), WeightsError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(WeightsError::BadMagic);
    }
    let count = read_u32(r)? as usize;
    let expected = net.params().len() + net.state().len();
    if count != expected {
        return Err(WeightsError::ShapeMismatch(format!(
            "file has {count} tensors, network needs {expected}"
        )));
    }
    let mut loaded = Vec::with_capacity(count);
    for _ in 0..count {
        loaded.push(read_tensor(r)?);
    }
    {
        let mut targets: Vec<&mut Tensor> = net.params_mut();
        let n_params = targets.len();
        for (i, t) in targets.iter_mut().enumerate() {
            if t.shape() != loaded[i].shape() {
                return Err(WeightsError::ShapeMismatch(format!(
                    "param {i}: file {:?} vs network {:?}",
                    loaded[i].shape(),
                    t.shape()
                )));
            }
            **t = loaded[i].clone();
        }
        let mut states: Vec<&mut Tensor> = net.state_mut();
        for (j, t) in states.iter_mut().enumerate() {
            let i = n_params + j;
            if t.shape() != loaded[i].shape() {
                return Err(WeightsError::ShapeMismatch(format!(
                    "state {j}: file {:?} vs network {:?}",
                    loaded[i].shape(),
                    t.shape()
                )));
            }
            **t = loaded[i].clone();
        }
    }
    Ok(())
}

/// Saves weights to a file.
pub fn save_weights(net: &Network, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_weights(net, &mut w)
}

/// Loads weights from a file.
pub fn load_weights(net: &mut Network, path: &Path) -> Result<(), WeightsError> {
    let mut r = BufReader::new(File::open(path)?);
    read_weights(net, &mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use dx_tensor::rng;

    fn net_with_bn(seed: u64) -> Network {
        let mut net = Network::new(
            &[1, 6, 6],
            vec![
                Layer::conv2d(1, 2, 3, 1, 0),
                Layer::batch_norm(2),
                Layer::relu(),
                Layer::flatten(),
                Layer::dense(2 * 4 * 4, 3),
                Layer::softmax(),
            ],
        );
        net.init_weights(&mut rng::rng(seed));
        net
    }

    #[test]
    fn round_trip_preserves_outputs() {
        let mut net = net_with_bn(0);
        // Touch the running stats so state serialization is exercised.
        let mut r = rng::rng(1);
        let xb = rng::uniform(&mut r, &[8, 1, 6, 6], 0.0, 1.0);
        net.forward_train(&xb, &mut r);
        let x = rng::uniform(&mut r, &[1, 1, 6, 6], 0.0, 1.0);
        let want = net.output(&x);

        let mut buf = Vec::new();
        write_weights(&net, &mut buf).unwrap();
        let mut other = net_with_bn(99);
        read_weights(&mut other, &mut buf.as_slice()).unwrap();
        let got = other.output(&x);
        assert_eq!(got, want);
    }

    #[test]
    fn serialization_is_byte_stable() {
        let net = net_with_bn(2);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_weights(&net, &mut a).unwrap();
        write_weights(&net, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut net = net_with_bn(3);
        let buf = b"NOPE\x00\x00\x00\x00".to_vec();
        match read_weights(&mut net, &mut buf.as_slice()) {
            Err(WeightsError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn wrong_architecture_rejected() {
        let net = net_with_bn(4);
        let mut buf = Vec::new();
        write_weights(&net, &mut buf).unwrap();
        let mut mlp = Network::new(&[4], vec![Layer::dense(4, 2), Layer::softmax()]);
        match read_weights(&mut mlp, &mut buf.as_slice()) {
            Err(WeightsError::ShapeMismatch(_)) => {}
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("dx_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.dxw");
        let net = net_with_bn(5);
        save_weights(&net, &path).unwrap();
        let mut other = net_with_bn(6);
        load_weights(&mut other, &path).unwrap();
        for (a, b) in net.params().iter().zip(other.params().iter()) {
            assert_eq!(a, b);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_io_error() {
        let net = net_with_bn(7);
        let mut buf = Vec::new();
        write_weights(&net, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut other = net_with_bn(8);
        match read_weights(&mut other, &mut buf.as_slice()) {
            Err(WeightsError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
