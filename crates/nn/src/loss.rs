//! Loss functions returning `(value, ∂loss/∂output)` pairs.

use dx_tensor::Tensor;

/// Probability floor used when taking logarithms of softmax outputs,
/// mirroring the epsilon-clipping of the Keras backend the paper built on.
pub const PROB_EPS: f32 = 1e-7;

/// Which loss a model trains with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loss {
    /// Negative log-likelihood over softmax probabilities (classifiers).
    Nll,
    /// Mean squared error (the DAVE steering regressors).
    Mse,
}

/// Negative log-likelihood of integer labels given `[N, K]` probabilities.
///
/// Returns the mean loss and its gradient with respect to the
/// probabilities. Probabilities are clipped to [`PROB_EPS`] before the
/// logarithm, as in Keras.
///
/// # Panics
///
/// Panics on shape/label mismatches.
pub fn nll_loss(probs: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(probs.rank(), 2, "nll_loss expects [N, K], got {:?}", probs.shape());
    let (n, k) = (probs.shape()[0], probs.shape()[1]);
    assert_eq!(labels.len(), n, "nll_loss: {} labels for {} rows", labels.len(), n);
    let mut grad = Tensor::zeros(&[n, k]);
    let mut loss = 0.0;
    for (i, &c) in labels.iter().enumerate() {
        assert!(c < k, "label {c} out of range for {k} classes");
        let p = probs.data()[i * k + c].max(PROB_EPS);
        loss -= p.ln();
        grad.set(&[i, c], -1.0 / (p * n as f32));
    }
    (loss / n as f32, grad)
}

/// Mean squared error between `[N, O]` predictions and targets.
///
/// Returns the mean-over-all-elements loss and its gradient.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "mse_loss: shape mismatch {:?} vs {:?}",
        pred.shape(),
        target.shape()
    );
    let n = pred.len() as f32;
    let diff = pred - target;
    let loss = diff.norm_sq() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nll_perfect_prediction_is_near_zero() {
        let probs = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let (loss, _) = nll_loss(&probs, &[0, 1]);
        assert!(loss.abs() < 1e-6);
    }

    #[test]
    fn nll_wrong_confident_prediction_is_large() {
        let probs = Tensor::from_vec(vec![0.999, 0.001], &[1, 2]);
        let (loss, _) = nll_loss(&probs, &[1]);
        assert!(loss > 5.0);
    }

    #[test]
    fn nll_gradient_points_down_on_true_class() {
        let probs = Tensor::from_vec(vec![0.25, 0.75], &[1, 2]);
        let (_, grad) = nll_loss(&probs, &[0]);
        assert!(grad.at(&[0, 0]) < 0.0);
        assert_eq!(grad.at(&[0, 1]), 0.0);
    }

    #[test]
    fn nll_clips_zero_probability() {
        let probs = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let (loss, grad) = nll_loss(&probs, &[0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mse_known_value_and_grad() {
        let pred = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let target = Tensor::from_vec(vec![0.0, 4.0], &[2, 1]);
        let (loss, grad) = mse_loss(&pred, &target);
        // ((1)^2 + (2)^2) / 2 = 2.5.
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, -2.0]);
    }

    #[test]
    fn mse_zero_at_match() {
        let t = Tensor::from_vec(vec![3.0, -1.0], &[1, 2]);
        let (loss, grad) = mse_loss(&t, &t);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nll_loss_finite_difference() {
        // Check the analytic gradient against finite differences.
        let probs = Tensor::from_vec(vec![0.3, 0.7, 0.6, 0.4], &[2, 2]);
        let labels = [1usize, 0];
        let (_, grad) = nll_loss(&probs, &labels);
        let h = 1e-3;
        for i in 0..2 {
            for j in 0..2 {
                let mut plus = probs.clone();
                plus.set(&[i, j], probs.at(&[i, j]) + h);
                let mut minus = probs.clone();
                minus.set(&[i, j], probs.at(&[i, j]) - h);
                let fd = (nll_loss(&plus, &labels).0 - nll_loss(&minus, &labels).0) / (2.0 * h);
                assert!(
                    (fd - grad.at(&[i, j])).abs() < 1e-2,
                    "fd {fd} vs analytic {}",
                    grad.at(&[i, j])
                );
            }
        }
    }
}
