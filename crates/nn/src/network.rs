//! Sequential networks with recorded forward passes and input gradients.

use dx_tensor::{rng::Rng, Tensor, Workspace};

use crate::layer::{Cache, Layer};

/// A recorded forward pass: every intermediate activation plus the caches
/// the backward pass needs.
///
/// `activations[0]` is the input and `activations[i + 1]` is the output of
/// layer `i`; DeepXplore's neuron coverage reads hidden activations from
/// here, and both backward passes consume the caches.
pub struct ForwardPass {
    /// All activations, `layers.len() + 1` entries, batched.
    pub activations: Vec<Tensor>,
    caches: Vec<Cache>,
}

impl ForwardPass {
    /// The network output (last activation).
    pub fn output(&self) -> &Tensor {
        self.activations.last().expect("forward pass has at least the input")
    }

    /// The input the pass was computed from.
    pub fn input(&self) -> &Tensor {
        &self.activations[0]
    }

    /// Batch size of the pass.
    pub fn batch_size(&self) -> usize {
        self.activations[0].shape()[0]
    }

    /// Extracts one sample of a batched pass as a batch-1 pass.
    ///
    /// Every activation's `row`-th slice is copied out with a leading
    /// dimension of 1. Caches are **not** extracted (they come back as
    /// [`Cache::None`]), so the result supports activation readers — the
    /// coverage trackers, which assert batch size 1 — but not backward
    /// passes.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_pass(&self, row: usize) -> ForwardPass {
        let activations = self
            .activations
            .iter()
            .map(|a| {
                let n = a.shape()[0];
                assert!(row < n, "row {row} out of range for batch {n}");
                let per = a.len() / n;
                let mut shape = a.shape().to_vec();
                shape[0] = 1;
                Tensor::from_vec(a.data()[row * per..(row + 1) * per].to_vec(), &shape)
            })
            .collect();
        ForwardPass { activations, caches: vec![Cache::None; self.caches.len()] }
    }

    /// [`ForwardPass::row_pass`] with the row copies drawn from the
    /// workspace (recycle the result to return them).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_pass_ws(&self, row: usize, ws: &mut Workspace) -> ForwardPass {
        let activations = self
            .activations
            .iter()
            .map(|a| {
                let n = a.shape()[0];
                assert!(row < n, "row {row} out of range for batch {n}");
                let per = a.len() / n;
                let mut shape = a.shape().to_vec();
                shape[0] = 1;
                Tensor::from_vec(ws.take_copy(&a.data()[row * per..(row + 1) * per]), &shape)
            })
            .collect();
        ForwardPass { activations, caches: vec![Cache::None; self.caches.len()] }
    }

    /// Returns every buffer the pass owns (activations plus any cached
    /// tensors) to the workspace for reuse by the next pass.
    pub fn recycle(self, ws: &mut Workspace) {
        for a in self.activations {
            ws.put_tensor(a);
        }
        for c in self.caches {
            recycle_cache(c, ws);
        }
    }
}

fn recycle_cache(cache: Cache, ws: &mut Workspace) {
    match cache {
        Cache::Input(t) | Cache::Output(t) | Cache::Mask(t) => ws.put_tensor(t),
        Cache::BatchNorm { xhat, inv_std, .. } => {
            ws.put_tensor(xhat);
            ws.put_tensor(inv_std);
        }
        Cache::Residual { inner, proj } => {
            for c in inner {
                recycle_cache(c, ws);
            }
            if let Some(p) = proj {
                recycle_cache(*p, ws);
            }
        }
        Cache::ArgMax { .. } | Cache::Shape(_) | Cache::None => {}
    }
}

/// A feed-forward network: an input shape plus a layer pipeline.
///
/// The constructor validates the whole chain by shape inference, so a
/// mis-configured architecture fails at build time with the offending layer
/// named, not deep inside a training run.
#[derive(Clone, Debug)]
pub struct Network {
    layers: Vec<Layer>,
    input_shape: Vec<usize>,
    activation_shapes: Vec<Vec<usize>>,
}

impl Network {
    /// Builds a network, inferring and validating every intermediate shape.
    ///
    /// `input_shape` excludes the batch dimension (e.g. `[1, 28, 28]` for
    /// MNIST-like images, `[135]` for PDF feature vectors).
    ///
    /// # Panics
    ///
    /// Panics if any layer rejects its inferred input shape.
    pub fn new(input_shape: &[usize], layers: Vec<Layer>) -> Self {
        let mut shapes = Vec::with_capacity(layers.len() + 1);
        shapes.push(input_shape.to_vec());
        let mut cur = input_shape.to_vec();
        for layer in &layers {
            cur = layer.output_shape(&cur);
            shapes.push(cur.clone());
        }
        Self { layers, input_shape: input_shape.to_vec(), activation_shapes: shapes }
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The input shape (without batch).
    pub fn input_shape(&self) -> &[usize] {
        &self.input_shape
    }

    /// Shape (without batch) of every activation; index 0 is the input.
    pub fn activation_shapes(&self) -> &[Vec<usize>] {
        &self.activation_shapes
    }

    /// Activation indices whose outputs participate in neuron coverage.
    ///
    /// These are the post-activation outputs of each block (see
    /// [`Layer::is_coverage_layer`]); the final activation is always
    /// included so regression heads without a trailing nonlinearity (the
    /// DAVE models' steering output) are covered too.
    pub fn coverage_activation_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = self
            .layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_coverage_layer())
            .map(|(i, _)| i + 1)
            .collect();
        let last = self.layers.len();
        if last > 0 && idx.last() != Some(&last) {
            idx.push(last);
        }
        idx
    }

    /// (Re)samples every layer's weights from its initialization scheme.
    pub fn init_weights(&mut self, r: &mut Rng) {
        for layer in &mut self.layers {
            layer.init_weights(r);
        }
    }

    /// Evaluation-mode forward pass over a batched input.
    ///
    /// # Panics
    ///
    /// Panics if `x` (sans batch) does not match the network input shape.
    pub fn forward(&self, x: &Tensor) -> ForwardPass {
        self.check_batched_input(x);
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        let mut caches = Vec::with_capacity(self.layers.len());
        activations.push(x.clone());
        let mut cur = x.clone();
        for layer in &self.layers {
            let (y, cache) = layer.forward(&cur);
            caches.push(cache);
            activations.push(y.clone());
            cur = y;
        }
        ForwardPass { activations, caches }
    }

    /// Evaluation-mode forward pass drawing every intermediate activation
    /// from the workspace, with lite caches.
    ///
    /// Bit-identical activations to [`Network::forward`], but steady-state
    /// allocation-free: buffers come from (and should return to, via
    /// [`ForwardPass::recycle`]) the arena, and no derivative caches are
    /// materialized. The resulting pass supports coverage reads and
    /// [`Network::input_gradient_ws`] — not [`Network::backward_params`].
    ///
    /// # Panics
    ///
    /// Panics if `x` (sans batch) does not match the network input shape.
    pub fn forward_lite(&self, x: &Tensor, ws: &mut Workspace) -> ForwardPass {
        self.check_batched_input(x);
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        let mut caches = Vec::with_capacity(self.layers.len());
        activations.push(Tensor::from_vec(ws.take_copy(x.data()), x.shape()));
        for layer in &self.layers {
            let cur = activations.last().expect("at least the input");
            let (y, cache) = layer.forward_lite(cur, ws);
            caches.push(cache);
            activations.push(y);
        }
        ForwardPass { activations, caches }
    }

    /// Training-mode forward pass (dropout active, batch-norm batch stats).
    pub fn forward_train(&mut self, x: &Tensor, r: &mut Rng) -> ForwardPass {
        self.check_batched_input(x);
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        let mut caches = Vec::with_capacity(self.layers.len());
        activations.push(x.clone());
        let mut cur = x.clone();
        for layer in &mut self.layers {
            let (y, cache) = layer.forward_train(&cur, r);
            caches.push(cache);
            activations.push(y.clone());
            cur = y;
        }
        ForwardPass { activations, caches }
    }

    fn check_batched_input(&self, x: &Tensor) {
        assert_eq!(
            &x.shape()[1..],
            self.input_shape.as_slice(),
            "network expects input {:?} (plus batch), got {:?}",
            self.input_shape,
            x.shape()
        );
    }

    /// Convenience: evaluation-mode output for a batched input.
    pub fn output(&self, x: &Tensor) -> Tensor {
        self.forward(x).output().clone()
    }

    /// Predicted class per sample of a batched input (classifiers).
    pub fn predict_classes(&self, x: &Tensor) -> Vec<usize> {
        let out = self.output(x);
        let (n, k) = (out.shape()[0], out.shape()[1]);
        (0..n)
            .map(|i| {
                let row = &out.data()[i * k..(i + 1) * k];
                let mut best = 0;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Predicted class of a single un-batched sample.
    pub fn predict_class(&self, sample: &Tensor) -> usize {
        let batched = crate::util::batch_of_one(sample);
        self.predict_classes(&batched)[0]
    }

    /// Backward pass for training: gradients of every parameter given the
    /// loss gradient at the output. Returns one `Vec<Tensor>` per layer, in
    /// [`Layer::params`] order (empty for parameterless layers).
    pub fn backward_params(&self, pass: &ForwardPass, grad_out: &Tensor) -> Vec<Vec<Tensor>> {
        let mut per_layer = vec![Vec::new(); self.layers.len()];
        let mut grad = grad_out.clone();
        for i in (0..self.layers.len()).rev() {
            let (gin, grads) = self.layers[i].backward(&pass.caches[i], &grad, true);
            per_layer[i] = grads;
            grad = gin;
        }
        per_layer
    }

    /// Gradient of a scalar objective with respect to the **input**.
    ///
    /// The objective is specified by *injections*: pairs
    /// `(activation_index, ∂obj/∂activation)` where `activation_index`
    /// ranges over `1..=num_layers()` (the output of layer `i-1`). The
    /// injected gradients are accumulated as the backward sweep passes each
    /// site, so one call differentiates objectives that mix output-layer
    /// terms (DeepXplore's `obj1`) with hidden-neuron terms (`obj2`).
    ///
    /// # Panics
    ///
    /// Panics if an injection index is out of range or its gradient shape
    /// does not match the activation.
    pub fn input_gradient(&self, pass: &ForwardPass, injections: &[(usize, Tensor)]) -> Tensor {
        let l = self.layers.len();
        for (idx, g) in injections {
            assert!((1..=l).contains(idx), "injection index {idx} out of range 1..={l}");
            assert_eq!(
                g.shape(),
                pass.activations[*idx].shape(),
                "injection at {idx}: gradient shape {:?} does not match activation {:?}",
                g.shape(),
                pass.activations[*idx].shape()
            );
        }
        let mut grad = Tensor::zeros(pass.activations[l].shape());
        for (idx, g) in injections {
            if *idx == l {
                grad += g;
            }
        }
        for i in (0..l).rev() {
            let (gin, _) = self.layers[i].backward(&pass.caches[i], &grad, false);
            grad = gin;
            for (idx, g) in injections {
                if *idx == i {
                    grad += g;
                }
            }
        }
        grad
    }

    /// Workspace-backed variant of [`Network::input_gradient`] for passes
    /// produced by [`Network::forward_lite`].
    ///
    /// Gradient buffers are drawn from and returned to the arena as the
    /// backward sweep walks the layers, and lite caches are differentiated
    /// by re-deriving what the layer needs from the recorded activations
    /// (ReLU's mask from its input, sigmoid/tanh/softmax's output from the
    /// next activation). Passes from [`Network::forward`] also work — their
    /// full caches hit the fallback arm. Results are bit-identical to
    /// [`Network::input_gradient`] up to the sign of zeros (the dense
    /// backward's transposed-rhs kernel; see `Tensor::matmul_bt`).
    ///
    /// # Panics
    ///
    /// Panics if an injection index is out of range or its gradient shape
    /// does not match the activation.
    pub fn input_gradient_ws(
        &self,
        pass: &ForwardPass,
        injections: &[(usize, Tensor)],
        ws: &mut Workspace,
    ) -> Tensor {
        let l = self.layers.len();
        for (idx, g) in injections {
            assert!((1..=l).contains(idx), "injection index {idx} out of range 1..={l}");
            assert_eq!(
                g.shape(),
                pass.activations[*idx].shape(),
                "injection at {idx}: gradient shape {:?} does not match activation {:?}",
                g.shape(),
                pass.activations[*idx].shape()
            );
        }
        let mut grad = ws.take_tensor(pass.activations[l].shape());
        for (idx, g) in injections {
            if *idx == l {
                grad += g;
            }
        }
        for i in (0..l).rev() {
            grad = self.backward_input_step(i, pass, grad, ws);
            for (idx, g) in injections {
                if *idx == i {
                    grad += g;
                }
            }
        }
        grad
    }

    /// One layer of the workspace backward sweep: consumes the incoming
    /// gradient (its buffer is recycled or, for flatten, reshaped in place)
    /// and returns the gradient with respect to the layer input.
    fn backward_input_step(
        &self,
        i: usize,
        pass: &ForwardPass,
        grad: Tensor,
        ws: &mut Workspace,
    ) -> Tensor {
        match (&self.layers[i], &pass.caches[i]) {
            (Layer::Dense(d), Cache::None) => {
                let out = d.backward_input_ws(&grad, ws);
                ws.put_tensor(grad);
                out
            }
            (Layer::Conv2d(c), Cache::Shape(in_shape)) => {
                let out = c.backward_input_ws(in_shape, &grad, ws);
                ws.put_tensor(grad);
                out
            }
            (Layer::Relu, Cache::None) => {
                // The 0/1 mask is re-derived from the recorded layer input;
                // `g * 0.0` (not a literal 0) keeps the historical
                // mask-multiply bit pattern on negative-side gradients.
                let x = &pass.activations[i];
                let mut buf = ws.take_empty(grad.len());
                buf.extend(grad.data().iter().zip(x.data().iter()).map(|(&g, &xv)| {
                    if xv > 0.0 {
                        g
                    } else {
                        g * 0.0
                    }
                }));
                let out = Tensor::from_vec(buf, grad.shape());
                ws.put_tensor(grad);
                out
            }
            (Layer::Sigmoid, Cache::None) => {
                let y = &pass.activations[i + 1];
                let mut buf = ws.take_empty(grad.len());
                buf.extend(
                    grad.data().iter().zip(y.data().iter()).map(|(&g, &yv)| g * yv * (1.0 - yv)),
                );
                let out = Tensor::from_vec(buf, grad.shape());
                ws.put_tensor(grad);
                out
            }
            (Layer::Tanh, Cache::None) => {
                let y = &pass.activations[i + 1];
                let mut buf = ws.take_empty(grad.len());
                buf.extend(
                    grad.data().iter().zip(y.data().iter()).map(|(&g, &yv)| g * (1.0 - yv * yv)),
                );
                let out = Tensor::from_vec(buf, grad.shape());
                ws.put_tensor(grad);
                out
            }
            (Layer::Softmax, Cache::None) => {
                let y = &pass.activations[i + 1];
                let (n, k) = (y.shape()[0], y.shape()[1]);
                let mut buf = ws.take(n * k);
                for r in 0..n {
                    let yr = &y.data()[r * k..(r + 1) * k];
                    let gr = &grad.data()[r * k..(r + 1) * k];
                    let dot: f32 = yr.iter().zip(gr.iter()).map(|(&a, &b)| a * b).sum();
                    let dr = &mut buf[r * k..(r + 1) * k];
                    for j in 0..k {
                        dr[j] = yr[j] * (gr[j] - dot);
                    }
                }
                let out = Tensor::from_vec(buf, grad.shape());
                ws.put_tensor(grad);
                out
            }
            (Layer::Flatten, Cache::Shape(in_shape)) => grad.into_reshaped(in_shape),
            _ => {
                let (gin, _) = self.layers[i].backward(&pass.caches[i], &grad, false);
                ws.put_tensor(grad);
                gin
            }
        }
    }

    /// Gradient of `output[0, class]` with respect to the input — the
    /// building block of DeepXplore's differential objective.
    ///
    /// # Panics
    ///
    /// Panics unless the pass has batch size 1 and a rank-2 output.
    pub fn class_score_input_gradient(&self, pass: &ForwardPass, class: usize) -> Tensor {
        let out = pass.output();
        assert_eq!(out.rank(), 2, "class score needs [N, K] output, got {:?}", out.shape());
        assert_eq!(out.shape()[0], 1, "class score gradient expects batch size 1");
        let mut seed = Tensor::zeros(out.shape());
        seed.set(&[0, class], 1.0);
        self.input_gradient(pass, &[(self.layers.len(), seed)])
    }

    /// All trainable parameters, flattened across layers in order.
    pub fn params(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// All trainable parameters, mutably.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// All non-trainable state tensors (batch-norm running statistics).
    pub fn state(&self) -> Vec<&Tensor> {
        self.layers.iter().flat_map(|l| l.state()).collect()
    }

    /// All non-trainable state tensors, mutably.
    pub fn state_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(|l| l.state_mut()).collect()
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Returns a copy with every weight perturbed by Gaussian noise of the
    /// given relative standard deviation.
    ///
    /// Useful for constructing *similar-but-different* models — the setting
    /// differential testing assumes — without training twice: the copies
    /// agree on most inputs but keep slightly different decision
    /// boundaries.
    pub fn perturbed(&self, noise_std: f32, seed: u64) -> Self {
        let mut out = self.clone();
        let mut r = dx_tensor::rng::rng(seed);
        for p in out.params_mut() {
            for v in p.data_mut() {
                *v += noise_std * dx_tensor::rng::normal_one(&mut r);
            }
        }
        out
    }

    /// Multi-line architecture summary with shapes and parameter counts.
    pub fn describe(&self) -> String {
        let mut s = format!("input {:?}\n", self.input_shape);
        for (i, layer) in self.layers.iter().enumerate() {
            let pcount: usize = layer.params().iter().map(|p| p.len()).sum();
            s.push_str(&format!(
                "{i:>3}: {:<28} -> {:?}  ({} params)\n",
                layer.name(),
                self.activation_shapes[i + 1],
                pcount
            ));
        }
        s.push_str(&format!("total params: {}\n", self.param_count()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::{rng, Workspace};

    fn tiny_mlp(seed: u64) -> Network {
        let mut net = Network::new(
            &[4],
            vec![Layer::dense(4, 6), Layer::relu(), Layer::dense(6, 3), Layer::softmax()],
        );
        net.init_weights(&mut rng::rng(seed));
        net
    }

    fn tiny_cnn(seed: u64) -> Network {
        let mut net = Network::new(
            &[1, 8, 8],
            vec![
                Layer::conv2d(1, 3, 3, 1, 0),
                Layer::relu(),
                Layer::maxpool2d(2),
                Layer::flatten(),
                Layer::dense(3 * 3 * 3, 4),
                Layer::softmax(),
            ],
        );
        net.init_weights(&mut rng::rng(seed));
        net
    }

    #[test]
    fn shape_inference_chain() {
        let net = tiny_cnn(0);
        let shapes = net.activation_shapes();
        assert_eq!(shapes[0], vec![1, 8, 8]);
        assert_eq!(shapes[1], vec![3, 6, 6]);
        assert_eq!(shapes[3], vec![3, 3, 3]);
        assert_eq!(shapes[4], vec![27]);
        assert_eq!(shapes[6], vec![4]);
    }

    #[test]
    #[should_panic(expected = "got input shape")]
    fn bad_architecture_panics_at_build() {
        Network::new(&[4], vec![Layer::dense(5, 2)]);
    }

    #[test]
    fn forward_records_all_activations() {
        let net = tiny_mlp(1);
        let x = rng::uniform(&mut rng::rng(2), &[2, 4], 0.0, 1.0);
        let pass = net.forward(&x);
        assert_eq!(pass.activations.len(), 5);
        assert_eq!(pass.input(), &x);
        assert_eq!(pass.output().shape(), &[2, 3]);
    }

    #[test]
    fn coverage_indices_select_activations() {
        let net = tiny_cnn(3);
        // relu at layer 1 (activation 2), pool at layer 2 (activation 3),
        // softmax at layer 5 (activation 6).
        assert_eq!(net.coverage_activation_indices(), vec![2, 3, 6]);
    }

    #[test]
    fn coverage_indices_include_bare_regression_head() {
        let net = Network::new(&[4], vec![Layer::dense(4, 4), Layer::relu(), Layer::dense(4, 1)]);
        assert_eq!(net.coverage_activation_indices(), vec![2, 3]);
    }

    #[test]
    fn predictions_are_argmax() {
        let net = tiny_mlp(4);
        let x = rng::uniform(&mut rng::rng(5), &[3, 4], 0.0, 1.0);
        let out = net.output(&x);
        let preds = net.predict_classes(&x);
        for (i, &p) in preds.iter().enumerate() {
            let row: Vec<f32> = (0..3).map(|j| out.at(&[i, j])).collect();
            let best =
                row.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            assert_eq!(p, best);
        }
    }

    #[test]
    fn predict_class_single_unsqueezes() {
        let net = tiny_mlp(6);
        let sample = rng::uniform(&mut rng::rng(7), &[4], 0.0, 1.0);
        let c = net.predict_class(&sample);
        assert!(c < 3);
    }

    #[test]
    fn class_score_gradient_shape_matches_input() {
        let net = tiny_cnn(8);
        let x = rng::uniform(&mut rng::rng(9), &[1, 1, 8, 8], 0.0, 1.0);
        let pass = net.forward(&x);
        let g = net.class_score_input_gradient(&pass, 2);
        assert_eq!(g.shape(), x.shape());
        assert!(g.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn injection_at_hidden_layer_differs_from_output_only() {
        let net = tiny_cnn(13);
        let x = rng::uniform(&mut rng::rng(11), &[1, 1, 8, 8], 0.0, 1.0);
        let pass = net.forward(&x);
        let out_only = net.class_score_input_gradient(&pass, 0);
        // Add a hidden-neuron objective at the ReLU output (activation 2).
        let mut hidden = Tensor::zeros(pass.activations[2].shape());
        hidden.set(&[0, 0, 0, 0], 1.0);
        let mut seed = Tensor::zeros(pass.output().shape());
        seed.set(&[0, 0], 1.0);
        let joint = net.input_gradient(&pass, &[(6, seed), (2, hidden)]);
        assert_eq!(joint.shape(), out_only.shape());
        assert_ne!(joint, out_only);
    }

    #[test]
    fn injected_gradients_are_additive() {
        // input_gradient is linear in the injections: g(a) + g(b) == g(a+b).
        let net = tiny_mlp(12);
        let x = rng::uniform(&mut rng::rng(13), &[1, 4], 0.0, 1.0);
        let pass = net.forward(&x);
        let mut a = Tensor::zeros(&[1, 3]);
        a.set(&[0, 0], 1.0);
        let mut b = Tensor::zeros(&[1, 3]);
        b.set(&[0, 2], 0.5);
        let ga = net.input_gradient(&pass, &[(4, a.clone())]);
        let gb = net.input_gradient(&pass, &[(4, b.clone())]);
        let gab = net.input_gradient(&pass, &[(4, &a + &b)]);
        for ((x1, x2), x12) in ga.data().iter().zip(gb.data()).zip(gab.data()) {
            assert!((x1 + x2 - x12).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn injection_index_zero_rejected() {
        let net = tiny_mlp(14);
        let x = rng::uniform(&mut rng::rng(15), &[1, 4], 0.0, 1.0);
        let pass = net.forward(&x);
        net.input_gradient(&pass, &[(0, Tensor::zeros(&[1, 4]))]);
    }

    #[test]
    fn describe_mentions_every_layer() {
        let net = tiny_cnn(16);
        let desc = net.describe();
        assert!(desc.contains("Conv2d"));
        assert!(desc.contains("MaxPool2d"));
        assert!(desc.contains("total params"));
    }

    #[test]
    fn param_count_matches_hand_count() {
        let net = tiny_mlp(17);
        // dense(4,6): 24+6; dense(6,3): 18+3.
        assert_eq!(net.param_count(), 24 + 6 + 18 + 3);
    }

    fn assert_bits_eq_mod_zero_sign(got: &Tensor, want: &Tensor, what: &str) {
        assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
        for (i, (g, w)) in got.data().iter().zip(want.data().iter()).enumerate() {
            assert!(
                g.to_bits() == w.to_bits() || (*g == 0.0 && *w == 0.0),
                "{what}: element {i} differs: {g} ({:#010x}) vs {w} ({:#010x})",
                g.to_bits(),
                w.to_bits()
            );
        }
    }

    #[test]
    fn forward_lite_matches_forward_bitwise() {
        for seed in [21, 22, 23] {
            let net = tiny_cnn(seed);
            let x = rng::uniform(&mut rng::rng(seed + 100), &[3, 1, 8, 8], 0.0, 1.0);
            let full = net.forward(&x);
            let mut ws = Workspace::new();
            let lite = net.forward_lite(&x, &mut ws);
            assert_eq!(full.activations.len(), lite.activations.len());
            for (a, b) in full.activations.iter().zip(lite.activations.iter()) {
                assert_eq!(a.shape(), b.shape());
                for (va, vb) in a.data().iter().zip(b.data().iter()) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
            // Second pass reuses pooled buffers and must stay identical.
            lite.recycle(&mut ws);
            let again = net.forward_lite(&x, &mut ws);
            for (a, b) in full.activations.iter().zip(again.activations.iter()) {
                assert_eq!(a.data(), b.data());
            }
        }
    }

    #[test]
    fn forward_lite_matches_forward_on_mlp_activations() {
        // Covers sigmoid/tanh lite paths not present in the CNN.
        let mut net = Network::new(
            &[5],
            vec![
                Layer::dense(5, 7),
                Layer::sigmoid(),
                Layer::dense(7, 7),
                Layer::tanh(),
                Layer::dense(7, 3),
                Layer::softmax(),
            ],
        );
        net.init_weights(&mut rng::rng(31));
        let x = rng::uniform(&mut rng::rng(32), &[4, 5], -1.0, 1.0);
        let full = net.forward(&x);
        let mut ws = Workspace::new();
        let lite = net.forward_lite(&x, &mut ws);
        for (a, b) in full.activations.iter().zip(lite.activations.iter()) {
            for (va, vb) in a.data().iter().zip(b.data().iter()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn input_gradient_ws_matches_reference() {
        let net = tiny_cnn(25);
        let x = rng::uniform(&mut rng::rng(26), &[1, 1, 8, 8], 0.0, 1.0);
        let full = net.forward(&x);
        let mut ws = Workspace::new();
        let lite = net.forward_lite(&x, &mut ws);
        let mut seed = Tensor::zeros(&[1, 4]);
        seed.set(&[0, 1], 1.0);
        let mut hidden = Tensor::zeros(full.activations[2].shape());
        hidden.set(&[0, 0, 0, 0], 0.5);
        let want = net.input_gradient(&full, &[(6, seed.clone()), (2, hidden.clone())]);
        let got = net.input_gradient_ws(&lite, &[(6, seed), (2, hidden)], &mut ws);
        assert_bits_eq_mod_zero_sign(&got, &want, "cnn joint gradient");
    }

    #[test]
    fn input_gradient_ws_accepts_full_cache_passes() {
        // The fallback arms let a `forward` pass be differentiated too.
        let net = tiny_mlp(27);
        let x = rng::uniform(&mut rng::rng(28), &[1, 4], 0.0, 1.0);
        let full = net.forward(&x);
        let mut seed = Tensor::zeros(&[1, 3]);
        seed.set(&[0, 2], 1.0);
        let want = net.input_gradient(&full, &[(4, seed.clone())]);
        let mut ws = Workspace::new();
        let got = net.input_gradient_ws(&full, &[(4, seed)], &mut ws);
        assert_bits_eq_mod_zero_sign(&got, &want, "full-cache gradient");
    }

    #[test]
    fn batched_forward_rows_match_scalar_exactly() {
        let net = tiny_cnn(33);
        let samples: Vec<Tensor> =
            (0..4).map(|i| rng::uniform(&mut rng::rng(40 + i), &[1, 8, 8], 0.0, 1.0)).collect();
        let batched_x = crate::util::stack(&samples);
        let mut ws = Workspace::new();
        let batched = net.forward_lite(&batched_x, &mut ws);
        for (i, s) in samples.iter().enumerate() {
            let single = net.forward_lite(&crate::util::batch_of_one(s), &mut ws);
            let brow = batched.row_pass(i);
            assert_eq!(brow.activations.len(), single.activations.len());
            for (a, b) in brow.activations.iter().zip(single.activations.iter()) {
                assert_eq!(a.shape(), b.shape());
                for (va, vb) in a.data().iter().zip(b.data().iter()) {
                    assert_eq!(va.to_bits(), vb.to_bits(), "row {i}");
                }
            }
            single.recycle(&mut ws);
        }
    }

    #[test]
    fn batched_gradient_rows_match_scalar_exactly() {
        // The batch-width-invariance cornerstone: the gradient of a per-row
        // objective, computed in an [N, ...] pass, must equal the gradient
        // computed in a batch-1 pass of that row alone.
        let net = tiny_cnn(50);
        let samples: Vec<Tensor> =
            (0..3).map(|i| rng::uniform(&mut rng::rng(60 + i), &[1, 8, 8], 0.0, 1.0)).collect();
        let batched_x = crate::util::stack(&samples);
        let mut ws = Workspace::new();
        let batched = net.forward_lite(&batched_x, &mut ws);
        // Per-row output-class seeds plus a hidden injection on row 1.
        let mut out_seed = Tensor::zeros(&[3, 4]);
        for (i, c) in [1usize, 3, 0].iter().enumerate() {
            out_seed.set(&[i, *c], 1.0);
        }
        let mut hidden = Tensor::zeros(batched.activations[2].shape());
        hidden.set(&[1, 0, 2, 2], 0.25);
        let got = net.input_gradient_ws(&batched, &[(6, out_seed), (2, hidden)], &mut ws);
        for (i, s) in samples.iter().enumerate() {
            let single = net.forward_lite(&crate::util::batch_of_one(s), &mut ws);
            let mut seed1 = Tensor::zeros(&[1, 4]);
            seed1.set(&[0, [1usize, 3, 0][i]], 1.0);
            let mut injections = vec![(6, seed1)];
            if i == 1 {
                let mut h1 = Tensor::zeros(single.activations[2].shape());
                h1.set(&[0, 0, 2, 2], 0.25);
                injections.push((2, h1));
            }
            let want = net.input_gradient_ws(&single, &injections, &mut ws);
            let got_row = crate::util::gather_rows(&got, &[i]);
            assert_bits_eq_mod_zero_sign(&got_row, &want, &format!("gradient row {i}"));
            single.recycle(&mut ws);
        }
    }

    #[test]
    fn row_pass_extracts_rows() {
        let net = tiny_mlp(70);
        let x = rng::uniform(&mut rng::rng(71), &[3, 4], 0.0, 1.0);
        let pass = net.forward(&x);
        assert_eq!(pass.batch_size(), 3);
        let r1 = pass.row_pass(1);
        for (full, one) in pass.activations.iter().zip(r1.activations.iter()) {
            assert_eq!(one.shape()[0], 1);
            let per = full.len() / 3;
            assert_eq!(&full.data()[per..2 * per], one.data());
        }
    }

    #[test]
    fn backward_params_layer_alignment() {
        let net = tiny_mlp(18);
        let x = rng::uniform(&mut rng::rng(19), &[2, 4], 0.0, 1.0);
        let pass = net.forward(&x);
        let grads = net.backward_params(&pass, &Tensor::ones(&[2, 3]));
        assert_eq!(grads.len(), 4);
        assert_eq!(grads[0].len(), 2); // Dense params.
        assert!(grads[1].is_empty()); // ReLU.
        assert_eq!(grads[2].len(), 2);
        assert!(grads[3].is_empty()); // Softmax.
        assert_eq!(grads[0][0].shape(), &[4, 6]);
    }
}
