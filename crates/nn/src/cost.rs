//! Static cost estimation: FLOPs and activation memory per layer.
//!
//! DeepXplore's practicality argument (§8) rests on a performance
//! asymmetry: training a large model takes days, while one forward +
//! input-gradient computation takes milliseconds. This module makes that
//! arithmetic inspectable — the CLI and benches can report how much work
//! one Algorithm 1 iteration costs for each zoo model without running it.

use crate::layer::Layer;
use crate::network::Network;

/// Static cost of one evaluation-mode forward pass at batch size 1.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cost {
    /// Multiply–accumulate operations.
    pub macs: u64,
    /// Scalar activation values produced (memory high-water proxy).
    pub activations: u64,
}

impl Cost {
    /// FLOPs under the usual 2-FLOPs-per-MAC convention.
    pub fn flops(&self) -> u64 {
        self.macs * 2
    }
}

fn numel(shape: &[usize]) -> u64 {
    shape.iter().map(|&d| d as u64).product()
}

/// Cost of one layer given its input shape (without batch).
fn layer_cost(layer: &Layer, in_shape: &[usize], out_shape: &[usize]) -> Cost {
    let out_n = numel(out_shape);
    let macs = match layer {
        Layer::Dense(d) => (d.in_features * d.out_features) as u64,
        Layer::Conv2d(c) => {
            // Each output position consumes a full receptive field.
            let receptive = (c.in_ch * c.kernel * c.kernel) as u64;
            out_n * receptive
        }
        Layer::MaxPool2d(p) => out_n * (p.kernel * p.kernel) as u64,
        Layer::AvgPool2d(p) => out_n * (p.kernel * p.kernel) as u64,
        // One transcendental/comparison per element, counted as one MAC.
        Layer::Relu | Layer::Sigmoid | Layer::Tanh | Layer::Softmax => out_n,
        Layer::Flatten | Layer::Dropout(_) => 0,
        Layer::BatchNorm(_) => 2 * out_n, // Normalize + affine.
        Layer::Residual(r) => {
            let mut cur = in_shape.to_vec();
            let mut macs = 0u64;
            for inner in &r.body {
                let next = inner.output_shape(&cur);
                macs += layer_cost(inner, &cur, &next).macs;
                cur = next;
            }
            if let Some(proj) = &r.projection {
                let proj_out = proj.output_shape(in_shape);
                macs += numel(&proj_out) * (proj.in_ch) as u64;
            }
            macs + out_n // The skip addition.
        }
    };
    Cost { macs, activations: out_n }
}

/// Estimates the forward cost of a network at batch size 1.
pub fn forward_cost(net: &Network) -> Cost {
    let shapes = net.activation_shapes();
    let mut total = Cost::default();
    for (i, layer) in net.layers().iter().enumerate() {
        let c = layer_cost(layer, &shapes[i], &shapes[i + 1]);
        total.macs += c.macs;
        total.activations += c.activations;
    }
    total
}

/// Estimates the cost of one DeepXplore joint-gradient iteration for a set
/// of models: a forward plus an input-backward per model, approximated as
/// 3× the forward MACs (the standard forward:backward ratio).
pub fn iteration_cost(models: &[Network]) -> Cost {
    let mut total = Cost::default();
    for m in models {
        let f = forward_cost(m);
        total.macs += 3 * f.macs;
        total.activations += 2 * f.activations;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    #[test]
    fn dense_cost_is_weight_count() {
        let net = Network::new(&[10], vec![Layer::dense(10, 5)]);
        let c = forward_cost(&net);
        assert_eq!(c.macs, 50);
        assert_eq!(c.activations, 5);
        assert_eq!(c.flops(), 100);
    }

    #[test]
    fn conv_cost_formula() {
        // 1 -> 4 channels, 5x5 kernel, 28x28 input, valid padding: 24x24 out.
        let net = Network::new(&[1, 28, 28], vec![Layer::conv2d(1, 4, 5, 1, 0)]);
        let c = forward_cost(&net);
        assert_eq!(c.macs, (4 * 24 * 24) as u64 * 25);
    }

    #[test]
    fn deeper_networks_cost_more() {
        let small = Network::new(&[8], vec![Layer::dense(8, 8)]);
        let big = Network::new(&[8], vec![Layer::dense(8, 64), Layer::relu(), Layer::dense(64, 8)]);
        assert!(forward_cost(&big).macs > forward_cost(&small).macs);
    }

    #[test]
    fn residual_includes_body_and_skip() {
        let body = vec![Layer::conv2d(2, 2, 3, 1, 1)];
        let plain = Network::new(&[2, 4, 4], body.clone());
        let res = Network::new(&[2, 4, 4], vec![Layer::residual(body)]);
        let plain_macs = forward_cost(&plain).macs;
        let res_macs = forward_cost(&res).macs;
        // Residual adds exactly the skip addition (2*4*4 elements).
        assert_eq!(res_macs, plain_macs + 32);
    }

    #[test]
    fn structural_layers_are_free() {
        let net = Network::new(&[2, 4, 4], vec![Layer::flatten(), Layer::dropout(0.5)]);
        assert_eq!(forward_cost(&net).macs, 0);
    }

    #[test]
    fn iteration_cost_sums_models() {
        let a = Network::new(&[4], vec![Layer::dense(4, 4)]);
        let per_model = forward_cost(&a).macs;
        let c = iteration_cost(&[a.clone(), a]);
        assert_eq!(c.macs, 2 * 3 * per_model);
    }
}
