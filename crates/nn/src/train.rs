//! Mini-batch training loops and evaluation metrics.

use dx_tensor::rng;

use crate::loss::{mse_loss, nll_loss};
use crate::network::Network;
use crate::optim::Optimizer;
use crate::util::gather_rows;
use dx_tensor::Tensor;

/// Configuration for a training run.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size (the final partial batch is used too).
    pub batch_size: usize,
    /// Seed for shuffling, dropout masks and any other training randomness.
    pub seed: u64,
    /// Whether to reshuffle the data every epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 5, batch_size: 32, seed: 0, shuffle: true }
    }
}

/// Summary of a training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// The final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }
}

enum Targets<'a> {
    Labels(&'a [usize]),
    Values(&'a Tensor),
}

fn train_inner(
    net: &mut Network,
    x: &Tensor,
    targets: Targets<'_>,
    cfg: &TrainConfig,
    opt: &mut Optimizer,
) -> TrainReport {
    let n = x.shape()[0];
    match &targets {
        Targets::Labels(l) => assert_eq!(l.len(), n, "{} labels for {} samples", l.len(), n),
        Targets::Values(v) => {
            assert_eq!(v.shape()[0], n, "{} target rows for {} samples", v.shape()[0], n)
        }
    }
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let mut r = rng::rng(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    let mut report = TrainReport::default();
    for _ in 0..cfg.epochs {
        if cfg.shuffle {
            order = rng::permutation(&mut r, n);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0.0;
        for chunk in order.chunks(cfg.batch_size) {
            let xb = gather_rows(x, chunk);
            let pass = net.forward_train(&xb, &mut r);
            let (loss, grad) = match &targets {
                Targets::Labels(labels) => {
                    let lb: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
                    nll_loss(pass.output(), &lb)
                }
                Targets::Values(values) => {
                    let tb = gather_rows(values, chunk);
                    mse_loss(pass.output(), &tb)
                }
            };
            epoch_loss += loss;
            batches += 1.0;
            let layer_grads = net.backward_params(&pass, &grad);
            let flat_grads: Vec<Tensor> = layer_grads.into_iter().flatten().collect();
            let mut params = net.params_mut();
            opt.step(&mut params, &flat_grads);
        }
        report.epoch_losses.push(epoch_loss / batches);
    }
    report
}

/// Trains a classifier (softmax output) with negative log-likelihood.
///
/// `x` is the whole training set `[N, ...]`; `labels` are class indices.
pub fn train_classifier(
    net: &mut Network,
    x: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
    opt: &mut Optimizer,
) -> TrainReport {
    train_inner(net, x, Targets::Labels(labels), cfg, opt)
}

/// Trains a regressor with mean squared error against `[N, O]` targets.
pub fn train_regressor(
    net: &mut Network,
    x: &Tensor,
    targets: &Tensor,
    cfg: &TrainConfig,
    opt: &mut Optimizer,
) -> TrainReport {
    train_inner(net, x, Targets::Values(targets), cfg, opt)
}

/// Classification accuracy on a batched test set, evaluated in chunks to
/// bound peak memory.
pub fn evaluate_classifier(net: &Network, x: &Tensor, labels: &[usize]) -> f32 {
    let n = x.shape()[0];
    assert_eq!(labels.len(), n, "{} labels for {} samples", labels.len(), n);
    let mut correct = 0usize;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(256) {
        let xb = gather_rows(x, chunk);
        let preds = net.predict_classes(&xb);
        for (p, &i) in preds.iter().zip(chunk.iter()) {
            if *p == labels[i] {
                correct += 1;
            }
        }
    }
    correct as f32 / n as f32
}

/// Mean squared error of a regressor on a batched test set.
pub fn evaluate_regressor(net: &Network, x: &Tensor, targets: &Tensor) -> f32 {
    let n = x.shape()[0];
    let idx: Vec<usize> = (0..n).collect();
    let mut total = 0.0;
    let mut count = 0.0;
    for chunk in idx.chunks(256) {
        let xb = gather_rows(x, chunk);
        let tb = gather_rows(targets, chunk);
        let out = net.output(&xb);
        let (loss, _) = mse_loss(&out, &tb);
        total += loss * chunk.len() as f32;
        count += chunk.len() as f32;
    }
    total / count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;

    /// A linearly separable two-class problem in 2-D.
    fn toy_classification(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut r = rng::rng(seed);
        let x = rng::uniform(&mut r, &[n, 2], -1.0, 1.0);
        let labels = (0..n).map(|i| usize::from(x.at(&[i, 0]) + x.at(&[i, 1]) > 0.0)).collect();
        (x, labels)
    }

    fn mlp(seed: u64) -> Network {
        let mut net = Network::new(
            &[2],
            vec![Layer::dense(2, 16), Layer::relu(), Layer::dense(16, 2), Layer::softmax()],
        );
        net.init_weights(&mut rng::rng(seed));
        net
    }

    #[test]
    fn classifier_learns_separable_data() {
        let (x, labels) = toy_classification(256, 0);
        let mut net = mlp(1);
        let before = evaluate_classifier(&net, &x, &labels);
        let cfg = TrainConfig { epochs: 30, batch_size: 32, seed: 2, shuffle: true };
        let report = train_classifier(&mut net, &x, &labels, &cfg, &mut Optimizer::adam(0.01));
        let after = evaluate_classifier(&net, &x, &labels);
        assert!(after > 0.95, "accuracy {after} (was {before})");
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn regressor_learns_linear_map() {
        let mut r = rng::rng(3);
        let x = rng::uniform(&mut r, &[256, 3], -1.0, 1.0);
        // Target: y = 0.5*x0 - 0.25*x1 + 0.1.
        let t_data: Vec<f32> =
            (0..256).map(|i| 0.5 * x.at(&[i, 0]) - 0.25 * x.at(&[i, 1]) + 0.1).collect();
        let targets = Tensor::from_vec(t_data, &[256, 1]);
        let mut net =
            Network::new(&[3], vec![Layer::dense(3, 8), Layer::tanh(), Layer::dense(8, 1)]);
        net.init_weights(&mut r);
        let cfg = TrainConfig { epochs: 60, batch_size: 32, seed: 4, shuffle: true };
        train_regressor(&mut net, &x, &targets, &cfg, &mut Optimizer::adam(0.01));
        let mse = evaluate_regressor(&net, &x, &targets);
        assert!(mse < 0.005, "mse {mse}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let (x, labels) = toy_classification(64, 5);
        let cfg = TrainConfig { epochs: 3, batch_size: 16, seed: 6, shuffle: true };
        let mut n1 = mlp(7);
        let mut n2 = mlp(7);
        train_classifier(&mut n1, &x, &labels, &cfg, &mut Optimizer::sgd(0.1));
        train_classifier(&mut n2, &x, &labels, &cfg, &mut Optimizer::sgd(0.1));
        let p1 = n1.params();
        let p2 = n2.params();
        for (a, b) in p1.iter().zip(p2.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn report_tracks_every_epoch() {
        let (x, labels) = toy_classification(32, 8);
        let mut net = mlp(9);
        let cfg = TrainConfig { epochs: 4, batch_size: 8, seed: 10, shuffle: false };
        let report = train_classifier(&mut net, &x, &labels, &cfg, &mut Optimizer::sgd(0.05));
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    #[should_panic(expected = "labels for")]
    fn mismatched_labels_panic() {
        let (x, _) = toy_classification(8, 11);
        let mut net = mlp(12);
        let cfg = TrainConfig::default();
        train_classifier(&mut net, &x, &[0, 1], &cfg, &mut Optimizer::sgd(0.1));
    }
}
