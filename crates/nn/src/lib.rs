//! A from-scratch neural-network engine built for whitebox testing.
//!
//! This crate is the substrate DeepXplore (SOSP 2017) assumes from
//! TensorFlow/Keras, rebuilt in safe Rust. It provides exactly the
//! capabilities the paper's Algorithm 1 needs, and nothing speculative:
//!
//! - **Batched forward passes that record every intermediate activation**
//!   ([`Network::forward`] returns a [`ForwardPass`]), because neuron
//!   coverage is defined over hidden-layer outputs.
//! - **Gradients of scalar objectives with respect to the *input***,
//!   including objectives that touch hidden neurons, via gradient
//!   *injection* at arbitrary activation indices
//!   ([`Network::input_gradient`]). This is the transposition the paper
//!   highlights: backpropagation treats the input as a constant and the
//!   weights as variables; DeepXplore does the opposite.
//! - **Conventional training** (parameter gradients + SGD/momentum/Adam)
//!   so the fifteen-model zoo can be trained from scratch — the paper uses
//!   pretrained Keras checkpoints we cannot load, so we train equivalents.
//! - **Byte-stable weight serialization** for the train-once model cache.
//!
//! Layout conventions: vectors are `[N, F]`, images are `[N, C, H, W]`.
//! All math is `f32`.
//!
//! # Examples
//!
//! Build, train and differentiate a small classifier:
//!
//! ```
//! use dx_nn::layer::Layer;
//! use dx_nn::{Loss, Network, Optimizer, TrainConfig};
//! use dx_tensor::{rng, Tensor};
//!
//! let mut net = Network::new(
//!     &[4],
//!     vec![Layer::dense(4, 8), Layer::relu(), Layer::dense(8, 3), Layer::softmax()],
//! );
//! let mut r = rng::rng(0);
//! let x = rng::uniform(&mut r, &[32, 4], 0.0, 1.0);
//! let labels: Vec<usize> = (0..32).map(|i| i % 3).collect();
//! net.init_weights(&mut r);
//! let cfg = TrainConfig { epochs: 2, batch_size: 8, seed: 0, shuffle: true };
//! dx_nn::train_classifier(&mut net, &x, &labels, &cfg, &mut Optimizer::sgd(0.1));
//!
//! // Gradient of the class-0 probability with respect to the input.
//! let sample = rng::uniform(&mut r, &[1, 4], 0.0, 1.0);
//! let pass = net.forward(&sample);
//! let g = net.class_score_input_gradient(&pass, 0);
//! assert_eq!(g.shape(), sample.shape());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod init;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optim;
pub mod serialize;
pub mod train;
pub mod util;

pub use layer::Layer;
pub use loss::Loss;
pub use network::{ForwardPass, Network};
pub use optim::Optimizer;
pub use train::{
    evaluate_classifier, evaluate_regressor, train_classifier, train_regressor, TrainConfig,
    TrainReport,
};
