//! Small batching and encoding helpers shared across the workspace.

use dx_tensor::Tensor;

/// Adds a leading batch dimension of 1 to a single sample.
pub fn batch_of_one(sample: &Tensor) -> Tensor {
    let mut shape = vec![1];
    shape.extend_from_slice(sample.shape());
    sample.reshape(&shape)
}

/// Removes a leading batch dimension of 1.
///
/// # Panics
///
/// Panics unless the first dimension is exactly 1.
pub fn unbatch(x: &Tensor) -> Tensor {
    assert_eq!(
        x.shape().first(),
        Some(&1),
        "unbatch expects leading dimension 1, got {:?}",
        x.shape()
    );
    x.reshape(&x.shape()[1..])
}

/// Stacks equally shaped samples into one batched tensor.
///
/// # Panics
///
/// Panics if `samples` is empty or shapes differ.
pub fn stack(samples: &[Tensor]) -> Tensor {
    assert!(!samples.is_empty(), "cannot stack zero samples");
    let shape = samples[0].shape().to_vec();
    let mut data = Vec::with_capacity(samples.len() * samples[0].len());
    for s in samples {
        assert_eq!(
            s.shape(),
            shape.as_slice(),
            "stack: inconsistent sample shapes {:?} vs {:?}",
            s.shape(),
            shape
        );
        data.extend_from_slice(s.data());
    }
    let mut out_shape = vec![samples.len()];
    out_shape.extend_from_slice(&shape);
    Tensor::from_vec(data, &out_shape)
}

/// Gathers rows (axis-0 slices) of a batched tensor by index.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn gather_rows(x: &Tensor, indices: &[usize]) -> Tensor {
    let n = x.shape()[0];
    let row: usize = x.shape()[1..].iter().product();
    let mut data = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        assert!(i < n, "gather_rows: index {i} out of range for {n} rows");
        data.extend_from_slice(&x.data()[i * row..(i + 1) * row]);
    }
    let mut shape = vec![indices.len()];
    shape.extend_from_slice(&x.shape()[1..]);
    Tensor::from_vec(data, &shape)
}

/// Extracts row `i` of a batched tensor as an un-batched sample.
pub fn row(x: &Tensor, i: usize) -> Tensor {
    let n = x.shape()[0];
    assert!(i < n, "row: index {i} out of range for {n} rows");
    let row_len: usize = x.shape()[1..].iter().product();
    Tensor::from_vec(x.data()[i * row_len..(i + 1) * row_len].to_vec(), &x.shape()[1..])
}

/// One-hot encodes labels into `[N, classes]`.
///
/// # Panics
///
/// Panics if any label is out of range.
pub fn one_hot(labels: &[usize], classes: usize) -> Tensor {
    let mut t = Tensor::zeros(&[labels.len(), classes]);
    for (i, &c) in labels.iter().enumerate() {
        assert!(c < classes, "label {c} out of range for {classes} classes");
        t.set(&[i, c], 1.0);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    #[test]
    fn batch_and_unbatch_round_trip() {
        let s = rng::uniform(&mut rng::rng(0), &[3, 4], 0.0, 1.0);
        let b = batch_of_one(&s);
        assert_eq!(b.shape(), &[1, 3, 4]);
        assert_eq!(unbatch(&b), s);
    }

    #[test]
    fn stack_then_row_round_trip() {
        let mut r = rng::rng(1);
        let samples: Vec<Tensor> =
            (0..4).map(|_| rng::uniform(&mut r, &[2, 3], 0.0, 1.0)).collect();
        let batch = stack(&samples);
        assert_eq!(batch.shape(), &[4, 2, 3]);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(&row(&batch, i), s);
        }
    }

    #[test]
    fn gather_reorders_rows() {
        let x = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]);
        let g = gather_rows(&x, &[2, 0, 2]);
        assert_eq!(g.shape(), &[3, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
    }

    #[test]
    fn one_hot_rows() {
        let t = one_hot(&[1, 0, 2], 3);
        assert_eq!(t.data(), &[0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_label() {
        one_hot(&[3], 3);
    }

    #[test]
    #[should_panic(expected = "cannot stack")]
    fn stack_rejects_empty() {
        stack(&[]);
    }
}
