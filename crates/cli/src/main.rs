//! `deepxplore` — the command-line front end of deepxplore-rs.
//!
//! ```text
//! deepxplore models   [--full]                  show the zoo (Table 1 style)
//! deepxplore train    [--dataset X] [--full]    train / warm the weight cache
//! deepxplore generate --dataset X [options]     grow difference-inducing inputs
//! deepxplore campaign --dataset X [options]     run a coverage-guided fuzzing campaign
//! deepxplore coordinator [options]              serve a distributed campaign
//! deepxplore worker --connect HOST:PORT         join a distributed campaign
//! deepxplore dist --workers N [options]         coordinator + N local worker processes
//! deepxplore coverage --dataset X [options]     measure neuron coverage
//! deepxplore metrics-dump --connect HOST:PORT   scrape a live metrics endpoint
//! deepxplore serve    [options]                 multi-tenant campaign service daemon
//! deepxplore submit   --name X [options]        submit a campaign to a service daemon
//! deepxplore status   [--id N] [--report]       query a service daemon's campaigns
//! deepxplore cancel   --id N                    cancel a service campaign
//! deepxplore analyze  [--path DIR] [--fix-hints]  in-tree whitebox static analysis
//! deepxplore help                               this text
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use args::Args;

const SWITCHES: &[&str] = &["full", "save-images", "preexisting", "report", "fix-hints"];

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(&argv, SWITCHES) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `deepxplore help` for usage");
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_str() {
        "models" => commands::models(&parsed),
        "train" => commands::train(&parsed),
        "generate" => commands::generate(&parsed),
        "campaign" => commands::campaign(&parsed),
        "coordinator" => commands::coordinator(&parsed),
        "worker" => commands::worker(&parsed),
        "dist" => commands::dist(&parsed),
        "coverage" => commands::coverage(&parsed),
        "metrics-dump" => commands::metrics_dump(&parsed),
        "serve" => commands::serve(&parsed),
        "submit" => commands::submit(&parsed),
        "status" => commands::status(&parsed),
        "cancel" => commands::cancel(&parsed),
        "analyze" => commands::analyze(&parsed),
        "help" | "--help" | "-h" => {
            print!("{}", commands::HELP);
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`; run `deepxplore help`").into()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
