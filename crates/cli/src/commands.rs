//! Subcommand implementations.

use std::error::Error;
use std::path::PathBuf;

use deepxplore::generator::Generator;
use deepxplore::hyper::NeuronPick;
use deepxplore::{Constraint, Hyperparams};
use dx_coverage::{CoverageConfig, CoverageTracker};
use dx_models::{DatasetKind, Scale, Zoo, ZooConfig};
use dx_nn::util::gather_rows;
use dx_tensor::{rng, Image};

use crate::args::Args;

/// Help text for `deepxplore help`.
pub const HELP: &str = "\
deepxplore — automated whitebox testing of deep learning systems (SOSP 2017)

USAGE:
    deepxplore <command> [options]

COMMANDS:
    models      Show the fifteen-model zoo with neuron counts and accuracy.
    train       Train (or load) zoo models, warming the weight cache.
    generate    Grow difference-inducing inputs for a dataset's model trio.
    coverage    Measure neuron coverage of test inputs on a model.
    help        Show this message.

COMMON OPTIONS:
    --dataset <mnist|imagenet|driving|pdf|drebin|all>   (default: mnist)
    --full                 Use bench-scale datasets/training (default: test scale).

GENERATE OPTIONS:
    --seeds <N>            Seed inputs to grow from (default: 50).
    --constraint <domain|lighting|single-rect|multi-rects|clip>
                           `domain` picks the dataset's §6.2 constraint (default).
    --lambda1 <x> --lambda2 <x> --step <x> --max-iters <N>
                           Algorithm 1 hyperparameters (defaults: Table 2).
    --pick <random|nearest> obj2 neuron selection (default: random).
    --out <dir>            Write seed/diff images (image datasets) to <dir>.
    --save-images          Shorthand for --out dx-out.
    --preexisting          Count seeds the models already disagree on.
    --rng <seed>           Generator RNG seed (default: 42).

COVERAGE OPTIONS:
    --model <id>           Model id (default: the dataset's C1).
    --inputs <N>           Random test inputs to measure (default: 100).
    --threshold <t>        Activation threshold (default: 0.25, scaled).
";

type CmdResult = Result<(), Box<dyn Error>>;

fn zoo_for(args: &Args) -> Zoo {
    let scale = if args.has("full") { Scale::Full } else { Scale::Test };
    Zoo::new(ZooConfig::new(scale))
}

fn dataset_kinds(args: &Args) -> Result<Vec<DatasetKind>, Box<dyn Error>> {
    match args.get_or("dataset", "mnist") {
        "all" => Ok(DatasetKind::ALL.to_vec()),
        "mnist" => Ok(vec![DatasetKind::Mnist]),
        "imagenet" => Ok(vec![DatasetKind::Imagenet]),
        "driving" => Ok(vec![DatasetKind::Driving]),
        "pdf" => Ok(vec![DatasetKind::Pdf]),
        "drebin" => Ok(vec![DatasetKind::Drebin]),
        other => Err(format!("unknown dataset `{other}`").into()),
    }
}

fn trio_ids(kind: DatasetKind) -> [&'static str; 3] {
    match kind {
        DatasetKind::Mnist => ["MNI_C1", "MNI_C2", "MNI_C3"],
        DatasetKind::Imagenet => ["IMG_C1", "IMG_C2", "IMG_C3"],
        DatasetKind::Driving => ["DRV_C1", "DRV_C2", "DRV_C3"],
        DatasetKind::Pdf => ["PDF_C1", "PDF_C2", "PDF_C3"],
        DatasetKind::Drebin => ["APP_C1", "APP_C2", "APP_C3"],
    }
}

/// `deepxplore models`.
pub fn models(args: &Args) -> CmdResult {
    let mut zoo = zoo_for(args);
    println!(
        "{:<8} {:<22} {:>9} {:>10} {:>12} {:>10}",
        "id", "architecture", "#neurons", "params", "fwd MFLOPs", "accuracy"
    );
    for kind in dataset_kinds(args)? {
        for id in trio_ids(kind) {
            let spec = dx_models::SPECS.iter().find(|s| s.id == id).expect("known id");
            let net = zoo.model(id);
            let neurons = CoverageTracker::for_network(&net, CoverageConfig::default()).total();
            let mflops = dx_nn::cost::forward_cost(&net).flops() as f64 / 1e6;
            println!(
                "{:<8} {:<22} {:>9} {:>10} {:>12.2} {:>9.2}%",
                id,
                spec.arch,
                neurons,
                net.param_count(),
                mflops,
                100.0 * zoo.accuracy(id)
            );
        }
    }
    Ok(())
}

/// `deepxplore train`.
pub fn train(args: &Args) -> CmdResult {
    let mut zoo = zoo_for(args);
    for kind in dataset_kinds(args)? {
        for id in trio_ids(kind) {
            let _ = zoo.model(id);
            println!("{id}: ready (accuracy {:.2}%)", 100.0 * zoo.accuracy(id));
        }
    }
    println!("weight cache: {}", zoo.config().cache_dir.display());
    Ok(())
}

fn constraint_for(args: &Args, kind: DatasetKind, ds: &dx_datasets::Dataset) -> Result<Constraint, Box<dyn Error>> {
    let domain_default = match kind {
        DatasetKind::Mnist | DatasetKind::Imagenet | DatasetKind::Driving => Constraint::Lighting,
        DatasetKind::Pdf => Constraint::PdfFeatures {
            scale: ds.feature_scale.as_ref().expect("pdf scales").data().to_vec(),
        },
        DatasetKind::Drebin => Constraint::DrebinManifest {
            manifest_mask: ds.manifest_mask.clone().expect("drebin mask"),
        },
    };
    match args.get_or("constraint", "domain") {
        "domain" => Ok(domain_default),
        "lighting" => Ok(Constraint::Lighting),
        "clip" => Ok(Constraint::Clip),
        "single-rect" => {
            let shape = ds.sample_shape();
            if shape.len() != 3 {
                return Err("single-rect applies to image datasets only".into());
            }
            Ok(Constraint::SingleRect { h: shape[1] / 4, w: shape[2] / 4 })
        }
        "multi-rects" => Ok(Constraint::MultiRects { size: 3, count: 5 }),
        other => Err(format!("unknown constraint `{other}`").into()),
    }
}

/// `deepxplore generate`.
pub fn generate(args: &Args) -> CmdResult {
    let kinds = dataset_kinds(args)?;
    if kinds.len() != 1 {
        return Err("generate needs a single --dataset".into());
    }
    let kind = kinds[0];
    let mut zoo = zoo_for(args);
    let models = zoo.trio(kind);
    let ds = zoo.dataset(kind).clone();
    let constraint = constraint_for(args, kind, &ds)?;

    let base = match kind {
        DatasetKind::Pdf => Hyperparams::pdf_defaults(),
        DatasetKind::Drebin => Hyperparams::drebin_defaults(),
        _ => Hyperparams::image_defaults(),
    };
    let hp = Hyperparams {
        lambda1: args.get_num("lambda1", base.lambda1)?,
        lambda2: args.get_num("lambda2", base.lambda2)?,
        step: args.get_num("step", base.step)?,
        max_iters: args.get_num("max-iters", base.max_iters)?,
        count_preexisting: args.has("preexisting"),
        neuron_pick: match args.get_or("pick", "random") {
            "random" => NeuronPick::Random,
            "nearest" => NeuronPick::Nearest,
            other => return Err(format!("unknown pick strategy `{other}`").into()),
        },
        ..base
    };
    let task = match kind {
        DatasetKind::Driving => deepxplore::generator::TaskKind::Regression {
            direction_threshold: dx_datasets::driving::STEER_DIRECTION_THRESHOLD,
        },
        _ => deepxplore::generator::TaskKind::Classification,
    };
    let n_seeds: usize = args.get_num("seeds", 50)?;
    let rng_seed: u64 = args.get_num("rng", 42)?;

    let mut gen = Generator::new(
        models,
        task,
        hp,
        constraint,
        CoverageConfig::scaled(0.25),
        rng_seed,
    );
    let mut r = rng::rng(rng_seed ^ 0x5eed);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
    let seeds = gather_rows(&ds.test_x, &picks);
    let result = gen.run(&seeds);
    println!(
        "{} differences from {} seeds in {:.1?} ({} iterations); coverage {:.1}%",
        result.stats.differences_found,
        result.stats.seeds_tried,
        result.stats.elapsed,
        result.stats.total_iterations,
        100.0 * gen.mean_coverage()
    );
    for (i, t) in result.tests.iter().enumerate().take(10) {
        println!(
            "  #{i}: seed {} -> {:?} after {} iters (target model {})",
            t.seed_index, t.predictions, t.iterations, t.target_model
        );
    }

    let out_dir: Option<PathBuf> = if args.has("save-images") {
        Some(PathBuf::from("dx-out"))
    } else {
        args.get("out").map(PathBuf::from)
    };
    if let Some(dir) = out_dir {
        if ds.sample_shape().len() == 3 {
            std::fs::create_dir_all(&dir)?;
            for (i, t) in result.tests.iter().enumerate() {
                let shape = ds.sample_shape().to_vec();
                let ext = if shape[0] >= 3 { "ppm" } else { "pgm" };
                let seed_img = Image::from_tensor(gather_rows(&seeds, &[t.seed_index]).reshape(&shape));
                let gen_img = Image::from_tensor(t.input.reshape(&shape));
                seed_img.save(&dir.join(format!("{}_{i}_seed.{ext}", kind.id())))?;
                gen_img.save(&dir.join(format!("{}_{i}_diff.{ext}", kind.id())))?;
            }
            println!("images written to {}", dir.display());
        } else {
            println!("--out ignored: {} is not an image dataset", kind.id());
        }
    }
    Ok(())
}

/// `deepxplore coverage`.
pub fn coverage(args: &Args) -> CmdResult {
    let kinds = dataset_kinds(args)?;
    if kinds.len() != 1 {
        return Err("coverage needs a single --dataset".into());
    }
    let kind = kinds[0];
    let mut zoo = zoo_for(args);
    let default_model = trio_ids(kind)[0];
    let id = args.get_or("model", default_model);
    let net = zoo.model(id);
    let ds = zoo.dataset(kind).clone();
    let n: usize = args.get_num("inputs", 100)?;
    let t: f32 = args.get_num("threshold", 0.25)?;
    let mut tracker = CoverageTracker::for_network(&net, CoverageConfig::scaled(t));
    let mut r = rng::rng(7);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n.min(ds.test_len()));
    let mut curve = Vec::new();
    for (i, &p) in picks.iter().enumerate() {
        tracker.update(&net.forward(&gather_rows(&ds.test_x, &[p])));
        if (i + 1) % (n / 10).max(1) == 0 {
            curve.push((i + 1, tracker.coverage()));
        }
    }
    println!(
        "{id}: {} / {} neurons covered ({:.1}%) by {} inputs at t = {t}",
        tracker.covered_count(),
        tracker.total(),
        100.0 * tracker.coverage(),
        picks.len()
    );
    println!("saturation curve:");
    for (k, c) in curve {
        println!("  {k:>5} inputs: {:>5.1}%", 100.0 * c);
    }
    Ok(())
}
