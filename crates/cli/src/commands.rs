//! Subcommand implementations.

use std::error::Error;
use std::path::PathBuf;

use deepxplore::generator::Generator;
use deepxplore::hyper::NeuronPick;
use deepxplore::{Constraint, Hyperparams};
use dx_coverage::{CoverageConfig, CoverageTracker};
use dx_models::{DatasetKind, Scale, Zoo, ZooConfig};
use dx_nn::util::gather_rows;
use dx_tensor::{rng, Image};

use crate::args::Args;

/// Help text for `deepxplore help`.
pub const HELP: &str = "\
deepxplore — automated whitebox testing of deep learning systems (SOSP 2017)

USAGE:
    deepxplore <command> [options]

COMMANDS:
    models      Show the fifteen-model zoo with neuron counts and accuracy.
    train       Train (or load) zoo models, warming the weight cache.
    generate    Grow difference-inducing inputs for a dataset's model trio.
    campaign    Run a persistent coverage-guided fuzzing campaign.
    coverage    Measure neuron coverage of test inputs on a model.
    help        Show this message.

COMMON OPTIONS:
    --dataset <mnist|imagenet|driving|pdf|drebin|all>   (default: mnist)
    --full                 Use bench-scale datasets/training (default: test scale).

GENERATE OPTIONS:
    --seeds <N>            Seed inputs to grow from (default: 50).
    --constraint <domain|lighting|single-rect|multi-rects|clip>
                           `domain` picks the dataset's §6.2 constraint (default).
    --lambda1 <x> --lambda2 <x> --step <x> --max-iters <N>
                           Algorithm 1 hyperparameters (defaults: Table 2).
    --pick <random|nearest> obj2 neuron selection (default: random).
    --out <dir>            Write seed/diff images (image datasets) to <dir>.
    --save-images          Shorthand for --out dx-out.
    --preexisting          Count seeds the models already disagree on.
    --rng <seed>           Generator RNG seed (default: 42).

CAMPAIGN OPTIONS:
    --workers <N>          Worker threads (default: 1; 1 is deterministic).
    --epochs <N>           Epochs to run (default: 8).
    --batch <N>            Corpus entries fuzzed per epoch (default: 32).
    --duration <secs>      Wall-clock budget; stops at the epoch boundary.
    --seeds <N>            Initial corpus seeds from the test set (default: 64).
    --checkpoint <dir>     Write JSONL corpus/stats/diffs checkpoints to <dir>.
    --resume <dir>         Continue the campaign checkpointed in <dir>
                           (with --checkpoint, fork it into the new dir).
    --target-coverage <p>  Stop once mean neuron coverage reaches p in [0,1].
    --max-corpus <N>       Corpus size cap (default: 4096).
    --rng <seed>           Campaign master seed (default: 42).
    (campaign also honors generate's --constraint/--lambda1/--lambda2/
     --step/--max-iters/--pick hyperparameter options.)

COVERAGE OPTIONS:
    --model <id>           Model id (default: the dataset's C1).
    --inputs <N>           Random test inputs to measure (default: 100).
    --threshold <t>        Activation threshold (default: 0.25, scaled).
";

type CmdResult = Result<(), Box<dyn Error>>;

fn zoo_for(args: &Args) -> Zoo {
    let scale = if args.has("full") { Scale::Full } else { Scale::Test };
    Zoo::new(ZooConfig::new(scale))
}

fn dataset_kinds(args: &Args) -> Result<Vec<DatasetKind>, Box<dyn Error>> {
    match args.get_or("dataset", "mnist") {
        "all" => Ok(DatasetKind::ALL.to_vec()),
        "mnist" => Ok(vec![DatasetKind::Mnist]),
        "imagenet" => Ok(vec![DatasetKind::Imagenet]),
        "driving" => Ok(vec![DatasetKind::Driving]),
        "pdf" => Ok(vec![DatasetKind::Pdf]),
        "drebin" => Ok(vec![DatasetKind::Drebin]),
        other => Err(format!("unknown dataset `{other}`").into()),
    }
}

fn trio_ids(kind: DatasetKind) -> [&'static str; 3] {
    match kind {
        DatasetKind::Mnist => ["MNI_C1", "MNI_C2", "MNI_C3"],
        DatasetKind::Imagenet => ["IMG_C1", "IMG_C2", "IMG_C3"],
        DatasetKind::Driving => ["DRV_C1", "DRV_C2", "DRV_C3"],
        DatasetKind::Pdf => ["PDF_C1", "PDF_C2", "PDF_C3"],
        DatasetKind::Drebin => ["APP_C1", "APP_C2", "APP_C3"],
    }
}

/// `deepxplore models`.
pub fn models(args: &Args) -> CmdResult {
    let mut zoo = zoo_for(args);
    println!(
        "{:<8} {:<22} {:>9} {:>10} {:>12} {:>10}",
        "id", "architecture", "#neurons", "params", "fwd MFLOPs", "accuracy"
    );
    for kind in dataset_kinds(args)? {
        for id in trio_ids(kind) {
            let spec = dx_models::SPECS.iter().find(|s| s.id == id).expect("known id");
            let net = zoo.model(id);
            let neurons = CoverageTracker::for_network(&net, CoverageConfig::default()).total();
            let mflops = dx_nn::cost::forward_cost(&net).flops() as f64 / 1e6;
            println!(
                "{:<8} {:<22} {:>9} {:>10} {:>12.2} {:>9.2}%",
                id,
                spec.arch,
                neurons,
                net.param_count(),
                mflops,
                100.0 * zoo.accuracy(id)
            );
        }
    }
    Ok(())
}

/// `deepxplore train`.
pub fn train(args: &Args) -> CmdResult {
    let mut zoo = zoo_for(args);
    for kind in dataset_kinds(args)? {
        for id in trio_ids(kind) {
            let _ = zoo.model(id);
            println!("{id}: ready (accuracy {:.2}%)", 100.0 * zoo.accuracy(id));
        }
    }
    println!("weight cache: {}", zoo.config().cache_dir.display());
    Ok(())
}

fn constraint_for(args: &Args, kind: DatasetKind, ds: &dx_datasets::Dataset) -> Result<Constraint, Box<dyn Error>> {
    let domain_default = match kind {
        DatasetKind::Mnist | DatasetKind::Imagenet | DatasetKind::Driving => Constraint::Lighting,
        DatasetKind::Pdf => Constraint::PdfFeatures {
            scale: ds.feature_scale.as_ref().expect("pdf scales").data().to_vec(),
        },
        DatasetKind::Drebin => Constraint::DrebinManifest {
            manifest_mask: ds.manifest_mask.clone().expect("drebin mask"),
        },
    };
    match args.get_or("constraint", "domain") {
        "domain" => Ok(domain_default),
        "lighting" => Ok(Constraint::Lighting),
        "clip" => Ok(Constraint::Clip),
        "single-rect" => {
            let shape = ds.sample_shape();
            if shape.len() != 3 {
                return Err("single-rect applies to image datasets only".into());
            }
            Ok(Constraint::SingleRect { h: shape[1] / 4, w: shape[2] / 4 })
        }
        "multi-rects" => Ok(Constraint::MultiRects { size: 3, count: 5 }),
        other => Err(format!("unknown constraint `{other}`").into()),
    }
}

fn hyperparams_for(args: &Args, kind: DatasetKind) -> Result<Hyperparams, Box<dyn Error>> {
    let base = match kind {
        DatasetKind::Pdf => Hyperparams::pdf_defaults(),
        DatasetKind::Drebin => Hyperparams::drebin_defaults(),
        _ => Hyperparams::image_defaults(),
    };
    Ok(Hyperparams {
        lambda1: args.get_num("lambda1", base.lambda1)?,
        lambda2: args.get_num("lambda2", base.lambda2)?,
        step: args.get_num("step", base.step)?,
        max_iters: args.get_num("max-iters", base.max_iters)?,
        count_preexisting: args.has("preexisting"),
        neuron_pick: match args.get_or("pick", "random") {
            "random" => NeuronPick::Random,
            "nearest" => NeuronPick::Nearest,
            other => return Err(format!("unknown pick strategy `{other}`").into()),
        },
        ..base
    })
}

fn task_for(kind: DatasetKind) -> deepxplore::generator::TaskKind {
    match kind {
        DatasetKind::Driving => deepxplore::generator::TaskKind::Regression {
            direction_threshold: dx_datasets::driving::STEER_DIRECTION_THRESHOLD,
        },
        _ => deepxplore::generator::TaskKind::Classification,
    }
}

fn single_dataset(args: &Args, command: &str) -> Result<DatasetKind, Box<dyn Error>> {
    let kinds = dataset_kinds(args)?;
    if kinds.len() != 1 {
        return Err(format!("{command} needs a single --dataset").into());
    }
    Ok(kinds[0])
}

/// `deepxplore generate`.
pub fn generate(args: &Args) -> CmdResult {
    let kind = single_dataset(args, "generate")?;
    let mut zoo = zoo_for(args);
    let models = zoo.trio(kind);
    let ds = zoo.dataset(kind).clone();
    let constraint = constraint_for(args, kind, &ds)?;
    let hp = hyperparams_for(args, kind)?;
    let task = task_for(kind);
    let n_seeds: usize = args.get_num("seeds", 50)?;
    let rng_seed: u64 = args.get_num("rng", 42)?;

    let mut gen = Generator::new(
        models,
        task,
        hp,
        constraint,
        CoverageConfig::scaled(0.25),
        rng_seed,
    );
    let mut r = rng::rng(rng_seed ^ 0x5eed);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
    let seeds = gather_rows(&ds.test_x, &picks);
    let result = gen.run(&seeds);
    println!(
        "{} differences from {} seeds in {:.1?} ({} iterations); coverage {:.1}%",
        result.stats.differences_found,
        result.stats.seeds_tried,
        result.stats.elapsed,
        result.stats.total_iterations,
        100.0 * gen.mean_coverage()
    );
    for (i, t) in result.tests.iter().enumerate().take(10) {
        println!(
            "  #{i}: seed {} -> {:?} after {} iters (target model {})",
            t.seed_index, t.predictions, t.iterations, t.target_model
        );
    }

    let out_dir: Option<PathBuf> = if args.has("save-images") {
        Some(PathBuf::from("dx-out"))
    } else {
        args.get("out").map(PathBuf::from)
    };
    if let Some(dir) = out_dir {
        if ds.sample_shape().len() == 3 {
            std::fs::create_dir_all(&dir)?;
            for (i, t) in result.tests.iter().enumerate() {
                let shape = ds.sample_shape().to_vec();
                let ext = if shape[0] >= 3 { "ppm" } else { "pgm" };
                let seed_img = Image::from_tensor(gather_rows(&seeds, &[t.seed_index]).reshape(&shape));
                let gen_img = Image::from_tensor(t.input.reshape(&shape));
                seed_img.save(&dir.join(format!("{}_{i}_seed.{ext}", kind.id())))?;
                gen_img.save(&dir.join(format!("{}_{i}_diff.{ext}", kind.id())))?;
            }
            println!("images written to {}", dir.display());
        } else {
            println!("--out ignored: {} is not an image dataset", kind.id());
        }
    }
    Ok(())
}

/// `deepxplore campaign`.
pub fn campaign(args: &Args) -> CmdResult {
    let kind = single_dataset(args, "campaign")?;
    let mut zoo = zoo_for(args);
    let models = zoo.trio(kind);
    let ds = zoo.dataset(kind).clone();
    let suite = dx_campaign::ModelSuite {
        models,
        kind: task_for(kind),
        hp: hyperparams_for(args, kind)?,
        constraint: constraint_for(args, kind, &ds)?,
        coverage: CoverageConfig::scaled(0.25),
    };
    let resume_dir = args.get("resume").map(PathBuf::from);
    let checkpoint_dir = args
        .get("checkpoint")
        .map(PathBuf::from)
        .or_else(|| resume_dir.clone());
    let config = dx_campaign::CampaignConfig {
        workers: args.get_num("workers", 1)?,
        epochs: args.get_num("epochs", 8)?,
        batch_per_epoch: args.get_num("batch", 32)?,
        duration: match args.get("duration") {
            None => None,
            Some(v) => {
                let secs = v
                    .parse::<f64>()
                    .map_err(|_| format!("option --duration: cannot parse `{v}`"))?;
                Some(std::time::Duration::try_from_secs_f64(secs).map_err(|_| {
                    format!("option --duration: `{v}` is not a non-negative duration")
                })?)
            }
        },
        desired_coverage: match args.get("target-coverage") {
            None => None,
            Some(v) => Some(
                v.parse::<f32>()
                    .map_err(|_| format!("option --target-coverage: cannot parse `{v}`"))?,
            ),
        },
        checkpoint_dir,
        seed: args.get_num("rng", 42)?,
        max_corpus: args.get_num("max-corpus", 4096)?,
        ..Default::default()
    };
    for (flag, value) in [
        ("workers", config.workers),
        ("epochs", config.epochs),
        ("batch", config.batch_per_epoch),
        ("max-corpus", config.max_corpus),
    ] {
        if value == 0 {
            return Err(format!("option --{flag} must be at least 1").into());
        }
    }
    let mut campaign = match &resume_dir {
        Some(dir) => {
            if args.get("rng").is_some() {
                eprintln!("note: --rng is ignored on resume; the campaign keeps its original seed");
            }
            let c = dx_campaign::Campaign::resume_from(suite, dir, config)?;
            println!(
                "resumed from {}: {} epochs done, corpus {}, {} diffs so far (seed {})",
                dir.display(),
                c.epochs_done(),
                c.corpus().len(),
                c.diffs().len(),
                c.seed()
            );
            c
        }
        None => {
            let n_seeds: usize = args.get_num("seeds", 64)?;
            let rng_seed: u64 = args.get_num("rng", 42)?;
            let mut r = rng::rng(rng_seed ^ 0x5eed);
            let picks =
                rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
            let seeds = gather_rows(&ds.test_x, &picks);
            dx_campaign::Campaign::new(suite, &seeds, config)
        }
    };
    campaign.run()?;
    print!("{}", campaign.report().render());
    println!(
        "coverage per model: [{}]",
        campaign
            .coverage()
            .iter()
            .map(|c| format!("{:.1}%", 100.0 * c))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("coverage over time:");
    for (secs, cov) in campaign.report().coverage_curve() {
        println!("  {secs:>8.2}s {:>6.2}%", 100.0 * cov);
    }
    if let Some(dir) = campaign.last_checkpoint_dir() {
        let dir = dir.display();
        println!("checkpoint written to {dir} (resume with --resume {dir})");
    }
    Ok(())
}

/// `deepxplore coverage`.
pub fn coverage(args: &Args) -> CmdResult {
    let kinds = dataset_kinds(args)?;
    if kinds.len() != 1 {
        return Err("coverage needs a single --dataset".into());
    }
    let kind = kinds[0];
    let mut zoo = zoo_for(args);
    let default_model = trio_ids(kind)[0];
    let id = args.get_or("model", default_model);
    let net = zoo.model(id);
    let ds = zoo.dataset(kind).clone();
    let n: usize = args.get_num("inputs", 100)?;
    let t: f32 = args.get_num("threshold", 0.25)?;
    let mut tracker = CoverageTracker::for_network(&net, CoverageConfig::scaled(t));
    let mut r = rng::rng(7);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n.min(ds.test_len()));
    let mut curve = Vec::new();
    for (i, &p) in picks.iter().enumerate() {
        tracker.update(&net.forward(&gather_rows(&ds.test_x, &[p])));
        if (i + 1) % (n / 10).max(1) == 0 {
            curve.push((i + 1, tracker.coverage()));
        }
    }
    println!(
        "{id}: {} / {} neurons covered ({:.1}%) by {} inputs at t = {t}",
        tracker.covered_count(),
        tracker.total(),
        100.0 * tracker.coverage(),
        picks.len()
    );
    println!("saturation curve:");
    for (k, c) in curve {
        println!("  {k:>5} inputs: {:>5.1}%", 100.0 * c);
    }
    Ok(())
}
