//! Subcommand implementations.

use std::error::Error;
use std::path::PathBuf;

use deepxplore::generator::Generator;
use deepxplore::hyper::NeuronPick;
use deepxplore::{Constraint, Hyperparams};
use dx_coverage::{CoverageConfig, CoverageTracker, MetricSpec, SignalSpec};
use dx_models::{DatasetKind, Scale, Zoo, ZooConfig};
use dx_nn::util::gather_rows;
use dx_tensor::{rng, Image};

use crate::args::Args;

/// Help text for `deepxplore help`.
pub const HELP: &str = "\
deepxplore — automated whitebox testing of deep learning systems (SOSP 2017)

USAGE:
    deepxplore <command> [options]

COMMANDS:
    models      Show the fifteen-model zoo with neuron counts and accuracy.
    train       Train (or load) zoo models, warming the weight cache.
    generate    Grow difference-inducing inputs for a dataset's model trio.
    campaign    Run a persistent coverage-guided fuzzing campaign.
    coordinator Serve a distributed campaign: own the corpus, lease seeds.
    worker      Join a distributed campaign as a fuzzing worker.
    dist        Single-machine fleet: coordinator + N local worker processes.
    coverage    Measure neuron coverage of test inputs on a model.
    metrics-dump One-shot scrape of a running process's metrics endpoint.
    serve       Run the multi-tenant campaign service daemon.
    submit      Submit a campaign to a running service daemon.
    status      Query a service daemon's campaigns (all, one, or a report).
    cancel      Cancel a service campaign.
    analyze     Run the in-tree whitebox static analysis (dx-analysis).
    help        Show this message.

COMMON OPTIONS:
    --dataset <mnist|imagenet|driving|pdf|drebin|all>   (default: mnist)
    --full                 Use bench-scale datasets/training (default: test scale).

OBSERVABILITY OPTIONS (campaign/coordinator/worker/dist):
    --log-level <trace|debug|info|warn|error|off>
                           Stderr threshold for the structured JSONL event
                           stream (default: info).
    --trace-out <file>     Append every event (any level) to <file> as JSONL.
    --metrics-addr <addr>  Serve live Prometheus-text metrics on <addr>
                           (e.g. 127.0.0.1:9890) for the command's lifetime;
                           scrape /metrics, or `deepxplore metrics-dump
                           --connect <addr>` for a one-shot dump.

GENERATE OPTIONS:
    --seeds <N>            Seed inputs to grow from (default: 50).
    --constraint <domain|lighting|single-rect|multi-rects|clip>
                           `domain` picks the dataset's §6.2 constraint (default).
    --lambda1 <x> --lambda2 <x> --step <x> --max-iters <N>
                           Algorithm 1 hyperparameters (defaults: Table 2).
    --pick <random|nearest> obj2 neuron selection (default: random).
    --out <dir>            Write seed/diff images (image datasets) to <dir>.
    --save-images          Shorthand for --out dx-out.
    --preexisting          Count seeds the models already disagree on.
    --rng <seed>           Generator RNG seed (default: 42).

CAMPAIGN OPTIONS:
    --workers <N>          Worker threads (default: 1; 1 is deterministic).
    --epochs <N>           Epochs to run (default: 8).
    --batch <N>            Seeds grown per batched generator call — the
                           execution tile width (default: 4). Pure tiling:
                           results are bit-identical for any width. Tiles
                           are capped by --merge-every, which fixes the
                           batched-call boundaries.
    --batch-per-epoch <N>  Corpus entries fuzzed per epoch (default: 32).
    --merge-every <N>      Jobs per worker between coverage syncs with the
                           global union — also the batched-call chunk size
                           (default: 4).
    --duration <secs>      Wall-clock budget; stops at the epoch boundary.
    --seeds <N>            Initial corpus seeds from the test set (default: 64).
    --checkpoint <dir>     Write JSONL corpus/stats/diffs checkpoints to <dir>.
    --resume <dir>         Continue the campaign checkpointed in <dir>
                           (with --checkpoint, fork it into the new dir).
    --target-coverage <p>  Stop once mean neuron coverage reaches p in [0,1].
    --max-corpus <N>       Corpus size cap (default: 4096).
    --energy <classic|rarity>
                           Corpus energy model; `rarity` weights newly
                           covered units by global-union saturation.
    --metric <spec>        Coverage signal the campaign steers by
                           (default: neuron). spec = metric[+metric...],
                           metric = neuron | multisection[:k] | boundary.
                           `multisection:k` primes per-neuron output ranges
                           from the training set at startup and counts
                           range sections (DeepGauge; k defaults to 4);
                           `boundary` counts the corner regions outside
                           those ranges (below low / above high). Joining
                           metrics with `+` (e.g. multisection:8+boundary)
                           steers by the union of the components, with
                           per-component report columns and rarity energy.
    --rng <seed>           Campaign master seed (default: 42).
    (campaign also honors generate's --constraint/--lambda1/--lambda2/
     --step/--max-iters/--pick hyperparameter options.)

COORDINATOR OPTIONS:
    --listen <addr>        Bind address (default: 127.0.0.1:4787).
    --steps <N>            Total seed-step budget; omit for unbounded.
    --batch <N>            Steps per statistics round (default: 32).
    --lease <N>            Jobs per worker lease (default: 4).
    --lease-max <N>        Adaptive lease ceiling: when above --lease,
                           per-worker lease sizes grow toward this for
                           fast workers (default: 0 = fixed leases).
    --lease-timeout <secs> Requeue a silent lease after this (default: 30).
    --auth-token <secret>  Require workers to prove this shared secret at
                           admission (HMAC challenge/response). Prefer the
                           DX_AUTH_TOKEN env var: argv is visible in `ps`.
    --spot-check-rate <p>  Re-execute this fraction of reported diffs
                           through the coordinator's own models; claims
                           that do not reproduce are quarantined and the
                           worker's lease discarded (default: 0 = off).
    --trust-threshold <p>  Evict a worker once more than this fraction of
                           its spot-checked claims failed (default: 0.5).
    --seeds/--checkpoint/--resume/--duration/--target-coverage/
    --max-corpus/--energy/--metric/--rng as for campaign. Type `drain`
    + Enter on stdin for a graceful drain + final checkpoint; EOF alone
    is ignored, so the coordinator can run detached.

WORKER OPTIONS:
    --connect <addr>       Coordinator address (required).
    --lease <N>            Jobs requested per lease (default: 4; advisory —
                           an adaptive coordinator may grant more).
    --batch <N>            Seeds grown per batched generator call within a
                           lease (default: 4).
    --heartbeat-every <N>  Heartbeat once this many jobs ran since the last
                           one, between batched calls (default: 1).
    --auth-token <secret>  Shared secret answering the coordinator's auth
                           challenge (or the DX_AUTH_TOKEN env var).
    (Pass the same --dataset/--full/--metric/hyperparameter flags as the
     coordinator; model shapes, the coverage metric, hyperparameters and
     the constraint are all fingerprinted and verified at admission.)

DIST OPTIONS:
    --workers <N>          Local worker processes to spawn (default: 2).
    (Plus all coordinator options; --listen defaults to an ephemeral port.
     The auth token is forwarded to spawned workers via DX_AUTH_TOKEN,
     never via argv.)

COVERAGE OPTIONS:
    --model <id>           Model id (default: the dataset's C1).
    --inputs <N>           Random test inputs to measure (default: 100).
    --threshold <t>        Activation threshold (default: 0.25, scaled).

SERVE OPTIONS (the long-running multi-tenant daemon):
    --listen <addr>        Worker-fleet bind address (default: 127.0.0.1:4787).
    --api-addr <addr>      HTTP control-plane address (default: 127.0.0.1:8787);
                           also serves per-tenant /metrics.
    --state-dir <dir>      Per-tenant checkpoints under <dir>/<id>/; the
                           daemon resumes every tenant from here on restart.
    --max-tenants <N>      Live (non-terminal) campaign cap (default: 8).
    --seeds <N>            Rows in the shared seed pool tenants slice
                           (default: 64), drawn with --rng as elsewhere.
    --batch <N>            Absorbed steps per tenant statistics round
                           (default: 16).
    --lease/--lease-timeout/--max-corpus/--energy/--auth-token as for
    coordinator. SIGTERM or Ctrl-C drains in-flight leases and writes a
    final checkpoint for every tenant before exiting.

SERVICE CLIENT OPTIONS (submit/status/cancel):
    --api <addr>           Daemon API address (default: 127.0.0.1:8787).
    submit: --name <campaign> (required); --seeds <N> --seed-offset <N>
            --rng <seed> --steps <N> --target-coverage <p> --quota <p>
            --weight <x>; --metric/--constraint assert the fleet's setup.
    status: --id <N> for one campaign (add --report for the rendered
            campaign report); no --id lists all campaigns.
    cancel: --id <N> (required).

ANALYZE OPTIONS:
    --path <dir>           Scan <dir> instead of the enclosing workspace.
    --fix-hints            Print a remediation hint under each finding.
    (Checks: lock-order deadlock cycles, hot-path panics, protocol and
     checkpoint-schema drift, the telemetry-name catalog, and crate
     attributes. Exits non-zero on any finding; suppress one — never
     silently — with `// analysis: allow(check): justification`.)
";

type CmdResult = Result<(), Box<dyn Error>>;

/// Applies the observability flags shared by the long-running commands:
/// `--log-level` sets the stderr threshold of the structured event
/// stream, `--trace-out` appends every event to a JSONL file, and
/// `--metrics-addr` serves the process-global metrics registry as
/// Prometheus text. The returned server (if any) answers scrapes for as
/// long as the caller holds it — keep it alive for the whole command.
fn init_telemetry(
    args: &Args,
) -> Result<Option<dx_telemetry::http::MetricsServer>, Box<dyn Error>> {
    if let Some(level) = args.get("log-level") {
        let level = level
            .parse::<dx_telemetry::events::Level>()
            .map_err(|e| format!("option --log-level: {e}"))?;
        dx_telemetry::events::set_level(level);
    }
    if let Some(path) = args.get("trace-out") {
        dx_telemetry::events::set_trace_file(path)
            .map_err(|e| format!("option --trace-out: {e}"))?;
    }
    match args.get("metrics-addr") {
        None => Ok(None),
        Some(addr) => {
            let server = dx_telemetry::http::serve(addr, dx_telemetry::global().clone())
                .map_err(|e| format!("option --metrics-addr: {e}"))?;
            println!("metrics endpoint on http://{}/metrics", server.addr());
            Ok(Some(server))
        }
    }
}

/// `deepxplore metrics-dump`: one-shot scrape of a `--metrics-addr`
/// endpoint, printed as Prometheus text.
pub fn metrics_dump(args: &Args) -> CmdResult {
    let addr = args.get("connect").ok_or("metrics-dump needs --connect <host:port>")?;
    print!("{}", dx_telemetry::http::scrape(addr)?);
    Ok(())
}

fn zoo_for(args: &Args) -> Zoo {
    let scale = if args.has("full") { Scale::Full } else { Scale::Test };
    Zoo::new(ZooConfig::new(scale))
}

fn dataset_kinds(args: &Args) -> Result<Vec<DatasetKind>, Box<dyn Error>> {
    match args.get_or("dataset", "mnist") {
        "all" => Ok(DatasetKind::ALL.to_vec()),
        "mnist" => Ok(vec![DatasetKind::Mnist]),
        "imagenet" => Ok(vec![DatasetKind::Imagenet]),
        "driving" => Ok(vec![DatasetKind::Driving]),
        "pdf" => Ok(vec![DatasetKind::Pdf]),
        "drebin" => Ok(vec![DatasetKind::Drebin]),
        other => Err(format!("unknown dataset `{other}`").into()),
    }
}

fn trio_ids(kind: DatasetKind) -> [&'static str; 3] {
    match kind {
        DatasetKind::Mnist => ["MNI_C1", "MNI_C2", "MNI_C3"],
        DatasetKind::Imagenet => ["IMG_C1", "IMG_C2", "IMG_C3"],
        DatasetKind::Driving => ["DRV_C1", "DRV_C2", "DRV_C3"],
        DatasetKind::Pdf => ["PDF_C1", "PDF_C2", "PDF_C3"],
        DatasetKind::Drebin => ["APP_C1", "APP_C2", "APP_C3"],
    }
}

/// `deepxplore models`.
pub fn models(args: &Args) -> CmdResult {
    let mut zoo = zoo_for(args);
    println!(
        "{:<8} {:<22} {:>9} {:>10} {:>12} {:>10}",
        "id", "architecture", "#neurons", "params", "fwd MFLOPs", "accuracy"
    );
    for kind in dataset_kinds(args)? {
        for id in trio_ids(kind) {
            let spec = dx_models::SPECS.iter().find(|s| s.id == id).expect("known id");
            let net = zoo.model(id);
            let neurons = CoverageTracker::for_network(&net, CoverageConfig::default()).total();
            let mflops = dx_nn::cost::forward_cost(&net).flops() as f64 / 1e6;
            println!(
                "{:<8} {:<22} {:>9} {:>10} {:>12.2} {:>9.2}%",
                id,
                spec.arch,
                neurons,
                net.param_count(),
                mflops,
                100.0 * zoo.accuracy(id)
            );
        }
    }
    Ok(())
}

/// `deepxplore train`.
pub fn train(args: &Args) -> CmdResult {
    let mut zoo = zoo_for(args);
    for kind in dataset_kinds(args)? {
        for id in trio_ids(kind) {
            let _ = zoo.model(id);
            println!("{id}: ready (accuracy {:.2}%)", 100.0 * zoo.accuracy(id));
        }
    }
    println!("weight cache: {}", zoo.config().cache_dir.display());
    Ok(())
}

fn constraint_for(
    args: &Args,
    kind: DatasetKind,
    ds: &dx_datasets::Dataset,
) -> Result<Constraint, Box<dyn Error>> {
    let domain_default = match kind {
        DatasetKind::Mnist | DatasetKind::Imagenet | DatasetKind::Driving => Constraint::Lighting,
        DatasetKind::Pdf => Constraint::PdfFeatures {
            scale: ds.feature_scale.as_ref().expect("pdf scales").data().to_vec(),
        },
        DatasetKind::Drebin => Constraint::DrebinManifest {
            manifest_mask: ds.manifest_mask.clone().expect("drebin mask"),
        },
    };
    match args.get_or("constraint", "domain") {
        "domain" => Ok(domain_default),
        "lighting" => Ok(Constraint::Lighting),
        "clip" => Ok(Constraint::Clip),
        "single-rect" => {
            let shape = ds.sample_shape();
            if shape.len() != 3 {
                return Err("single-rect applies to image datasets only".into());
            }
            Ok(Constraint::SingleRect { h: shape[1] / 4, w: shape[2] / 4 })
        }
        "multi-rects" => Ok(Constraint::MultiRects { size: 3, count: 5 }),
        other => Err(format!("unknown constraint `{other}`").into()),
    }
}

fn hyperparams_for(args: &Args, kind: DatasetKind) -> Result<Hyperparams, Box<dyn Error>> {
    let base = match kind {
        DatasetKind::Pdf => Hyperparams::pdf_defaults(),
        DatasetKind::Drebin => Hyperparams::drebin_defaults(),
        _ => Hyperparams::image_defaults(),
    };
    Ok(Hyperparams {
        lambda1: args.get_num("lambda1", base.lambda1)?,
        lambda2: args.get_num("lambda2", base.lambda2)?,
        step: args.get_num("step", base.step)?,
        max_iters: args.get_num("max-iters", base.max_iters)?,
        count_preexisting: args.has("preexisting"),
        neuron_pick: match args.get_or("pick", "random") {
            "random" => NeuronPick::Random,
            "nearest" => NeuronPick::Nearest,
            other => return Err(format!("unknown pick strategy `{other}`").into()),
        },
        ..base
    })
}

fn task_for(kind: DatasetKind) -> deepxplore::generator::TaskKind {
    match kind {
        DatasetKind::Driving => deepxplore::generator::TaskKind::Regression {
            direction_threshold: dx_datasets::driving::STEER_DIRECTION_THRESHOLD,
        },
        _ => deepxplore::generator::TaskKind::Classification,
    }
}

fn single_dataset(args: &Args, command: &str) -> Result<DatasetKind, Box<dyn Error>> {
    let kinds = dataset_kinds(args)?;
    if kinds.len() != 1 {
        return Err(format!("{command} needs a single --dataset").into());
    }
    Ok(kinds[0])
}

/// `deepxplore generate`.
pub fn generate(args: &Args) -> CmdResult {
    let kind = single_dataset(args, "generate")?;
    let mut zoo = zoo_for(args);
    let models = zoo.trio(kind);
    let ds = zoo.dataset(kind).clone();
    let constraint = constraint_for(args, kind, &ds)?;
    let hp = hyperparams_for(args, kind)?;
    let task = task_for(kind);
    let n_seeds: usize = args.get_num("seeds", 50)?;
    let rng_seed: u64 = args.get_num("rng", 42)?;

    let mut gen =
        Generator::new(models, task, hp, constraint, CoverageConfig::scaled(0.25), rng_seed);
    let mut r = rng::rng(rng_seed ^ 0x5eed);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
    let seeds = gather_rows(&ds.test_x, &picks);
    let result = gen.run(&seeds);
    println!(
        "{} differences from {} seeds in {:.1?} ({} iterations); coverage {:.1}%",
        result.stats.differences_found,
        result.stats.seeds_tried,
        result.stats.elapsed,
        result.stats.total_iterations,
        100.0 * gen.mean_coverage()
    );
    for (i, t) in result.tests.iter().enumerate().take(10) {
        println!(
            "  #{i}: seed {} -> {:?} after {} iters (target model {})",
            t.seed_index, t.predictions, t.iterations, t.target_model
        );
    }

    let out_dir: Option<PathBuf> = if args.has("save-images") {
        Some(PathBuf::from("dx-out"))
    } else {
        args.get("out").map(PathBuf::from)
    };
    if let Some(dir) = out_dir {
        if ds.sample_shape().len() == 3 {
            std::fs::create_dir_all(&dir)?;
            for (i, t) in result.tests.iter().enumerate() {
                let shape = ds.sample_shape().to_vec();
                let ext = if shape[0] >= 3 { "ppm" } else { "pgm" };
                let seed_img =
                    Image::from_tensor(gather_rows(&seeds, &[t.seed_index]).reshape(&shape));
                let gen_img = Image::from_tensor(t.input.reshape(&shape));
                seed_img.save(&dir.join(format!("{}_{i}_seed.{ext}", kind.id())))?;
                gen_img.save(&dir.join(format!("{}_{i}_diff.{ext}", kind.id())))?;
            }
            println!("images written to {}", dir.display());
        } else {
            println!("--out ignored: {} is not an image dataset", kind.id());
        }
    }
    Ok(())
}

/// Training inputs each process replays to prime multisection profiles.
/// A fixed prefix of the training set, so every member of a distributed
/// fleet derives bit-identical profiles (and thus matching fingerprints).
const PROFILE_INPUTS: usize = 128;

/// Builds the model suite a campaign/coordinator/worker runs on, plus the
/// dataset and the suite label used as the distributed-admission
/// fingerprint. With a profile-based `--metric` (any spec mentioning
/// `multisection` or `boundary`), per-model neuron profiles are primed
/// from the training set here, at startup.
fn build_suite(
    args: &Args,
    command: &str,
) -> Result<(DatasetKind, dx_campaign::ModelSuite, dx_datasets::Dataset, String), Box<dyn Error>> {
    let kind = single_dataset(args, command)?;
    let mut zoo = zoo_for(args);
    let models = zoo.trio(kind);
    let ds = zoo.dataset(kind).clone();
    let metric: MetricSpec = args
        .get_or("metric", "neuron")
        .parse()
        .map_err(|e: String| format!("option --metric: {e}"))?;
    let mut signal = SignalSpec::of(CoverageConfig::scaled(0.25), metric.clone(), Vec::new());
    // On resume the checkpointed profiles are authoritative and replace
    // whatever the suite carries, so priming here would be thrown away —
    // skip the (hundreds of) forward passes. Workers have no resume path
    // and always prime.
    let resuming = command != "worker" && args.get("resume").is_some();
    if metric.needs_profiles() {
        if resuming {
            println!("{metric} profiles will be restored from the checkpoint");
        } else {
            let n = PROFILE_INPUTS.min(ds.train_x.shape()[0]);
            signal = signal.primed(&models, &ds.train_x, n);
            println!("primed {metric} profiles from {n} training inputs");
        }
    }
    let suite = dx_campaign::ModelSuite {
        models,
        kind: task_for(kind),
        hp: hyperparams_for(args, kind)?,
        constraint: constraint_for(args, kind, &ds)?,
        signal,
    };
    let scale = if args.has("full") { "full" } else { "test" };
    let label = format!("{}@{scale}", kind.id());
    Ok((kind, suite, ds, label))
}

fn parse_duration(args: &Args) -> Result<Option<std::time::Duration>, Box<dyn Error>> {
    match args.get("duration") {
        None => Ok(None),
        Some(v) => {
            let secs =
                v.parse::<f64>().map_err(|_| format!("option --duration: cannot parse `{v}`"))?;
            Ok(Some(
                std::time::Duration::try_from_secs_f64(secs).map_err(|_| {
                    format!("option --duration: `{v}` is not a non-negative duration")
                })?,
            ))
        }
    }
}

fn parse_target_coverage(args: &Args) -> Result<Option<f32>, Box<dyn Error>> {
    match args.get("target-coverage") {
        None => Ok(None),
        Some(v) => Ok(Some(
            v.parse::<f32>()
                .map_err(|_| format!("option --target-coverage: cannot parse `{v}`"))?,
        )),
    }
}

fn initial_seeds(
    args: &Args,
    ds: &dx_datasets::Dataset,
) -> Result<dx_tensor::Tensor, Box<dyn Error>> {
    let n_seeds: usize = args.get_num("seeds", 64)?;
    let rng_seed: u64 = args.get_num("rng", 42)?;
    let mut r = rng::rng(rng_seed ^ 0x5eed);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
    Ok(gather_rows(&ds.test_x, &picks))
}

/// `deepxplore campaign`.
pub fn campaign(args: &Args) -> CmdResult {
    let _metrics = init_telemetry(args)?;
    let (_, suite, ds, _) = build_suite(args, "campaign")?;
    let resume_dir = args.get("resume").map(PathBuf::from);
    let checkpoint_dir = args.get("checkpoint").map(PathBuf::from).or_else(|| resume_dir.clone());
    let config = dx_campaign::CampaignConfig {
        workers: args.get_num("workers", 1)?,
        epochs: args.get_num("epochs", 8)?,
        batch_per_epoch: args.get_num("batch-per-epoch", 32)?,
        batch: args.get_num("batch", 4)?,
        merge_every: args.get_num("merge-every", 4)?,
        duration: parse_duration(args)?,
        desired_coverage: parse_target_coverage(args)?,
        checkpoint_dir,
        seed: args.get_num("rng", 42)?,
        max_corpus: args.get_num("max-corpus", 4096)?,
        energy: args.get_num("energy", dx_campaign::EnergyModel::Classic)?,
        registry: dx_telemetry::global().clone(),
    };
    for (flag, value) in [
        ("workers", config.workers),
        ("epochs", config.epochs),
        ("batch-per-epoch", config.batch_per_epoch),
        ("batch", config.batch),
        ("merge-every", config.merge_every),
        ("max-corpus", config.max_corpus),
    ] {
        if value == 0 {
            return Err(format!("option --{flag} must be at least 1").into());
        }
    }
    let mut campaign = match &resume_dir {
        Some(dir) => {
            if args.get("rng").is_some() {
                eprintln!("note: --rng is ignored on resume; the campaign keeps its original seed");
            }
            let c = dx_campaign::Campaign::resume_from(suite, dir, config)?;
            println!(
                "resumed from {}: {} epochs done, corpus {}, {} diffs so far (seed {})",
                dir.display(),
                c.epochs_done(),
                c.corpus().len(),
                c.diffs().len(),
                c.seed()
            );
            c
        }
        None => dx_campaign::Campaign::new(suite, &initial_seeds(args, &ds)?, config),
    };
    campaign.run()?;
    print!("{}", campaign.report().render());
    println!(
        "coverage per model: [{}]",
        campaign
            .coverage()
            .iter()
            .map(|c| format!("{:.1}%", 100.0 * c))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("coverage over time:");
    for (secs, cov) in campaign.report().coverage_curve() {
        println!("  {secs:>8.2}s {:>6.2}%", 100.0 * cov);
    }
    if let Some(dir) = campaign.last_checkpoint_dir() {
        let dir = dir.display();
        println!("checkpoint written to {dir} (resume with --resume {dir})");
    }
    Ok(())
}

/// The shared fleet secret: `--auth-token` or the `DX_AUTH_TOKEN`
/// environment variable (preferred — argv is world-readable via `ps`).
fn auth_token(args: &Args) -> Option<String> {
    args.get("auth-token")
        .map(str::to_string)
        .or_else(|| std::env::var("DX_AUTH_TOKEN").ok().filter(|t| !t.is_empty()))
}

fn dist_config(args: &Args) -> Result<dx_dist::CoordinatorConfig, Box<dyn Error>> {
    let spot_check_rate: f32 = args.get_num("spot-check-rate", 0.0)?;
    if !(0.0..=1.0).contains(&spot_check_rate) {
        return Err("option --spot-check-rate must be in [0, 1]".into());
    }
    let trust_threshold: f32 = args.get_num("trust-threshold", 0.5)?;
    if !(0.0..=1.0).contains(&trust_threshold) {
        return Err("option --trust-threshold must be in [0, 1]".into());
    }
    let cfg = dx_dist::CoordinatorConfig {
        batch_per_round: args.get_num("batch", 32)?,
        max_steps: match args.get("steps") {
            None => None,
            Some(v) => Some(
                v.parse::<usize>().map_err(|_| format!("option --steps: cannot parse `{v}`"))?,
            ),
        },
        duration: parse_duration(args)?,
        target_coverage: parse_target_coverage(args)?,
        lease_size: args.get_num("lease", 4)?,
        lease_max: args.get_num("lease-max", 0)?,
        lease_timeout: std::time::Duration::try_from_secs_f64(args.get_num("lease-timeout", 30.0)?)
            .map_err(|_| "option --lease-timeout: expects a non-negative duration".to_string())?,
        checkpoint_dir: args.get("checkpoint").or_else(|| args.get("resume")).map(PathBuf::from),
        max_corpus: args.get_num("max-corpus", 4096)?,
        seed: args.get_num("rng", 42)?,
        energy: args.get_num("energy", dx_campaign::EnergyModel::Classic)?,
        registry: dx_telemetry::global().clone(),
        auth_token: auth_token(args),
        spot_check_rate,
        trust_threshold,
    };
    for (flag, value) in [("batch", cfg.batch_per_round), ("lease", cfg.lease_size)] {
        if value == 0 {
            return Err(format!("option --{flag} must be at least 1").into());
        }
    }
    Ok(cfg)
}

fn build_coordinator(
    args: &Args,
    suite: &dx_campaign::ModelSuite,
    ds: &dx_datasets::Dataset,
    label: &str,
) -> Result<dx_dist::Coordinator, Box<dyn Error>> {
    let cfg = dist_config(args)?;
    Ok(match args.get("resume") {
        Some(dir) => {
            // With --checkpoint too, fork: load from the resume dir, write
            // future checkpoints to the new dir (as campaign does).
            let c =
                dx_dist::Coordinator::resume_from(suite, label, std::path::Path::new(dir), cfg)?;
            println!(
                "resumed from {dir}: {} steps done, coverage {:.1}%",
                c.steps_done(),
                100.0 * c.mean_coverage()
            );
            c
        }
        None => dx_dist::Coordinator::new(suite, label, &initial_seeds(args, ds)?, cfg),
    })
}

fn print_dist_report(report: &dx_dist::DistReport, checkpoint: Option<&str>) {
    print!("{}", report.render());
    println!(
        "merged coverage per model: [{}]",
        report.coverage.iter().map(|c| format!("{:.1}%", 100.0 * c)).collect::<Vec<_>>().join(", ")
    );
    if let Some(dir) = checkpoint {
        println!("checkpoint written to {dir} (resume with --resume {dir})");
    }
}

/// Installs SIGTERM/SIGINT handlers and turns the first signal into a
/// graceful drain on `handle` (the second signal kills the process — see
/// `dx_dist::shutdown`). The watcher thread is detached; it dies with
/// the process.
fn drain_on_signal(handle: dx_dist::DrainHandle) {
    dx_dist::shutdown::install();
    std::thread::spawn(move || loop {
        if dx_dist::shutdown::requested() {
            dx_telemetry::events::emit(
                dx_telemetry::events::Level::Info,
                "coordinator",
                "drain_requested",
                &[("source", "signal".into())],
            );
            handle.drain();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    });
}

/// `deepxplore coordinator`.
pub fn coordinator(args: &Args) -> CmdResult {
    let _metrics = init_telemetry(args)?;
    let (_, suite, ds, label) = build_suite(args, "coordinator")?;
    let coordinator = build_coordinator(args, &suite, &ds, &label)?;
    drain_on_signal(coordinator.drain_handle());
    let listener = std::net::TcpListener::bind(args.get_or("listen", "127.0.0.1:4787"))?;
    println!("coordinator serving `{label}` on {}", listener.local_addr()?);
    println!(
        "worker auth: {}; spot-check rate: {}",
        if auth_token(args).is_some() { "required" } else { "off" },
        args.get_or("spot-check-rate", "0")
    );
    println!("type `drain` + Enter (or send SIGTERM) for a graceful drain");
    let handle = coordinator.drain_handle();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::BufRead::read_line(&mut stdin.lock(), &mut line) {
                Ok(0) | Err(_) => return, // EOF: keep serving (daemon-style).
                Ok(_) if line.trim() == "drain" => {
                    dx_telemetry::events::emit(
                        dx_telemetry::events::Level::Info,
                        "coordinator",
                        "drain_requested",
                        &[("source", "stdin".into())],
                    );
                    handle.drain();
                    return;
                }
                Ok(_) => {}
            }
        }
    });
    let report = coordinator.serve(listener)?;
    print_dist_report(&report, args.get("checkpoint").or_else(|| args.get("resume")));
    Ok(())
}

/// `deepxplore worker`.
pub fn worker(args: &Args) -> CmdResult {
    let _metrics = init_telemetry(args)?;
    let (_, suite, _, label) = build_suite(args, "worker")?;
    let addr = args.get("connect").ok_or("worker needs --connect <host:port>")?;
    let cfg = dx_dist::WorkerConfig {
        lease_size: args.get_num("lease", 4)?,
        batch: args.get_num("batch", 4)?,
        heartbeat_every: args.get_num("heartbeat-every", 1)?,
        auth_token: auth_token(args),
        ..Default::default()
    };
    println!("worker joining `{label}` at {addr}");
    let summary = dx_dist::run_worker(addr, suite, &label, cfg)?;
    println!(
        "worker {} done: {} steps, {} diffs, local coverage [{}]",
        summary.slot,
        summary.steps,
        summary.diffs_found,
        summary
            .coverage
            .iter()
            .map(|c| format!("{:.1}%", 100.0 * c))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

/// `deepxplore dist`: coordinator plus N spawned local worker processes.
pub fn dist(args: &Args) -> CmdResult {
    let _metrics = init_telemetry(args)?;
    // Building the suite here also warms the zoo weight cache, so the
    // spawned workers load instead of racing to train.
    let (_, suite, ds, label) = build_suite(args, "dist")?;
    let n_workers: usize = args.get_num("workers", 2)?;
    if n_workers == 0 {
        return Err("option --workers must be at least 1".into());
    }
    let coordinator = build_coordinator(args, &suite, &ds, &label)?;
    drain_on_signal(coordinator.drain_handle());
    let listener = std::net::TcpListener::bind(args.get_or("listen", "127.0.0.1:0"))?;
    let addr = listener.local_addr()?;
    println!("dist campaign `{label}` on {addr} with {n_workers} local worker processes");
    let exe = std::env::current_exe()?;
    let mut forwarded: Vec<String> = vec![
        "worker".into(),
        "--connect".into(),
        addr.to_string(),
        "--dataset".into(),
        args.get_or("dataset", "mnist").into(),
    ];
    if args.has("full") {
        forwarded.push("--full".into());
    }
    for flag in [
        "constraint",
        "lambda1",
        "lambda2",
        "step",
        "max-iters",
        "pick",
        "metric",
        "lease",
        "heartbeat-every",
        "log-level",
    ] {
        if let Some(v) = args.get(flag) {
            forwarded.push(format!("--{flag}"));
            forwarded.push(v.into());
        }
    }
    let mut children = Vec::new();
    for _ in 0..n_workers {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(&forwarded);
        // The fleet secret travels by environment, never argv (visible in
        // `ps`); spawned workers answer the coordinator's challenge with it.
        if let Some(token) = auth_token(args) {
            cmd.env("DX_AUTH_TOKEN", token);
        }
        children.push(cmd.spawn()?);
    }
    // Watch the fleet: if every worker process exits (crash, reject, OOM
    // kill) the coordinator would otherwise serve an empty campaign
    // forever — drain it instead so `dist` always terminates. The watcher
    // also reaps the children once they are all gone.
    let fleet_handle = coordinator.drain_handle();
    let watcher = std::thread::spawn(move || loop {
        let all_exited = children.iter_mut().all(|c| matches!(c.try_wait(), Ok(Some(_)) | Err(_)));
        if all_exited {
            fleet_handle.drain();
            for mut child in children {
                let _ = child.wait();
            }
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    });
    let served = coordinator.serve(listener);
    // On a clean finish the workers drain and the watcher sees them exit;
    // on a serve error they hit connection failures and exit on their own.
    // Either way the watcher terminates once the fleet is gone.
    watcher.join().expect("fleet watcher panicked");
    let report = served?;
    print_dist_report(&report, args.get("checkpoint").or_else(|| args.get("resume")));
    Ok(())
}

/// `deepxplore coverage`.
pub fn coverage(args: &Args) -> CmdResult {
    let kinds = dataset_kinds(args)?;
    if kinds.len() != 1 {
        return Err("coverage needs a single --dataset".into());
    }
    let kind = kinds[0];
    let mut zoo = zoo_for(args);
    let default_model = trio_ids(kind)[0];
    let id = args.get_or("model", default_model);
    let net = zoo.model(id);
    let ds = zoo.dataset(kind).clone();
    let n: usize = args.get_num("inputs", 100)?;
    let t: f32 = args.get_num("threshold", 0.25)?;
    let mut tracker = CoverageTracker::for_network(&net, CoverageConfig::scaled(t));
    let mut r = rng::rng(7);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n.min(ds.test_len()));
    let mut curve = Vec::new();
    for (i, &p) in picks.iter().enumerate() {
        tracker.update(&net.forward(&gather_rows(&ds.test_x, &[p])));
        if (i + 1) % (n / 10).max(1) == 0 {
            curve.push((i + 1, tracker.coverage()));
        }
    }
    println!(
        "{id}: {} / {} neurons covered ({:.1}%) by {} inputs at t = {t}",
        tracker.covered_count(),
        tracker.total(),
        100.0 * tracker.coverage(),
        picks.len()
    );
    println!("saturation curve:");
    for (k, c) in curve {
        println!("  {k:>5} inputs: {:>5.1}%", 100.0 * c);
    }
    Ok(())
}

/// `deepxplore serve`: the multi-tenant campaign service daemon — one
/// worker fleet, many concurrent campaigns, driven over HTTP.
pub fn serve(args: &Args) -> CmdResult {
    let _metrics = init_telemetry(args)?;
    let (_, suite, ds, label) = build_suite(args, "serve")?;
    let pool = initial_seeds(args, &ds)?;
    let cfg = dx_service::ServiceConfig {
        state_dir: args.get("state-dir").map(PathBuf::from),
        max_tenants: args.get_num("max-tenants", 8)?,
        batch_per_round: args.get_num("batch", 16)?,
        lease_size: args.get_num("lease", 4)?,
        lease_timeout: std::time::Duration::try_from_secs_f64(args.get_num("lease-timeout", 30.0)?)
            .map_err(|_| "option --lease-timeout: expects a non-negative duration".to_string())?,
        max_corpus: args.get_num("max-corpus", 4096)?,
        energy: args.get_num("energy", dx_campaign::EnergyModel::Classic)?,
        auth_token: auth_token(args),
        registry: dx_telemetry::global().clone(),
    };
    for (flag, value) in [
        ("batch", cfg.batch_per_round),
        ("lease", cfg.lease_size),
        ("max-tenants", cfg.max_tenants),
    ] {
        if value == 0 {
            return Err(format!("option --{flag} must be at least 1").into());
        }
    }
    let svc = std::sync::Arc::new(dx_service::Service::new(&suite, &label, &pool, cfg)?);
    // The first SIGTERM/Ctrl-C drains (Service::serve polls the flag);
    // the second kills the process outright.
    dx_dist::shutdown::install();
    let api = dx_service::api::router(std::sync::Arc::clone(&svc))
        .serve(args.get_or("api-addr", "127.0.0.1:8787"))?;
    let listener = std::net::TcpListener::bind(args.get_or("listen", "127.0.0.1:4787"))?;
    println!(
        "service `{label}`: fleet on {}, API on http://{}",
        listener.local_addr()?,
        api.addr()
    );
    println!(
        "worker auth: {}; seed pool: {} rows; {} tenant(s) resumed",
        if auth_token(args).is_some() { "required" } else { "off" },
        svc.pool_rows(),
        match svc.list() {
            dx_campaign::json::Json::Arr(a) => a.len(),
            _ => 0,
        }
    );
    println!("SIGTERM or Ctrl-C drains the fleet and checkpoints every tenant");
    svc.serve(listener)?;
    drop(api);
    println!("service drained");
    Ok(())
}

/// One request to a `deepxplore serve` daemon's API; errors carry the
/// HTTP status and the daemon's reason.
fn api_call(args: &Args, method: &str, path: &str, body: &str) -> Result<String, Box<dyn Error>> {
    let addr = args.get_or("api", "127.0.0.1:8787");
    let (status, body) = dx_telemetry::http::request(addr, method, path, body)?;
    if status != 200 {
        return Err(format!("HTTP {status}: {body}").into());
    }
    Ok(body)
}

/// `deepxplore submit`: start a campaign on a running service daemon.
pub fn submit(args: &Args) -> CmdResult {
    let name = args.get("name").ok_or("submit needs --name <campaign>")?;
    let mut spec = dx_service::CampaignSpec::named(name);
    spec.seed = args.get_num("rng", spec.seed)?;
    spec.seeds = args.get_num("seeds", spec.seeds)?;
    spec.seed_offset = args.get_num("seed-offset", spec.seed_offset)?;
    spec.max_steps = match args.get("steps") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("option --steps: cannot parse `{v}`"))?),
    };
    spec.target_coverage = parse_target_coverage(args)?;
    spec.quota = args.get_num("quota", spec.quota)?;
    spec.weight = args.get_num("weight", spec.weight)?;
    spec.metric = args.get("metric").map(str::to_string);
    spec.constraint = args.get("constraint").map(str::to_string);
    println!("{}", api_call(args, "POST", "/campaigns", &spec.to_json().to_string())?);
    Ok(())
}

/// `deepxplore status`: list campaigns, or show one (optionally as its
/// rendered report).
pub fn status(args: &Args) -> CmdResult {
    let body = match args.get("id") {
        None => api_call(args, "GET", "/campaigns", "")?,
        Some(id) if args.has("report") => {
            api_call(args, "GET", &format!("/campaigns/{id}/report"), "")?
        }
        Some(id) => api_call(args, "GET", &format!("/campaigns/{id}"), "")?,
    };
    println!("{}", body.trim_end());
    Ok(())
}

/// `deepxplore cancel`: cancel a service campaign.
pub fn cancel(args: &Args) -> CmdResult {
    let id = args.get("id").ok_or("cancel needs --id <campaign id>")?;
    println!("{}", api_call(args, "POST", &format!("/campaigns/{id}/cancel"), "")?);
    Ok(())
}

/// `deepxplore analyze`: the in-tree whitebox static analysis pass
/// (`dx-analysis`) over the workspace or a given path.
pub fn analyze(args: &Args) -> CmdResult {
    let root = match args.get("path") {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir()?;
            let root = dx_analysis::workspace_root(&cwd)
                .ok_or("no enclosing cargo workspace; pass --path <dir>")?;
            std::env::set_current_dir(&root)
                .map_err(|e| format!("cannot enter workspace root {}: {e}", root.display()))?;
            PathBuf::from(".")
        }
    };
    let ws = dx_analysis::Workspace::load(&root)
        .map_err(|e| format!("cannot scan {}: {e}", root.display()))?;
    let findings = dx_analysis::run_all(&ws);
    for f in &findings {
        println!("{f}");
        if args.has("fix-hints") && !f.hint.is_empty() {
            println!("    hint: {}", f.hint);
        }
    }
    if findings.is_empty() {
        eprintln!("dx-analysis: clean ({} checks)", dx_analysis::checks::all().len());
        Ok(())
    } else {
        Err(format!("{} finding(s)", findings.len()).into())
    }
}
