//! A small dependency-free `--flag value` argument parser.
//!
//! The workspace policy is to keep runtime dependencies minimal (see
//! DESIGN.md §6), so instead of a full CLI framework this module parses
//! the only grammar the tool needs: a subcommand followed by `--key value`
//! pairs and `--switch` booleans.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus its options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Debug)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

impl Args {
    /// Parses an argument list (without the program name).
    ///
    /// `known_switches` lists flags that take no value; every other
    /// `--key` consumes the next token as its value.
    pub fn parse(argv: &[String], known_switches: &[&str]) -> Result<Self, ParseError> {
        let mut it = argv.iter();
        let command = it
            .next()
            .cloned()
            .ok_or_else(|| ParseError("missing subcommand; try `help`".into()))?;
        if command.starts_with("--") {
            return Err(ParseError(format!("expected a subcommand before {command}; try `help`")));
        }
        let mut options = HashMap::new();
        let mut switches = Vec::new();
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ParseError(format!("unexpected positional argument {tok}")));
            };
            if known_switches.contains(&key) {
                switches.push(key.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| ParseError(format!("option --{key} expects a value")))?;
                if options.insert(key.to_string(), value.clone()).is_some() {
                    return Err(ParseError(format!("option --{key} given twice")));
                }
            }
        }
        Ok(Self { command, options, switches })
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error naming the flag when the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ParseError(format!("option --{key}: cannot parse `{v}`")))
            }
        }
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a =
            Args::parse(&argv(&["generate", "--dataset", "mnist", "--seeds", "50"]), &[]).unwrap();
        assert_eq!(a.command, "generate");
        assert_eq!(a.get("dataset"), Some("mnist"));
        assert_eq!(a.get_num::<usize>("seeds", 0).unwrap(), 50);
        assert_eq!(a.get_num::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn parses_switches() {
        let a = Args::parse(&argv(&["train", "--full", "--dataset", "pdf"]), &["full"]).unwrap();
        assert!(a.has("full"));
        assert_eq!(a.get("dataset"), Some("pdf"));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Args::parse(&argv(&["generate", "--dataset"]), &[]).is_err());
    }

    #[test]
    fn rejects_duplicate_option() {
        assert!(Args::parse(&argv(&["g", "--a", "1", "--a", "2"]), &[]).is_err());
    }

    #[test]
    fn rejects_positional_after_command() {
        assert!(Args::parse(&argv(&["generate", "mnist"]), &[]).is_err());
    }

    #[test]
    fn rejects_bad_number() {
        let a = Args::parse(&argv(&["g", "--seeds", "many"]), &[]).unwrap();
        assert!(a.get_num::<usize>("seeds", 0).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(Args::parse(&[], &[]).is_err());
    }
}
