//! Property-based tests of coverage-tracker invariants — for the paper's
//! binary neuron metric, the DeepGauge multisection refinement, its
//! boundary/corner complement, and composite multi-signal coverage alike.

use dx_coverage::boundary::BoundaryTracker;
use dx_coverage::multisection::{MultisectionTracker, NeuronProfile};
use dx_coverage::{CoverageConfig, CoverageSignal, CoverageTracker, Granularity, SignalSpec};
use dx_nn::layer::Layer;
use dx_nn::network::Network;
use dx_tensor::{rng, Tensor};
use proptest::prelude::*;

fn net(seed: u64) -> Network {
    let mut n = Network::new(
        &[1, 6, 6],
        vec![
            Layer::conv2d(1, 3, 3, 1, 0),
            Layer::relu(),
            Layer::flatten(),
            Layer::dense(3 * 4 * 4, 5),
            Layer::softmax(),
        ],
    );
    n.init_weights(&mut rng::rng(seed));
    n
}

fn input() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(0.0f32..1.0, 36).prop_map(|v| Tensor::from_vec(v, &[1, 1, 6, 6]))
}

/// Inputs well outside the profiling distribution, so boundary corners
/// actually get hit.
fn wild_input() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-4.0f32..4.0, 36).prop_map(|v| Tensor::from_vec(v, &[1, 1, 6, 6]))
}

/// A deterministically primed profile of `net(seed)` — every call with
/// the same arguments profiles identically, so trackers over it are
/// mutually compatible.
fn primed(n: &Network, prime_seed: u64) -> NeuronProfile {
    let mut profile = NeuronProfile::new(n, Granularity::ChannelMean);
    let mut r = rng::rng(prime_seed);
    for _ in 0..12 {
        profile.observe(&n.forward(&rng::uniform(&mut r, &[1, 1, 6, 6], 0.0, 1.0)));
    }
    profile
}

/// A multisection tracker over a deterministically primed profile.
fn ms_tracker(n: &Network, prime_seed: u64, k: usize) -> MultisectionTracker {
    MultisectionTracker::new(primed(n, prime_seed), k)
}

/// A boundary tracker over the same deterministic profiles.
fn b_tracker(n: &Network, prime_seed: u64) -> BoundaryTracker {
    BoundaryTracker::new(primed(n, prime_seed))
}

/// A composite multisection+boundary signal over the same profiles.
fn composite_signal(n: &Network, prime_seed: u64, k: usize) -> CoverageSignal {
    let spec = SignalSpec::of(
        CoverageConfig::default(),
        format!("multisection:{k}+boundary").parse().expect("spec"),
        vec![primed(n, prime_seed)],
    );
    spec.build(std::slice::from_ref(n)).remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coverage_is_monotone(inputs in proptest::collection::vec(input(), 1..6)) {
        let n = net(0);
        let mut t = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.25));
        let mut last = 0.0f32;
        for x in &inputs {
            t.update(&n.forward(x));
            let c = t.coverage();
            prop_assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn update_is_idempotent(x in input()) {
        let n = net(1);
        let mut t = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.25));
        let pass = n.forward(&x);
        let first = t.update(&pass);
        prop_assert_eq!(t.update(&pass), 0);
        prop_assert_eq!(t.covered_count(), first);
    }

    #[test]
    fn covered_plus_uncovered_is_total(x in input(), threshold in 0.0f32..1.0) {
        let n = net(2);
        let mut t = CoverageTracker::for_network(&n, CoverageConfig::scaled(threshold));
        t.update(&n.forward(&x));
        prop_assert_eq!(t.covered_count() + t.uncovered().len(), t.total());
    }

    #[test]
    fn threshold_monotonicity(x in input(), t1 in 0.0f32..0.5, dt in 0.01f32..0.5) {
        // Coverage at a higher threshold never exceeds a lower one.
        let n = net(3);
        let mut low = CoverageTracker::for_network(&n, CoverageConfig::scaled(t1));
        let mut high = CoverageTracker::for_network(&n, CoverageConfig::scaled(t1 + dt));
        let pass = n.forward(&x);
        low.update(&pass);
        high.update(&pass);
        prop_assert!(high.covered_count() <= low.covered_count());
    }

    #[test]
    fn unit_granularity_tracks_at_least_as_many(x in input()) {
        let n = net(4);
        let channel = CoverageTracker::for_network(&n, CoverageConfig::default());
        let unit = CoverageTracker::for_network(
            &n,
            CoverageConfig { granularity: Granularity::Unit, ..Default::default() },
        );
        prop_assert!(unit.total() >= channel.total());
        let _ = x;
    }

    #[test]
    fn activated_by_matches_update(x in input()) {
        let n = net(5);
        let mut t = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.5));
        let pass = n.forward(&x);
        let activated = t.activated_by(&pass);
        let newly = t.update(&pass);
        prop_assert_eq!(activated.len(), newly);
    }

    #[test]
    fn merge_is_commutative(xa in input(), xb in input()) {
        let n = net(6);
        let mut a = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.25));
        let mut b = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.25));
        a.update(&n.forward(&xa));
        b.update(&n.forward(&xb));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.covered_count(), ba.covered_count());
        prop_assert_eq!(ab.uncovered(), ba.uncovered());
    }

    #[test]
    fn merge_is_idempotent(xa in input(), xb in input()) {
        let n = net(7);
        let mut a = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.25));
        let mut b = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.25));
        a.update(&n.forward(&xa));
        b.update(&n.forward(&xb));
        let first = a.merge(&b);
        let covered = a.covered_count();
        // Folding the same tracker in again must be a no-op.
        prop_assert_eq!(a.merge(&b), 0);
        prop_assert_eq!(a.covered_count(), covered);
        // Self-merge is also a no-op.
        let self_clone = a.clone();
        prop_assert_eq!(a.merge(&self_clone), 0);
        let _ = first;
    }

    #[test]
    fn merge_is_monotone_in_covered_count(
        inputs in proptest::collection::vec(input(), 1..5),
    ) {
        let n = net(8);
        let mut global = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.25));
        let mut last = 0usize;
        for x in &inputs {
            let mut local = CoverageTracker::for_network(&n, CoverageConfig::scaled(0.25));
            local.update(&n.forward(x));
            let before = global.covered_count();
            let newly = global.merge(&local);
            // The count never decreases, grows by exactly `newly`, and the
            // union dominates both operands.
            prop_assert_eq!(global.covered_count(), before + newly);
            prop_assert!(global.covered_count() >= last);
            prop_assert!(global.covered_count() >= local.covered_count());
            last = global.covered_count();
        }
    }

    // The same invariants for the multisection metric — campaigns union
    // and delta-sync either signal through one code path, so both must
    // honor the same algebra.

    #[test]
    fn ms_merge_is_commutative(xa in input(), xb in input(), k in 1usize..6) {
        let n = net(9);
        let mut a = ms_tracker(&n, 90, k);
        let mut b = ms_tracker(&n, 90, k);
        a.update(&n.forward(&xa));
        b.update(&n.forward(&xb));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.covered_count(), ba.covered_count());
        prop_assert_eq!(ab.covered_mask(), ba.covered_mask());
    }

    #[test]
    fn ms_merge_is_idempotent(xa in input(), xb in input()) {
        let n = net(10);
        let mut a = ms_tracker(&n, 91, 4);
        let mut b = ms_tracker(&n, 91, 4);
        a.update(&n.forward(&xa));
        b.update(&n.forward(&xb));
        a.merge(&b);
        let covered = a.covered_count();
        prop_assert_eq!(a.merge(&b), 0);
        prop_assert_eq!(a.covered_count(), covered);
        let self_clone = a.clone();
        prop_assert_eq!(a.merge(&self_clone), 0);
    }

    #[test]
    fn ms_sparse_delta_sync_converges_to_merge(
        xs_a in proptest::collection::vec(input(), 1..4),
        xs_b in proptest::collection::vec(input(), 1..4),
        k in 1usize..6,
    ) {
        // Two workers accumulating independently: syncing their hit sets
        // through diff_indices/apply_covered_indices must reach exactly
        // the union a direct merge computes, in either sync order.
        let n = net(11);
        let mut a = ms_tracker(&n, 92, k);
        let mut b = ms_tracker(&n, 92, k);
        for x in &xs_a { a.update(&n.forward(x)); }
        for x in &xs_b { b.update(&n.forward(x)); }
        let mut merged = a.clone();
        merged.merge(&b);

        let mut synced = a.clone();
        let delta_b = b.diff_indices(&synced);
        prop_assert!(delta_b.iter().all(|&i| i < b.total()));
        let newly = synced.apply_covered_indices(&delta_b);
        prop_assert_eq!(newly, delta_b.len());
        prop_assert_eq!(synced.covered_mask(), merged.covered_mask());

        // Round trip back: b catches up to the union through a delta too.
        let delta_a = synced.diff_indices(&b);
        b.apply_covered_indices(&delta_a);
        prop_assert_eq!(b.covered_mask(), merged.covered_mask());
        // Once converged, both deltas are empty (idempotent sync).
        prop_assert!(synced.diff_indices(&b).is_empty());
        prop_assert!(b.diff_indices(&synced).is_empty());
    }

    #[test]
    fn ms_covered_indices_match_mask(x in input()) {
        let n = net(12);
        let mut t = ms_tracker(&n, 93, 3);
        t.update(&n.forward(&x));
        let idx = t.covered_indices();
        prop_assert_eq!(idx.len(), t.covered_count());
        let empty = ms_tracker(&n, 93, 3);
        prop_assert_eq!(t.diff_indices(&empty), idx);
        // Applying a tracker's own indices onto a fresh peer reproduces it.
        let mut fresh = ms_tracker(&n, 93, 3);
        fresh.apply_covered_indices(&t.covered_indices());
        prop_assert_eq!(fresh.covered_mask(), t.covered_mask());
    }

    #[test]
    fn ms_coverage_stays_within_unit_interval(
        xs in proptest::collection::vec(input(), 1..6),
        k in 1usize..6,
    ) {
        let n = net(13);
        let mut t = ms_tracker(&n, 94, k);
        let mut last = 0.0f32;
        for x in &xs {
            t.update(&n.forward(x));
            let c = t.coverage();
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= last);
            last = c;
        }
        prop_assert!(t.covered_count() <= t.coverable_units());
    }

    // Boundary/corner coverage: the same algebra over the units the
    // multisection metric skips.

    #[test]
    fn boundary_merge_is_commutative_and_dominates_inputs(
        xa in wild_input(),
        xb in wild_input(),
    ) {
        let n = net(14);
        let mut a = b_tracker(&n, 95);
        let mut b = b_tracker(&n, 95);
        a.update(&n.forward(&xa));
        b.update(&n.forward(&xb));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.covered_count(), ba.covered_count());
        prop_assert_eq!(ab.covered_mask(), ba.covered_mask());
        // The merged union dominates each input.
        prop_assert!(ab.covered_count() >= a.covered_count().max(b.covered_count()));
        // Idempotent: merging again changes nothing.
        prop_assert_eq!(ab.merge(&b), 0);
    }

    #[test]
    fn boundary_delta_sync_round_trips(
        xs_a in proptest::collection::vec(wild_input(), 1..4),
        xs_b in proptest::collection::vec(wild_input(), 1..4),
    ) {
        let n = net(15);
        let mut a = b_tracker(&n, 96);
        let mut b = b_tracker(&n, 96);
        for x in &xs_a { a.update(&n.forward(x)); }
        for x in &xs_b { b.update(&n.forward(x)); }
        let mut merged = a.clone();
        merged.merge(&b);
        // diff/apply converges to the same union as merge, both ways.
        let mut synced = a.clone();
        let delta_b = b.diff_indices(&synced);
        prop_assert!(delta_b.iter().all(|&i| i < b.total()));
        prop_assert_eq!(synced.apply_covered_indices(&delta_b), delta_b.len());
        prop_assert_eq!(synced.covered_mask(), merged.covered_mask());
        let delta_a = synced.diff_indices(&b);
        b.apply_covered_indices(&delta_a);
        prop_assert_eq!(b.covered_mask(), merged.covered_mask());
        prop_assert!(synced.diff_indices(&b).is_empty());
        prop_assert!(b.diff_indices(&synced).is_empty());
        prop_assert!(merged.covered_count() <= merged.coverable_units());
    }

    // Composite signals: the component-prefixed flat space must honor the
    // same merge/delta algebra, because campaigns and the dist wire treat
    // simple and composite signals through one code path.

    #[test]
    fn composite_merge_is_commutative_idempotent_and_monotone(
        xa in wild_input(),
        xb in wild_input(),
        k in 1usize..5,
    ) {
        let n = net(16);
        let mut a = composite_signal(&n, 97, k);
        let mut b = composite_signal(&n, 97, k);
        a.update(&n.forward(&xa));
        b.update(&n.forward(&xb));
        prop_assert!(a.compatible(&b));
        let mut ab = a.clone();
        let newly = ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.covered_count(), ba.covered_count());
        prop_assert_eq!(ab.covered_mask(), ba.covered_mask());
        prop_assert_eq!(ab.covered_count(), a.covered_count() + newly);
        prop_assert!(ab.covered_count() >= a.covered_count().max(b.covered_count()));
        prop_assert_eq!(ab.merge(&b), 0);
        let ab_clone = ab.clone();
        prop_assert_eq!(ab.merge(&ab_clone), 0);
    }

    #[test]
    fn composite_delta_sync_converges_to_merge(
        xs_a in proptest::collection::vec(wild_input(), 1..4),
        xs_b in proptest::collection::vec(wild_input(), 1..4),
        k in 1usize..5,
    ) {
        let n = net(17);
        let mut a = composite_signal(&n, 98, k);
        let mut b = composite_signal(&n, 98, k);
        for x in &xs_a { a.update(&n.forward(x)); }
        for x in &xs_b { b.update(&n.forward(x)); }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut synced = a.clone();
        let delta = b.diff_indices(&synced);
        prop_assert!(delta.iter().all(|&i| i < b.total()));
        prop_assert_eq!(synced.apply_covered_indices(&delta), delta.len());
        prop_assert_eq!(synced.covered_mask(), merged.covered_mask());
        prop_assert_eq!(synced.coverage(), merged.coverage());
        // Round trip back and idempotence.
        let delta_a = synced.diff_indices(&b);
        b.apply_covered_indices(&delta_a);
        prop_assert_eq!(b.covered_mask(), merged.covered_mask());
        prop_assert!(synced.diff_indices(&b).is_empty());
    }

    #[test]
    fn composite_units_and_indices_are_component_consistent(
        xs in proptest::collection::vec(wild_input(), 1..4),
        k in 1usize..5,
    ) {
        let n = net(18);
        let mut s = composite_signal(&n, 99, k);
        for x in &xs { s.update(&n.forward(x)); }
        // Totals and covered counts are the component sums.
        let comp_total: usize = s.components().iter().map(CoverageSignal::total).sum();
        let comp_covered: usize =
            s.components().iter().map(CoverageSignal::covered_count).sum();
        prop_assert_eq!(s.total(), comp_total);
        prop_assert_eq!(s.covered_count(), comp_covered);
        // Covered indices match the mask, stay in range, and reproduce the
        // signal when applied to a fresh peer.
        let idx = s.covered_indices();
        prop_assert_eq!(idx.len(), s.covered_count());
        prop_assert!(idx.iter().all(|&i| i < s.total()));
        let mask = s.covered_mask();
        prop_assert!(idx.iter().all(|&i| mask[i]));
        let mut fresh = composite_signal(&n, 99, k);
        fresh.apply_covered_indices(&idx);
        prop_assert_eq!(fresh.covered_mask(), mask);
        // Mask round trip through set_covered_mask.
        let mut restored = composite_signal(&n, 99, k);
        restored.set_covered_mask(&s.covered_mask());
        prop_assert_eq!(restored.covered_count(), s.covered_count());
    }
}
