//! Operator coverage — the "traditional code coverage" half of Table 6.
//!
//! The paper measures Python line coverage of the model's training/testing
//! code and finds that *ten random inputs reach 100%* while neuron coverage
//! stays under 34%: the host code of a DNN is a straight-line interpreter,
//! so exercising it says nothing about the learned rules.
//!
//! Our inference engine is Rust, so we instrument it at the natural analog
//! of lines: operator kernels. Every layer contributes its kernel units
//! (im2col, matmul, bias add, activation map, window scan, …); a forward
//! pass executes every unit of every layer unconditionally — which is
//! precisely the paper's point, reproduced mechanically.

use dx_nn::layer::Layer;
use dx_nn::network::Network;

/// Operator-kernel units a layer's inference path executes.
fn layer_units(layer: &Layer) -> Vec<&'static str> {
    match layer {
        Layer::Dense(_) => vec!["matmul", "bias_add"],
        Layer::Conv2d(_) => vec!["im2col", "matmul", "bias_add"],
        Layer::MaxPool2d(_) => vec!["window_max"],
        Layer::AvgPool2d(_) => vec!["window_sum", "scale"],
        Layer::Relu => vec!["relu_map"],
        Layer::Sigmoid => vec!["sigmoid_map"],
        Layer::Tanh => vec!["tanh_map"],
        Layer::Softmax => vec!["row_max", "exp_map", "normalize"],
        Layer::Flatten => vec!["reshape"],
        Layer::Dropout(_) => vec!["identity"],
        Layer::BatchNorm(_) => vec!["normalize", "affine"],
        // The residual block's own units; its body layers execute within it.
        Layer::Residual(_) => vec!["skip_add"],
    }
}

/// Tracks which operator-kernel units of a network's inference path have
/// executed.
#[derive(Clone, Debug)]
pub struct OpCoverage {
    units: Vec<String>,
    executed: Vec<bool>,
}

impl OpCoverage {
    /// Builds the unit registry for a network.
    pub fn for_network(net: &Network) -> Self {
        let mut units = Vec::new();
        for (i, layer) in net.layers().iter().enumerate() {
            for u in layer_units(layer) {
                units.push(format!("layer{i}:{}:{u}", layer.name()));
            }
        }
        let executed = vec![false; units.len()];
        Self { units, executed }
    }

    /// Records one evaluation-mode forward pass: a sequential network runs
    /// every layer, so every inference unit executes.
    pub fn record_forward(&mut self) {
        self.executed.iter_mut().for_each(|e| *e = true);
    }

    /// Records a hypothetical partial execution (exposed for testing the
    /// metric itself; real forward passes always execute everything).
    pub fn record_layers(&mut self, net: &Network, layers: &[usize]) {
        let mut offset = 0;
        for (i, layer) in net.layers().iter().enumerate() {
            let n = layer_units(layer).len();
            if layers.contains(&i) {
                for e in &mut self.executed[offset..offset + n] {
                    *e = true;
                }
            }
            offset += n;
        }
    }

    /// Total number of units.
    pub fn total(&self) -> usize {
        self.units.len()
    }

    /// Number of executed units.
    pub fn executed_count(&self) -> usize {
        self.executed.iter().filter(|&&e| e).count()
    }

    /// Coverage in `[0, 1]`.
    pub fn coverage(&self) -> f32 {
        if self.units.is_empty() {
            0.0
        } else {
            self.executed_count() as f32 / self.units.len() as f32
        }
    }

    /// Names of units never executed.
    pub fn unexecuted(&self) -> Vec<&str> {
        self.units
            .iter()
            .zip(self.executed.iter())
            .filter(|(_, &e)| !e)
            .map(|(u, _)| u.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    fn cnn() -> Network {
        let mut net = Network::new(
            &[1, 6, 6],
            vec![
                Layer::conv2d(1, 2, 3, 1, 0),
                Layer::relu(),
                Layer::maxpool2d(2),
                Layer::flatten(),
                Layer::dense(2 * 2 * 2, 3),
                Layer::softmax(),
            ],
        );
        net.init_weights(&mut rng::rng(0));
        net
    }

    #[test]
    fn registry_covers_all_layers() {
        let net = cnn();
        let cov = OpCoverage::for_network(&net);
        // conv 3 + relu 1 + pool 1 + flatten 1 + dense 2 + softmax 3.
        assert_eq!(cov.total(), 11);
        assert_eq!(cov.coverage(), 0.0);
    }

    #[test]
    fn single_forward_reaches_full_coverage() {
        // The paper's Table 6 phenomenon: one input, 100% "code" coverage.
        let net = cnn();
        let mut cov = OpCoverage::for_network(&net);
        cov.record_forward();
        assert_eq!(cov.coverage(), 1.0);
        assert!(cov.unexecuted().is_empty());
    }

    #[test]
    fn partial_execution_is_partial() {
        let net = cnn();
        let mut cov = OpCoverage::for_network(&net);
        cov.record_layers(&net, &[0, 1]);
        assert_eq!(cov.executed_count(), 4);
        assert!(cov.coverage() < 1.0);
        assert!(!cov.unexecuted().is_empty());
    }

    #[test]
    fn unit_names_are_addressable() {
        let net = cnn();
        let cov = OpCoverage::for_network(&net);
        let un = cov.unexecuted();
        assert!(un.iter().any(|u| u.contains("im2col")));
        assert!(un.iter().any(|u| u.contains("layer5")));
    }
}
