//! Neuron coverage — the paper's first contribution — plus an
//! operator-coverage analog of traditional line coverage.
//!
//! Neuron coverage (§4.1) is the fraction of a DNN's neurons whose output
//! exceeds a threshold `t` for at least one input in a test set:
//!
//! ```text
//! NCov(T) = |{n | ∃x ∈ T. out(n, x) > t}| / |N|
//! ```
//!
//! [`tracker::CoverageTracker`] maintains the covered set incrementally (the
//! `cov_tracker` of Algorithm 1), [`neuron`] defines what a "neuron" is for
//! each layer kind (one per channel for convolutional feature maps, one per
//! unit for dense layers) and how values are scaled per layer before
//! thresholding (§7.1), [`overlap`] computes the activated-neuron overlap
//! statistics of Table 7, and [`opcov`] instruments the inference engine's
//! operator kernels to reproduce the paper's "any single input reaches 100%
//! code coverage" comparison (Table 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundary;
pub mod multisection;
pub mod neuron;
pub mod opcov;
pub mod overlap;
pub mod signal;
pub mod tracker;

pub use boundary::BoundaryTracker;
pub use multisection::{MultisectionTracker, NeuronProfile};
pub use neuron::{Granularity, NeuronId};
pub use signal::{mean_component_coverage, CoverageSignal, MetricKind, MetricSpec, SignalSpec};
pub use tracker::{CoverageConfig, CoverageTracker};
