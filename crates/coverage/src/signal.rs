//! The metric-generic coverage signal campaigns steer by.
//!
//! DeepXplore's generator, the campaign engine and the distributed
//! coordinator all need the same operations from a coverage metric:
//! fold a forward pass in, report progress, union state across workers,
//! ship sparse deltas over the wire, and pick a target for the obj2
//! gradient term. [`CoverageSignal`] is that interface over the metrics
//! this workspace implements — the paper's binary neuron coverage
//! ([`CoverageTracker`]), DeepGauge's k-multisection refinement
//! ([`MultisectionTracker`]) and its boundary/corner complement
//! ([`BoundaryTracker`]) — so every engine layer is written once against
//! the signal, not a concrete tracker type.
//!
//! Metrics also **compose**: a [`MetricSpec`] like `multisection:4+boundary`
//! builds one [`CoverageSignal::Composite`] per model whose flat unit
//! space is the concatenation of its components' spaces (component-major),
//! so the same sparse-index deltas, bitmap checkpoints and union merges
//! flow through unchanged while the campaign steers by the union of
//! several signals at once.
//!
//! [`SignalSpec`] is the serializable-ish recipe (metric spec, coverage
//! config, and — for profile-based metrics — the per-model training-set
//! profiles) from which per-model signals are built.

use dx_nn::network::{ForwardPass, Network};
use dx_tensor::rng::Rng;

use crate::boundary::BoundaryTracker;
use crate::multisection::{MultisectionTracker, NeuronProfile};
use crate::neuron::{Granularity, NeuronId};
use crate::tracker::{CoverageConfig, CoverageTracker};

/// One atomic coverage metric a campaign can steer by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MetricKind {
    /// The paper's binary neuron coverage (§4.1): a neuron is covered once
    /// its output exceeds the threshold anywhere.
    #[default]
    Neuron,
    /// DeepGauge k-multisection coverage: each neuron's profiled output
    /// range is split into `k` sections, and units are neuron-sections.
    Multisection {
        /// Sections per neuron.
        k: usize,
    },
    /// DeepGauge boundary/corner coverage: two units per profiled neuron —
    /// activation below the profiled `low`, and above the profiled `high`.
    /// Exactly the region the multisection metric skips.
    Boundary,
}

impl MetricKind {
    /// The default section count for `multisection` given without `:k`.
    pub const DEFAULT_K: usize = 4;

    /// Whether this metric needs training-set neuron profiles.
    pub fn needs_profile(self) -> bool {
        self != MetricKind::Neuron
    }
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricKind::Neuron => write!(f, "neuron"),
            MetricKind::Multisection { k } => write!(f, "multisection:{k}"),
            MetricKind::Boundary => write!(f, "boundary"),
        }
    }
}

impl std::str::FromStr for MetricKind {
    type Err = String;

    /// Parses `neuron`, `multisection`, `multisection:<k>`, or `boundary`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "neuron" => Ok(MetricKind::Neuron),
            "multisection" => Ok(MetricKind::Multisection { k: Self::DEFAULT_K }),
            "boundary" => Ok(MetricKind::Boundary),
            other => match other.strip_prefix("multisection:") {
                Some(k) => match k.parse::<usize>() {
                    Ok(k) if k > 0 => Ok(MetricKind::Multisection { k }),
                    _ => Err(format!("multisection needs a positive k, got `{k}`")),
                },
                None => Err(format!("unknown metric `{other}` (neuron|multisection[:k]|boundary)")),
            },
        }
    }
}

/// A coverage metric specification: one or more [`MetricKind`] components
/// joined with `+`, e.g. `neuron`, `multisection:8+boundary`. A
/// single-component spec behaves exactly like the bare metric; a
/// multi-component spec builds [`CoverageSignal::Composite`] signals that
/// steer by the union of their components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSpec {
    /// The component metrics, in declaration order (which fixes the
    /// composite unit-space layout — order is part of the spec identity).
    pub components: Vec<MetricKind>,
}

impl MetricSpec {
    /// A single-metric spec.
    pub fn single(kind: MetricKind) -> Self {
        Self { components: vec![kind] }
    }

    /// Whether any component needs training-set neuron profiles.
    pub fn needs_profiles(&self) -> bool {
        self.components.iter().any(|m| m.needs_profile())
    }

    /// Number of component metrics.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the spec has no components (never true for a parsed or
    /// constructed spec; exists for the `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl Default for MetricSpec {
    fn default() -> Self {
        Self::single(MetricKind::default())
    }
}

impl From<MetricKind> for MetricSpec {
    fn from(kind: MetricKind) -> Self {
        Self::single(kind)
    }
}

impl std::fmt::Display for MetricSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, m) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for MetricSpec {
    type Err = String;

    /// Parses a `+`-joined list of metrics: `neuron`, `boundary`,
    /// `multisection:8+boundary`, `neuron+multisection+boundary`, …
    /// Rejects empty components (`+boundary`, `neuron++boundary`) and
    /// exact duplicates (`boundary+boundary` would double-count units).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err("empty metric spec".into());
        }
        let mut components = Vec::new();
        for part in s.split('+') {
            if part.is_empty() {
                return Err(format!(
                    "empty metric component in `{s}` (stray `+`?); \
                     expected metric[+metric...], metric = neuron|multisection[:k]|boundary"
                ));
            }
            let kind: MetricKind = part.parse()?;
            if components.contains(&kind) {
                return Err(format!("duplicate metric component `{kind}` in `{s}`"));
            }
            components.push(kind);
        }
        Ok(Self { components })
    }
}

/// The recipe a campaign builds its per-model coverage signals from.
#[derive(Clone, Debug)]
pub struct SignalSpec {
    /// Threshold/scaling/granularity knobs. The threshold and per-layer
    /// scaling apply to the neuron metric; granularity applies to all.
    pub config: CoverageConfig,
    /// Which metric(s) to steer by.
    pub metric: MetricSpec,
    /// Per-model training-set profiles, one per model in suite order,
    /// shared by every profile-based component (multisection sections and
    /// boundary corners are cut from the same ranges). Required (and
    /// primed) when [`MetricSpec::needs_profiles`]; empty otherwise.
    pub profiles: Vec<NeuronProfile>,
}

impl SignalSpec {
    /// The paper's neuron-coverage signal under `config`.
    pub fn neuron(config: CoverageConfig) -> Self {
        Self { config, metric: MetricKind::Neuron.into(), profiles: Vec::new() }
    }

    /// A k-multisection signal over primed per-model profiles.
    pub fn multisection(config: CoverageConfig, k: usize, profiles: Vec<NeuronProfile>) -> Self {
        Self { config, metric: MetricKind::Multisection { k }.into(), profiles }
    }

    /// A boundary/corner signal over primed per-model profiles.
    pub fn boundary(config: CoverageConfig, profiles: Vec<NeuronProfile>) -> Self {
        Self { config, metric: MetricKind::Boundary.into(), profiles }
    }

    /// A signal for any metric spec, composite or not, over (possibly
    /// still unprimed) per-model profiles.
    pub fn of(config: CoverageConfig, metric: MetricSpec, profiles: Vec<NeuronProfile>) -> Self {
        Self { config, metric, profiles }
    }

    /// Builds one component signal for one model.
    fn build_component(&self, kind: MetricKind, model: &Network, index: usize) -> CoverageSignal {
        match kind {
            MetricKind::Neuron => {
                CoverageSignal::Neuron(CoverageTracker::for_network(model, self.config))
            }
            MetricKind::Multisection { k } => CoverageSignal::Multisection(
                MultisectionTracker::new(self.profiles[index].clone(), k),
            ),
            MetricKind::Boundary => {
                CoverageSignal::Boundary(BoundaryTracker::new(self.profiles[index].clone()))
            }
        }
    }

    /// Builds one signal per model.
    ///
    /// # Panics
    ///
    /// For profile-based metrics: when the profile count does not match
    /// the model count, or a profile is unprimed. For an empty spec.
    pub fn build(&self, models: &[Network]) -> Vec<CoverageSignal> {
        assert!(!self.metric.is_empty(), "metric spec needs at least one component");
        if self.metric.needs_profiles() {
            assert_eq!(
                self.profiles.len(),
                models.len(),
                "profile-based metrics need one primed profile per model"
            );
        }
        models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut components: Vec<CoverageSignal> = self
                    .metric
                    .components
                    .iter()
                    .map(|&kind| self.build_component(kind, m, i))
                    .collect();
                if components.len() == 1 {
                    components.remove(0)
                } else {
                    CoverageSignal::Composite(components)
                }
            })
            .collect()
    }

    /// Primes per-model profiles from training inputs (rows of `train_x`)
    /// and returns the spec with them attached. A no-op for specs without
    /// profile-based components. Every process of a distributed fleet
    /// primes from the same rows, so profiles agree bit-for-bit.
    pub fn primed(mut self, models: &[Network], train_x: &dx_tensor::Tensor, rows: usize) -> Self {
        if !self.metric.needs_profiles() {
            return self;
        }
        let n = rows.min(train_x.shape()[0]);
        self.profiles = models
            .iter()
            .map(|m| {
                let mut p = NeuronProfile::new(m, self.config.granularity);
                for i in 0..n {
                    p.observe(&m.forward(&dx_nn::util::gather_rows(train_x, &[i])));
                }
                p
            })
            .collect();
        self
    }
}

/// One model's coverage state under a campaign's chosen metric spec.
///
/// Every method panics on mixed-metric operations (merging a neuron
/// signal into a multisection one), exactly as the underlying trackers
/// panic on incompatible shapes — metric agreement is established once at
/// admission/construction time, not re-negotiated per call.
///
/// A [`CoverageSignal::Composite`] concatenates its components' flat unit
/// spaces in component order: component `c`'s unit `u` lives at flat
/// offset `Σ_{c' < c} total(c') + u`. Sparse deltas, masks and covered
/// indices all use this combined space, so wire and checkpoint handling
/// is identical for simple and composite signals.
#[derive(Clone, Debug)]
pub enum CoverageSignal {
    /// Binary neuron coverage.
    Neuron(CoverageTracker),
    /// k-multisection coverage.
    Multisection(MultisectionTracker),
    /// Boundary/corner coverage.
    Boundary(BoundaryTracker),
    /// The union of several component signals (never nested; built by
    /// [`SignalSpec::build`] for multi-component specs).
    Composite(Vec<CoverageSignal>),
}

impl CoverageSignal {
    /// The metric spec this signal implements.
    pub fn metric(&self) -> MetricSpec {
        match self {
            CoverageSignal::Composite(cs) => {
                MetricSpec { components: cs.iter().map(CoverageSignal::component_kind).collect() }
            }
            other => MetricSpec::single(other.component_kind()),
        }
    }

    /// The atomic metric of a non-composite signal.
    ///
    /// # Panics
    ///
    /// Panics on a composite (components are never nested).
    fn component_kind(&self) -> MetricKind {
        match self {
            CoverageSignal::Neuron(_) => MetricKind::Neuron,
            CoverageSignal::Multisection(t) => MetricKind::Multisection { k: t.k() },
            CoverageSignal::Boundary(_) => MetricKind::Boundary,
            CoverageSignal::Composite(_) => unreachable!("composite signals are never nested"),
        }
    }

    /// The component signals: the signal itself for simple metrics, the
    /// component list for composites.
    pub fn components(&self) -> &[CoverageSignal] {
        match self {
            CoverageSignal::Composite(cs) => cs,
            other => std::slice::from_ref(other),
        }
    }

    /// Number of component metrics (1 for simple signals).
    pub fn n_components(&self) -> usize {
        self.components().len()
    }

    /// The neuron granularity the signal tracks at.
    pub fn granularity(&self) -> Granularity {
        match self {
            CoverageSignal::Neuron(t) => t.config().granularity,
            CoverageSignal::Multisection(t) => t.profile().granularity(),
            CoverageSignal::Boundary(t) => t.profile().granularity(),
            CoverageSignal::Composite(cs) => cs[0].granularity(),
        }
    }

    /// Total tracked units — the flat index bound for
    /// [`CoverageSignal::apply_covered_indices`]. For composites, the sum
    /// of the components' totals.
    pub fn total(&self) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.total(),
            CoverageSignal::Multisection(t) => t.total(),
            CoverageSignal::Boundary(t) => t.total(),
            CoverageSignal::Composite(cs) => cs.iter().map(CoverageSignal::total).sum(),
        }
    }

    /// Units that can actually be covered — the coverage denominator
    /// (equals [`CoverageSignal::total`] for the neuron metric; excludes
    /// constant/unprofiled neurons' units for profile-based metrics).
    pub fn coverable_total(&self) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.total(),
            CoverageSignal::Multisection(t) => t.coverable_units(),
            CoverageSignal::Boundary(t) => t.coverable_units(),
            CoverageSignal::Composite(cs) => cs.iter().map(CoverageSignal::coverable_total).sum(),
        }
    }

    /// Units covered so far.
    pub fn covered_count(&self) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.covered_count(),
            CoverageSignal::Multisection(t) => t.covered_count(),
            CoverageSignal::Boundary(t) => t.covered_count(),
            CoverageSignal::Composite(cs) => cs.iter().map(CoverageSignal::covered_count).sum(),
        }
    }

    /// Coverage in `[0, 1]` (fraction of coverable units; for composites,
    /// pooled over all components' coverable units).
    pub fn coverage(&self) -> f32 {
        match self {
            CoverageSignal::Neuron(t) => t.coverage(),
            CoverageSignal::Multisection(t) => t.coverage(),
            CoverageSignal::Boundary(t) => t.coverage(),
            CoverageSignal::Composite(_) => {
                let coverable = self.coverable_total();
                if coverable == 0 {
                    0.0
                } else {
                    self.covered_count() as f32 / coverable as f32
                }
            }
        }
    }

    /// Per-component coverage, in component order (one entry for simple
    /// signals).
    pub fn coverage_by_component(&self) -> Vec<f32> {
        self.components().iter().map(CoverageSignal::coverage).collect()
    }

    /// Whether every coverable unit is covered.
    pub fn is_full(&self) -> bool {
        match self {
            CoverageSignal::Neuron(t) => t.is_full(),
            CoverageSignal::Multisection(t) => t.is_full(),
            CoverageSignal::Boundary(t) => t.is_full(),
            CoverageSignal::Composite(cs) => cs.iter().all(CoverageSignal::is_full),
        }
    }

    /// Folds one (batch-size-1) pass in; returns newly covered units.
    pub fn update(&mut self, pass: &ForwardPass) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.update(pass),
            CoverageSignal::Multisection(t) => t.update(pass),
            CoverageSignal::Boundary(t) => t.update(pass),
            CoverageSignal::Composite(cs) => cs.iter_mut().map(|c| c.update(pass)).sum(),
        }
    }

    /// [`CoverageSignal::update`], additionally accumulating each
    /// component's newly covered units into `per_component` (length
    /// [`CoverageSignal::n_components`]) — allocation-free, for the
    /// campaign's hot per-iterate loop.
    ///
    /// # Panics
    ///
    /// Panics when `per_component` has the wrong length.
    pub fn update_accum(&mut self, pass: &ForwardPass, per_component: &mut [usize]) -> usize {
        assert_eq!(per_component.len(), self.n_components(), "one counter per component");
        match self {
            CoverageSignal::Composite(cs) => {
                let mut total = 0;
                for (c, acc) in cs.iter_mut().zip(per_component) {
                    let n = c.update(pass);
                    *acc += n;
                    total += n;
                }
                total
            }
            simple => {
                let n = simple.update(pass);
                per_component[0] += n;
                n
            }
        }
    }

    /// Whether `other` tracks the same units under the same metric spec —
    /// the precondition for [`CoverageSignal::merge`].
    pub fn compatible(&self, other: &CoverageSignal) -> bool {
        match (self, other) {
            (CoverageSignal::Neuron(a), CoverageSignal::Neuron(b)) => a.compatible(b),
            (CoverageSignal::Multisection(a), CoverageSignal::Multisection(b)) => a.compatible(b),
            (CoverageSignal::Boundary(a), CoverageSignal::Boundary(b)) => a.compatible(b),
            (CoverageSignal::Composite(a), CoverageSignal::Composite(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.compatible(y))
            }
            _ => false,
        }
    }

    /// Unions another signal's covered set into this one; returns newly
    /// covered units. Commutative, idempotent and monotone.
    ///
    /// # Panics
    ///
    /// Panics when the signals are not [`CoverageSignal::compatible`]
    /// (different metrics, networks, or profiles).
    pub fn merge(&mut self, other: &CoverageSignal) -> usize {
        match (self, other) {
            (CoverageSignal::Neuron(a), CoverageSignal::Neuron(b)) => a.merge(b),
            (CoverageSignal::Multisection(a), CoverageSignal::Multisection(b)) => a.merge(b),
            (CoverageSignal::Boundary(a), CoverageSignal::Boundary(b)) => a.merge(b),
            (CoverageSignal::Composite(a), CoverageSignal::Composite(b)) if a.len() == b.len() => {
                a.iter_mut().zip(b).map(|(x, y)| x.merge(y)).sum()
            }
            _ => panic!("cannot merge coverage signals of different metrics"),
        }
    }

    /// The covered mask, one flag per unit, in the combined flat space —
    /// for checkpointing. Owned because a composite's mask is the
    /// concatenation of its components'.
    pub fn covered_mask(&self) -> Vec<bool> {
        match self {
            CoverageSignal::Neuron(t) => t.covered_mask().to_vec(),
            CoverageSignal::Multisection(t) => t.covered_mask().to_vec(),
            CoverageSignal::Boundary(t) => t.covered_mask().to_vec(),
            CoverageSignal::Composite(cs) => {
                cs.iter().flat_map(CoverageSignal::covered_mask).collect()
            }
        }
    }

    /// Replaces the covered set with a previously exported mask.
    ///
    /// # Panics
    ///
    /// Panics when `mask` has the wrong length.
    pub fn set_covered_mask(&mut self, mask: &[bool]) {
        match self {
            CoverageSignal::Neuron(t) => t.set_covered_mask(mask),
            CoverageSignal::Multisection(t) => t.set_covered_mask(mask),
            CoverageSignal::Boundary(t) => t.set_covered_mask(mask),
            CoverageSignal::Composite(cs) => {
                assert_eq!(
                    mask.len(),
                    cs.iter().map(CoverageSignal::total).sum::<usize>(),
                    "composite coverage mask length mismatch"
                );
                let mut offset = 0;
                for c in cs {
                    let n = c.total();
                    c.set_covered_mask(&mask[offset..offset + n]);
                    offset += n;
                }
            }
        }
    }

    /// Flat offsets of all covered units, ascending (component-offset for
    /// composites).
    pub fn covered_indices(&self) -> Vec<usize> {
        match self {
            CoverageSignal::Neuron(t) => t.covered_indices(),
            CoverageSignal::Multisection(t) => t.covered_indices(),
            CoverageSignal::Boundary(t) => t.covered_indices(),
            CoverageSignal::Composite(cs) => {
                let mut out = Vec::new();
                let mut offset = 0;
                for c in cs {
                    out.extend(c.covered_indices().into_iter().map(|i| i + offset));
                    offset += c.total();
                }
                out
            }
        }
    }

    /// Offsets covered here but not in `base` — the sparse per-metric
    /// delta the distributed campaign ships over the wire. Composite
    /// deltas are component-prefixed: each component's indices are shifted
    /// by the preceding components' totals, so one flat index list carries
    /// every component's news.
    ///
    /// # Panics
    ///
    /// Panics when the signals are not [`CoverageSignal::compatible`].
    pub fn diff_indices(&self, base: &CoverageSignal) -> Vec<usize> {
        match (self, base) {
            (CoverageSignal::Neuron(a), CoverageSignal::Neuron(b)) => a.diff_indices(b),
            (CoverageSignal::Multisection(a), CoverageSignal::Multisection(b)) => a.diff_indices(b),
            (CoverageSignal::Boundary(a), CoverageSignal::Boundary(b)) => a.diff_indices(b),
            (CoverageSignal::Composite(a), CoverageSignal::Composite(b)) if a.len() == b.len() => {
                let mut out = Vec::new();
                let mut offset = 0;
                for (x, y) in a.iter().zip(b) {
                    out.extend(x.diff_indices(y).into_iter().map(|i| i + offset));
                    offset += x.total();
                }
                out
            }
            _ => panic!("cannot diff coverage signals of different metrics"),
        }
    }

    /// Marks the given offsets covered; returns newly covered units. The
    /// inverse of [`CoverageSignal::diff_indices`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range offset; wire handlers must validate
    /// indices against [`CoverageSignal::total`] before applying.
    pub fn apply_covered_indices(&mut self, indices: &[usize]) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.apply_covered_indices(indices),
            CoverageSignal::Multisection(t) => t.apply_covered_indices(indices),
            CoverageSignal::Boundary(t) => t.apply_covered_indices(indices),
            CoverageSignal::Composite(cs) => {
                // Route each flat offset to its component. Deltas are
                // usually short; per-index routing beats materializing
                // per-component sublists.
                let bounds: Vec<usize> = cs
                    .iter()
                    .scan(0usize, |acc, c| {
                        *acc += c.total();
                        Some(*acc)
                    })
                    .collect();
                let total = *bounds.last().expect("composite has components");
                let mut newly = 0;
                for &i in indices {
                    assert!(i < total, "covered index {i} out of range {total}");
                    let comp = bounds.partition_point(|&b| b <= i);
                    let start = if comp == 0 { 0 } else { bounds[comp - 1] };
                    newly += cs[comp].apply_covered_indices(&[i - start]);
                }
                newly
            }
        }
    }

    /// Replaces this signal's covered set with `other`'s.
    ///
    /// # Panics
    ///
    /// Panics when the signals are not [`CoverageSignal::compatible`].
    pub fn copy_covered_from(&mut self, other: &CoverageSignal) {
        match (self, other) {
            (CoverageSignal::Neuron(a), CoverageSignal::Neuron(b)) => a.copy_covered_from(b),
            (CoverageSignal::Multisection(a), CoverageSignal::Multisection(b)) => {
                a.copy_covered_from(b)
            }
            (CoverageSignal::Boundary(a), CoverageSignal::Boundary(b)) => a.copy_covered_from(b),
            (CoverageSignal::Composite(a), CoverageSignal::Composite(b)) if a.len() == b.len() => {
                for (x, y) in a.iter_mut().zip(b) {
                    x.copy_covered_from(y);
                }
            }
            _ => panic!("cannot copy coverage between signals of different metrics"),
        }
    }

    /// Resets the covered set.
    pub fn reset(&mut self) {
        match self {
            CoverageSignal::Neuron(t) => t.reset(),
            CoverageSignal::Multisection(t) => t.reset(),
            CoverageSignal::Boundary(t) => t.reset(),
            CoverageSignal::Composite(cs) => cs.iter_mut().for_each(CoverageSignal::reset),
        }
    }

    /// Whether the obj2 term can still make progress on `id` under this
    /// signal: uncovered (neuron metric), unhit sections (multisection),
    /// or an unhit corner (boundary). Composites want a neuron when any
    /// component does.
    pub fn wants(&self, id: NeuronId) -> bool {
        match self {
            CoverageSignal::Neuron(t) => t.is_uncovered(id),
            CoverageSignal::Multisection(t) => t.neuron_incomplete(id),
            CoverageSignal::Boundary(t) => t.neuron_incomplete(id),
            CoverageSignal::Composite(cs) => cs.iter().any(|c| c.wants(id)),
        }
    }

    /// Picks up to `k` distinct obj2 target neurons: uncovered neurons
    /// under the neuron metric, neurons with unhit range sections under
    /// multisection, neurons with unhit corners under boundary. A
    /// composite interleaves its components' picks (first pick of each
    /// component, then second picks, …) and dedups, so no component
    /// starves while another still has work.
    pub fn pick_uncovered_k(&self, r: &mut Rng, k: usize) -> Vec<NeuronId> {
        match self {
            CoverageSignal::Neuron(t) => t.pick_uncovered_k(r, k),
            CoverageSignal::Multisection(t) => t.pick_incomplete_k(r, k),
            CoverageSignal::Boundary(t) => t.pick_incomplete_k(r, k),
            CoverageSignal::Composite(cs) => {
                let per: Vec<Vec<NeuronId>> = cs.iter().map(|c| c.pick_uncovered_k(r, k)).collect();
                let mut out = Vec::with_capacity(k);
                let deepest = per.iter().map(Vec::len).max().unwrap_or(0);
                'fill: for i in 0..deepest {
                    for picks in &per {
                        if let Some(&id) = picks.get(i) {
                            if !out.contains(&id) {
                                out.push(id);
                                if out.len() == k {
                                    break 'fill;
                                }
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Picks the obj2 target nearest to progress in `pass` (highest
    /// current value among still-improvable neurons). A composite asks its
    /// components in declaration order and takes the first answer, so
    /// earlier components saturate before later ones start steering.
    pub fn pick_uncovered_nearest(&self, pass: &ForwardPass) -> Option<NeuronId> {
        match self {
            CoverageSignal::Neuron(t) => t.pick_uncovered_nearest(pass),
            CoverageSignal::Multisection(t) => t.pick_incomplete_nearest(pass),
            CoverageSignal::Boundary(t) => t.pick_incomplete_nearest(pass),
            CoverageSignal::Composite(cs) => cs.iter().find_map(|c| c.pick_uncovered_nearest(pass)),
        }
    }

    /// Which way the obj2 gradient term should push `id`'s activation:
    /// always up (`1.0`) under the neuron metric; toward the nearest
    /// unhit range section under multisection; past the nearest unhit
    /// range edge under boundary. A composite delegates to its first
    /// component that still [`CoverageSignal::wants`] the neuron (matching
    /// how composite picks interleave), falling back to `1.0`.
    pub fn target_direction(&self, id: NeuronId, pass: &ForwardPass) -> f32 {
        match self {
            CoverageSignal::Neuron(_) => 1.0,
            CoverageSignal::Multisection(t) => t.target_direction(id, pass),
            CoverageSignal::Boundary(t) => t.target_direction(id, pass),
            CoverageSignal::Composite(cs) => {
                cs.iter().find(|c| c.wants(id)).map(|c| c.target_direction(id, pass)).unwrap_or(1.0)
            }
        }
    }

    /// The shared neuron profile of a profile-based signal (`None` for the
    /// pure neuron metric). All profile-based components of one model's
    /// composite are cut from the same profile, so the first is canonical.
    pub fn profile(&self) -> Option<&NeuronProfile> {
        match self {
            CoverageSignal::Neuron(_) => None,
            CoverageSignal::Multisection(t) => Some(t.profile()),
            CoverageSignal::Boundary(t) => Some(t.profile()),
            CoverageSignal::Composite(cs) => cs.iter().find_map(CoverageSignal::profile),
        }
    }

    /// The underlying neuron tracker, when this is the neuron metric.
    pub fn as_neuron(&self) -> Option<&CoverageTracker> {
        match self {
            CoverageSignal::Neuron(t) => Some(t),
            _ => None,
        }
    }

    /// The underlying multisection tracker, when this is that metric.
    pub fn as_multisection(&self) -> Option<&MultisectionTracker> {
        match self {
            CoverageSignal::Multisection(t) => Some(t),
            _ => None,
        }
    }

    /// The underlying boundary tracker, when this is that metric.
    pub fn as_boundary(&self) -> Option<&BoundaryTracker> {
        match self {
            CoverageSignal::Boundary(t) => Some(t),
            _ => None,
        }
    }
}

/// Mean coverage per component across a set of per-model signals (the
/// campaign's per-component progress view, used for report columns and
/// per-component rarity energy). All signals must share a metric spec.
pub fn mean_component_coverage(signals: &[CoverageSignal]) -> Vec<f32> {
    let Some(first) = signals.first() else { return Vec::new() };
    let mut sums = vec![0.0f32; first.n_components()];
    for s in signals {
        for (acc, c) in sums.iter_mut().zip(s.coverage_by_component()) {
            *acc += c;
        }
    }
    for acc in &mut sums {
        *acc /= signals.len() as f32;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;
    use dx_tensor::rng;

    fn net(seed: u64) -> Network {
        let mut n = Network::new(
            &[6],
            vec![Layer::dense(6, 8), Layer::tanh(), Layer::dense(8, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    fn ms_spec(k: usize) -> MetricSpec {
        MetricKind::Multisection { k }.into()
    }

    #[test]
    fn metric_kind_parses_and_displays() {
        assert_eq!("neuron".parse::<MetricKind>().unwrap(), MetricKind::Neuron);
        assert_eq!("boundary".parse::<MetricKind>().unwrap(), MetricKind::Boundary);
        assert_eq!(
            "multisection".parse::<MetricKind>().unwrap(),
            MetricKind::Multisection { k: MetricKind::DEFAULT_K }
        );
        assert_eq!(
            "multisection:7".parse::<MetricKind>().unwrap(),
            MetricKind::Multisection { k: 7 }
        );
        assert!("multisection:0".parse::<MetricKind>().is_err());
        assert!("multisection:x".parse::<MetricKind>().is_err());
        assert!("sections".parse::<MetricKind>().is_err());
        for m in [MetricKind::Neuron, MetricKind::Multisection { k: 12 }, MetricKind::Boundary] {
            assert_eq!(m.to_string().parse::<MetricKind>().unwrap(), m);
        }
    }

    #[test]
    fn metric_spec_parses_composites_and_round_trips() {
        let spec: MetricSpec = "multisection:8+boundary".parse().unwrap();
        assert_eq!(spec.components, vec![MetricKind::Multisection { k: 8 }, MetricKind::Boundary]);
        assert!(spec.needs_profiles());
        assert!(!MetricSpec::single(MetricKind::Neuron).needs_profiles());
        // Display ↔ FromStr round-trips for every composite form.
        for s in [
            "neuron",
            "boundary",
            "multisection:4",
            "neuron+boundary",
            "multisection:8+boundary",
            "boundary+multisection:2",
            "neuron+multisection:4+boundary",
        ] {
            let spec: MetricSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(spec.to_string().parse::<MetricSpec>().unwrap(), spec);
        }
        // Order is identity: a+b is not b+a.
        assert_ne!(
            "neuron+boundary".parse::<MetricSpec>().unwrap(),
            "boundary+neuron".parse::<MetricSpec>().unwrap()
        );
    }

    #[test]
    fn metric_spec_rejects_malformed_composites_with_clear_errors() {
        for (input, needle) in [
            ("", "empty metric spec"),
            ("+boundary", "empty metric component"),
            ("neuron+", "empty metric component"),
            ("neuron++boundary", "empty metric component"),
            ("neuron+warp", "unknown metric"),
            ("multisection:0+boundary", "positive k"),
            ("boundary+boundary", "duplicate metric component"),
            ("neuron+multisection:4+neuron", "duplicate metric component"),
        ] {
            let err = input.parse::<MetricSpec>().unwrap_err();
            assert!(err.contains(needle), "`{input}` → `{err}` (wanted `{needle}`)");
        }
        // Distinct k values are distinct components, not duplicates.
        assert!("multisection:2+multisection:4".parse::<MetricSpec>().is_ok());
    }

    #[test]
    fn spec_builds_one_signal_per_model() {
        let models = vec![net(1), net(2)];
        let train = rng::uniform(&mut rng::rng(3), &[20, 6], 0.0, 1.0);
        let neuron = SignalSpec::neuron(CoverageConfig::scaled(0.25)).build(&models);
        assert_eq!(neuron.len(), 2);
        assert_eq!(neuron[0].metric(), MetricSpec::single(MetricKind::Neuron));

        let spec = SignalSpec::of(CoverageConfig::default(), ms_spec(4), Vec::new())
            .primed(&models, &train, 10);
        let ms = spec.build(&models);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].metric(), ms_spec(4));
        assert!(ms[0].total() > 0);

        let boundary =
            SignalSpec::of(CoverageConfig::default(), MetricKind::Boundary.into(), Vec::new())
                .primed(&models, &train, 10)
                .build(&models);
        assert_eq!(boundary[0].metric(), MetricSpec::single(MetricKind::Boundary));
        assert!(boundary[0].total() > 0);

        let composite = SignalSpec::of(
            CoverageConfig::scaled(0.25),
            "neuron+multisection:3+boundary".parse().unwrap(),
            Vec::new(),
        )
        .primed(&models, &train, 10)
        .build(&models);
        assert_eq!(composite[0].n_components(), 3);
        let comp_totals: usize = composite[0].components().iter().map(CoverageSignal::total).sum();
        assert_eq!(composite[0].total(), comp_totals);
        // Boundary tracks 2 units per neuron over the same profile the
        // multisection component sections.
        let ms_t = composite[0].components()[1].as_multisection().unwrap();
        let b_t = composite[0].components()[2].as_boundary().unwrap();
        assert_eq!(b_t.total(), ms_t.profile().total() * 2);
    }

    #[test]
    fn signal_ops_work_for_every_metric() {
        let m = net(4);
        let train = rng::uniform(&mut rng::rng(5), &[20, 6], 0.0, 1.0);
        let specs = [
            SignalSpec::neuron(CoverageConfig::scaled(0.25)),
            SignalSpec::of(CoverageConfig::default(), ms_spec(3), Vec::new()).primed(
                std::slice::from_ref(&m),
                &train,
                15,
            ),
            SignalSpec::of(CoverageConfig::default(), MetricKind::Boundary.into(), Vec::new())
                .primed(std::slice::from_ref(&m), &train, 15),
            SignalSpec::of(
                CoverageConfig::scaled(0.25),
                "multisection:3+boundary".parse().unwrap(),
                Vec::new(),
            )
            .primed(std::slice::from_ref(&m), &train, 15),
        ];
        for spec in specs {
            let mut a = spec.build(std::slice::from_ref(&m)).remove(0);
            let mut b = a.clone();
            let mut r = rng::rng(6);
            a.update(&m.forward(&rng::uniform(&mut r, &[1, 6], -1.0, 0.5)));
            b.update(&m.forward(&rng::uniform(&mut r, &[1, 6], 0.5, 2.0)));
            assert!(a.compatible(&b));
            // Sparse-delta sync converges to the same union as merge.
            let mut merged = a.clone();
            merged.merge(&b);
            let mut synced = a.clone();
            let delta = b.diff_indices(&a);
            assert!(delta.iter().all(|&i| i < b.total()));
            synced.apply_covered_indices(&delta);
            assert_eq!(synced.covered_mask(), merged.covered_mask());
            assert_eq!(synced.coverage(), merged.coverage());
            // Mask round trip.
            let mut fresh = spec.build(std::slice::from_ref(&m)).remove(0);
            fresh.set_covered_mask(&merged.covered_mask());
            assert_eq!(fresh.covered_count(), merged.covered_count());
            // Covered indices live in the combined flat space.
            let idx = merged.covered_indices();
            assert_eq!(idx.len(), merged.covered_count());
            assert!(idx.iter().all(|&i| i < merged.total()));
            // Per-component accounting is consistent with the totals.
            let per = merged.coverage_by_component();
            assert_eq!(per.len(), merged.n_components());
            // Picks stay within the tracked space.
            let picks = merged.pick_uncovered_k(&mut r, 3);
            assert!(picks.len() <= 3);
            let probe = m.forward(&rng::uniform(&mut r, &[1, 6], 0.0, 1.0));
            for p in &picks {
                assert!(merged.wants(*p));
                let d = merged.target_direction(*p, &probe);
                assert!(d == 1.0 || d == -1.0);
            }
            merged.reset();
            assert_eq!(merged.covered_count(), 0);
        }
    }

    #[test]
    fn composite_update_accum_tracks_components() {
        let m = net(7);
        let train = rng::uniform(&mut rng::rng(8), &[20, 6], 0.2, 0.8);
        let spec = SignalSpec::of(
            CoverageConfig::scaled(0.25),
            "neuron+boundary".parse().unwrap(),
            Vec::new(),
        )
        .primed(std::slice::from_ref(&m), &train, 15);
        let mut s = spec.build(std::slice::from_ref(&m)).remove(0);
        let mut per = vec![0usize; s.n_components()];
        // An in-distribution input covers neurons but no corners...
        let inside = m.forward(&rng::uniform(&mut rng::rng(9), &[1, 6], 0.2, 0.8));
        let total = s.update_accum(&inside, &mut per);
        assert_eq!(total, per.iter().sum::<usize>());
        assert_eq!(per[1], 0, "in-distribution input must not hit corners");
        // ...and a wild one reaches the boundary component.
        let outside = m.forward(&rng::uniform(&mut rng::rng(10), &[1, 6], -6.0, 6.0));
        let before = per.clone();
        s.update_accum(&outside, &mut per);
        assert!(per[1] > before[1], "out-of-range input must hit corners");
        // The composite's covered units equal the component sum.
        assert_eq!(
            s.covered_count(),
            s.components().iter().map(CoverageSignal::covered_count).sum::<usize>()
        );
    }

    #[test]
    fn composite_covers_strictly_more_than_its_multisection_part() {
        // The acceptance property at signal level: the composite's unit
        // space strictly contains the multisection one, and inputs outside
        // the profiled ranges cover units multisection alone cannot.
        let m = net(11);
        let train = rng::uniform(&mut rng::rng(12), &[20, 6], 0.3, 0.7);
        let ms_only = SignalSpec::of(CoverageConfig::default(), ms_spec(4), Vec::new()).primed(
            std::slice::from_ref(&m),
            &train,
            15,
        );
        let composite = SignalSpec::of(
            CoverageConfig::default(),
            "multisection:4+boundary".parse().unwrap(),
            ms_only.profiles.clone(),
        );
        let mut a = ms_only.build(std::slice::from_ref(&m)).remove(0);
        let mut b = composite.build(std::slice::from_ref(&m)).remove(0);
        let mut r = rng::rng(13);
        for _ in 0..10 {
            let pass = m.forward(&rng::uniform(&mut r, &[1, 6], -4.0, 4.0));
            a.update(&pass);
            b.update(&pass);
        }
        assert!(b.total() > a.total());
        assert!(
            b.covered_count() > a.covered_count(),
            "composite must find corner units multisection misses ({} vs {})",
            b.covered_count(),
            a.covered_count()
        );
    }

    #[test]
    fn mean_component_coverage_averages_models() {
        let models = vec![net(20), net(21)];
        let train = rng::uniform(&mut rng::rng(22), &[20, 6], 0.0, 1.0);
        let spec = SignalSpec::of(
            CoverageConfig::scaled(0.25),
            "neuron+boundary".parse().unwrap(),
            Vec::new(),
        )
        .primed(&models, &train, 10);
        let mut signals = spec.build(&models);
        for (s, m) in signals.iter_mut().zip(&models) {
            s.update(&m.forward(&rng::uniform(&mut rng::rng(23), &[1, 6], -2.0, 2.0)));
        }
        let comp = mean_component_coverage(&signals);
        assert_eq!(comp.len(), 2);
        let expected: f32 = signals.iter().map(|s| s.coverage_by_component()[0]).sum::<f32>() / 2.0;
        assert!((comp[0] - expected).abs() < 1e-6);
        assert!(mean_component_coverage(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "different metrics")]
    fn mixed_metric_merge_panics() {
        let m = net(30);
        let train = rng::uniform(&mut rng::rng(31), &[10, 6], 0.0, 1.0);
        let mut a =
            SignalSpec::neuron(CoverageConfig::default()).build(std::slice::from_ref(&m)).remove(0);
        let b = SignalSpec::of(CoverageConfig::default(), ms_spec(2), Vec::new())
            .primed(std::slice::from_ref(&m), &train, 10)
            .build(std::slice::from_ref(&m))
            .remove(0);
        a.merge(&b);
    }
}
