//! The metric-generic coverage signal campaigns steer by.
//!
//! DeepXplore's generator, the campaign engine and the distributed
//! coordinator all need the same operations from a coverage metric:
//! fold a forward pass in, report progress, union state across workers,
//! ship sparse deltas over the wire, and pick a target for the obj2
//! gradient term. [`CoverageSignal`] is that interface over the two
//! metrics this workspace implements — the paper's binary neuron
//! coverage ([`CoverageTracker`]) and DeepGauge's k-multisection
//! refinement ([`MultisectionTracker`]) — so every engine layer is
//! written once against the signal, not a concrete tracker type.
//!
//! [`SignalSpec`] is the serializable-ish recipe (metric kind, coverage
//! config, and — for multisection — the per-model training-set profiles)
//! from which per-model signals are built.

use dx_nn::network::{ForwardPass, Network};
use dx_tensor::rng::Rng;

use crate::multisection::{MultisectionTracker, NeuronProfile};
use crate::neuron::{Granularity, NeuronId};
use crate::tracker::{CoverageConfig, CoverageTracker};

/// Which coverage metric a campaign steers by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MetricKind {
    /// The paper's binary neuron coverage (§4.1): a neuron is covered once
    /// its output exceeds the threshold anywhere.
    #[default]
    Neuron,
    /// DeepGauge k-multisection coverage: each neuron's profiled output
    /// range is split into `k` sections, and units are neuron-sections.
    Multisection {
        /// Sections per neuron.
        k: usize,
    },
}

impl MetricKind {
    /// The default section count for `multisection` given without `:k`.
    pub const DEFAULT_K: usize = 4;
}

impl std::fmt::Display for MetricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricKind::Neuron => write!(f, "neuron"),
            MetricKind::Multisection { k } => write!(f, "multisection:{k}"),
        }
    }
}

impl std::str::FromStr for MetricKind {
    type Err = String;

    /// Parses `neuron`, `multisection`, or `multisection:<k>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "neuron" => Ok(MetricKind::Neuron),
            "multisection" => Ok(MetricKind::Multisection { k: Self::DEFAULT_K }),
            other => match other.strip_prefix("multisection:") {
                Some(k) => match k.parse::<usize>() {
                    Ok(k) if k > 0 => Ok(MetricKind::Multisection { k }),
                    _ => Err(format!("multisection needs a positive k, got `{k}`")),
                },
                None => Err(format!("unknown metric `{other}` (neuron|multisection[:k])")),
            },
        }
    }
}

/// The recipe a campaign builds its per-model coverage signals from.
#[derive(Clone, Debug)]
pub struct SignalSpec {
    /// Threshold/scaling/granularity knobs. The threshold and per-layer
    /// scaling apply to the neuron metric; granularity applies to both.
    pub config: CoverageConfig,
    /// Which metric to steer by.
    pub metric: MetricKind,
    /// Per-model training-set profiles, one per model in suite order.
    /// Required (and primed) for [`MetricKind::Multisection`]; empty for
    /// [`MetricKind::Neuron`].
    pub profiles: Vec<NeuronProfile>,
}

impl SignalSpec {
    /// The paper's neuron-coverage signal under `config`.
    pub fn neuron(config: CoverageConfig) -> Self {
        Self { config, metric: MetricKind::Neuron, profiles: Vec::new() }
    }

    /// A k-multisection signal over primed per-model profiles.
    pub fn multisection(config: CoverageConfig, k: usize, profiles: Vec<NeuronProfile>) -> Self {
        Self { config, metric: MetricKind::Multisection { k }, profiles }
    }

    /// Builds one signal per model.
    ///
    /// # Panics
    ///
    /// For multisection: when the profile count does not match the model
    /// count, or a profile is unprimed.
    pub fn build(&self, models: &[Network]) -> Vec<CoverageSignal> {
        match self.metric {
            MetricKind::Neuron => models
                .iter()
                .map(|m| CoverageSignal::Neuron(CoverageTracker::for_network(m, self.config)))
                .collect(),
            MetricKind::Multisection { k } => {
                assert_eq!(
                    self.profiles.len(),
                    models.len(),
                    "multisection needs one primed profile per model"
                );
                self.profiles
                    .iter()
                    .map(|p| CoverageSignal::Multisection(MultisectionTracker::new(p.clone(), k)))
                    .collect()
            }
        }
    }

    /// Primes per-model multisection profiles from training inputs (rows
    /// of `train_x`) and returns the spec with them attached. A no-op for
    /// the neuron metric. Every process of a distributed fleet primes
    /// from the same rows, so profiles agree bit-for-bit.
    pub fn primed(mut self, models: &[Network], train_x: &dx_tensor::Tensor, rows: usize) -> Self {
        if self.metric == MetricKind::Neuron {
            return self;
        }
        let n = rows.min(train_x.shape()[0]);
        self.profiles = models
            .iter()
            .map(|m| {
                let mut p = NeuronProfile::new(m, self.config.granularity);
                for i in 0..n {
                    p.observe(&m.forward(&dx_nn::util::gather_rows(train_x, &[i])));
                }
                p
            })
            .collect();
        self
    }
}

/// One model's coverage state under a campaign's chosen metric.
///
/// Every method panics on mixed-metric operations (merging a neuron
/// signal into a multisection one), exactly as the underlying trackers
/// panic on incompatible shapes — metric agreement is established once at
/// admission/construction time, not re-negotiated per call.
#[derive(Clone, Debug)]
pub enum CoverageSignal {
    /// Binary neuron coverage.
    Neuron(CoverageTracker),
    /// k-multisection coverage.
    Multisection(MultisectionTracker),
}

impl CoverageSignal {
    /// The metric this signal implements.
    pub fn metric(&self) -> MetricKind {
        match self {
            CoverageSignal::Neuron(_) => MetricKind::Neuron,
            CoverageSignal::Multisection(t) => MetricKind::Multisection { k: t.k() },
        }
    }

    /// The neuron granularity the signal tracks at.
    pub fn granularity(&self) -> Granularity {
        match self {
            CoverageSignal::Neuron(t) => t.config().granularity,
            CoverageSignal::Multisection(t) => t.profile().granularity(),
        }
    }

    /// Total tracked units (neurons, or neuron-sections) — the flat index
    /// bound for [`CoverageSignal::apply_covered_indices`].
    pub fn total(&self) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.total(),
            CoverageSignal::Multisection(t) => t.total(),
        }
    }

    /// Units covered so far.
    pub fn covered_count(&self) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.covered_count(),
            CoverageSignal::Multisection(t) => t.covered_count(),
        }
    }

    /// Coverage in `[0, 1]` (fraction of coverable units).
    pub fn coverage(&self) -> f32 {
        match self {
            CoverageSignal::Neuron(t) => t.coverage(),
            CoverageSignal::Multisection(t) => t.coverage(),
        }
    }

    /// Whether every coverable unit is covered.
    pub fn is_full(&self) -> bool {
        match self {
            CoverageSignal::Neuron(t) => t.is_full(),
            CoverageSignal::Multisection(t) => t.is_full(),
        }
    }

    /// Folds one (batch-size-1) pass in; returns newly covered units.
    pub fn update(&mut self, pass: &ForwardPass) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.update(pass),
            CoverageSignal::Multisection(t) => t.update(pass),
        }
    }

    /// Whether `other` tracks the same units under the same metric — the
    /// precondition for [`CoverageSignal::merge`].
    pub fn compatible(&self, other: &CoverageSignal) -> bool {
        match (self, other) {
            (CoverageSignal::Neuron(a), CoverageSignal::Neuron(b)) => a.compatible(b),
            (CoverageSignal::Multisection(a), CoverageSignal::Multisection(b)) => a.compatible(b),
            _ => false,
        }
    }

    /// Unions another signal's covered set into this one; returns newly
    /// covered units. Commutative, idempotent and monotone.
    ///
    /// # Panics
    ///
    /// Panics when the signals are not [`CoverageSignal::compatible`]
    /// (different metrics, networks, or profiles).
    pub fn merge(&mut self, other: &CoverageSignal) -> usize {
        match (self, other) {
            (CoverageSignal::Neuron(a), CoverageSignal::Neuron(b)) => a.merge(b),
            (CoverageSignal::Multisection(a), CoverageSignal::Multisection(b)) => a.merge(b),
            _ => panic!("cannot merge coverage signals of different metrics"),
        }
    }

    /// The raw covered mask, one flag per unit — for checkpointing.
    pub fn covered_mask(&self) -> &[bool] {
        match self {
            CoverageSignal::Neuron(t) => t.covered_mask(),
            CoverageSignal::Multisection(t) => t.covered_mask(),
        }
    }

    /// Replaces the covered set with a previously exported mask.
    ///
    /// # Panics
    ///
    /// Panics when `mask` has the wrong length.
    pub fn set_covered_mask(&mut self, mask: &[bool]) {
        match self {
            CoverageSignal::Neuron(t) => t.set_covered_mask(mask),
            CoverageSignal::Multisection(t) => t.set_covered_mask(mask),
        }
    }

    /// Flat offsets of all covered units, ascending.
    pub fn covered_indices(&self) -> Vec<usize> {
        match self {
            CoverageSignal::Neuron(t) => t.covered_indices(),
            CoverageSignal::Multisection(t) => t.covered_indices(),
        }
    }

    /// Offsets covered here but not in `base` — the sparse per-metric
    /// delta the distributed campaign ships over the wire.
    ///
    /// # Panics
    ///
    /// Panics when the signals are not [`CoverageSignal::compatible`].
    pub fn diff_indices(&self, base: &CoverageSignal) -> Vec<usize> {
        match (self, base) {
            (CoverageSignal::Neuron(a), CoverageSignal::Neuron(b)) => a.diff_indices(b),
            (CoverageSignal::Multisection(a), CoverageSignal::Multisection(b)) => a.diff_indices(b),
            _ => panic!("cannot diff coverage signals of different metrics"),
        }
    }

    /// Marks the given offsets covered; returns newly covered units. The
    /// inverse of [`CoverageSignal::diff_indices`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range offset; wire handlers must validate
    /// indices against [`CoverageSignal::total`] before applying.
    pub fn apply_covered_indices(&mut self, indices: &[usize]) -> usize {
        match self {
            CoverageSignal::Neuron(t) => t.apply_covered_indices(indices),
            CoverageSignal::Multisection(t) => t.apply_covered_indices(indices),
        }
    }

    /// Replaces this signal's covered set with `other`'s.
    ///
    /// # Panics
    ///
    /// Panics when the signals are not [`CoverageSignal::compatible`].
    pub fn copy_covered_from(&mut self, other: &CoverageSignal) {
        match (self, other) {
            (CoverageSignal::Neuron(a), CoverageSignal::Neuron(b)) => a.copy_covered_from(b),
            (CoverageSignal::Multisection(a), CoverageSignal::Multisection(b)) => {
                a.copy_covered_from(b)
            }
            _ => panic!("cannot copy coverage between signals of different metrics"),
        }
    }

    /// Resets the covered set.
    pub fn reset(&mut self) {
        match self {
            CoverageSignal::Neuron(t) => t.reset(),
            CoverageSignal::Multisection(t) => t.reset(),
        }
    }

    /// Picks up to `k` distinct obj2 target neurons: uncovered neurons
    /// under the neuron metric, neurons with unhit range sections under
    /// multisection (pushing their activation explores the range).
    pub fn pick_uncovered_k(&self, r: &mut Rng, k: usize) -> Vec<NeuronId> {
        match self {
            CoverageSignal::Neuron(t) => t.pick_uncovered_k(r, k),
            CoverageSignal::Multisection(t) => t.pick_incomplete_k(r, k),
        }
    }

    /// Picks the obj2 target nearest to progress in `pass` (highest
    /// current value among still-improvable neurons).
    pub fn pick_uncovered_nearest(&self, pass: &ForwardPass) -> Option<NeuronId> {
        match self {
            CoverageSignal::Neuron(t) => t.pick_uncovered_nearest(pass),
            CoverageSignal::Multisection(t) => t.pick_incomplete_nearest(pass),
        }
    }

    /// Which way the obj2 gradient term should push `id`'s activation:
    /// always up (`1.0`) under the neuron metric; toward the nearest
    /// unhit range section (`±1.0`) under multisection, where unhit
    /// sections can sit below the current operating point.
    pub fn target_direction(&self, id: NeuronId, pass: &ForwardPass) -> f32 {
        match self {
            CoverageSignal::Neuron(_) => 1.0,
            CoverageSignal::Multisection(t) => t.target_direction(id, pass),
        }
    }

    /// The underlying neuron tracker, when this is the neuron metric.
    pub fn as_neuron(&self) -> Option<&CoverageTracker> {
        match self {
            CoverageSignal::Neuron(t) => Some(t),
            CoverageSignal::Multisection(_) => None,
        }
    }

    /// The underlying multisection tracker, when this is that metric.
    pub fn as_multisection(&self) -> Option<&MultisectionTracker> {
        match self {
            CoverageSignal::Neuron(_) => None,
            CoverageSignal::Multisection(t) => Some(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;
    use dx_tensor::rng;

    fn net(seed: u64) -> Network {
        let mut n = Network::new(
            &[6],
            vec![Layer::dense(6, 8), Layer::tanh(), Layer::dense(8, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    #[test]
    fn metric_kind_parses_and_displays() {
        assert_eq!("neuron".parse::<MetricKind>().unwrap(), MetricKind::Neuron);
        assert_eq!(
            "multisection".parse::<MetricKind>().unwrap(),
            MetricKind::Multisection { k: MetricKind::DEFAULT_K }
        );
        assert_eq!(
            "multisection:7".parse::<MetricKind>().unwrap(),
            MetricKind::Multisection { k: 7 }
        );
        assert!("multisection:0".parse::<MetricKind>().is_err());
        assert!("multisection:x".parse::<MetricKind>().is_err());
        assert!("sections".parse::<MetricKind>().is_err());
        for m in [MetricKind::Neuron, MetricKind::Multisection { k: 12 }] {
            assert_eq!(m.to_string().parse::<MetricKind>().unwrap(), m);
        }
    }

    #[test]
    fn spec_builds_one_signal_per_model() {
        let models = vec![net(1), net(2)];
        let train = rng::uniform(&mut rng::rng(3), &[20, 6], 0.0, 1.0);
        let neuron = SignalSpec::neuron(CoverageConfig::scaled(0.25)).build(&models);
        assert_eq!(neuron.len(), 2);
        assert_eq!(neuron[0].metric(), MetricKind::Neuron);

        let spec = SignalSpec {
            config: CoverageConfig::default(),
            metric: MetricKind::Multisection { k: 4 },
            profiles: Vec::new(),
        }
        .primed(&models, &train, 10);
        let ms = spec.build(&models);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].metric(), MetricKind::Multisection { k: 4 });
        assert!(ms[0].total() > 0);
    }

    #[test]
    fn signal_ops_work_for_both_metrics() {
        let m = net(4);
        let train = rng::uniform(&mut rng::rng(5), &[20, 6], 0.0, 1.0);
        let specs = [
            SignalSpec::neuron(CoverageConfig::scaled(0.25)),
            SignalSpec {
                config: CoverageConfig::default(),
                metric: MetricKind::Multisection { k: 3 },
                profiles: Vec::new(),
            }
            .primed(std::slice::from_ref(&m), &train, 15),
        ];
        for spec in specs {
            let mut a = spec.build(std::slice::from_ref(&m)).remove(0);
            let mut b = a.clone();
            let mut r = rng::rng(6);
            a.update(&m.forward(&rng::uniform(&mut r, &[1, 6], 0.0, 0.5)));
            b.update(&m.forward(&rng::uniform(&mut r, &[1, 6], 0.5, 1.0)));
            assert!(a.compatible(&b));
            // Sparse-delta sync converges to the same union as merge.
            let mut merged = a.clone();
            merged.merge(&b);
            let mut synced = a.clone();
            let delta = b.diff_indices(&a);
            assert!(delta.iter().all(|&i| i < b.total()));
            synced.apply_covered_indices(&delta);
            assert_eq!(synced.covered_mask(), merged.covered_mask());
            assert_eq!(synced.coverage(), merged.coverage());
            // Mask round trip.
            let mut fresh = spec.build(std::slice::from_ref(&m)).remove(0);
            fresh.set_covered_mask(merged.covered_mask());
            assert_eq!(fresh.covered_count(), merged.covered_count());
            // Picks stay within the tracked space.
            let picks = merged.pick_uncovered_k(&mut r, 3);
            assert!(picks.len() <= 3);
            merged.reset();
            assert_eq!(merged.covered_count(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "different metrics")]
    fn mixed_metric_merge_panics() {
        let m = net(7);
        let train = rng::uniform(&mut rng::rng(8), &[10, 6], 0.0, 1.0);
        let mut a =
            SignalSpec::neuron(CoverageConfig::default()).build(std::slice::from_ref(&m)).remove(0);
        let b = SignalSpec {
            config: CoverageConfig::default(),
            metric: MetricKind::Multisection { k: 2 },
            profiles: Vec::new(),
        }
        .primed(std::slice::from_ref(&m), &train, 10)
        .build(std::slice::from_ref(&m))
        .remove(0);
        a.merge(&b);
    }
}
