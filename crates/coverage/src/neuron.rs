//! Neuron identity, value extraction and per-layer scaling.

use dx_nn::network::{ForwardPass, Network};
use dx_tensor::Tensor;

/// How neurons are counted in spatial (convolutional) activations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Granularity {
    /// One neuron per channel; its value is the spatial mean of the feature
    /// map. This matches the original DeepXplore implementation and is the
    /// workspace default.
    ChannelMean,
    /// One neuron per scalar activation unit.
    Unit,
}

/// Identifies one neuron: a tracked activation plus an index within it.
///
/// For rank-4 activations the index is a channel (`ChannelMean`) or a flat
/// `c·H·W + y·W + x` offset (`Unit`); for rank-2 activations it is the
/// feature index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NeuronId {
    /// Activation index in the network (`1..=num_layers`).
    pub activation: usize,
    /// Neuron index within the activation.
    pub index: usize,
}

/// Number of neurons a given activation shape contributes.
pub fn neuron_count(shape: &[usize], granularity: Granularity) -> usize {
    match (shape.len(), granularity) {
        (3, Granularity::ChannelMean) => shape[0],
        (3, Granularity::Unit) => shape.iter().product(),
        (1, _) => shape[0],
        _ => panic!("unsupported activation shape {shape:?}"),
    }
}

/// Extracts neuron values from one activation of a batch-size-1 pass.
///
/// With `scale_per_layer` the values are min-max scaled to `[0, 1]` within
/// the activation, as the paper does when layer output ranges differ (§7.1).
///
/// # Panics
///
/// Panics unless the activation has batch size 1.
pub fn neuron_values(
    pass: &ForwardPass,
    activation: usize,
    granularity: Granularity,
    scale_per_layer: bool,
) -> Vec<f32> {
    let act = &pass.activations[activation];
    assert_eq!(act.shape()[0], 1, "neuron extraction expects batch size 1, got {:?}", act.shape());
    let scaled;
    let act = if scale_per_layer {
        scaled = act.minmax_scaled();
        &scaled
    } else {
        act
    };
    match (act.rank(), granularity) {
        (4, Granularity::ChannelMean) => {
            let (c, h, w) = (act.shape()[1], act.shape()[2], act.shape()[3]);
            let hw = h * w;
            (0..c)
                .map(|ch| act.data()[ch * hw..(ch + 1) * hw].iter().sum::<f32>() / hw as f32)
                .collect()
        }
        (4, Granularity::Unit) | (2, _) => act.data().to_vec(),
        _ => panic!("unsupported activation rank {} for coverage", act.rank()),
    }
}

/// Builds the gradient-injection seed that maximizes a single neuron — the
/// `∂fn(x)/∂x` hook of the paper's `obj2`.
///
/// Returns `(activation_index, ∂neuron/∂activation)` suitable for
/// [`Network::input_gradient`].
pub fn injection_for_neuron(
    net: &Network,
    id: NeuronId,
    granularity: Granularity,
) -> (usize, Tensor) {
    let shape = &net.activation_shapes()[id.activation];
    let mut batched = vec![1usize];
    batched.extend_from_slice(shape);
    let mut seed = Tensor::zeros(&batched);
    match (shape.len(), granularity) {
        (3, Granularity::ChannelMean) => {
            let (c, h, w) = (shape[0], shape[1], shape[2]);
            assert!(id.index < c, "channel {} out of range for {c} channels", id.index);
            let hw = h * w;
            let inv = 1.0 / hw as f32;
            let base = id.index * hw;
            for i in 0..hw {
                seed.data_mut()[base + i] = inv;
            }
        }
        (3, Granularity::Unit) | (1, _) => {
            assert!(
                id.index < seed.len(),
                "neuron index {} out of range for activation {:?}",
                id.index,
                shape
            );
            seed.data_mut()[id.index] = 1.0;
        }
        _ => panic!("unsupported activation shape {shape:?}"),
    }
    (id.activation, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;
    use dx_tensor::rng;

    fn cnn(seed: u64) -> Network {
        let mut net = Network::new(
            &[1, 6, 6],
            vec![
                Layer::conv2d(1, 3, 3, 1, 0),
                Layer::relu(),
                Layer::flatten(),
                Layer::dense(3 * 4 * 4, 4),
                Layer::softmax(),
            ],
        );
        net.init_weights(&mut rng::rng(seed));
        net
    }

    #[test]
    fn counts_by_granularity() {
        assert_eq!(neuron_count(&[3, 4, 4], Granularity::ChannelMean), 3);
        assert_eq!(neuron_count(&[3, 4, 4], Granularity::Unit), 48);
        assert_eq!(neuron_count(&[10], Granularity::ChannelMean), 10);
    }

    #[test]
    fn channel_mean_matches_manual_average() {
        let net = cnn(0);
        let x = rng::uniform(&mut rng::rng(1), &[1, 1, 6, 6], 0.0, 1.0);
        let pass = net.forward(&x);
        let values = neuron_values(&pass, 2, Granularity::ChannelMean, false);
        assert_eq!(values.len(), 3);
        let act = &pass.activations[2];
        let manual: f32 = (0..4)
            .flat_map(|y| (0..4).map(move |x_| (y, x_)))
            .map(|(y, x_)| act.at(&[0, 1, y, x_]))
            .sum::<f32>()
            / 16.0;
        assert!((values[1] - manual).abs() < 1e-6);
    }

    #[test]
    fn scaling_maps_to_unit_interval() {
        let net = cnn(2);
        let x = rng::uniform(&mut rng::rng(3), &[1, 1, 6, 6], 0.0, 1.0);
        let pass = net.forward(&x);
        let values = neuron_values(&pass, 4, Granularity::Unit, true);
        assert!(values.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn injection_gradient_equals_channel_mean_derivative() {
        // d(mean of channel)/d(activation) is 1/(H·W) on that channel.
        let net = cnn(4);
        let (idx, seed) = injection_for_neuron(
            &net,
            NeuronId { activation: 2, index: 2 },
            Granularity::ChannelMean,
        );
        assert_eq!(idx, 2);
        assert_eq!(seed.shape(), &[1, 3, 4, 4]);
        assert!((seed.sum() - 1.0).abs() < 1e-6);
        assert_eq!(seed.at(&[0, 2, 0, 0]), 1.0 / 16.0);
        assert_eq!(seed.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn injection_for_dense_neuron_is_one_hot() {
        let net = cnn(5);
        let (idx, seed) = injection_for_neuron(
            &net,
            NeuronId { activation: 5, index: 3 },
            Granularity::ChannelMean,
        );
        assert_eq!(idx, 5);
        assert_eq!(seed.shape(), &[1, 4]);
        assert_eq!(seed.at(&[0, 3]), 1.0);
        assert_eq!(seed.sum(), 1.0);
    }

    #[test]
    fn injected_neuron_gradient_matches_finite_difference() {
        let net = cnn(6);
        let x = rng::uniform(&mut rng::rng(7), &[1, 1, 6, 6], 0.2, 0.8);
        let pass = net.forward(&x);
        let id = NeuronId { activation: 2, index: 1 };
        let (idx, seed) = injection_for_neuron(&net, id, Granularity::ChannelMean);
        let grad = net.input_gradient(&pass, &[(idx, seed)]);
        let value = |x: &Tensor| {
            let p = net.forward(x);
            neuron_values(&p, 2, Granularity::ChannelMean, false)[1]
        };
        let h = 1e-2;
        for i in (0..x.len()).step_by(7) {
            let mut plus = x.clone();
            plus.data_mut()[i] += h;
            let mut minus = x.clone();
            minus.data_mut()[i] -= h;
            let fd = (value(&plus) - value(&minus)) / (2.0 * h);
            assert!((fd - grad.data()[i]).abs() < 5e-3, "fd {fd} vs analytic {}", grad.data()[i]);
        }
    }
}
