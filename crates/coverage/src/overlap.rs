//! Activated-neuron overlap between inputs (the Table 7 experiment).
//!
//! The paper's hypothesis: inputs of the same class share more activated
//! neurons than inputs of different classes, which is why neuron coverage
//! tracks the *kinds* of rules a test set exercises.

use dx_nn::network::Network;
use dx_nn::util::batch_of_one;
use dx_tensor::Tensor;

use crate::tracker::{CoverageConfig, CoverageTracker};

/// The activated-neuron set (flat offsets) of a single un-batched sample.
pub fn activated_set(net: &Network, cfg: CoverageConfig, sample: &Tensor) -> Vec<usize> {
    let tracker = CoverageTracker::for_network(net, cfg);
    let pass = net.forward(&batch_of_one(sample));
    let mut set = tracker.activated_by(&pass);
    set.sort_unstable();
    set
}

/// Size of the intersection of two sorted activated sets.
pub fn overlap_count(a: &[usize], b: &[usize]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Table 7 statistics for a list of sample pairs: the mean number of
/// activated neurons per input and the mean pairwise overlap.
pub fn pair_overlap_stats(
    net: &Network,
    cfg: CoverageConfig,
    pairs: &[(Tensor, Tensor)],
) -> (f32, f32) {
    assert!(!pairs.is_empty(), "no pairs to analyse");
    let mut activated_total = 0usize;
    let mut overlap_total = 0usize;
    for (a, b) in pairs {
        let sa = activated_set(net, cfg, a);
        let sb = activated_set(net, cfg, b);
        activated_total += sa.len() + sb.len();
        overlap_total += overlap_count(&sa, &sb);
    }
    (activated_total as f32 / (2 * pairs.len()) as f32, overlap_total as f32 / pairs.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::Granularity;
    use dx_nn::layer::Layer;
    use dx_tensor::rng;

    fn net(seed: u64) -> Network {
        let mut n = Network::new(
            &[8],
            vec![Layer::dense(8, 16), Layer::relu(), Layer::dense(16, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    #[test]
    fn overlap_count_on_known_sets() {
        assert_eq!(overlap_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(overlap_count(&[], &[1]), 0);
        assert_eq!(overlap_count(&[4, 9], &[4, 9]), 2);
    }

    #[test]
    fn identical_inputs_fully_overlap() {
        let n = net(0);
        let x = rng::uniform(&mut rng::rng(1), &[8], 0.0, 1.0);
        let cfg = CoverageConfig { granularity: Granularity::Unit, ..Default::default() };
        let (avg_active, avg_overlap) = pair_overlap_stats(&n, cfg, &[(x.clone(), x)]);
        assert!((avg_active - avg_overlap).abs() < 1e-6);
    }

    #[test]
    fn different_inputs_overlap_at_most_min_size() {
        let n = net(2);
        let mut r = rng::rng(3);
        let a = rng::uniform(&mut r, &[8], 0.0, 1.0);
        let b = rng::uniform(&mut r, &[8], 0.0, 1.0);
        let cfg = CoverageConfig { granularity: Granularity::Unit, ..Default::default() };
        let sa = activated_set(&n, cfg, &a);
        let sb = activated_set(&n, cfg, &b);
        assert!(overlap_count(&sa, &sb) <= sa.len().min(sb.len()));
    }

    #[test]
    fn activated_sets_are_sorted_and_deduplicated() {
        let n = net(4);
        let x = rng::uniform(&mut rng::rng(5), &[8], 0.0, 1.0);
        let cfg = CoverageConfig { granularity: Granularity::Unit, ..Default::default() };
        let s = activated_set(&n, cfg, &x);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
