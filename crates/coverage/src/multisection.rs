//! k-multisection neuron coverage — the finer-grained successor of the
//! paper's threshold metric.
//!
//! DeepXplore's neuron coverage is binary: a neuron is covered once its
//! output exceeds `t` anywhere. Follow-on work (DeepGauge, Ma et al. 2018
//! — directly building on this paper) refines it: profile each neuron's
//! output range `[low, high]` on the training set, split it into `k`
//! equal sections, and count the fraction of *sections* test inputs have
//! reached. This catches test suites that hammer one operating point of a
//! neuron and never explore the rest of its range. We include it as the
//! natural "future work" extension of the paper's metric.

use dx_nn::network::{ForwardPass, Network};

use crate::neuron::{neuron_count, neuron_values, Granularity};

/// Profiled output range of every tracked neuron.
#[derive(Clone, Debug)]
pub struct NeuronProfile {
    activations: Vec<usize>,
    granularity: Granularity,
    low: Vec<f32>,
    high: Vec<f32>,
}

impl NeuronProfile {
    /// Starts an empty profile over the network's coverage layers.
    pub fn new(net: &Network, granularity: Granularity) -> Self {
        let activations = net.coverage_activation_indices();
        let total: usize = activations
            .iter()
            .map(|&a| neuron_count(&net.activation_shapes()[a], granularity))
            .sum();
        Self {
            activations,
            granularity,
            low: vec![f32::INFINITY; total],
            high: vec![f32::NEG_INFINITY; total],
        }
    }

    /// Extends the ranges with one (batch-size-1) pass — call once per
    /// training input.
    pub fn observe(&mut self, pass: &ForwardPass) {
        let mut base = 0;
        for &a in &self.activations {
            let values = neuron_values(pass, a, self.granularity, false);
            for (j, &v) in values.iter().enumerate() {
                let i = base + j;
                self.low[i] = self.low[i].min(v);
                self.high[i] = self.high[i].max(v);
            }
            base += values.len();
        }
    }

    /// Number of profiled neurons.
    pub fn total(&self) -> usize {
        self.low.len()
    }

    /// Whether any input has been observed.
    pub fn is_primed(&self) -> bool {
        self.low.iter().any(|v| v.is_finite())
    }
}

/// k-multisection coverage state over a profiled network.
#[derive(Clone, Debug)]
pub struct MultisectionTracker {
    profile: NeuronProfile,
    k: usize,
    /// `total × k` section-hit flags, neuron-major.
    hit: Vec<bool>,
}

impl MultisectionTracker {
    /// Builds a tracker with `k` sections per neuron.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the profile saw no inputs.
    pub fn new(profile: NeuronProfile, k: usize) -> Self {
        assert!(k > 0, "need at least one section per neuron");
        assert!(profile.is_primed(), "profile must observe training inputs first");
        let total = profile.total();
        Self { profile, k, hit: vec![false; total * k] }
    }

    /// Sections per neuron.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Folds one (batch-size-1) pass into the hit set; returns how many new
    /// sections were reached.
    pub fn update(&mut self, pass: &ForwardPass) -> usize {
        let mut newly = 0;
        let mut base = 0;
        for &a in &self.profile.activations.clone() {
            let values = neuron_values(pass, a, self.profile.granularity, false);
            for (j, &v) in values.iter().enumerate() {
                let i = base + j;
                let (lo, hi) = (self.profile.low[i], self.profile.high[i]);
                if !lo.is_finite() || !hi.is_finite() || hi <= lo {
                    continue; // Unprofiled or constant neuron.
                }
                if v < lo || v > hi {
                    continue; // Outside the profiled range (corner region).
                }
                let section = (((v - lo) / (hi - lo)) * self.k as f32)
                    .floor()
                    .min((self.k - 1) as f32) as usize;
                let flag = &mut self.hit[i * self.k + section];
                if !*flag {
                    *flag = true;
                    newly += 1;
                }
            }
            base += values.len();
        }
        newly
    }

    /// Fraction of all neuron-sections reached.
    pub fn coverage(&self) -> f32 {
        if self.hit.is_empty() {
            0.0
        } else {
            self.hit.iter().filter(|&&h| h).count() as f32 / self.hit.len() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;
    use dx_tensor::rng;

    fn net(seed: u64) -> Network {
        let mut n = Network::new(
            &[6],
            vec![Layer::dense(6, 10), Layer::tanh(), Layer::dense(10, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    fn primed_profile(n: &Network, inputs: usize, seed: u64) -> NeuronProfile {
        let mut profile = NeuronProfile::new(n, Granularity::Unit);
        let mut r = rng::rng(seed);
        for _ in 0..inputs {
            let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
            profile.observe(&n.forward(&x));
        }
        profile
    }

    #[test]
    fn profile_ranges_are_ordered() {
        let n = net(0);
        let p = primed_profile(&n, 20, 1);
        assert!(p.is_primed());
        for i in 0..p.total() {
            assert!(p.low[i] <= p.high[i]);
        }
    }

    #[test]
    fn coverage_grows_and_is_bounded() {
        let n = net(2);
        let p = primed_profile(&n, 30, 3);
        let mut t = MultisectionTracker::new(p, 5);
        assert_eq!(t.coverage(), 0.0);
        let mut r = rng::rng(4);
        let mut last = 0.0;
        for _ in 0..20 {
            let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
            t.update(&n.forward(&x));
            let c = t.coverage();
            assert!(c >= last && c <= 1.0);
            last = c;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn profiled_inputs_land_inside_sections() {
        // Replaying the profiling inputs must hit sections (never be
        // rejected as out of range).
        let n = net(5);
        let mut profile = NeuronProfile::new(&n, Granularity::Unit);
        let mut r = rng::rng(6);
        let xs: Vec<_> = (0..10).map(|_| rng::uniform(&mut r, &[1, 6], 0.0, 1.0)).collect();
        for x in &xs {
            profile.observe(&n.forward(x));
        }
        let mut t = MultisectionTracker::new(profile, 4);
        let mut total_new = 0;
        for x in &xs {
            total_new += t.update(&n.forward(x));
        }
        assert!(total_new > 0);
    }

    #[test]
    fn k_one_degenerates_to_range_hit() {
        let n = net(7);
        let p = primed_profile(&n, 15, 8);
        let mut t = MultisectionTracker::new(p, 1);
        let x = rng::uniform(&mut rng::rng(9), &[1, 6], 0.0, 1.0);
        t.update(&n.forward(&x));
        // With one section, coverage equals the fraction of neurons whose
        // replayed value fell inside the profiled range — nonzero here.
        assert!(t.coverage() > 0.0);
    }

    #[test]
    fn finer_sections_are_harder_to_cover() {
        let n = net(10);
        let make = |k: usize| {
            let p = primed_profile(&n, 25, 11);
            let mut t = MultisectionTracker::new(p, k);
            let mut r = rng::rng(12);
            for _ in 0..10 {
                let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
                t.update(&n.forward(&x));
            }
            t.coverage()
        };
        assert!(make(2) >= make(10), "coarser sections should cover faster");
    }

    #[test]
    #[should_panic(expected = "observe training inputs")]
    fn unprimed_profile_rejected() {
        let n = net(13);
        let p = NeuronProfile::new(&n, Granularity::Unit);
        MultisectionTracker::new(p, 4);
    }
}
