//! k-multisection neuron coverage — the finer-grained successor of the
//! paper's threshold metric.
//!
//! DeepXplore's neuron coverage is binary: a neuron is covered once its
//! output exceeds `t` anywhere. Follow-on work (DeepGauge, Ma et al. 2018
//! — directly building on this paper) refines it: profile each neuron's
//! output range `[low, high]` on the training set, split it into `k`
//! equal sections, and count the fraction of *sections* test inputs have
//! reached. This catches test suites that hammer one operating point of a
//! neuron and never explore the rest of its range.
//!
//! [`MultisectionTracker`] carries the same merge / sparse-delta / mask
//! API as [`crate::CoverageTracker`], so campaign engines can union and
//! synchronize either metric through one code path
//! ([`crate::CoverageSignal`]). The flat *unit* space is neuron-major
//! sections: unit `i` is section `i % k` of neuron `i / k`.

use dx_nn::network::{ForwardPass, Network};
use dx_tensor::rng::Rng;
use rand::Rng as _;

use crate::neuron::{neuron_count, neuron_values, Granularity, NeuronId};

/// Profiled output range of every tracked neuron. Shared by the
/// multisection tracker (sections *inside* the range) and the boundary
/// tracker (`crate::boundary`, the corner regions *outside* it).
#[derive(Clone, Debug)]
pub struct NeuronProfile {
    pub(crate) activations: Vec<usize>,
    /// Base offset of each tracked activation in the flat neuron space.
    pub(crate) bases: Vec<usize>,
    pub(crate) granularity: Granularity,
    pub(crate) low: Vec<f32>,
    pub(crate) high: Vec<f32>,
}

impl NeuronProfile {
    /// Starts an empty profile over the network's coverage layers.
    pub fn new(net: &Network, granularity: Granularity) -> Self {
        let activations = net.coverage_activation_indices();
        let mut bases = Vec::with_capacity(activations.len());
        let mut total = 0usize;
        for &a in &activations {
            bases.push(total);
            total += neuron_count(&net.activation_shapes()[a], granularity);
        }
        Self {
            activations,
            bases,
            granularity,
            low: vec![f32::INFINITY; total],
            high: vec![f32::NEG_INFINITY; total],
        }
    }

    /// Rebuilds a profile from checkpointed ranges. The network and
    /// granularity re-derive the tracked-activation layout; `low`/`high`
    /// must have one entry per tracked neuron.
    ///
    /// # Errors
    ///
    /// When the range vectors do not match the network's neuron count.
    pub fn restore(
        net: &Network,
        granularity: Granularity,
        low: Vec<f32>,
        high: Vec<f32>,
    ) -> Result<Self, String> {
        let fresh = Self::new(net, granularity);
        if low.len() != fresh.total() || high.len() != fresh.total() {
            return Err(format!(
                "profile ranges ({}/{} entries) do not fit the network ({} neurons)",
                low.len(),
                high.len(),
                fresh.total()
            ));
        }
        Ok(Self { low, high, ..fresh })
    }

    /// Extends the ranges with one (batch-size-1) pass — call once per
    /// training input.
    pub fn observe(&mut self, pass: &ForwardPass) {
        let mut base = 0;
        for &a in &self.activations {
            let values = neuron_values(pass, a, self.granularity, false);
            for (j, &v) in values.iter().enumerate() {
                let i = base + j;
                self.low[i] = self.low[i].min(v);
                self.high[i] = self.high[i].max(v);
            }
            base += values.len();
        }
    }

    /// Number of profiled neurons.
    pub fn total(&self) -> usize {
        self.low.len()
    }

    /// Whether any input has been observed.
    pub fn is_primed(&self) -> bool {
        self.low.iter().any(|v| v.is_finite())
    }

    /// The profiled `(low, high)` ranges, one pair per tracked neuron —
    /// for checkpoint persistence; rebuild with [`NeuronProfile::restore`].
    pub fn ranges(&self) -> (&[f32], &[f32]) {
        (&self.low, &self.high)
    }

    /// The neuron granularity the profile was built with.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }

    /// Whether a neuron's profiled range can be sectioned at all: finite
    /// bounds with `high > low`. Constant and unprofiled neurons are not.
    pub(crate) fn coverable(&self, i: usize) -> bool {
        self.low[i].is_finite() && self.high[i].is_finite() && self.high[i] > self.low[i]
    }

    /// Translates a flat neuron offset back to a [`NeuronId`].
    pub(crate) fn id_of(&self, flat: usize) -> NeuronId {
        let slot = match self.bases.binary_search(&flat) {
            Ok(s) => s,
            Err(s) => s - 1,
        };
        NeuronId { activation: self.activations[slot], index: flat - self.bases[slot] }
    }

    /// The inverse of [`NeuronProfile::id_of`]: the flat offset of a
    /// [`NeuronId`], or `None` when its activation is not tracked.
    pub(crate) fn flat_of(&self, id: NeuronId) -> Option<usize> {
        let slot = self.activations.iter().position(|&a| a == id.activation)?;
        Some(self.bases[slot] + id.index)
    }
}

/// k-multisection coverage state over a profiled network.
#[derive(Clone, Debug)]
pub struct MultisectionTracker {
    profile: NeuronProfile,
    k: usize,
    /// `total × k` section-hit flags, neuron-major.
    hit: Vec<bool>,
    /// Sections of coverable neurons — the coverage denominator. Sections
    /// of constant/unprofiled neurons can never be hit (`update` skips
    /// them), so counting them would make 100% coverage unreachable and
    /// `is_full`-style drain targets would never fire.
    coverable_units: usize,
}

impl MultisectionTracker {
    /// Builds a tracker with `k` sections per neuron.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or the profile saw no inputs.
    pub fn new(profile: NeuronProfile, k: usize) -> Self {
        assert!(k > 0, "need at least one section per neuron");
        assert!(profile.is_primed(), "profile must observe training inputs first");
        let total = profile.total();
        let coverable_units = (0..total).filter(|&i| profile.coverable(i)).count() * k;
        Self { profile, k, hit: vec![false; total * k], coverable_units }
    }

    /// Sections per neuron.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The profile this tracker sections.
    pub fn profile(&self) -> &NeuronProfile {
        &self.profile
    }

    /// Total units (neuron-sections), the flat index bound for
    /// [`MultisectionTracker::apply_covered_indices`]. Includes sections
    /// of uncoverable neurons, which stay permanently unhit.
    pub fn total(&self) -> usize {
        self.hit.len()
    }

    /// Sections that can actually be reached — the coverage denominator.
    pub fn coverable_units(&self) -> usize {
        self.coverable_units
    }

    /// Sections hit so far.
    pub fn covered_count(&self) -> usize {
        self.hit.iter().filter(|&&h| h).count()
    }

    /// Folds one (batch-size-1) pass into the hit set; returns how many new
    /// sections were reached.
    pub fn update(&mut self, pass: &ForwardPass) -> usize {
        let mut newly = 0;
        let mut base = 0;
        for &a in &self.profile.activations {
            let values = neuron_values(pass, a, self.profile.granularity, false);
            for (j, &v) in values.iter().enumerate() {
                let i = base + j;
                let (lo, hi) = (self.profile.low[i], self.profile.high[i]);
                if !lo.is_finite() || !hi.is_finite() || hi <= lo {
                    continue; // Unprofiled or constant neuron.
                }
                if !v.is_finite() {
                    // NaN passes both range guards below and `NaN as usize`
                    // saturates to 0, which used to spuriously mark section
                    // 0 as hit; ±inf would index out of range.
                    continue;
                }
                if v < lo || v > hi {
                    continue; // Outside the profiled range (corner region —
                              // tracked by `crate::boundary`, not here).
                }
                let section = (((v - lo) / (hi - lo)) * self.k as f32)
                    .floor()
                    .min((self.k - 1) as f32) as usize;
                let flag = &mut self.hit[i * self.k + section];
                if !*flag {
                    *flag = true;
                    newly += 1;
                }
            }
            base += values.len();
        }
        newly
    }

    /// Fraction of *coverable* neuron-sections reached.
    pub fn coverage(&self) -> f32 {
        if self.coverable_units == 0 {
            0.0
        } else {
            self.covered_count() as f32 / self.coverable_units as f32
        }
    }

    /// Whether every coverable section has been hit.
    pub fn is_full(&self) -> bool {
        self.covered_count() == self.coverable_units
    }

    /// Whether `other` sections the same profile of the same network —
    /// the precondition for [`MultisectionTracker::merge`].
    pub fn compatible(&self, other: &MultisectionTracker) -> bool {
        self.k == other.k
            && self.profile.activations == other.profile.activations
            && self.profile.granularity == other.profile.granularity
            && self.profile.low.len() == other.profile.low.len()
            && ranges_eq(&self.profile.low, &other.profile.low)
            && ranges_eq(&self.profile.high, &other.profile.high)
    }

    /// Unions another tracker's hit set into this one; returns how many
    /// sections were newly hit here. Commutative, idempotent and monotone,
    /// like [`crate::CoverageTracker::merge`].
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`MultisectionTracker::compatible`]
    /// (different networks, `k`, or profiles).
    pub fn merge(&mut self, other: &MultisectionTracker) -> usize {
        assert!(
            self.compatible(other),
            "cannot merge multisection trackers over different profiles \
             ({} vs {} units)",
            self.hit.len(),
            other.hit.len()
        );
        let mut newly = 0;
        for (mine, &theirs) in self.hit.iter_mut().zip(other.hit.iter()) {
            if theirs && !*mine {
                *mine = true;
                newly += 1;
            }
        }
        newly
    }

    /// The raw hit mask, one flag per neuron-section — for campaign
    /// checkpointing. Restore with [`MultisectionTracker::set_covered_mask`].
    pub fn covered_mask(&self) -> &[bool] {
        &self.hit
    }

    /// Flat unit offsets of all hit sections, ascending.
    pub fn covered_indices(&self) -> Vec<usize> {
        self.hit.iter().enumerate().filter(|(_, &h)| h).map(|(i, _)| i).collect()
    }

    /// Unit offsets hit here but not in `base` — the sparse delta the
    /// distributed campaign ships over the wire.
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`MultisectionTracker::compatible`].
    pub fn diff_indices(&self, base: &MultisectionTracker) -> Vec<usize> {
        assert!(self.compatible(base), "cannot diff multisection trackers over different profiles");
        self.hit
            .iter()
            .zip(base.hit.iter())
            .enumerate()
            .filter(|(_, (&mine, &theirs))| mine && !theirs)
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks the given unit offsets hit; returns how many were newly hit.
    /// The inverse of [`MultisectionTracker::diff_indices`]. Offsets of
    /// uncoverable neurons are ignored (a well-formed peer never sends
    /// them, and accepting them would push coverage past 1.0).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range offset; wire handlers must validate
    /// indices against [`MultisectionTracker::total`] before applying.
    pub fn apply_covered_indices(&mut self, indices: &[usize]) -> usize {
        let mut newly = 0;
        for &i in indices {
            if !self.hit[i] && self.profile.coverable(i / self.k) {
                self.hit[i] = true;
                newly += 1;
            }
        }
        newly
    }

    /// Replaces the hit set with a previously exported mask. Mask bits on
    /// uncoverable sections are dropped, keeping coverage within `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `mask` has the wrong length for this tracker.
    pub fn set_covered_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.hit.len(), "multisection mask length mismatch");
        for (i, (mine, &theirs)) in self.hit.iter_mut().zip(mask).enumerate() {
            *mine = theirs && self.profile.coverable(i / self.k);
        }
    }

    /// Replaces this tracker's hit set with `other`'s.
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`MultisectionTracker::compatible`].
    pub fn copy_covered_from(&mut self, other: &MultisectionTracker) {
        assert!(
            self.compatible(other),
            "cannot copy coverage between multisection trackers over different profiles"
        );
        self.hit.copy_from_slice(&other.hit);
    }

    /// Resets the hit set.
    pub fn reset(&mut self) {
        self.hit.iter_mut().for_each(|h| *h = false);
    }

    /// Whether a neuron still has unhit coverable sections.
    fn incomplete(&self, neuron: usize) -> bool {
        self.profile.coverable(neuron)
            && self.hit[neuron * self.k..(neuron + 1) * self.k].iter().any(|&h| !h)
    }

    /// Whether the obj2 term can still make progress on `id` under this
    /// metric — composite signals use this to route direction queries to
    /// the component that actually wants the neuron.
    pub fn neuron_incomplete(&self, id: NeuronId) -> bool {
        self.profile.flat_of(id).is_some_and(|flat| self.incomplete(flat))
    }

    /// Picks up to `n` distinct random neurons with unhit sections — the
    /// multisection analogue of
    /// [`crate::CoverageTracker::pick_uncovered_k`]. Pair each pick with
    /// [`MultisectionTracker::target_direction`] so the obj2 gradient
    /// term pushes the activation *toward* its nearest unexplored
    /// section, not just upward.
    pub fn pick_incomplete_k(&self, r: &mut Rng, n: usize) -> Vec<NeuronId> {
        let mut incomplete: Vec<usize> =
            (0..self.profile.total()).filter(|&i| self.incomplete(i)).collect();
        let take = n.min(incomplete.len());
        // Partial Fisher–Yates: shuffle only the prefix we need.
        for i in 0..take {
            let j = r.gen_range(i..incomplete.len());
            incomplete.swap(i, j);
        }
        incomplete[..take].iter().map(|&i| self.profile.id_of(i)).collect()
    }

    /// Which way the obj2 gradient term should push `id`'s activation to
    /// reach its nearest unhit coverable section given the current value
    /// in `pass`: `1.0` to raise it, `-1.0` to lower it. Values outside
    /// the profiled range steer back toward it. Returns `1.0` (the
    /// neuron-metric behavior) for complete or uncoverable neurons.
    ///
    /// Without this, section targeting would always maximize the
    /// activation — actively moving *away* from unhit sections that sit
    /// below the current operating point.
    pub fn target_direction(&self, id: NeuronId, pass: &ForwardPass) -> f32 {
        let Some(flat) = self.profile.flat_of(id) else {
            return 1.0;
        };
        if !self.profile.coverable(flat) {
            return 1.0;
        }
        let values = neuron_values(pass, id.activation, self.profile.granularity, false);
        let Some(&v) = values.get(id.index) else { return 1.0 };
        let (lo, hi) = (self.profile.low[flat], self.profile.high[flat]);
        if v < lo {
            return 1.0; // Below the range: raise back into it.
        }
        if v > hi {
            return -1.0; // Above the range: lower back into it.
        }
        let current =
            (((v - lo) / (hi - lo)) * self.k as f32).floor().min((self.k - 1) as f32) as isize;
        let hits = &self.hit[flat * self.k..(flat + 1) * self.k];
        let nearest = (0..self.k as isize)
            .filter(|&s| !hits[s as usize])
            .min_by_key(|&s| ((s - current).abs(), s));
        match nearest {
            Some(s) if s < current => -1.0,
            _ => 1.0,
        }
    }

    /// Picks the incompletely-sectioned neuron with the highest value in
    /// `pass` — the "nearest" strategy under this metric.
    pub fn pick_incomplete_nearest(&self, pass: &ForwardPass) -> Option<NeuronId> {
        let mut best: Option<(usize, f32)> = None;
        let mut base = 0;
        for &a in &self.profile.activations {
            let values = neuron_values(pass, a, self.profile.granularity, false);
            for (j, &v) in values.iter().enumerate() {
                let flat = base + j;
                if self.incomplete(flat) && best.is_none_or(|(_, bv)| v > bv) {
                    best = Some((flat, v));
                }
            }
            base += values.len();
        }
        best.map(|(flat, _)| self.profile.id_of(flat))
    }
}

/// Bitwise range equality — profiled bounds include ±infinity for
/// unprofiled neurons, and resumes must match checkpoints exactly.
pub(crate) fn ranges_eq(a: &[f32], b: &[f32]) -> bool {
    a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;
    use dx_tensor::{rng, Tensor};

    fn net(seed: u64) -> Network {
        let mut n = Network::new(
            &[6],
            vec![Layer::dense(6, 10), Layer::tanh(), Layer::dense(10, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    fn primed_profile(n: &Network, inputs: usize, seed: u64) -> NeuronProfile {
        let mut profile = NeuronProfile::new(n, Granularity::Unit);
        let mut r = rng::rng(seed);
        for _ in 0..inputs {
            let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
            profile.observe(&n.forward(&x));
        }
        profile
    }

    #[test]
    fn profile_ranges_are_ordered() {
        let n = net(0);
        let p = primed_profile(&n, 20, 1);
        assert!(p.is_primed());
        for i in 0..p.total() {
            assert!(p.low[i] <= p.high[i]);
        }
    }

    #[test]
    fn coverage_grows_and_is_bounded() {
        let n = net(2);
        let p = primed_profile(&n, 30, 3);
        let mut t = MultisectionTracker::new(p, 5);
        assert_eq!(t.coverage(), 0.0);
        let mut r = rng::rng(4);
        let mut last = 0.0;
        for _ in 0..20 {
            let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
            t.update(&n.forward(&x));
            let c = t.coverage();
            assert!(c >= last && c <= 1.0);
            last = c;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn profiled_inputs_land_inside_sections() {
        // Replaying the profiling inputs must hit sections (never be
        // rejected as out of range).
        let n = net(5);
        let mut profile = NeuronProfile::new(&n, Granularity::Unit);
        let mut r = rng::rng(6);
        let xs: Vec<_> = (0..10).map(|_| rng::uniform(&mut r, &[1, 6], 0.0, 1.0)).collect();
        for x in &xs {
            profile.observe(&n.forward(x));
        }
        let mut t = MultisectionTracker::new(profile, 4);
        let mut total_new = 0;
        for x in &xs {
            total_new += t.update(&n.forward(x));
        }
        assert!(total_new > 0);
    }

    #[test]
    fn k_one_degenerates_to_range_hit() {
        let n = net(7);
        let p = primed_profile(&n, 15, 8);
        let mut t = MultisectionTracker::new(p, 1);
        let x = rng::uniform(&mut rng::rng(9), &[1, 6], 0.0, 1.0);
        t.update(&n.forward(&x));
        // With one section, coverage equals the fraction of neurons whose
        // replayed value fell inside the profiled range — nonzero here.
        assert!(t.coverage() > 0.0);
    }

    #[test]
    fn finer_sections_are_harder_to_cover() {
        let n = net(10);
        let make = |k: usize| {
            let p = primed_profile(&n, 25, 11);
            let mut t = MultisectionTracker::new(p, k);
            let mut r = rng::rng(12);
            for _ in 0..10 {
                let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
                t.update(&n.forward(&x));
            }
            t.coverage()
        };
        assert!(make(2) >= make(10), "coarser sections should cover faster");
    }

    #[test]
    fn coverage_denominator_excludes_uncoverable_neurons() {
        // Regression: the denominator used to be `total * k` even though
        // `update` skips constant (`hi <= lo`) and unprofiled neurons, so
        // a network containing one could never report full coverage.
        let n = net(20);
        let k = 3;
        let mut p = primed_profile(&n, 20, 21);
        // Force one constant neuron and one unprofiled neuron.
        p.high[0] = p.low[0];
        p.low[1] = f32::INFINITY;
        p.high[1] = f32::NEG_INFINITY;
        let mut t = MultisectionTracker::new(p, k);
        assert_eq!(t.coverable_units(), (t.profile.total() - 2) * k);
        assert_eq!(t.total(), t.profile.total() * k);
        // Saturate every coverable section: coverage must reach exactly 1.
        let coverable: Vec<bool> = (0..t.profile.total()).map(|i| t.profile.coverable(i)).collect();
        for (i, h) in t.hit.iter_mut().enumerate() {
            if coverable[i / k] {
                *h = true;
            }
        }
        assert_eq!(t.coverage(), 1.0);
        assert!(t.is_full());
    }

    #[test]
    fn constant_neuron_never_blocks_update_driven_saturation() {
        // The same denominator property, driven through `update` only: a
        // tracker whose constant neuron can never be hit still converges
        // toward 1.0 rather than an unreachable ceiling below it.
        let n = net(22);
        let mut p = primed_profile(&n, 40, 23);
        p.high[0] = p.low[0]; // One constant neuron.
        let mut t = MultisectionTracker::new(p, 1);
        let mut r = rng::rng(24);
        for _ in 0..200 {
            let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
            t.update(&n.forward(&x));
        }
        // k = 1: replaying in-range inputs eventually hits every coverable
        // neuron once; with the buggy denominator this could only approach
        // (total-1)/total.
        assert!(t.coverage() > 0.95, "coverage stuck at {}", t.coverage());
        assert!(t.covered_count() <= t.coverable_units());
    }

    #[test]
    fn nan_activations_hit_no_sections() {
        // Regression: a NaN activation passed both `v < lo` and `v > hi`
        // guards, and `NaN as usize` saturates to 0 — so section 0 of every
        // NaN-valued neuron was spuriously marked hit.
        let n = net(60);
        let p = primed_profile(&n, 20, 61);
        let mut t = MultisectionTracker::new(p, 4);
        // A NaN input propagates NaN through the whole forward pass.
        let nan_x = Tensor::from_vec(vec![f32::NAN; 6], &[1, 6]);
        let pass = n.forward(&nan_x);
        assert!(
            neuron_values(&pass, t.profile.activations[0], Granularity::Unit, false)
                .iter()
                .any(|v| v.is_nan()),
            "test needs a NaN-producing pass"
        );
        assert_eq!(t.update(&pass), 0, "NaN activations must not hit sections");
        assert_eq!(t.covered_count(), 0);
        // Idempotent: replaying the NaN pass stays at zero.
        assert_eq!(t.update(&pass), 0);
    }

    #[test]
    fn merge_unions_hit_sets() {
        let n = net(30);
        let p = primed_profile(&n, 20, 31);
        let mut a = MultisectionTracker::new(p.clone(), 4);
        let mut b = MultisectionTracker::new(p, 4);
        let mut r = rng::rng(32);
        a.update(&n.forward(&rng::uniform(&mut r, &[1, 6], 0.0, 0.5)));
        b.update(&n.forward(&rng::uniform(&mut r, &[1, 6], 0.5, 1.0)));
        let (ca, cb) = (a.covered_count(), b.covered_count());
        let newly = a.merge(&b);
        assert!(a.covered_count() >= ca.max(cb));
        assert_eq!(a.covered_count(), ca + newly);
        assert_eq!(a.merge(&b), 0, "merge must be idempotent");
    }

    #[test]
    fn index_delta_round_trips() {
        let n = net(33);
        let p = primed_profile(&n, 20, 34);
        let mut local = MultisectionTracker::new(p.clone(), 3);
        let mut base = MultisectionTracker::new(p, 3);
        let mut r = rng::rng(35);
        local.update(&n.forward(&rng::uniform(&mut r, &[1, 6], 0.3, 1.0)));
        base.update(&n.forward(&rng::uniform(&mut r, &[1, 6], 0.0, 0.6)));
        let delta = local.diff_indices(&base);
        for &i in &delta {
            assert!(local.covered_mask()[i]);
            assert!(!base.covered_mask()[i]);
        }
        let newly = base.apply_covered_indices(&delta);
        assert_eq!(newly, delta.len());
        assert!(local.diff_indices(&base).is_empty());
        assert_eq!(base.merge(&local), 0);
        assert_eq!(base.apply_covered_indices(&delta), 0);
    }

    #[test]
    fn mask_round_trips_and_drops_uncoverable_bits() {
        let n = net(36);
        let mut p = primed_profile(&n, 20, 37);
        p.high[0] = p.low[0]; // Constant neuron: units 0..k are uncoverable.
        let k = 2;
        let mut t = MultisectionTracker::new(p.clone(), k);
        t.update(&n.forward(&rng::uniform(&mut rng::rng(38), &[1, 6], 0.0, 1.0)));
        let mask = t.covered_mask().to_vec();
        let mut fresh = MultisectionTracker::new(p, k);
        let mut bad_mask = mask.clone();
        bad_mask[0] = true; // Claim an uncoverable section.
        fresh.set_covered_mask(&bad_mask);
        assert_eq!(fresh.covered_mask(), &mask[..], "uncoverable bit must be dropped");
        assert_eq!(fresh.covered_count(), t.covered_count());
    }

    #[test]
    fn incompatible_profiles_rejected() {
        let n = net(40);
        let p1 = primed_profile(&n, 20, 41);
        let p2 = primed_profile(&n, 20, 42); // Different inputs → ranges.
        let mut a = MultisectionTracker::new(p1.clone(), 4);
        let b = MultisectionTracker::new(p2, 4);
        assert!(!a.compatible(&b));
        let same_profile_other_k = MultisectionTracker::new(p1, 2);
        assert!(!a.compatible(&same_profile_other_k));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.merge(&b)));
        assert!(result.is_err(), "merge of incompatible trackers must panic");
    }

    #[test]
    fn pick_incomplete_returns_sectionable_neurons() {
        let n = net(43);
        let mut p = primed_profile(&n, 20, 44);
        p.high[0] = p.low[0]; // Neuron 0 can never be picked.
        let t = MultisectionTracker::new(p, 4);
        let mut r = rng::rng(45);
        let picks = t.pick_incomplete_k(&mut r, 5);
        assert_eq!(picks.len(), 5);
        let mut sorted = picks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "picks must be distinct: {picks:?}");
        let constant = t.profile.id_of(0);
        assert!(!picks.contains(&constant));
        let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
        let nearest = t.pick_incomplete_nearest(&n.forward(&x)).unwrap();
        assert_ne!(nearest, constant);
    }

    #[test]
    fn target_direction_steers_toward_nearest_unhit_section() {
        let n = net(50);
        let mut p = primed_profile(&n, 20, 51);
        let x = rng::uniform(&mut rng::rng(52), &[1, 6], 0.0, 1.0);
        let pass = n.forward(&x);
        let v = neuron_values(&pass, p.activations[0], Granularity::Unit, false)[0];
        // Pin neuron 0's range so `v` lands in section 1 of k = 4
        // (sections are 1.0 wide on [v-1, v+3]).
        p.low[0] = v - 1.0;
        p.high[0] = v + 3.0;
        let k = 4;
        let mut t = MultisectionTracker::new(p, k);
        let id = t.profile.id_of(0);
        // Only section 0 (below the current value) unhit: push down.
        for s in 1..k {
            t.hit[s] = true;
        }
        assert_eq!(t.target_direction(id, &pass), -1.0);
        // Only section 3 (above) unhit: push up.
        t.hit.iter_mut().take(k).for_each(|h| *h = false);
        t.hit[0] = true;
        t.hit[1] = true;
        t.hit[2] = true;
        assert_eq!(t.target_direction(id, &pass), 1.0);
        // Out-of-range values steer back toward the profiled range.
        t.profile.low[0] = v + 1.0;
        t.profile.high[0] = v + 2.0;
        assert_eq!(t.target_direction(id, &pass), 1.0);
        t.profile.low[0] = v - 2.0;
        t.profile.high[0] = v - 1.0;
        assert_eq!(t.target_direction(id, &pass), -1.0);
    }

    #[test]
    fn profile_restore_round_trips() {
        let n = net(46);
        let p = primed_profile(&n, 15, 47);
        let (low, high) = p.ranges();
        let back =
            NeuronProfile::restore(&n, Granularity::Unit, low.to_vec(), high.to_vec()).unwrap();
        let a = MultisectionTracker::new(p, 4);
        let b = MultisectionTracker::new(back, 4);
        assert!(a.compatible(&b));
        // Wrong length is rejected.
        assert!(NeuronProfile::restore(&n, Granularity::Unit, vec![0.0], vec![1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "observe training inputs")]
    fn unprimed_profile_rejected() {
        let n = net(13);
        let p = NeuronProfile::new(&n, Granularity::Unit);
        MultisectionTracker::new(p, 4);
    }
}
