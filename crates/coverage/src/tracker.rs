//! Incremental neuron-coverage tracking (Algorithm 1's `cov_tracker`).

use dx_nn::network::{ForwardPass, Network};
use dx_tensor::rng::Rng;
use rand::Rng as _;

use crate::neuron::{neuron_count, neuron_values, Granularity, NeuronId};

/// Configuration of the coverage metric.
#[derive(Clone, Copy, Debug)]
pub struct CoverageConfig {
    /// Activation threshold `t` (§4.1).
    pub threshold: f32,
    /// Min-max scale each tracked activation to `[0, 1]` before
    /// thresholding (§7.1); required when layer output ranges differ.
    pub scale_per_layer: bool,
    /// Neuron granularity for convolutional activations.
    pub granularity: Granularity,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        Self { threshold: 0.0, scale_per_layer: false, granularity: Granularity::ChannelMean }
    }
}

impl CoverageConfig {
    /// The paper's scaled-coverage setting with the given threshold.
    pub fn scaled(threshold: f32) -> Self {
        Self { threshold, scale_per_layer: true, ..Default::default() }
    }
}

/// Tracks which neurons of one network have been activated by any input
/// seen so far.
#[derive(Clone, Debug)]
pub struct CoverageTracker {
    config: CoverageConfig,
    /// Tracked activation indices, ascending.
    activations: Vec<usize>,
    /// Base offset of each tracked activation in the flat covered vector.
    bases: Vec<usize>,
    covered: Vec<bool>,
}

impl CoverageTracker {
    /// Tracks the network's default coverage layers (post-activation
    /// outputs; see `Network::coverage_activation_indices`).
    pub fn for_network(net: &Network, config: CoverageConfig) -> Self {
        Self::for_activations(net, &net.coverage_activation_indices(), config)
    }

    /// Tracks an explicit set of activation indices — Table 8 uses this to
    /// exclude dense layers, whose neurons are very hard to activate.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or the list is unsorted or empty.
    pub fn for_activations(net: &Network, activations: &[usize], config: CoverageConfig) -> Self {
        assert!(!activations.is_empty(), "no activations to track");
        assert!(
            activations.windows(2).all(|w| w[0] < w[1]),
            "activation indices must be strictly ascending: {activations:?}"
        );
        let shapes = net.activation_shapes();
        let mut bases = Vec::with_capacity(activations.len());
        let mut total = 0usize;
        for &a in activations {
            assert!(
                a >= 1 && a < shapes.len(),
                "activation index {a} out of range 1..{}",
                shapes.len()
            );
            bases.push(total);
            total += neuron_count(&shapes[a], config.granularity);
        }
        Self { config, activations: activations.to_vec(), bases, covered: vec![false; total] }
    }

    /// The coverage configuration.
    pub fn config(&self) -> &CoverageConfig {
        &self.config
    }

    /// Total number of tracked neurons.
    pub fn total(&self) -> usize {
        self.covered.len()
    }

    /// Number of neurons covered so far.
    pub fn covered_count(&self) -> usize {
        self.covered.iter().filter(|&&c| c).count()
    }

    /// Current neuron coverage in `[0, 1]`.
    pub fn coverage(&self) -> f32 {
        if self.covered.is_empty() {
            0.0
        } else {
            self.covered_count() as f32 / self.covered.len() as f32
        }
    }

    /// Whether every tracked neuron is covered.
    pub fn is_full(&self) -> bool {
        self.covered.iter().all(|&c| c)
    }

    /// Neurons (flat offsets) activated by a single batch-size-1 pass,
    /// without updating the tracker.
    pub fn activated_by(&self, pass: &ForwardPass) -> Vec<usize> {
        let mut out = Vec::new();
        for (slot, &a) in self.activations.iter().enumerate() {
            let values =
                neuron_values(pass, a, self.config.granularity, self.config.scale_per_layer);
            let base = self.bases[slot];
            for (j, &v) in values.iter().enumerate() {
                if v > self.config.threshold {
                    out.push(base + j);
                }
            }
        }
        out
    }

    /// Folds a pass into the covered set; returns how many neurons were
    /// newly covered.
    pub fn update(&mut self, pass: &ForwardPass) -> usize {
        let mut newly = 0;
        for flat in self.activated_by(pass) {
            if !self.covered[flat] {
                self.covered[flat] = true;
                newly += 1;
            }
        }
        newly
    }

    /// Translates a flat offset back to a [`NeuronId`].
    fn id_of(&self, flat: usize) -> NeuronId {
        let slot = match self.bases.binary_search(&flat) {
            Ok(s) => s,
            Err(s) => s - 1,
        };
        NeuronId { activation: self.activations[slot], index: flat - self.bases[slot] }
    }

    /// All currently uncovered neurons.
    pub fn uncovered(&self) -> Vec<NeuronId> {
        self.covered.iter().enumerate().filter(|(_, &c)| !c).map(|(i, _)| self.id_of(i)).collect()
    }

    /// Whether a specific neuron is still uncovered (`false` for neurons
    /// on untracked activations) — composite signals use this to route
    /// obj2 direction queries to the component that wants the neuron.
    pub fn is_uncovered(&self, id: NeuronId) -> bool {
        let Some(slot) = self.activations.iter().position(|&a| a == id.activation) else {
            return false;
        };
        self.covered.get(self.bases[slot] + id.index).is_some_and(|&c| !c)
    }

    /// Picks a random uncovered neuron (Algorithm 1 line 33), or `None` when
    /// coverage is complete.
    pub fn pick_uncovered(&self, r: &mut Rng) -> Option<NeuronId> {
        self.pick_uncovered_k(r, 1).into_iter().next()
    }

    /// Picks up to `k` distinct random uncovered neurons — the paper's
    /// "jointly maximize multiple neurons simultaneously" extension
    /// (§4.2); `k = 1` is Algorithm 1 as printed.
    pub fn pick_uncovered_k(&self, r: &mut Rng, k: usize) -> Vec<NeuronId> {
        let mut uncovered: Vec<usize> =
            self.covered.iter().enumerate().filter(|(_, &c)| !c).map(|(i, _)| i).collect();
        let take = k.min(uncovered.len());
        // Partial Fisher–Yates: shuffle only the prefix we need.
        for i in 0..take {
            let j = r.gen_range(i..uncovered.len());
            uncovered.swap(i, j);
        }
        uncovered[..take].iter().map(|&i| self.id_of(i)).collect()
    }

    /// Picks the uncovered neuron with the highest value in `pass` — the
    /// "nearest to activating" strategy used by the neuron-pick ablation.
    pub fn pick_uncovered_nearest(&self, pass: &ForwardPass) -> Option<NeuronId> {
        let mut best: Option<(usize, f32)> = None;
        for (slot, &a) in self.activations.iter().enumerate() {
            let values =
                neuron_values(pass, a, self.config.granularity, self.config.scale_per_layer);
            let base = self.bases[slot];
            for (j, &v) in values.iter().enumerate() {
                let flat = base + j;
                if !self.covered[flat] && best.is_none_or(|(_, bv)| v > bv) {
                    best = Some((flat, v));
                }
            }
        }
        best.map(|(flat, _)| self.id_of(flat))
    }

    /// Whether `other` tracks the same neurons of the same network shape —
    /// the precondition for [`CoverageTracker::merge`].
    pub fn compatible(&self, other: &CoverageTracker) -> bool {
        self.activations == other.activations
            && self.bases == other.bases
            && self.covered.len() == other.covered.len()
    }

    /// Unions another tracker's covered set into this one; returns how many
    /// neurons were newly covered here.
    ///
    /// Merging is the campaign engine's synchronization primitive: each
    /// worker accumulates coverage on a private clone and periodically folds
    /// it into a shared global tracker. The operation is commutative,
    /// idempotent and monotone in the covered count.
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`CoverageTracker::compatible`]
    /// (different networks or tracked-activation sets).
    pub fn merge(&mut self, other: &CoverageTracker) -> usize {
        assert!(
            self.compatible(other),
            "cannot merge coverage trackers over different neuron sets \
             ({} vs {} neurons)",
            self.covered.len(),
            other.covered.len()
        );
        let mut newly = 0;
        for (mine, &theirs) in self.covered.iter_mut().zip(other.covered.iter()) {
            if theirs && !*mine {
                *mine = true;
                newly += 1;
            }
        }
        newly
    }

    /// The raw covered mask, one flag per tracked neuron — for campaign
    /// checkpointing. Restore with [`CoverageTracker::set_covered_mask`].
    pub fn covered_mask(&self) -> &[bool] {
        &self.covered
    }

    /// Flat offsets of all covered neurons, ascending.
    pub fn covered_indices(&self) -> Vec<usize> {
        self.covered.iter().enumerate().filter(|(_, &c)| c).map(|(i, _)| i).collect()
    }

    /// Flat offsets covered here but not in `base` — the sparse coverage
    /// delta the distributed campaign ships over the wire instead of full
    /// bitmaps. Applying the result to `base` via
    /// [`CoverageTracker::apply_covered_indices`] makes `base`'s covered
    /// set a superset of this tracker's.
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`CoverageTracker::compatible`].
    pub fn diff_indices(&self, base: &CoverageTracker) -> Vec<usize> {
        assert!(self.compatible(base), "cannot diff coverage trackers over different neuron sets");
        self.covered
            .iter()
            .zip(base.covered.iter())
            .enumerate()
            .filter(|(_, (&mine, &theirs))| mine && !theirs)
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks the given flat offsets covered; returns how many were newly
    /// covered. The inverse of [`CoverageTracker::diff_indices`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range offset; wire handlers must validate
    /// indices against [`CoverageTracker::total`] before applying.
    pub fn apply_covered_indices(&mut self, indices: &[usize]) -> usize {
        let mut newly = 0;
        for &i in indices {
            if !self.covered[i] {
                self.covered[i] = true;
                newly += 1;
            }
        }
        newly
    }

    /// Replaces the covered set with a previously exported mask.
    ///
    /// # Panics
    ///
    /// Panics when `mask` has the wrong length for this tracker.
    pub fn set_covered_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.covered.len(), "coverage mask length mismatch");
        self.covered.copy_from_slice(mask);
    }

    /// Replaces this tracker's covered set with `other`'s.
    ///
    /// Used by campaign workers to adopt the freshly-merged global union so
    /// they stop chasing neurons another worker already covered.
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`CoverageTracker::compatible`].
    pub fn copy_covered_from(&mut self, other: &CoverageTracker) {
        assert!(
            self.compatible(other),
            "cannot copy coverage between trackers over different neuron sets"
        );
        self.covered.copy_from_slice(&other.covered);
    }

    /// Resets the covered set.
    pub fn reset(&mut self) {
        self.covered.iter_mut().for_each(|c| *c = false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;
    use dx_tensor::rng;

    fn cnn(seed: u64) -> Network {
        let mut net = Network::new(
            &[1, 6, 6],
            vec![
                Layer::conv2d(1, 3, 3, 1, 0),
                Layer::relu(),
                Layer::maxpool2d(2),
                Layer::flatten(),
                Layer::dense(3 * 2 * 2, 4),
                Layer::softmax(),
            ],
        );
        net.init_weights(&mut rng::rng(seed));
        net
    }

    #[test]
    fn total_counts_tracked_neurons() {
        let net = cnn(0);
        let t = CoverageTracker::for_network(&net, CoverageConfig::default());
        // relu (3 channels) + pool (3 channels) + softmax (4 units).
        assert_eq!(t.total(), 10);
        let unit = CoverageTracker::for_network(
            &net,
            CoverageConfig { granularity: Granularity::Unit, ..Default::default() },
        );
        // relu 3*4*4 + pool 3*2*2 + softmax 4.
        assert_eq!(unit.total(), 48 + 12 + 4);
    }

    #[test]
    fn update_accumulates_monotonically() {
        let net = cnn(1);
        let mut t = CoverageTracker::for_network(&net, CoverageConfig::default());
        let mut r = rng::rng(2);
        let mut last = 0.0;
        for _ in 0..10 {
            let x = rng::uniform(&mut r, &[1, 1, 6, 6], 0.0, 1.0);
            let pass = net.forward(&x);
            t.update(&pass);
            let c = t.coverage();
            assert!(c >= last, "coverage must be monotone");
            last = c;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn update_returns_newly_covered() {
        let net = cnn(3);
        let mut t = CoverageTracker::for_network(&net, CoverageConfig::default());
        let x = rng::uniform(&mut rng::rng(4), &[1, 1, 6, 6], 0.5, 1.0);
        let pass = net.forward(&x);
        let first = t.update(&pass);
        assert!(first > 0);
        // The same input covers nothing new.
        assert_eq!(t.update(&pass), 0);
    }

    #[test]
    fn higher_threshold_covers_fewer() {
        let net = cnn(5);
        let x = rng::uniform(&mut rng::rng(6), &[1, 1, 6, 6], 0.0, 1.0);
        let pass = net.forward(&x);
        let mut low = CoverageTracker::for_network(&net, CoverageConfig::scaled(0.1));
        let mut high = CoverageTracker::for_network(&net, CoverageConfig::scaled(0.9));
        low.update(&pass);
        high.update(&pass);
        assert!(low.covered_count() >= high.covered_count());
    }

    #[test]
    fn uncovered_plus_covered_is_total() {
        let net = cnn(7);
        let mut t = CoverageTracker::for_network(&net, CoverageConfig::default());
        let x = rng::uniform(&mut rng::rng(8), &[1, 1, 6, 6], 0.0, 1.0);
        t.update(&net.forward(&x));
        assert_eq!(t.uncovered().len() + t.covered_count(), t.total());
    }

    #[test]
    fn pick_uncovered_is_really_uncovered() {
        let net = cnn(9);
        let mut t = CoverageTracker::for_network(&net, CoverageConfig::default());
        let x = rng::uniform(&mut rng::rng(10), &[1, 1, 6, 6], 0.0, 1.0);
        t.update(&net.forward(&x));
        let mut r = rng::rng(11);
        if let Some(id) = t.pick_uncovered(&mut r) {
            assert!(t.uncovered().contains(&id));
        } else {
            assert!(t.is_full());
        }
    }

    #[test]
    fn restricted_activations_shrink_total() {
        let net = cnn(12);
        let full = CoverageTracker::for_network(&net, CoverageConfig::default());
        let conv_only = CoverageTracker::for_activations(&net, &[2, 3], CoverageConfig::default());
        assert!(conv_only.total() < full.total());
        assert_eq!(conv_only.total(), 6);
    }

    #[test]
    fn nearest_pick_prefers_higher_value() {
        let net = cnn(13);
        let t = CoverageTracker::for_network(
            &net,
            CoverageConfig { threshold: 10.0, ..Default::default() }, // Nothing covers.
        );
        let x = rng::uniform(&mut rng::rng(14), &[1, 1, 6, 6], 0.0, 1.0);
        let pass = net.forward(&x);
        let picked = t.pick_uncovered_nearest(&pass).unwrap();
        // The picked neuron's value must be the global maximum.
        let mut max_v = f32::NEG_INFINITY;
        for &a in &[2usize, 3, 6] {
            let vals = neuron_values(&pass, a, Granularity::ChannelMean, false);
            for &v in &vals {
                max_v = max_v.max(v);
            }
        }
        let picked_vals = neuron_values(&pass, picked.activation, Granularity::ChannelMean, false);
        assert!((picked_vals[picked.index] - max_v).abs() < 1e-6);
    }

    #[test]
    fn pick_k_returns_distinct_uncovered() {
        let net = cnn(20);
        let t = CoverageTracker::for_network(&net, CoverageConfig::default());
        let mut r = rng::rng(21);
        let picks = t.pick_uncovered_k(&mut r, 5);
        assert_eq!(picks.len(), 5);
        let mut sorted = picks.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "picks must be distinct: {picks:?}");
    }

    #[test]
    fn pick_k_caps_at_remaining() {
        let net = cnn(22);
        let t = CoverageTracker::for_network(&net, CoverageConfig::default());
        let mut r = rng::rng(23);
        let picks = t.pick_uncovered_k(&mut r, 10_000);
        assert_eq!(picks.len(), t.total());
    }

    #[test]
    fn merge_unions_covered_sets() {
        let net = cnn(30);
        let mut a = CoverageTracker::for_network(&net, CoverageConfig::default());
        let mut b = CoverageTracker::for_network(&net, CoverageConfig::default());
        a.update(&net.forward(&rng::uniform(&mut rng::rng(31), &[1, 1, 6, 6], 0.0, 0.4)));
        b.update(&net.forward(&rng::uniform(&mut rng::rng(32), &[1, 1, 6, 6], 0.6, 1.0)));
        let (ca, cb) = (a.covered_count(), b.covered_count());
        let newly = a.merge(&b);
        assert!(a.covered_count() >= ca.max(cb));
        assert_eq!(a.covered_count(), ca + newly);
        // Merging again adds nothing (idempotent).
        assert_eq!(a.merge(&b), 0);
    }

    #[test]
    fn merge_from_empty_is_identity() {
        let net = cnn(33);
        let mut a = CoverageTracker::for_network(&net, CoverageConfig::default());
        let empty = CoverageTracker::for_network(&net, CoverageConfig::default());
        a.update(&net.forward(&rng::uniform(&mut rng::rng(34), &[1, 1, 6, 6], 0.2, 1.0)));
        let before = a.covered_count();
        assert_eq!(a.merge(&empty), 0);
        assert_eq!(a.covered_count(), before);
    }

    #[test]
    fn copy_covered_from_adopts_union() {
        let net = cnn(35);
        let mut a = CoverageTracker::for_network(&net, CoverageConfig::default());
        let mut b = CoverageTracker::for_network(&net, CoverageConfig::default());
        a.update(&net.forward(&rng::uniform(&mut rng::rng(36), &[1, 1, 6, 6], 0.3, 1.0)));
        b.copy_covered_from(&a);
        assert_eq!(b.covered_count(), a.covered_count());
        assert_eq!(b.merge(&a), 0);
    }

    #[test]
    fn index_delta_round_trips() {
        let net = cnn(38);
        let mut local = CoverageTracker::for_network(&net, CoverageConfig::default());
        let mut base = CoverageTracker::for_network(&net, CoverageConfig::default());
        local.update(&net.forward(&rng::uniform(&mut rng::rng(39), &[1, 1, 6, 6], 0.3, 1.0)));
        base.update(&net.forward(&rng::uniform(&mut rng::rng(40), &[1, 1, 6, 6], 0.0, 0.5)));
        let delta = local.diff_indices(&base);
        // Every delta index is covered locally and uncovered in the base.
        for &i in &delta {
            assert!(local.covered_mask()[i]);
            assert!(!base.covered_mask()[i]);
        }
        let newly = base.apply_covered_indices(&delta);
        assert_eq!(newly, delta.len());
        // The base is now a superset: a second delta is empty, and merging
        // local into base adds nothing.
        assert!(local.diff_indices(&base).is_empty());
        assert_eq!(base.merge(&local), 0);
        // Applying again is idempotent.
        assert_eq!(base.apply_covered_indices(&delta), 0);
    }

    #[test]
    fn covered_indices_match_mask() {
        let net = cnn(41);
        let mut t = CoverageTracker::for_network(&net, CoverageConfig::default());
        t.update(&net.forward(&rng::uniform(&mut rng::rng(42), &[1, 1, 6, 6], 0.2, 1.0)));
        let idx = t.covered_indices();
        assert_eq!(idx.len(), t.covered_count());
        let empty = CoverageTracker::for_network(&net, CoverageConfig::default());
        assert_eq!(t.diff_indices(&empty), idx);
    }

    #[test]
    #[should_panic(expected = "different neuron sets")]
    fn merge_rejects_mismatched_trackers() {
        let net = cnn(37);
        let mut full = CoverageTracker::for_network(&net, CoverageConfig::default());
        let partial = CoverageTracker::for_activations(&net, &[2, 3], CoverageConfig::default());
        full.merge(&partial);
    }

    #[test]
    fn reset_clears() {
        let net = cnn(15);
        let mut t = CoverageTracker::for_network(&net, CoverageConfig::default());
        let x = rng::uniform(&mut rng::rng(16), &[1, 1, 6, 6], 0.5, 1.0);
        t.update(&net.forward(&x));
        assert!(t.covered_count() > 0);
        t.reset();
        assert_eq!(t.covered_count(), 0);
    }
}
