//! Boundary/corner coverage — the regions the multisection metric is
//! blind to.
//!
//! DeepGauge (Ma et al. 2018) splits each neuron's behavior against its
//! training-set profile `[low, high]` into the *major function region*
//! (inside the range — what k-multisection sections) and the *corner
//! regions* outside it. Adversarial and difference-inducing inputs
//! concentrate exactly there: an activation below `low` or above `high`
//! is a neuron operating outside everything the training set exercised.
//! [`MultisectionTracker::update`](crate::MultisectionTracker::update)
//! deliberately skips such values, so on its own it never rewards a
//! campaign for reaching them.
//!
//! [`BoundaryTracker`] closes that blind spot: **two units per coverable
//! neuron** — below-`low` and above-`high` — over the same
//! [`NeuronProfile`] the multisection tracker sections, with the same
//! merge / sparse-delta / mask API, so campaigns can steer by it alone
//! (`--metric boundary`) or compose it with other signals
//! (`--metric multisection:4+boundary`) through
//! [`crate::CoverageSignal`]. The flat unit space is neuron-major pairs:
//! unit `2i` is neuron `i`'s below-low corner, unit `2i + 1` its
//! above-high corner.

use dx_nn::network::ForwardPass;
use dx_tensor::rng::Rng;
use rand::Rng as _;

use crate::multisection::{ranges_eq, NeuronProfile};
use crate::neuron::{neuron_values, NeuronId};

/// Corner units per neuron: below-`low` and above-`high`.
pub const UNITS_PER_NEURON: usize = 2;

/// Boundary/corner coverage state over a profiled network.
#[derive(Clone, Debug)]
pub struct BoundaryTracker {
    profile: NeuronProfile,
    /// `total × 2` corner-hit flags, neuron-major `[below, above]`.
    hit: Vec<bool>,
    /// Corners of coverable neurons — the coverage denominator, mirroring
    /// [`crate::MultisectionTracker`]: a constant or unprofiled neuron has
    /// no meaningful range to escape, so its corners can never be hit and
    /// counting them would make 100% coverage unreachable.
    coverable_units: usize,
}

impl BoundaryTracker {
    /// Builds a tracker over a primed profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile saw no inputs.
    pub fn new(profile: NeuronProfile) -> Self {
        assert!(profile.is_primed(), "profile must observe training inputs first");
        let total = profile.total();
        let coverable_units =
            (0..total).filter(|&i| profile.coverable(i)).count() * UNITS_PER_NEURON;
        Self { profile, hit: vec![false; total * UNITS_PER_NEURON], coverable_units }
    }

    /// The profile whose range edges this tracker watches.
    pub fn profile(&self) -> &NeuronProfile {
        &self.profile
    }

    /// Total units (two corners per profiled neuron), the flat index bound
    /// for [`BoundaryTracker::apply_covered_indices`]. Includes corners of
    /// uncoverable neurons, which stay permanently unhit.
    pub fn total(&self) -> usize {
        self.hit.len()
    }

    /// Corners that can actually be reached — the coverage denominator.
    pub fn coverable_units(&self) -> usize {
        self.coverable_units
    }

    /// Corners hit so far.
    pub fn covered_count(&self) -> usize {
        self.hit.iter().filter(|&&h| h).count()
    }

    /// Folds one (batch-size-1) pass into the hit set; returns how many
    /// corners were newly reached. NaN and ±inf activations are rejected —
    /// a numerically broken pass is not "outside the profiled range", it
    /// is outside the number line.
    pub fn update(&mut self, pass: &ForwardPass) -> usize {
        let mut newly = 0;
        let mut base = 0;
        for &a in &self.profile.activations {
            let values = neuron_values(pass, a, self.profile.granularity, false);
            for (j, &v) in values.iter().enumerate() {
                let i = base + j;
                if !v.is_finite() || !self.profile.coverable(i) {
                    continue;
                }
                let unit = if v < self.profile.low[i] {
                    i * UNITS_PER_NEURON
                } else if v > self.profile.high[i] {
                    i * UNITS_PER_NEURON + 1
                } else {
                    continue; // Inside the range: multisection's territory.
                };
                if !self.hit[unit] {
                    self.hit[unit] = true;
                    newly += 1;
                }
            }
            base += values.len();
        }
        newly
    }

    /// Fraction of *coverable* corners reached.
    pub fn coverage(&self) -> f32 {
        if self.coverable_units == 0 {
            0.0
        } else {
            self.covered_count() as f32 / self.coverable_units as f32
        }
    }

    /// Whether every coverable corner has been hit.
    pub fn is_full(&self) -> bool {
        self.covered_count() == self.coverable_units
    }

    /// Whether `other` watches the same profile of the same network — the
    /// precondition for [`BoundaryTracker::merge`].
    pub fn compatible(&self, other: &BoundaryTracker) -> bool {
        self.profile.activations == other.profile.activations
            && self.profile.granularity == other.profile.granularity
            && self.profile.low.len() == other.profile.low.len()
            && ranges_eq(&self.profile.low, &other.profile.low)
            && ranges_eq(&self.profile.high, &other.profile.high)
    }

    /// Unions another tracker's hit set into this one; returns how many
    /// corners were newly hit here. Commutative, idempotent and monotone,
    /// like [`crate::CoverageTracker::merge`].
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`BoundaryTracker::compatible`]
    /// (different networks or profiles).
    pub fn merge(&mut self, other: &BoundaryTracker) -> usize {
        assert!(
            self.compatible(other),
            "cannot merge boundary trackers over different profiles ({} vs {} units)",
            self.hit.len(),
            other.hit.len()
        );
        let mut newly = 0;
        for (mine, &theirs) in self.hit.iter_mut().zip(other.hit.iter()) {
            if theirs && !*mine {
                *mine = true;
                newly += 1;
            }
        }
        newly
    }

    /// The raw hit mask, one flag per corner — for campaign checkpointing.
    /// Restore with [`BoundaryTracker::set_covered_mask`].
    pub fn covered_mask(&self) -> &[bool] {
        &self.hit
    }

    /// Flat unit offsets of all hit corners, ascending.
    pub fn covered_indices(&self) -> Vec<usize> {
        self.hit.iter().enumerate().filter(|(_, &h)| h).map(|(i, _)| i).collect()
    }

    /// Unit offsets hit here but not in `base` — the sparse delta the
    /// distributed campaign ships over the wire.
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`BoundaryTracker::compatible`].
    pub fn diff_indices(&self, base: &BoundaryTracker) -> Vec<usize> {
        assert!(self.compatible(base), "cannot diff boundary trackers over different profiles");
        self.hit
            .iter()
            .zip(base.hit.iter())
            .enumerate()
            .filter(|(_, (&mine, &theirs))| mine && !theirs)
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks the given unit offsets hit; returns how many were newly hit.
    /// The inverse of [`BoundaryTracker::diff_indices`]. Offsets of
    /// uncoverable neurons are ignored (a well-formed peer never sends
    /// them, and accepting them would push coverage past 1.0).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range offset; wire handlers must validate
    /// indices against [`BoundaryTracker::total`] before applying.
    pub fn apply_covered_indices(&mut self, indices: &[usize]) -> usize {
        let mut newly = 0;
        for &i in indices {
            if !self.hit[i] && self.profile.coverable(i / UNITS_PER_NEURON) {
                self.hit[i] = true;
                newly += 1;
            }
        }
        newly
    }

    /// Replaces the hit set with a previously exported mask. Mask bits on
    /// uncoverable corners are dropped, keeping coverage within `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `mask` has the wrong length for this tracker.
    pub fn set_covered_mask(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.hit.len(), "boundary mask length mismatch");
        for (i, (mine, &theirs)) in self.hit.iter_mut().zip(mask).enumerate() {
            *mine = theirs && self.profile.coverable(i / UNITS_PER_NEURON);
        }
    }

    /// Replaces this tracker's hit set with `other`'s.
    ///
    /// # Panics
    ///
    /// Panics when the trackers are not [`BoundaryTracker::compatible`].
    pub fn copy_covered_from(&mut self, other: &BoundaryTracker) {
        assert!(
            self.compatible(other),
            "cannot copy coverage between boundary trackers over different profiles"
        );
        self.hit.copy_from_slice(&other.hit);
    }

    /// Resets the hit set.
    pub fn reset(&mut self) {
        self.hit.iter_mut().for_each(|h| *h = false);
    }

    /// Whether a neuron still has an unhit coverable corner.
    fn incomplete(&self, neuron: usize) -> bool {
        self.profile.coverable(neuron)
            && (!self.hit[neuron * UNITS_PER_NEURON] || !self.hit[neuron * UNITS_PER_NEURON + 1])
    }

    /// Whether the obj2 term can still make progress on `id` under this
    /// metric — composite signals use this to route direction queries to
    /// the component that actually wants the neuron.
    pub fn neuron_incomplete(&self, id: NeuronId) -> bool {
        self.profile.flat_of(id).is_some_and(|flat| self.incomplete(flat))
    }

    /// Picks up to `n` distinct random neurons with an unhit corner — the
    /// boundary analogue of [`crate::CoverageTracker::pick_uncovered_k`].
    /// Pair each pick with [`BoundaryTracker::target_direction`] so the
    /// obj2 gradient term pushes the activation *past* the nearest unhit
    /// range edge.
    pub fn pick_incomplete_k(&self, r: &mut Rng, n: usize) -> Vec<NeuronId> {
        let mut incomplete: Vec<usize> =
            (0..self.profile.total()).filter(|&i| self.incomplete(i)).collect();
        let take = n.min(incomplete.len());
        // Partial Fisher–Yates: shuffle only the prefix we need.
        for i in 0..take {
            let j = r.gen_range(i..incomplete.len());
            incomplete.swap(i, j);
        }
        incomplete[..take].iter().map(|&i| self.profile.id_of(i)).collect()
    }

    /// Picks the neuron with an unhit corner whose value in `pass` is
    /// highest — the "nearest" strategy under this metric.
    pub fn pick_incomplete_nearest(&self, pass: &ForwardPass) -> Option<NeuronId> {
        let mut best: Option<(usize, f32)> = None;
        let mut base = 0;
        for &a in &self.profile.activations {
            let values = neuron_values(pass, a, self.profile.granularity, false);
            for (j, &v) in values.iter().enumerate() {
                let flat = base + j;
                if self.incomplete(flat) && best.is_none_or(|(_, bv)| v > bv) {
                    best = Some((flat, v));
                }
            }
            base += values.len();
        }
        best.map(|(flat, _)| self.profile.id_of(flat))
    }

    /// Which way the obj2 gradient term should push `id`'s activation to
    /// escape the profiled range: `-1.0` to dive below `low`, `1.0` to
    /// climb past `high`. With both corners unhit it heads for the nearest
    /// edge; with both hit (or an untracked/uncoverable neuron) it falls
    /// back to the neuron metric's always-up `1.0`.
    pub fn target_direction(&self, id: NeuronId, pass: &ForwardPass) -> f32 {
        let Some(flat) = self.profile.flat_of(id) else { return 1.0 };
        if !self.profile.coverable(flat) {
            return 1.0;
        }
        let below = self.hit[flat * UNITS_PER_NEURON];
        let above = self.hit[flat * UNITS_PER_NEURON + 1];
        match (below, above) {
            (false, true) => -1.0,
            (true, false) | (true, true) => 1.0,
            (false, false) => {
                let values = neuron_values(pass, id.activation, self.profile.granularity, false);
                let Some(&v) = values.get(id.index) else { return 1.0 };
                if !v.is_finite() {
                    return 1.0;
                }
                let (lo, hi) = (self.profile.low[flat], self.profile.high[flat]);
                // Head for the nearest edge from the current operating
                // point (ties break downward: the low corner comes first
                // in the unit space, as in multisection's nearest-section
                // tie-break).
                if v - lo <= hi - v {
                    -1.0
                } else {
                    1.0
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::Granularity;
    use dx_nn::layer::Layer;
    use dx_nn::network::Network;
    use dx_tensor::{rng, Tensor};

    fn net(seed: u64) -> Network {
        let mut n = Network::new(
            &[6],
            vec![Layer::dense(6, 10), Layer::tanh(), Layer::dense(10, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    fn primed_profile(n: &Network, inputs: usize, seed: u64) -> NeuronProfile {
        let mut profile = NeuronProfile::new(n, Granularity::Unit);
        let mut r = rng::rng(seed);
        for _ in 0..inputs {
            let x = rng::uniform(&mut r, &[1, 6], 0.3, 0.7);
            profile.observe(&n.forward(&x));
        }
        profile
    }

    #[test]
    fn replayed_profile_inputs_hit_no_corners() {
        // Inputs inside the profiled distribution are, by construction,
        // inside every neuron's range: the corner region stays empty.
        let n = net(0);
        let mut profile = NeuronProfile::new(&n, Granularity::Unit);
        let mut r = rng::rng(1);
        let xs: Vec<_> = (0..10).map(|_| rng::uniform(&mut r, &[1, 6], 0.3, 0.7)).collect();
        for x in &xs {
            profile.observe(&n.forward(x));
        }
        let mut t = BoundaryTracker::new(profile);
        for x in &xs {
            assert_eq!(t.update(&n.forward(x)), 0);
        }
        assert_eq!(t.coverage(), 0.0);
    }

    #[test]
    fn out_of_distribution_inputs_hit_corners() {
        // Inputs far outside the profiling distribution push activations
        // past the profiled ranges.
        let n = net(2);
        let t0 = primed_profile(&n, 15, 3);
        let mut t = BoundaryTracker::new(t0);
        let mut r = rng::rng(4);
        let mut newly = 0;
        for _ in 0..10 {
            let x = rng::uniform(&mut r, &[1, 6], -3.0, 3.0);
            newly += t.update(&n.forward(&x));
        }
        assert!(newly > 0, "wild inputs must escape some profiled range");
        assert_eq!(t.covered_count(), newly);
        assert!(t.coverage() > 0.0 && t.coverage() <= 1.0);
        assert!(t.covered_count() <= t.coverable_units());
    }

    #[test]
    fn nan_activations_hit_no_corners() {
        // NaN compares false against both edges — it must not count as a
        // corner hit (a NaN is not "outside the range", it is garbage).
        let n = net(5);
        let mut t = BoundaryTracker::new(primed_profile(&n, 15, 6));
        let pass = n.forward(&Tensor::from_vec(vec![f32::NAN; 6], &[1, 6]));
        assert_eq!(t.update(&pass), 0);
        assert_eq!(t.covered_count(), 0);
    }

    #[test]
    fn uncoverable_neurons_are_excluded() {
        let n = net(7);
        let mut p = primed_profile(&n, 15, 8);
        p.high[0] = p.low[0]; // Constant neuron.
        p.low[1] = f32::INFINITY; // Unprofiled neuron.
        p.high[1] = f32::NEG_INFINITY;
        let mut t = BoundaryTracker::new(p);
        assert_eq!(t.coverable_units(), (t.profile.total() - 2) * UNITS_PER_NEURON);
        assert_eq!(t.total(), t.profile.total() * UNITS_PER_NEURON);
        // Saturate every coverable corner: exactly full.
        let coverable: Vec<bool> = (0..t.profile.total()).map(|i| t.profile.coverable(i)).collect();
        for (i, h) in t.hit.iter_mut().enumerate() {
            if coverable[i / UNITS_PER_NEURON] {
                *h = true;
            }
        }
        assert_eq!(t.coverage(), 1.0);
        assert!(t.is_full());
    }

    #[test]
    fn merge_and_delta_sync_union_hit_sets() {
        let n = net(9);
        let p = primed_profile(&n, 15, 10);
        let mut a = BoundaryTracker::new(p.clone());
        let mut b = BoundaryTracker::new(p);
        let mut r = rng::rng(11);
        a.update(&n.forward(&rng::uniform(&mut r, &[1, 6], -4.0, 0.0)));
        b.update(&n.forward(&rng::uniform(&mut r, &[1, 6], 1.0, 5.0)));
        let (ca, cb) = (a.covered_count(), b.covered_count());
        let mut merged = a.clone();
        let newly = merged.merge(&b);
        assert!(merged.covered_count() >= ca.max(cb));
        assert_eq!(merged.covered_count(), ca + newly);
        assert_eq!(merged.merge(&b), 0, "merge must be idempotent");
        // Delta sync converges to the same union.
        let delta = b.diff_indices(&a);
        assert_eq!(a.apply_covered_indices(&delta), delta.len());
        assert_eq!(a.covered_mask(), merged.covered_mask());
        assert_eq!(a.apply_covered_indices(&delta), 0);
    }

    #[test]
    fn mask_round_trips_and_drops_uncoverable_bits() {
        let n = net(12);
        let mut p = primed_profile(&n, 15, 13);
        p.high[0] = p.low[0];
        let mut t = BoundaryTracker::new(p.clone());
        t.update(&n.forward(&rng::uniform(&mut rng::rng(14), &[1, 6], -4.0, 4.0)));
        let mask = t.covered_mask().to_vec();
        let mut fresh = BoundaryTracker::new(p);
        let mut bad = mask.clone();
        bad[0] = true; // Claim an uncoverable corner.
        fresh.set_covered_mask(&bad);
        assert_eq!(fresh.covered_mask(), &mask[..], "uncoverable bit must be dropped");
        assert_eq!(fresh.covered_count(), t.covered_count());
    }

    #[test]
    fn incompatible_profiles_rejected() {
        let n = net(15);
        let mut a = BoundaryTracker::new(primed_profile(&n, 15, 16));
        let b = BoundaryTracker::new(primed_profile(&n, 15, 17));
        assert!(!a.compatible(&b));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.merge(&b)));
        assert!(result.is_err(), "merge of incompatible trackers must panic");
    }

    #[test]
    fn picks_skip_complete_and_uncoverable_neurons() {
        let n = net(18);
        let mut p = primed_profile(&n, 15, 19);
        p.high[0] = p.low[0]; // Neuron 0 can never be picked.
        let mut t = BoundaryTracker::new(p);
        // Neuron 1: both corners hit — also never picked.
        t.hit[UNITS_PER_NEURON] = true;
        t.hit[UNITS_PER_NEURON + 1] = true;
        let mut r = rng::rng(20);
        let picks = t.pick_incomplete_k(&mut r, 5);
        assert_eq!(picks.len(), 5);
        let constant = t.profile.id_of(0);
        let complete = t.profile.id_of(1);
        assert!(!picks.contains(&constant) && !picks.contains(&complete));
        let x = rng::uniform(&mut r, &[1, 6], 0.0, 1.0);
        let nearest = t.pick_incomplete_nearest(&n.forward(&x)).unwrap();
        assert_ne!(nearest, constant);
        assert_ne!(nearest, complete);
        assert!(!t.neuron_incomplete(complete));
        assert!(t.neuron_incomplete(nearest));
    }

    #[test]
    fn target_direction_pushes_past_nearest_unhit_edge() {
        let n = net(21);
        let mut p = primed_profile(&n, 15, 22);
        let x = rng::uniform(&mut rng::rng(23), &[1, 6], 0.3, 0.7);
        let pass = n.forward(&x);
        let v = neuron_values(&pass, p.activations[0], Granularity::Unit, false)[0];
        // Pin neuron 0's range so `v` sits nearer the low edge.
        p.low[0] = v - 1.0;
        p.high[0] = v + 3.0;
        let mut t = BoundaryTracker::new(p);
        let id = t.profile.id_of(0);
        // Both corners unhit: nearest edge is low — push down.
        assert_eq!(t.target_direction(id, &pass), -1.0);
        // Low corner hit: only the high corner remains — push up.
        t.hit[0] = true;
        assert_eq!(t.target_direction(id, &pass), 1.0);
        // High corner hit instead: push down.
        t.hit[0] = false;
        t.hit[1] = true;
        assert_eq!(t.target_direction(id, &pass), -1.0);
        // Both hit: fall back to up.
        t.hit[0] = true;
        assert_eq!(t.target_direction(id, &pass), 1.0);
    }

    #[test]
    #[should_panic(expected = "observe training inputs")]
    fn unprimed_profile_rejected() {
        let n = net(24);
        BoundaryTracker::new(NeuronProfile::new(&n, Granularity::Unit));
    }
}
