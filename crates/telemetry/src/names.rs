//! The canonical catalog of every Prometheus metric name this
//! workspace emits.
//!
//! Metric names are stringly-typed at each registration site, in the
//! README's metrics table, and in the scrape scripts; nothing but
//! convention keeps them aligned. This module is the single place a
//! name is *declared*, and `dx-analysis`'s `telemetry-name` check
//! enforces the convention mechanically: every name registered in
//! non-test code must appear here, every name here must be registered
//! somewhere and documented in the README, and every `dx_…` token in
//! the docs must resolve back to this catalog.
//!
//! Names follow Prometheus conventions: `dx_` namespace prefix,
//! snake_case, `_total` for counters, `_seconds` for time histograms.
//! Label dimensions (`{phase=}`, `{slot=}`, `{tenant=}`, …) are chosen
//! at the registration site and are not part of the catalog key.

// ---- engine / generator (dx-campaign) ----------------------------------

/// Counter: seed steps processed by the joint-optimization loop.
pub const SEEDS_TOTAL: &str = "dx_seeds_total";
/// Counter: difference-inducing inputs found.
pub const DIFFS_TOTAL: &str = "dx_diffs_total";
/// Counter, `{component=}`: coverage units newly covered.
pub const NEW_UNITS_TOTAL: &str = "dx_new_units_total";
/// Histogram: wall-clock time per campaign epoch.
pub const EPOCH_SECONDS: &str = "dx_epoch_seconds";
/// Histogram: worker wait for the global coverage lock.
pub const LOCK_WAIT_SECONDS: &str = "dx_lock_wait_seconds";
/// Histogram, `{phase=}`: generator hot-path time per phase
/// (forward / gradient / constraint / coverage).
pub const PHASE_SECONDS: &str = "dx_phase_seconds";
/// Gauge: corpus entries.
pub const CORPUS_SIZE: &str = "dx_corpus_size";
/// Gauge, `{stat=}`: corpus energy distribution (min/mean/max).
pub const CORPUS_ENERGY: &str = "dx_corpus_energy";

// ---- coordinator / fleet (dx-dist) -------------------------------------

/// Counter: leases granted to workers.
pub const LEASES_TOTAL: &str = "dx_leases_total";
/// Counter: leases that timed out and were requeued.
pub const LEASE_EXPIRED_TOTAL: &str = "dx_lease_expired_total";
/// Counter: heartbeat frames handled by the coordinator.
pub const HEARTBEATS_TOTAL: &str = "dx_heartbeats_total";
/// Gauge: seeds waiting in the requeue.
pub const REQUEUE_DEPTH: &str = "dx_requeue_depth";
/// Gauge: currently admitted worker connections.
pub const WORKERS_CONNECTED: &str = "dx_workers_connected";
/// Histogram, `{slot=}`: lease issue-to-results time.
pub const LEASE_TURNAROUND_SECONDS: &str = "dx_lease_turnaround_seconds";
/// Counter, `{slot=,verdict=}`: spot-checked diff claims (the trust
/// plane — these counters are the fleet report's spot-ok/spot-bad).
pub const SPOT_CHECKS_TOTAL: &str = "dx_spot_checks_total";
/// Gauge, `{slot=}`: 1 once the slot was evicted for fabrication.
pub const WORKER_EVICTED: &str = "dx_worker_evicted";
/// Histogram, `{slot=}`: worker-observed heartbeat round-trip time.
pub const HEARTBEAT_RTT_SECONDS: &str = "dx_heartbeat_rtt_seconds";

// ---- wire protocol (dx-dist) -------------------------------------------

/// Counter, `{dir=}`: wire frames sent/received by this process.
pub const FRAMES_TOTAL: &str = "dx_frames_total";
/// Counter, `{dir=}`: wire bytes sent/received by this process.
pub const BYTES_TOTAL: &str = "dx_bytes_total";

// ---- multi-tenant service (dx-service) ---------------------------------

/// Gauge: mean global coverage across models, per tenant.
pub const COVERAGE_MEAN: &str = "dx_coverage_mean";
/// Gauge: live (non-terminal) tenant campaigns.
pub const SERVICE_TENANTS: &str = "dx_service_tenants";
/// Counter: leases granted across all tenants.
pub const SERVICE_LEASES_TOTAL: &str = "dx_service_leases_total";
/// Counter: leases that timed out, across all tenants.
pub const SERVICE_LEASE_EXPIRED_TOTAL: &str = "dx_service_lease_expired_total";
/// Counter: heartbeat frames handled by the service daemon.
pub const SERVICE_HEARTBEATS_TOTAL: &str = "dx_service_heartbeats_total";

/// Every catalog name, in declaration order. Handy for exhaustive
/// checks in tests and tooling.
pub const ALL: [&str; 24] = [
    SEEDS_TOTAL,
    DIFFS_TOTAL,
    NEW_UNITS_TOTAL,
    EPOCH_SECONDS,
    LOCK_WAIT_SECONDS,
    PHASE_SECONDS,
    CORPUS_SIZE,
    CORPUS_ENERGY,
    LEASES_TOTAL,
    LEASE_EXPIRED_TOTAL,
    HEARTBEATS_TOTAL,
    REQUEUE_DEPTH,
    WORKERS_CONNECTED,
    LEASE_TURNAROUND_SECONDS,
    SPOT_CHECKS_TOTAL,
    WORKER_EVICTED,
    HEARTBEAT_RTT_SECONDS,
    FRAMES_TOTAL,
    BYTES_TOTAL,
    COVERAGE_MEAN,
    SERVICE_TENANTS,
    SERVICE_LEASES_TOTAL,
    SERVICE_LEASE_EXPIRED_TOTAL,
    SERVICE_HEARTBEATS_TOTAL,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn catalog_is_unique_prefixed_and_snake_case() {
        let mut seen = std::collections::BTreeSet::new();
        for name in ALL {
            assert!(seen.insert(name), "duplicate catalog entry {name}");
            assert!(name.starts_with("dx_"), "{name} lacks the dx_ namespace");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name} is not snake_case"
            );
        }
    }
}
