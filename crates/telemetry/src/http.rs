//! A minimal HTTP/1.0 server — a tiny method+path router — plus the
//! Prometheus scrape endpoint and one-shot client built on top of it.
//!
//! Deliberately tiny: one listener thread, one blocking connection at a
//! time, HTTP/1.0 semantics (close after response). The listener polls
//! with a short accept timeout (the same nonblocking-accept pattern as
//! the dist coordinator's serve loop) so shutdown is prompt. The metrics
//! endpoint renders the registry fresh on every request, so it needs no
//! coordination with the code updating the metrics; the same router
//! carries the control-plane JSON API in `dx-service`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::MetricsRegistry;

/// Accept-poll interval; bounds shutdown latency.
const POLL: Duration = Duration::from_millis(50);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Request cap: request line + headers + a JSON body. Campaign
/// submissions carry specs (dataset, metric, budgets), never tensors,
/// so a quarter megabyte is generous.
const MAX_REQUEST: usize = 256 * 1024;

/// A parsed inbound request: method, split path/query, and body.
pub struct Request {
    /// Upper-case method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with any `?query` suffix removed.
    pub path: String,
    /// The raw query string after `?` (empty when absent).
    pub query: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

impl Request {
    /// Builds a request by hand — handler unit tests use this to hit a
    /// [`Router`] without opening a socket.
    pub fn new(method: &str, path: &str, body: &str) -> Self {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (path.to_string(), String::new()),
        };
        Request { method: method.to_uppercase(), path, query, body: body.to_string() }
    }

    /// Looks up a `key=value` pair in the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// A response under construction. Defaults to `200 OK`, `text/plain`.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn text(body: impl Into<String>) -> Self {
        Response { status: 200, content_type: "text/plain".to_string(), body: body.into() }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Self {
        Response { status: 200, content_type: "application/json".to_string(), body: body.into() }
    }

    /// Overrides the status code, builder-style.
    #[must_use]
    pub fn status(mut self, status: u16) -> Self {
        self.status = status;
        self
    }

    /// The canonical empty `404 Not Found`.
    pub fn not_found() -> Self {
        Response::text("").status(404)
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            _ => "Status",
        }
    }

    fn render(&self) -> String {
        format!(
            "HTTP/1.0 {} {}\r\nContent-Type: {}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            self.body
        )
    }
}

type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

struct Route {
    method: String,
    pattern: String,
    prefix: bool,
    handler: Handler,
}

/// A method + path table dispatching to closures. Exact routes match
/// the whole path; prefix routes match any path starting with the
/// pattern (the handler inspects [`Request::path`] for the rest, e.g.
/// a campaign id). First match wins; a path that matches some route's
/// pattern but no route's method yields `405`, everything else `404`.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Router::default()
    }

    /// Adds an exact-match route.
    #[must_use]
    pub fn route(
        mut self,
        method: &str,
        path: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            method: method.to_uppercase(),
            pattern: path.to_string(),
            prefix: false,
            handler: Arc::new(handler),
        });
        self
    }

    /// Adds a prefix-match route (for paths carrying an id segment).
    #[must_use]
    pub fn route_prefix(
        mut self,
        method: &str,
        prefix: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        self.routes.push(Route {
            method: method.to_uppercase(),
            pattern: prefix.to_string(),
            prefix: true,
            handler: Arc::new(handler),
        });
        self
    }

    /// Dispatches one request — the unit-testable core of the server.
    pub fn respond(&self, req: &Request) -> Response {
        let mut path_seen = false;
        for route in &self.routes {
            let hit = if route.prefix {
                req.path.starts_with(&route.pattern)
            } else {
                req.path == route.pattern
            };
            if hit {
                if route.method == req.method {
                    return (route.handler)(req);
                }
                path_seen = true;
            }
        }
        if path_seen {
            Response::text("").status(405)
        } else {
            Response::not_found()
        }
    }

    /// Binds `addr` (port 0 for an ephemeral port) and serves this
    /// router until the returned handle drops.
    ///
    /// # Errors
    ///
    /// Bind failures.
    pub fn serve(self, addr: impl ToSocketAddrs) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Serve inline: requests are rare and tiny, and
                        // one thread keeps the footprint predictable.
                        let _ = answer(stream, &self);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(_) => std::thread::sleep(POLL),
                }
            }
        });
        Ok(HttpServer { addr, stop, handle: Some(handle) })
    }
}

/// A running HTTP endpoint. Dropping it stops the listener thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// The historical name for the handle returned by [`serve`].
pub type MetricsServer = HttpServer;

impl HttpServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for an ephemeral port)
/// and serves `registry` at `/metrics` until the returned handle drops.
///
/// # Errors
///
/// Bind failures.
pub fn serve(addr: impl ToSocketAddrs, registry: MetricsRegistry) -> io::Result<HttpServer> {
    let root = registry.clone();
    Router::new()
        .route("GET", "/metrics", move |_| Response::text(registry.render_prometheus()))
        .route("GET", "/", move |_| Response::text(root.render_prometheus()))
        .serve(addr)
}

fn answer(mut stream: TcpStream, router: &Router) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let response = match read_request(&mut stream) {
        Ok(Some(req)) => router.respond(&req),
        Ok(None) => Response::text("malformed request").status(400),
        Err(e) => return Err(e),
    };
    stream.write_all(response.render().as_bytes())?;
    stream.flush()
}

/// Reads and parses one request: headers to the blank line, then a body
/// of `Content-Length` bytes (all under the [`MAX_REQUEST`] cap).
/// Returns `Ok(None)` on anything malformed.
fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() >= MAX_REQUEST {
            return Ok(None);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(None);
    };
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_REQUEST {
        return Ok(None);
    }
    let mut body = buf[header_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);
    let mut req = Request::new(method, target, "");
    req.body = String::from_utf8_lossy(&body).into_owned();
    Ok(Some(req))
}

/// A one-shot HTTP/1.0 client: sends `method path` with an optional
/// body and returns `(status, body)`. The CLI's service client and the
/// CI smokes drive the daemon through here.
///
/// # Errors
///
/// Connection failures or an unparseable response.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let req = format!(
        "{method} {path} HTTP/1.0\r\nHost: dx\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((status, body.to_string()))
}

/// Fetches `/metrics` from a running endpoint and returns the body —
/// the `deepxplore metrics-dump` one-shot and the CI scrape smoke both
/// go through here.
///
/// # Errors
///
/// Connection failures, or a non-200 response.
pub fn scrape(addr: impl ToSocketAddrs) -> io::Result<String> {
    let (status, body) = request(addr, "GET", "/metrics", "")?;
    if status != 200 {
        return Err(io::Error::other(format!("scrape failed: HTTP {status}")));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_and_scrape_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("dx_seeds_total", &[]).inc_by(42);
        let server = serve("127.0.0.1:0", registry.clone()).unwrap();
        let body = scrape(server.addr()).unwrap();
        assert!(body.contains("dx_seeds_total 42\n"), "{body}");
        // Values are rendered fresh per scrape.
        registry.counter("dx_seeds_total", &[]).inc();
        let body = scrape(server.addr()).unwrap();
        assert!(body.contains("dx_seeds_total 43\n"), "{body}");
    }

    #[test]
    fn unknown_path_is_404() {
        let server = serve("127.0.0.1:0", MetricsRegistry::new()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");
    }

    #[test]
    fn shutdown_frees_the_port() {
        let server = serve("127.0.0.1:0", MetricsRegistry::new()).unwrap();
        let addr = server.addr();
        drop(server);
        // The listener is gone; a fresh bind on the same port succeeds.
        let _rebound = TcpListener::bind(addr).unwrap();
    }

    #[test]
    fn router_dispatches_posts_with_bodies() {
        let server = Router::new()
            .route("POST", "/echo", |req| Response::json(req.body.clone()))
            .route_prefix("GET", "/items/", |req| {
                Response::text(req.path.trim_start_matches("/items/").to_string())
            })
            .serve("127.0.0.1:0")
            .unwrap();
        let (status, body) = request(server.addr(), "POST", "/echo", "{\"k\":1}").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"k\":1}"));
        let (status, body) = request(server.addr(), "GET", "/items/abc", "").unwrap();
        assert_eq!((status, body.as_str()), (200, "abc"));
        // Wrong method on a known path is 405, unknown path is 404.
        let (status, _) = request(server.addr(), "GET", "/echo", "").unwrap();
        assert_eq!(status, 405);
        let (status, _) = request(server.addr(), "POST", "/nope", "").unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn query_params_parse() {
        let req = Request::new("GET", "/events?from=12&tail=1", "");
        assert_eq!(req.path, "/events");
        assert_eq!(req.query_param("from"), Some("12"));
        assert_eq!(req.query_param("tail"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
    }
}
