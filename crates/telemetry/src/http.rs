//! A minimal Prometheus scrape endpoint and its matching one-shot
//! client.
//!
//! Deliberately tiny: one listener thread, one blocking connection at a
//! time, HTTP/1.0 semantics (close after response). A scrape renders the
//! registry fresh on every request, so the endpoint needs no
//! coordination with the code updating the metrics. The listener polls
//! with a short accept timeout (the same nonblocking-accept pattern as
//! the dist coordinator's serve loop) so shutdown is prompt.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::MetricsRegistry;

/// Accept-poll interval; bounds shutdown latency.
const POLL: Duration = Duration::from_millis(50);
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Request cap: a scrape request line plus headers is tiny.
const MAX_REQUEST: usize = 8 * 1024;

/// A running metrics endpoint. Dropping it stops the listener thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9184`, port 0 for an ephemeral port)
/// and serves `registry` at `/metrics` until the returned handle drops.
///
/// # Errors
///
/// Bind failures.
pub fn serve(addr: impl ToSocketAddrs, registry: MetricsRegistry) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::spawn(move || {
        while !stop_flag.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Serve inline: scrapes are rare and tiny, and one
                    // thread keeps the footprint predictable.
                    let _ = answer(stream, &registry);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => std::thread::sleep(POLL),
            }
        }
    });
    Ok(MetricsServer { addr, stop, handle: Some(handle) })
}

fn answer(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = read_request(&mut stream)?;
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let response = if path == "/metrics" || path == "/" {
        let body = registry.render_prometheus();
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
    } else {
        "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\nConnection: close\r\n\r\n".to_string()
    };
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads until the blank line ending the request headers (or the cap).
fn read_request(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < MAX_REQUEST {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Fetches `/metrics` from a running endpoint and returns the body —
/// the `deepxplore metrics-dump` one-shot and the CI scrape smoke both
/// go through here.
///
/// # Errors
///
/// Connection failures, or a non-200 response.
pub fn scrape(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: metrics\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(io::Error::other(format!("scrape failed: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_and_scrape_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("dx_seeds_total", &[]).inc_by(42);
        let server = serve("127.0.0.1:0", registry.clone()).unwrap();
        let body = scrape(server.addr()).unwrap();
        assert!(body.contains("dx_seeds_total 42\n"), "{body}");
        // Values are rendered fresh per scrape.
        registry.counter("dx_seeds_total", &[]).inc();
        let body = scrape(server.addr()).unwrap();
        assert!(body.contains("dx_seeds_total 43\n"), "{body}");
    }

    #[test]
    fn unknown_path_is_404() {
        let server = serve("127.0.0.1:0", MetricsRegistry::new()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 404"), "{response}");
    }

    #[test]
    fn shutdown_frees_the_port() {
        let server = serve("127.0.0.1:0", MetricsRegistry::new()).unwrap();
        let addr = server.addr();
        drop(server);
        // The listener is gone; a fresh bind on the same port succeeds.
        let _rebound = TcpListener::bind(addr).unwrap();
    }
}
