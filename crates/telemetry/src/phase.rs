//! Contention-free hot-path timing.
//!
//! The generator's per-iterate loop runs tens of thousands of times per
//! campaign, so it must not touch atomics or locks. Each worker owns a
//! plain [`PhaseAccum`]; the [`crate::phase_timer!`] macro wraps one phase of an
//! iterate and records into it. At epoch (pool) or lease (dist)
//! boundaries the accumulated deltas are taken with
//! [`PhaseAccum::take`] and folded into shared registry histograms —
//! or shipped over the wire, which is why [`LocalHist`] is a plain
//! serializable triple of `(bucket counts, sum, count)`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Upper bounds (seconds) shared by every latency histogram in the
/// workspace: 25µs to 1s in a 1 / 2.5 / 5 per-decade ladder, with the
/// implicit `+Inf` overflow bucket above. One shared layout keeps
/// worker-shipped deltas mergeable into any coordinator histogram.
pub const TIME_BUCKETS: [f64; 15] = [
    0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0,
];

/// The four instrumented stages of one generator iterate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// All models' forward passes on the current input.
    Forward,
    /// The joint-objective gradient (Algorithm 1's ascent direction).
    Gradient,
    /// Domain-constraint projection of the perturbation.
    Constraint,
    /// Coverage tracker updates from the fresh activations.
    Coverage,
}

impl Phase {
    /// Every phase, in iterate order.
    pub const ALL: [Phase; 4] =
        [Phase::Forward, Phase::Gradient, Phase::Constraint, Phase::Coverage];

    /// The label value used for `dx_phase_seconds{phase=...}`.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Forward => "forward",
            Phase::Gradient => "gradient",
            Phase::Constraint => "constraint",
            Phase::Coverage => "coverage",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Forward => 0,
            Phase::Gradient => 1,
            Phase::Constraint => 2,
            Phase::Coverage => 3,
        }
    }
}

/// A non-atomic histogram delta over the [`TIME_BUCKETS`] layout:
/// per-bucket counts (overflow last, so `TIME_BUCKETS.len() + 1`
/// entries), the sum of observations, and their count. Cheap to merge
/// into a registry [`crate::Histogram`] and cheap to serialize.
#[derive(Clone, Debug, PartialEq)]
pub struct LocalHist {
    /// Per-bucket counts, overflow bucket last.
    pub counts: Vec<u64>,
    /// Sum of observed values (seconds).
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Default for LocalHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHist {
    /// An empty delta with the shared bucket layout.
    pub fn new() -> Self {
        Self { counts: vec![0; TIME_BUCKETS.len() + 1], sum: 0.0, count: 0 }
    }

    /// Records one observation (seconds).
    pub fn record(&mut self, secs: f64) {
        let i = TIME_BUCKETS.iter().position(|&b| secs <= b).unwrap_or(TIME_BUCKETS.len());
        self.counts[i] += 1;
        self.sum += secs;
        self.count += 1;
    }

    /// Folds another delta in (layouts must match; a foreign layout is
    /// ignored, as with [`crate::Histogram::merge_local`]).
    pub fn merge(&mut self, other: &LocalHist) {
        if other.counts.len() != self.counts.len() {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Per-worker accumulator of one [`LocalHist`] per [`Phase`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseAccum {
    hists: [LocalHist; 4],
}

impl PhaseAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finished [`PhaseTimer`] under `phase`. A timer started
    /// while timing was disabled records nothing.
    pub fn record(&mut self, phase: Phase, timer: PhaseTimer) {
        if let Some(started) = timer.started {
            self.hists[phase.index()].record(started.elapsed().as_secs_f64());
        }
    }

    /// The accumulated delta for one phase.
    pub fn get(&self, phase: Phase) -> &LocalHist {
        &self.hists[phase.index()]
    }

    /// Drains the accumulator, returning the delta since the last take.
    pub fn take(&mut self) -> PhaseAccum {
        std::mem::take(self)
    }

    /// Folds another accumulator in.
    pub fn merge(&mut self, other: &PhaseAccum) {
        for phase in Phase::ALL {
            self.hists[phase.index()].merge(other.get(phase));
        }
    }

    /// True when no phase has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(LocalHist::is_empty)
    }
}

static TIMING: AtomicBool = AtomicBool::new(true);

/// Turns hot-path timing on or off process-wide. Off means
/// [`PhaseTimer::start`] skips the `Instant::now()` call entirely — the
/// benches use this to measure instrumentation overhead in the same run.
pub fn set_timing_enabled(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Whether hot-path timing is currently enabled (default: yes).
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Serializes tests that read or flip the global timing flag.
#[cfg(test)]
pub(crate) fn test_timing_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A started (or disabled) phase clock; see [`crate::phase_timer!`].
pub struct PhaseTimer {
    started: Option<Instant>,
}

impl PhaseTimer {
    /// Reads the clock now, unless timing is disabled.
    pub fn start() -> Self {
        Self { started: timing_enabled().then(Instant::now) }
    }
}

/// Times one expression into a [`PhaseAccum`]:
///
/// ```
/// use dx_telemetry::phase::{Phase, PhaseAccum};
/// use dx_telemetry::phase_timer;
///
/// let mut accum = PhaseAccum::new();
/// let y = phase_timer!(accum, Phase::Forward, 2 + 2);
/// assert_eq!(y, 4);
/// assert_eq!(accum.get(Phase::Forward).count, 1);
/// ```
///
/// The accumulator expression is only borrowed *after* the body runs, so
/// the body may itself borrow the struct that owns the accumulator.
#[macro_export]
macro_rules! phase_timer {
    ($accum:expr, $phase:expr, $body:expr) => {{
        let __timer = $crate::phase::PhaseTimer::start();
        let __result = $body;
        $accum.record($phase, __timer);
        __result
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_hist_buckets_observations() {
        let mut h = LocalHist::new();
        h.record(0.00001); // first bucket (le 25µs)
        h.record(0.003); // le 5ms bucket
        h.record(30.0); // overflow
        assert_eq!(h.count, 3);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[TIME_BUCKETS.len()], 1);
        assert!((h.sum - 30.00301).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_and_rejects_foreign_layouts() {
        let mut a = LocalHist::new();
        a.record(0.1);
        let mut b = LocalHist::new();
        b.record(0.2);
        a.merge(&b);
        assert_eq!(a.count, 2);
        let foreign = LocalHist { counts: vec![9; 3], sum: 1.0, count: 9 };
        a.merge(&foreign);
        assert_eq!(a.count, 2, "foreign layout must be ignored");
    }

    #[test]
    fn accum_take_drains() {
        let _guard = test_timing_lock();
        let mut accum = PhaseAccum::new();
        let y = phase_timer!(accum, Phase::Gradient, 40 + 2);
        assert_eq!(y, 42);
        assert_eq!(accum.get(Phase::Gradient).count, 1);
        let taken = accum.take();
        assert!(accum.is_empty());
        assert_eq!(taken.get(Phase::Gradient).count, 1);
    }

    #[test]
    fn disabled_timing_records_nothing() {
        let _guard = test_timing_lock();
        set_timing_enabled(false);
        let mut accum = PhaseAccum::new();
        let _ = phase_timer!(accum, Phase::Forward, 1 + 1);
        set_timing_enabled(true);
        assert!(accum.is_empty());
    }

    #[test]
    fn registry_merge_matches_local_totals() {
        let reg = crate::MetricsRegistry::new();
        let mut local = LocalHist::new();
        local.record(0.0001);
        local.record(0.5);
        let h = reg.histogram("dx_phase_seconds", &[("phase", "forward")], &TIME_BUCKETS);
        h.merge_local(&local);
        h.merge_local(&local);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 1.0002).abs() < 1e-9);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 4);
    }
}
