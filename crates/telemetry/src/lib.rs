//! Dependency-free telemetry: a metrics registry, scoped timers, a
//! structured event sink, and a Prometheus-text scrape endpoint.
//!
//! The crate is deliberately self-contained (like the `crates/compat`
//! shims, it must build with no registry access) and sits below every
//! other workspace crate, so the generator hot path, the campaign
//! scheduler, and the dist plane can all report into one
//! [`MetricsRegistry`] without dependency cycles.
//!
//! Three layers:
//!
//! - **Metrics** ([`MetricsRegistry`], [`Counter`], [`Gauge`],
//!   [`Histogram`]): named families of labeled series backed by atomics.
//!   Handles are `Arc`s — fetch once, update lock-free forever. A
//!   process-wide registry is available via [`global()`]; library code
//!   takes an injected registry so tests stay isolated.
//! - **Timing** ([`phase::PhaseAccum`], [`phase_timer!`], [`Span`]): the
//!   generator's per-iterate phases are timed into plain (non-atomic)
//!   per-worker accumulators and folded into registry histograms at epoch
//!   or lease boundaries, keeping the hot loop contention-free. A global
//!   kill switch ([`phase::set_timing_enabled`]) turns the `Instant`
//!   reads themselves off for overhead measurement.
//! - **Events** ([`events`]): leveled JSONL diagnostics on stderr plus an
//!   optional trace file, replacing scattered `eprintln!` calls with
//!   machine-parseable records.

#![forbid(unsafe_code)]

pub mod events;
pub mod http;
pub mod names;
pub mod phase;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use phase::LocalHist;

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    pub fn inc_by(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point metric that can go up and down (stored as f64 bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: one atomic per bucket plus an overflow
/// bucket, an atomic count, and a CAS-maintained f64 sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last one catches values above
    /// every bound (rendered as `+Inf`).
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: bounds.to_vec(),
            buckets,
            sum: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// The upper bounds this histogram was created with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let i = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.add_sum(v);
    }

    /// Folds a locally accumulated delta in (bucket counts must match
    /// this histogram's layout; mismatched deltas are ignored since they
    /// carry advisory data from a peer, not local truth).
    pub fn merge_local(&self, delta: &LocalHist) {
        if delta.counts.len() != self.buckets.len() {
            return;
        }
        for (bucket, &n) in self.buckets.iter().zip(&delta.counts) {
            bucket.fetch_add(n, Ordering::Relaxed);
        }
        self.count.fetch_add(delta.count, Ordering::Relaxed);
        self.add_sum(delta.sum);
    }

    fn add_sum(&self, v: f64) {
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
enum Series {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

type Labels = Vec<(String, String)>;

struct Family {
    kind: Kind,
    series: BTreeMap<Labels, Series>,
}

#[derive(Default)]
struct Inner {
    families: Mutex<BTreeMap<String, Family>>,
    /// `# HELP` text per family name, kept separately so help can be
    /// registered before or after a family's first series appears.
    helps: Mutex<BTreeMap<String, String>>,
}

/// A named collection of metric families. Cloning shares the underlying
/// storage; [`MetricsRegistry::default`] creates a fresh private registry
/// (so config structs embedding one stay isolated under parallel tests),
/// while [`global()`] hands out the process-wide one the CLI exposes over
/// HTTP.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let families = self.inner.families.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricsRegistry").field("families", &families.len()).finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetches (creating on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// If `name` already exists with a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.series_of(name, labels, Kind::Counter, &[]) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Fetches (creating on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// If `name` already exists with a different metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.series_of(name, labels, Kind::Gauge, &[]) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Fetches (creating on first use) the histogram `name{labels}` with
    /// the given bucket upper bounds. Bounds are fixed at family creation;
    /// later calls reuse the first set.
    ///
    /// # Panics
    ///
    /// If `name` already exists with a different metric kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Arc<Histogram> {
        match self.series_of(name, labels, Kind::Histogram, bounds) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn series_of(&self, name: &str, labels: &[(&str, &str)], kind: Kind, bounds: &[f64]) -> Series {
        let key: Labels = labels.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect();
        let mut families = self.inner.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = families
            .entry(name.to_string())
            .or_insert_with(|| Family { kind, series: BTreeMap::new() });
        assert!(
            family.kind == kind,
            "metric {name} is a {}, requested as a {}",
            family.kind.name(),
            kind.name()
        );
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                Kind::Counter => Series::Counter(Arc::new(Counter::default())),
                Kind::Gauge => Series::Gauge(Arc::new(Gauge::default())),
                Kind::Histogram => Series::Histogram(Arc::new(Histogram::new(bounds))),
            })
            .clone()
    }

    /// Sets the `# HELP` text for a family. Help registered before the
    /// family's first series is kept and attached once it appears.
    pub fn set_help(&self, name: &str, help: &str) {
        let mut helps = self.inner.helps.lock().unwrap_or_else(|e| e.into_inner());
        helps.insert(name.to_string(), help.to_string());
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers, escaped label
    /// values, and cumulative histogram buckets ending in `+Inf` plus
    /// `_sum` / `_count` series.
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_labeled(&[])
    }

    /// Like [`render_prometheus`](Self::render_prometheus), but injects
    /// `extra` as constant labels at the front of every series' label
    /// block — how a per-tenant registry surfaces `tenant="..."` on the
    /// daemon's shared `/metrics` endpoint without every call site
    /// threading the tenant name through.
    pub fn render_prometheus_labeled(&self, extra: &[(&str, &str)]) -> String {
        let extra: Labels = extra.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let families = self.inner.families.lock().unwrap_or_else(|e| e.into_inner());
        let helps = self.inner.helps.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, family) in families.iter() {
            if let Some(help) = helps.get(name) {
                let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
            }
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.name());
            for (labels, series) in &family.series {
                let mut merged = extra.clone();
                merged.extend(labels.iter().cloned());
                let labels = &merged;
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", label_block(labels, None), c.get());
                    }
                    Series::Gauge(g) => {
                        let _ =
                            writeln!(out, "{name}{} {}", label_block(labels, None), num(g.get()));
                    }
                    Series::Histogram(h) => render_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

/// Concatenates several rendered expositions into one legal document by
/// dropping repeated `# HELP` / `# TYPE` header lines (the text format
/// allows each at most once per metric name). Used by the service
/// daemon to serve the global registry plus one registry per tenant
/// from a single `/metrics` endpoint.
pub fn merge_renders(parts: &[String]) -> String {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = String::new();
    for part in parts {
        for line in part.lines() {
            if line.starts_with("# ") && !seen.insert(line.to_string()) {
                continue;
            }
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, labels: &Labels, h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (bound, n) in h.bounds().iter().zip(&counts) {
        cumulative += n;
        let le = num(*bound);
        let _ = writeln!(out, "{name}_bucket{} {cumulative}", label_block(labels, Some(&le)));
    }
    cumulative += counts.last().copied().unwrap_or(0);
    let _ = writeln!(out, "{name}_bucket{} {cumulative}", label_block(labels, Some("+Inf")));
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), num(h.sum()));
    let _ = writeln!(out, "{name}_count{} {}", label_block(labels, None), h.count());
}

/// Formats the `{k="v",...}` block (empty string when there are no
/// labels), with `le` appended last when rendering a histogram bucket.
fn label_block(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes HELP text (backslash and newline only; quotes are legal).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders an f64 the way Prometheus expects (plain decimal; `{}` on f64
/// never produces exponents for our value ranges).
fn num(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// The process-wide registry: what `--metrics-addr` serves and what the
/// wire layer's frame/byte counters always use.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// An RAII timer that records its lifetime into a histogram on drop.
/// Honors the global [`phase::set_timing_enabled`] switch.
pub struct Span {
    hist: Arc<Histogram>,
    started: Option<std::time::Instant>,
}

impl Span {
    /// Starts timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> Self {
        let started = phase::timing_enabled().then(std::time::Instant::now);
        Self { hist, started }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t) = self.started {
            self.hist.observe(t.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("dx_seeds_total", &[]);
        c.inc();
        c.inc_by(4);
        assert_eq!(reg.counter("dx_seeds_total", &[]).get(), 5);
        let g = reg.gauge("dx_corpus_size", &[]);
        g.set(17.5);
        assert_eq!(reg.gauge("dx_corpus_size", &[]).get(), 17.5);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let reg = MetricsRegistry::new();
        reg.counter("dx_spot_checks_total", &[("slot", "0"), ("verdict", "ok")]).inc_by(3);
        reg.counter("dx_spot_checks_total", &[("slot", "0"), ("verdict", "bad")]).inc();
        assert_eq!(
            reg.counter("dx_spot_checks_total", &[("slot", "0"), ("verdict", "ok")]).get(),
            3
        );
        assert_eq!(
            reg.counter("dx_spot_checks_total", &[("slot", "0"), ("verdict", "bad")]).get(),
            1
        );
    }

    #[test]
    #[should_panic(expected = "is a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("dx_thing", &[]).inc();
        let _ = reg.gauge("dx_thing", &[]);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dx_t", &[], &[0.1, 1.0]);
        h.observe(0.05); // bucket 0
        h.observe(0.5); // bucket 1
        h.observe(0.1); // le is inclusive: bucket 0
        h.observe(5.0); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 5.65).abs() < 1e-9);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_escaped() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dx_t", &[("phase", "forward")], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(7.0);
        reg.counter("dx_odd_total", &[("name", "a\\b\"c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE dx_t histogram\n"), "{text}");
        assert!(text.contains("dx_t_bucket{phase=\"forward\",le=\"0.1\"} 1\n"), "{text}");
        assert!(text.contains("dx_t_bucket{phase=\"forward\",le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("dx_t_bucket{phase=\"forward\",le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("dx_t_count{phase=\"forward\"} 3\n"), "{text}");
        assert!(text.contains("dx_t_sum{phase=\"forward\"} 7.55"), "{text}");
        assert!(text.contains("dx_odd_total{name=\"a\\\\b\\\"c\\nd\"} 1\n"), "{text}");
    }

    #[test]
    fn help_and_type_headers_render() {
        let reg = MetricsRegistry::new();
        reg.counter("dx_seeds_total", &[]).inc();
        reg.set_help("dx_seeds_total", "Seeds processed\nacross all workers");
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP dx_seeds_total Seeds processed\\nacross all workers\n"));
        assert!(text.contains("# TYPE dx_seeds_total counter\n"));
        assert!(text.contains("dx_seeds_total 1\n"));
    }

    #[test]
    fn labeled_render_injects_constant_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("dx_seeds_total", &[]).inc_by(7);
        reg.counter("dx_new_units_total", &[("component", "neuron")]).inc_by(3);
        reg.histogram("dx_t", &[], &[1.0]).observe(0.5);
        let text = reg.render_prometheus_labeled(&[("tenant", "acme")]);
        assert!(text.contains("dx_seeds_total{tenant=\"acme\"} 7\n"), "{text}");
        assert!(
            text.contains("dx_new_units_total{tenant=\"acme\",component=\"neuron\"} 3\n"),
            "{text}"
        );
        assert!(text.contains("dx_t_bucket{tenant=\"acme\",le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("dx_t_count{tenant=\"acme\"} 1\n"), "{text}");
    }

    #[test]
    fn merge_renders_dedupes_headers() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for reg in [&a, &b] {
            reg.counter("dx_seeds_total", &[]).inc();
            reg.set_help("dx_seeds_total", "Seeds processed");
        }
        let merged = merge_renders(&[
            a.render_prometheus_labeled(&[("tenant", "a")]),
            b.render_prometheus_labeled(&[("tenant", "b")]),
        ]);
        assert_eq!(merged.matches("# TYPE dx_seeds_total counter").count(), 1, "{merged}");
        assert_eq!(merged.matches("# HELP dx_seeds_total").count(), 1, "{merged}");
        assert!(merged.contains("dx_seeds_total{tenant=\"a\"} 1\n"), "{merged}");
        assert!(merged.contains("dx_seeds_total{tenant=\"b\"} 1\n"), "{merged}");
    }

    #[test]
    fn concurrent_updates_sum_correctly() {
        let reg = MetricsRegistry::new();
        let threads = 8;
        let per = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let c = reg.counter("dx_seeds_total", &[]);
                let h = reg.histogram("dx_t", &[], &[0.5]);
                s.spawn(move || {
                    for i in 0..per {
                        c.inc();
                        h.observe(if i % 2 == 0 { 0.25 } else { 0.75 });
                    }
                });
            }
        });
        assert_eq!(reg.counter("dx_seeds_total", &[]).get(), threads * per);
        let h = reg.histogram("dx_t", &[], &[0.5]);
        assert_eq!(h.count(), threads * per);
        assert_eq!(h.bucket_counts(), vec![threads * per / 2, threads * per / 2]);
        let expected = (threads * per) as f64 * 0.5;
        assert!((h.sum() - expected).abs() < 1e-6, "{} vs {expected}", h.sum());
    }

    #[test]
    fn span_records_on_drop() {
        let _guard = phase::test_timing_lock();
        let reg = MetricsRegistry::new();
        let h = reg.histogram("dx_epoch_seconds", &[], &[10.0]);
        {
            let _span = Span::new(h.clone());
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() < 10.0);
    }
}
