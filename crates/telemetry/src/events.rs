//! Structured JSONL diagnostics.
//!
//! Every record is one JSON object per line with fixed leading keys
//! (`ts_ms`, `level`, `component`, `event`) followed by the caller's
//! fields, e.g.:
//!
//! ```text
//! {"ts_ms":1754550000123,"level":"info","component":"coordinator","event":"worker_joined","slot":3}
//! ```
//!
//! Records at or above the configured level ([`set_level`], the CLI's
//! `--log-level`) go to stderr; when a trace file is set
//! ([`set_trace_file`], the CLI's `--trace-out`) *every* record is also
//! appended there regardless of level, so a quiet console run still
//! leaves a complete trace.
//!
//! The escaping here is intentionally self-contained: this crate sits
//! below `dx-campaign`, so it cannot reuse that crate's JSON module.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from chattiest to most severe. [`Level::Off`]
/// is only meaningful as a filter setting, never as a record's level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-message detail (frame-level chatter).
    Trace,
    /// Per-connection / per-lease detail.
    Debug,
    /// Campaign lifecycle: joins, drains, evictions' outcomes.
    Info,
    /// Suspicious but recoverable: failed spot-checks, bad auth proofs.
    Warn,
    /// Lost work or failed persistence.
    Error,
    /// Filter setting that silences stderr entirely.
    Off,
}

impl Level {
    fn as_u8(self) -> u8 {
        match self {
            Level::Trace => 0,
            Level::Debug => 1,
            Level::Info => 2,
            Level::Warn => 3,
            Level::Error => 4,
            Level::Off => 5,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            4 => Level::Error,
            _ => Level::Off,
        }
    }

    /// The lowercase name used on the wire and accepted by [`FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
            Level::Off => "off",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "trace" => Ok(Level::Trace),
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            "off" => Ok(Level::Off),
            other => Err(format!("unknown log level {other:?} (trace|debug|info|warn|error|off)")),
        }
    }
}

/// A field value; `From` impls cover the common primitive types so call
/// sites can write `("slot", slot.into())`.
#[derive(Clone, Debug)]
pub enum Value {
    /// A JSON string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<std::time::Duration> for Value {
    fn from(v: std::time::Duration) -> Self {
        Value::F64(v.as_secs_f64())
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(2); // Info
static TRACE_ON: AtomicBool = AtomicBool::new(false);
static TRACE_FILE: Mutex<Option<File>> = Mutex::new(None);

/// Sets the minimum level that reaches stderr (default [`Level::Info`]).
pub fn set_level(level: Level) {
    LEVEL.store(level.as_u8(), Ordering::Relaxed);
}

/// The current stderr level.
pub fn level() -> Level {
    Level::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Opens (appending) a trace file that receives every record regardless
/// of the stderr level.
///
/// # Errors
///
/// Any I/O failure opening the file.
pub fn set_trace_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    *TRACE_FILE.lock().unwrap_or_else(|e| e.into_inner()) = Some(file);
    TRACE_ON.store(true, Ordering::Relaxed);
    Ok(())
}

/// Emits one event record.
pub fn emit(level: Level, component: &str, event: &str, fields: &[(&str, Value)]) {
    // No record carries Level::Off, so an Off floor silences stderr.
    let to_stderr = level >= self::level();
    let to_trace = TRACE_ON.load(Ordering::Relaxed);
    if !to_stderr && !to_trace {
        return;
    }
    let line = render(level, component, event, fields);
    if to_stderr {
        eprintln!("{line}");
    }
    if to_trace {
        if let Some(f) = TRACE_FILE.lock().unwrap_or_else(|e| e.into_inner()).as_mut() {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// Builds the JSONL record (exposed for tests).
pub fn render(level: Level, component: &str, event: &str, fields: &[(&str, Value)]) -> String {
    let ts_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or_default();
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"ts_ms\":{ts_ms},\"level\":\"{level}\",\"component\":\"{}\",\"event\":\"{}\"",
        escape(component),
        escape(event)
    );
    for (key, value) in fields {
        let _ = write!(line, ",\"{}\":", escape(key));
        match value {
            Value::Str(s) => {
                let _ = write!(line, "\"{}\"", escape(s));
            }
            Value::U64(v) => {
                let _ = write!(line, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(line, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(line, "{v}");
            }
            Value::F64(_) => line.push_str("null"),
            Value::Bool(v) => {
                let _ = write!(line, "{v}");
            }
        }
    }
    line.push('}');
    line
}

/// Minimal JSON string escaping: backslash, quote, and control bytes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert!(Level::Trace < Level::Debug && Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn && Level::Warn < Level::Error);
        assert!(Level::Error < Level::Off);
        for l in [Level::Trace, Level::Debug, Level::Info, Level::Warn, Level::Error, Level::Off] {
            assert_eq!(l.name().parse::<Level>().unwrap(), l);
        }
        assert!("verbose".parse::<Level>().is_err());
    }

    #[test]
    fn records_are_valid_jsonl_shape() {
        let line = render(
            Level::Warn,
            "coordinator",
            "spot_check_failed",
            &[
                ("slot", 3u64.into()),
                ("rate", 0.5f64.into()),
                ("reason", "bad \"diff\"\n".into()),
                ("evicted", false.into()),
                ("nan", f64::NAN.into()),
            ],
        );
        assert!(line.starts_with("{\"ts_ms\":"), "{line}");
        assert!(line.contains("\"level\":\"warn\""), "{line}");
        assert!(line.contains("\"component\":\"coordinator\""), "{line}");
        assert!(line.contains("\"event\":\"spot_check_failed\""), "{line}");
        assert!(line.contains("\"slot\":3"), "{line}");
        assert!(line.contains("\"rate\":0.5"), "{line}");
        assert!(line.contains("\"reason\":\"bad \\\"diff\\\"\\n\""), "{line}");
        assert!(line.contains("\"evicted\":false"), "{line}");
        assert!(line.contains("\"nan\":null"), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(!line.contains('\n'), "one record per line: {line}");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("tab\there"), "tab\\there");
    }
}
