//! Property tests of the metric primitives under the same access
//! pattern the campaign worker pool produces: many threads hammering
//! shared counter/histogram handles, plus per-thread local accumulators
//! merged at a sync point. The invariant either way: merged totals equal
//! the sum of per-thread contributions exactly (counters, bucket counts)
//! or to float tolerance (sums).

use dx_telemetry::phase::{LocalHist, Phase, PhaseAccum, TIME_BUCKETS};
use dx_telemetry::MetricsRegistry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent shared-handle updates: no increment is lost.
    #[test]
    fn concurrent_updates_equal_per_thread_sums(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0.00001f64..2.0, 1..40),
            2..6,
        ),
    ) {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for observations in &per_thread {
                let c = reg.counter("dx_seeds_total", &[]);
                let h = reg.histogram("dx_phase_seconds", &[("phase", "forward")], &TIME_BUCKETS);
                s.spawn(move || {
                    for &v in observations {
                        c.inc();
                        h.observe(v);
                    }
                });
            }
        });
        let expected_count: u64 = per_thread.iter().map(|o| o.len() as u64).sum();
        let expected_sum: f64 = per_thread.iter().flatten().sum();
        prop_assert_eq!(reg.counter("dx_seeds_total", &[]).get(), expected_count);
        let h = reg.histogram("dx_phase_seconds", &[("phase", "forward")], &TIME_BUCKETS);
        prop_assert_eq!(h.count(), expected_count);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), expected_count);
        prop_assert!((h.sum() - expected_sum).abs() < 1e-6 * expected_count.max(1) as f64);
    }

    /// The fold path the pool actually uses: thread-local accumulators
    /// merged into one registry histogram at the epoch boundary.
    #[test]
    fn merged_locals_equal_per_thread_sums(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0.00001f64..2.0, 1..40),
            2..6,
        ),
    ) {
        let reg = MetricsRegistry::new();
        let locals: Vec<LocalHist> = std::thread::scope(|s| {
            let handles: Vec<_> = per_thread
                .iter()
                .map(|observations| {
                    s.spawn(move || {
                        let mut local = LocalHist::new();
                        for &v in observations {
                            local.record(v);
                        }
                        local
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let h = reg.histogram("dx_phase_seconds", &[("phase", "gradient")], &TIME_BUCKETS);
        for local in &locals {
            h.merge_local(local);
        }
        let expected_count: u64 = per_thread.iter().map(|o| o.len() as u64).sum();
        let expected_sum: f64 = per_thread.iter().flatten().sum();
        prop_assert_eq!(h.count(), expected_count);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), expected_count);
        prop_assert!((h.sum() - expected_sum).abs() < 1e-6 * expected_count.max(1) as f64);
        // Per-bucket counts agree with a sequential replay of the same data.
        let mut replay = LocalHist::new();
        for &v in per_thread.iter().flatten() {
            replay.record(v);
        }
        prop_assert_eq!(h.bucket_counts(), replay.counts);
    }

    /// PhaseAccum::merge matches element-wise LocalHist addition.
    #[test]
    fn accum_merge_is_elementwise(
        counts in proptest::collection::vec(1usize..20, 2..5),
    ) {
        let mut merged = PhaseAccum::new();
        let mut totals = [0u64; 4];
        for (i, &n) in counts.iter().enumerate() {
            let mut one = PhaseAccum::new();
            let phase = Phase::ALL[i % 4];
            for k in 0..n {
                let timer = dx_telemetry::phase::PhaseTimer::start();
                let _ = k; // Body is irrelevant; we only need a duration.
                one.record(phase, timer);
            }
            totals[i % 4] += n as u64;
            merged.merge(&one);
        }
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            prop_assert_eq!(merged.get(phase).count, totals[i]);
        }
    }
}
