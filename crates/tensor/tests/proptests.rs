//! Property-based tests for tensor algebra and metric invariants.

use dx_tensor::{metrics, Tensor};
use proptest::prelude::*;

/// Strategy producing a tensor of the given length with bounded values.
fn tensor_of(len: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-100.0f32..100.0, len).prop_map(move |v| Tensor::from_vec(v, &[len]))
}

/// Strategy producing an m×n matrix.
fn matrix(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| Tensor::from_vec(v, &[m, n]))
}

proptest! {
    #[test]
    fn addition_commutes(a in tensor_of(16), b in tensor_of(16)) {
        let ab = &a + &b;
        let ba = &b + &a;
        for (x, y) in ab.data().iter().zip(ba.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-4);
        }
    }

    #[test]
    fn subtraction_is_inverse_of_addition(a in tensor_of(16), b in tensor_of(16)) {
        let round = &(&a + &b) - &b;
        for (x, y) in round.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-3);
        }
    }

    #[test]
    fn scaling_distributes_over_sum(a in tensor_of(16), s in -5.0f32..5.0) {
        let lhs = a.scale(s).sum();
        let rhs = a.sum() * s;
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn transpose_is_involution(m in matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity(m in matrix(4, 4)) {
        let i = Tensor::eye(4);
        let out = m.matmul(&i);
        for (x, y) in out.data().iter().zip(m.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-4);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        // (AB)^T == B^T A^T.
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-2);
        }
    }

    #[test]
    fn softmax_is_distribution(a in tensor_of(10)) {
        let s = a.softmax();
        prop_assert!((s.sum() - 1.0).abs() <= 1e-4);
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_preserves_argmax(a in tensor_of(10)) {
        prop_assert_eq!(a.softmax().argmax(), a.argmax());
    }

    #[test]
    fn minmax_scaled_in_unit_interval(a in tensor_of(20)) {
        let s = a.minmax_scaled();
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn l1_triangle_inequality(a in tensor_of(12), b in tensor_of(12), c in tensor_of(12)) {
        let direct = metrics::l1_distance(&a, &c);
        let via = metrics::l1_distance(&a, &b) + metrics::l1_distance(&b, &c);
        prop_assert!(direct <= via + 1e-2);
    }

    #[test]
    fn l2_symmetry(a in tensor_of(12), b in tensor_of(12)) {
        let d1 = metrics::l2_distance(&a, &b);
        let d2 = metrics::l2_distance(&b, &a);
        prop_assert!((d1 - d2).abs() <= 1e-4);
    }

    #[test]
    fn linf_bounded_by_l1(a in tensor_of(12), b in tensor_of(12)) {
        prop_assert!(metrics::linf_distance(&a, &b) <= metrics::l1_distance(&a, &b) + 1e-4);
    }

    #[test]
    fn clamp_respects_bounds(a in tensor_of(16), lo in -1.0f32..0.0, hi in 0.0f32..1.0) {
        let c = a.clamp(lo, hi);
        prop_assert!(c.data().iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn reshape_round_trip(a in tensor_of(24)) {
        let r = a.reshape(&[2, 3, 4]).reshape(&[24]);
        prop_assert_eq!(r, a);
    }

    #[test]
    fn hadamard_with_ones_is_identity(a in tensor_of(16)) {
        let ones = Tensor::ones(&[16]);
        prop_assert_eq!(a.hadamard(&ones), a);
    }
}
