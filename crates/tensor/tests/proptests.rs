//! Property-based tests for tensor algebra and metric invariants.

use dx_tensor::{kernels, metrics, Tensor};
use proptest::prelude::*;

/// Strategy producing a tensor of the given length with bounded values.
fn tensor_of(len: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-100.0f32..100.0, len).prop_map(move |v| Tensor::from_vec(v, &[len]))
}

/// Strategy producing an m×n matrix.
fn matrix(m: usize, n: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| Tensor::from_vec(v, &[m, n]))
}

proptest! {
    #[test]
    fn addition_commutes(a in tensor_of(16), b in tensor_of(16)) {
        let ab = &a + &b;
        let ba = &b + &a;
        for (x, y) in ab.data().iter().zip(ba.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-4);
        }
    }

    #[test]
    fn subtraction_is_inverse_of_addition(a in tensor_of(16), b in tensor_of(16)) {
        let round = &(&a + &b) - &b;
        for (x, y) in round.data().iter().zip(a.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-3);
        }
    }

    #[test]
    fn scaling_distributes_over_sum(a in tensor_of(16), s in -5.0f32..5.0) {
        let lhs = a.scale(s).sum();
        let rhs = a.sum() * s;
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn transpose_is_involution(m in matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity(m in matrix(4, 4)) {
        let i = Tensor::eye(4);
        let out = m.matmul(&i);
        for (x, y) in out.data().iter().zip(m.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-4);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        // (AB)^T == B^T A^T.
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() <= 1e-2);
        }
    }

    #[test]
    fn softmax_is_distribution(a in tensor_of(10)) {
        let s = a.softmax();
        prop_assert!((s.sum() - 1.0).abs() <= 1e-4);
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_preserves_argmax(a in tensor_of(10)) {
        prop_assert_eq!(a.softmax().argmax(), a.argmax());
    }

    #[test]
    fn minmax_scaled_in_unit_interval(a in tensor_of(20)) {
        let s = a.minmax_scaled();
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn l1_triangle_inequality(a in tensor_of(12), b in tensor_of(12), c in tensor_of(12)) {
        let direct = metrics::l1_distance(&a, &c);
        let via = metrics::l1_distance(&a, &b) + metrics::l1_distance(&b, &c);
        prop_assert!(direct <= via + 1e-2);
    }

    #[test]
    fn l2_symmetry(a in tensor_of(12), b in tensor_of(12)) {
        let d1 = metrics::l2_distance(&a, &b);
        let d2 = metrics::l2_distance(&b, &a);
        prop_assert!((d1 - d2).abs() <= 1e-4);
    }

    #[test]
    fn linf_bounded_by_l1(a in tensor_of(12), b in tensor_of(12)) {
        prop_assert!(metrics::linf_distance(&a, &b) <= metrics::l1_distance(&a, &b) + 1e-4);
    }

    #[test]
    fn clamp_respects_bounds(a in tensor_of(16), lo in -1.0f32..0.0, hi in 0.0f32..1.0) {
        let c = a.clamp(lo, hi);
        prop_assert!(c.data().iter().all(|&v| v >= lo && v <= hi));
    }

    #[test]
    fn reshape_round_trip(a in tensor_of(24)) {
        let r = a.reshape(&[2, 3, 4]).reshape(&[24]);
        prop_assert_eq!(r, a);
    }

    #[test]
    fn hadamard_with_ones_is_identity(a in tensor_of(16)) {
        let ones = Tensor::ones(&[16]);
        prop_assert_eq!(a.hadamard(&ones), a);
    }
}

/// The unblocked ikj reference (ascending `k`, zero-skip) the blocked
/// kernel pins itself to. Mirrors the in-crate unit-test reference but
/// feeds on proptest-sampled shapes and contents.
fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                *o += av * bv;
            }
        }
    }
    out
}

/// Sparsifies sampled data in place so the kernels' zero-skip path is
/// exercised: roughly one element in five becomes an exact zero.
fn with_zeros(mut v: Vec<f32>) -> Vec<f32> {
    for (i, x) in v.iter_mut().enumerate() {
        if i.wrapping_mul(2654435761).is_multiple_of(5) {
            *x = 0.0;
        }
    }
    v
}

// Kernel pins: the blocked / transposed / fused kernels against the naive
// scalar reference, on shapes that straddle the KB=64 / JB=256 block
// boundaries. The contract is bit-exactness per element (the transposed
// kernel may flip the sign of a zero, which nothing downstream observes),
// and NaN poisoning must stay detectable through the accumulate path.
// Few cases, big shapes: each case covers thousands of output elements.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blocked_matmul_matches_naive_bitwise(
        m in 1usize..6,
        k in 1usize..130,
        n in 1usize..300,
        a_raw in proptest::collection::vec(-3.0f32..3.0, 5 * 129),
        b_raw in proptest::collection::vec(-3.0f32..3.0, 129 * 299),
    ) {
        let a = with_zeros(a_raw[..m * k].to_vec());
        let b = with_zeros(b_raw[..k * n].to_vec());
        let want = matmul_naive(&a, &b, m, k, n);
        let mut got = vec![0.0f32; m * n];
        kernels::matmul_acc(&a, &b, m, k, n, &mut got);
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert_eq!(g.to_bits(), w.to_bits(), "{} vs {} at {}x{}x{}", g, w, m, k, n);
        }
    }

    #[test]
    fn transposed_matmul_matches_naive_up_to_zero_sign(
        m in 1usize..6,
        k in 1usize..130,
        n in 1usize..40,
        a_raw in proptest::collection::vec(-3.0f32..3.0, 5 * 129),
        b_raw in proptest::collection::vec(-3.0f32..3.0, 39 * 129),
    ) {
        let a = with_zeros(a_raw[..m * k].to_vec());
        let b = with_zeros(b_raw[..n * k].to_vec()); // stored [n, k]
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                bt[p * n + j] = b[j * k + p];
            }
        }
        let want = matmul_naive(&a, &bt, m, k, n);
        let mut got = vec![0.0f32; m * n];
        kernels::matmul_bt_acc(&a, &b, m, k, n, &mut got);
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!(
                g.to_bits() == w.to_bits() || (*g == 0.0 && *w == 0.0),
                "{} vs {} at {}x{}x{}", g, w, m, k, n
            );
        }
    }

    #[test]
    fn fused_matmul_bias_act_matches_unfused_bitwise(
        m in 1usize..6,
        k in 1usize..130,
        n in 1usize..300,
        a_raw in proptest::collection::vec(-3.0f32..3.0, 5 * 129),
        b_raw in proptest::collection::vec(-3.0f32..3.0, 129 * 299),
        bias_raw in proptest::collection::vec(-2.0f32..2.0, 299),
    ) {
        let a = with_zeros(a_raw[..m * k].to_vec());
        let b = with_zeros(b_raw[..k * n].to_vec());
        let bias = &bias_raw[..n];
        for act in [kernels::FusedAct::Identity, kernels::FusedAct::Relu] {
            let mut want = matmul_naive(&a, &b, m, k, n);
            for row in want.chunks_exact_mut(n) {
                for (o, &bv) in row.iter_mut().zip(bias.iter()) {
                    *o += bv;
                    if act == kernels::FusedAct::Relu {
                        *o = o.max(0.0);
                    }
                }
            }
            let mut got = vec![f32::NAN; m * n]; // pre-poison: fused must overwrite
            kernels::matmul_bias_act(&a, &b, bias, m, k, n, act, &mut got);
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "{} vs {} at {}x{}x{} {:?}", g, w, m, k, n, act);
            }
        }
    }

    #[test]
    fn nan_poisoning_stays_detectable_through_matmul(
        m in 1usize..5,
        k in 1usize..80,
        n in 1usize..80,
        a_raw in proptest::collection::vec(-3.0f32..3.0, 4 * 79),
        b_raw in proptest::collection::vec(-3.0f32..3.0, 79 * 79),
        poison in 0usize..1000,
    ) {
        // A NaN anywhere in the lhs row must surface in that output row —
        // the zero-skip may not silently drop it (NaN != 0.0), so the
        // downstream has_non_finite rejection keeps working.
        let mut a = a_raw[..m * k].to_vec();
        let row = poison % m;
        a[row * k + poison % k] = f32::NAN;
        let b = with_zeros(b_raw[..k * n].to_vec());
        let mut got = vec![0.0f32; m * n];
        kernels::matmul_acc(&a, &b, m, k, n, &mut got);
        let out = Tensor::from_vec(got, &[m, n]);
        prop_assert!(out.has_non_finite(), "NaN at row {} was lost", row);
        prop_assert!(out.data()[row * n..(row + 1) * n].iter().any(|v| v.is_nan()));
    }
}
