//! Autovectorization-friendly matmul kernels over raw `&[f32]` slices.
//!
//! These are the hot-path kernels behind [`crate::Tensor::matmul`] and the
//! batched forward/backward passes in `dx-nn`. Three properties are
//! load-bearing and must survive any future tuning:
//!
//! - **Bit-compatibility with the naive ikj reference.** Every output
//!   element accumulates its `k` terms in ascending order, and terms whose
//!   *lhs* element is exactly `0.0` are skipped (the historical `matmul`
//!   semantics the workspace's bit-exact checkpoints rest on). Cache
//!   blocking below reorders traversal across *elements*, never within one
//!   element's reduction, so results are identical to the unblocked loop.
//! - **Contiguous inner loops without bounds checks.** Inner loops zip
//!   subslices, which the compiler proves in-bounds and autovectorizes;
//!   there is no indexed access in any inner loop.
//! - **Caller-owned output buffers.** Every kernel writes into a caller
//!   slice so callers can reuse arena buffers ([`crate::Workspace`]) instead
//!   of allocating per call.
//!
//! Blocking rationale (the same tiling-for-memory-hierarchy playbook GPU
//! tile frameworks use, applied to L1): for `a[m,k] · b[k,n]` the ikj loop
//! streams `b` once per lhs row, so the `[KB, JB]` block of `b` selected by
//! the two outer block loops stays L1-resident while all `m` lhs rows pass
//! over it. With batched inputs (`m = N` seeds instead of 1) each `b` load
//! is amortized over `N` rows — the core reason the batched campaign path
//! outruns the scalar one.

/// k-dimension block: how many rhs rows are revisited per lhs-row sweep.
const KB: usize = 64;
/// n-dimension block: rhs row segment length kept hot across lhs rows.
const JB: usize = 256;

/// `out += a · b` for row-major `a[m,k]`, `b[k,n]`, `out[m,n]`.
///
/// Accumulates into `out` (callers wanting a plain product must zero it
/// first — [`Workspace::take`](crate::Workspace::take) hands out zeroed
/// buffers). Terms with `a == 0.0` are skipped, matching the historical
/// `Tensor::matmul` semantics; per-element accumulation order is ascending
/// `k` regardless of blocking.
///
/// # Panics
///
/// Panics when the slice lengths do not match the given dimensions.
pub fn matmul_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul lhs length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "matmul rhs length {} != {k}x{n}", b.len());
    assert_eq!(out.len(), m * n, "matmul out length {} != {m}x{n}", out.len());
    let mut kb = 0;
    while kb < k {
        let kend = (kb + KB).min(k);
        let mut jb = 0;
        while jb < n {
            let jend = (jb + JB).min(n);
            for i in 0..m {
                let a_row = &a[i * k + kb..i * k + kend];
                let o_row = &mut out[i * n + jb..i * n + jend];
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b_seg = &b[(kb + p) * n + jb..(kb + p) * n + jend];
                    for (o, &bv) in o_row.iter_mut().zip(b_seg.iter()) {
                        *o += av * bv;
                    }
                }
            }
            jb = jend;
        }
        kb = kend;
    }
}

/// `out += a · bᵀ` for row-major `a[m,k]`, `b[n,k]`, `out[m,n]`.
///
/// The transposed-rhs product: `out[i][j]` is the dot product of `a` row
/// `i` with `b` row `j` — both contiguous, so no transpose materializes.
/// This is the backward-pass kernel for dense layers (`dx = g · Wᵀ` with
/// `W` stored `[I, O]` reads `W` rows directly). The reduction runs over
/// ascending `k` *without* the zero-skip (a dot product has no sparse lhs
/// to exploit); relative to a zero-skipping product this can only differ
/// in the sign of a zero, which no downstream comparison observes.
///
/// # Panics
///
/// Panics when the slice lengths do not match the given dimensions.
pub fn matmul_bt_acc(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "matmul_bt lhs length {} != {m}x{k}", a.len());
    assert_eq!(b.len(), n * k, "matmul_bt rhs length {} != {n}x{k}", b.len());
    assert_eq!(out.len(), m * n, "matmul_bt out length {} != {m}x{n}", out.len());
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            *o += a_row.iter().zip(b_row.iter()).map(|(&x, &y)| x * y).sum::<f32>();
        }
    }
}

/// Activation applied by the fused kernel after the bias add.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FusedAct {
    /// No activation — plain `x·W + b`.
    Identity,
    /// Rectified linear unit.
    Relu,
}

/// Fused `out = act(a · b + bias)` for `a[m,k]`, `b[k,n]`, `bias[n]`.
///
/// One buffer pass instead of three (matmul, bias sweep, activation map).
/// The float semantics are exactly the unfused pipeline's: the matmul sum
/// completes first (ascending `k`, zero-skip), then the bias is added,
/// then the activation applies — fusion removes memory traffic, not
/// operations, so results are bit-identical to the separate steps.
///
/// # Panics
///
/// Panics when slice lengths do not match the given dimensions.
#[allow(clippy::too_many_arguments)] // Three slices plus their dimensions.
pub fn matmul_bias_act(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    act: FusedAct,
    out: &mut [f32],
) {
    assert_eq!(bias.len(), n, "bias length {} != {n}", bias.len());
    out.fill(0.0);
    matmul_acc(a, b, m, k, n, out);
    for o_row in out.chunks_exact_mut(n) {
        for (o, &bv) in o_row.iter_mut().zip(bias.iter()) {
            let v = *o + bv;
            *o = match act {
                FusedAct::Identity => v,
                FusedAct::Relu => v.max(0.0),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The unblocked ikj reference the blocked kernel must match bit-for-bit.
    fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    fn pseudo(seed: u64, len: usize) -> Vec<f32> {
        // Deterministic values with varied magnitudes and some exact zeros.
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let v = ((s >> 33) as i32 % 1000) as f32 / 97.0;
                if (s >> 21).is_multiple_of(7) {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        // Sizes straddling the block boundaries in both k and n.
        for &(m, k, n) in
            &[(1, 3, 2), (2, 64, 256), (3, 65, 257), (8, 400, 120), (5, 130, 300), (1, 1, 1)]
        {
            let a = pseudo(m as u64 * 31 + k as u64, m * k);
            let b = pseudo(n as u64 * 17 + 5, k * n);
            let want = matmul_naive(&a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            matmul_acc(&a, &b, m, k, n, &mut got);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        for &(m, k, n) in &[(2, 5, 3), (4, 64, 64), (7, 100, 13)] {
            let a = pseudo(m as u64 + 1, m * k);
            let b = pseudo(n as u64 + 2, n * k); // b is [n, k]
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    bt[p * n + j] = b[j * k + p];
                }
            }
            let want = matmul_naive(&a, &bt, m, k, n);
            let mut got = vec![0.0f32; m * n];
            matmul_bt_acc(&a, &b, m, k, n, &mut got);
            for (g, w) in got.iter().zip(want.iter()) {
                // Zero-skip vs dot product may flip a zero's sign; values are
                // otherwise identical because both reduce over ascending k.
                assert!(
                    g.to_bits() == w.to_bits() || (*g == 0.0 && *w == 0.0),
                    "{g} vs {w} at {m}x{k}x{n}"
                );
            }
        }
    }

    #[test]
    fn fused_matches_separate_steps_bitwise() {
        for act in [FusedAct::Identity, FusedAct::Relu] {
            let (m, k, n) = (6, 70, 40);
            let a = pseudo(9, m * k);
            let b = pseudo(10, k * n);
            let bias = pseudo(11, n);
            let mut want = matmul_naive(&a, &b, m, k, n);
            for row in want.chunks_exact_mut(n) {
                for (o, &bv) in row.iter_mut().zip(bias.iter()) {
                    *o += bv;
                    if act == FusedAct::Relu {
                        *o = o.max(0.0);
                    }
                }
            }
            let mut got = vec![1.0f32; m * n]; // pre-dirty: fused must overwrite
            matmul_bias_act(&a, &b, &bias, m, k, n, act, &mut got);
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn kernels_propagate_non_finite_inputs() {
        // NaN in the lhs must reach the output (the PR 4 coverage fix
        // depends on non-finite activations staying visible, not being
        // silently zeroed by a kernel shortcut).
        let a = vec![f32::NAN, 1.0];
        let b = vec![2.0, 3.0];
        let mut out = vec![0.0f32; 1];
        matmul_acc(&a, &b, 1, 2, 1, &mut out);
        assert!(out[0].is_nan());
        let mut out_bt = vec![0.0f32; 1];
        matmul_bt_acc(&a, &b, 1, 2, 1, &mut out_bt);
        assert!(out_bt[0].is_nan());
        let mut out_f = vec![0.0f32; 1];
        matmul_bias_act(&a, &b, &[0.5], 1, 2, 1, FusedAct::Identity, &mut out_f);
        assert!(out_f[0].is_nan());
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn length_mismatch_panics() {
        let mut out = vec![0.0f32; 4];
        matmul_acc(&[1.0; 3], &[1.0; 4], 2, 2, 2, &mut out);
    }
}
