//! The dense row-major `f32` tensor at the heart of the workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::kernels;

/// A dense, row-major, N-dimensional `f32` tensor.
///
/// `Tensor` is deliberately simple: a contiguous `Vec<f32>` plus a shape.
/// There are no strides, views or reference counting — clones copy data.
/// This keeps every operation auditable, which matters for a testing tool
/// whose claims rest on gradient correctness.
///
/// Shape mismatches are programmer errors and panic with both shapes in the
/// message; see the `# Panics` section on each method.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{}, {}, {}, ... ; {} values])",
                self.data[0],
                self.data[1],
                self.data[2],
                self.data.len()
            )
        }
    }
}

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { data: vec![value; numel(shape)], shape: shape.to_vec() }
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer in a tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "buffer of {} values cannot take shape {:?}",
            data.len(),
            shape
        );
        Self { data, shape: shape.to_vec() }
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self { data: data.to_vec(), shape: vec![data.len()] }
    }

    /// Returns the shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying buffer mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape over the same buffer.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        assert_eq!(
            self.len(),
            numel(shape),
            "cannot reshape {:?} ({} values) into {:?} ({} values)",
            self.shape,
            self.len(),
            shape,
            numel(shape)
        );
        Self { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Consumes the tensor, returning one with a new shape over the *same*
    /// buffer (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn into_reshaped(self, shape: &[usize]) -> Self {
        assert_eq!(
            self.len(),
            numel(shape),
            "cannot reshape {:?} ({} values) into {:?} ({} values)",
            self.shape,
            self.len(),
            shape,
            numel(shape)
        );
        Self { data: self.data, shape: shape.to_vec() }
    }

    /// Computes the flat offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank(),
            "index {:?} has wrong rank for shape {:?}",
            index,
            self.shape
        );
        let mut off = 0;
        for (dim, (&i, &d)) in index.iter().zip(self.shape.iter()).enumerate() {
            assert!(
                i < d,
                "index {:?} out of bounds at dim {dim} for shape {:?}",
                index,
                self.shape
            );
            off = off * d + i;
        }
        off
    }

    /// Reads the element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Writes the element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self { data: self.data.iter().map(|&v| f(v)).collect(), shape: self.shape.clone() }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        self.assert_same_shape(other, "zip");
        Self {
            data: self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect(),
            shape: self.shape.clone(),
        }
    }

    fn assert_same_shape(&self, other: &Self, op: &str) {
        assert_eq!(
            self.shape, other.shape,
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
    }

    /// Adds `other * scale` into `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Self, scale: f32) {
        self.assert_same_shape(other, "add_scaled");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * scale;
        }
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip(other, |a, b| a * b)
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(!self.data.is_empty(), "min of empty tensor");
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.data.is_empty(), "max of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element (ties resolve to the first).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// Computes `self (m×k) · other (k×n) -> (m×n)` with the blocked,
    /// autovectorization-friendly kernel in [`crate::kernels`] — bit-identical
    /// to the historical naive ikj loop (see the kernel's docs).
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank-2 with matching inner dimension.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank-2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs must be rank-2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {:?} vs {:?}", self.shape, other.shape);
        let mut out = vec![0.0f32; m * n];
        kernels::matmul_acc(&self.data, &other.data, m, k, n, &mut out);
        Self { data: out, shape: vec![m, n] }
    }

    /// Matrix product with a transposed rhs: `self (m×k) · otherᵀ -> (m×n)`
    /// where `other` is stored `n×k`.
    ///
    /// Equivalent to `self.matmul(&other.transpose())` without materializing
    /// the transpose — each output element is a dot product of two
    /// contiguous rows. Used by the dense backward pass (`dx = g · Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank-2 with matching `k` dimension.
    pub fn matmul_bt(&self, other: &Self) -> Self {
        assert_eq!(self.rank(), 2, "matmul_bt lhs must be rank-2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul_bt rhs must be rank-2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_bt inner dimension mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; m * n];
        kernels::matmul_bt_acc(&self.data, &other.data, m, k, n, &mut out);
        Self { data: out, shape: vec![m, n] }
    }

    /// Matrix–vector product of a rank-2 tensor with a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `m×k` and `v` has length `k`.
    pub fn matvec(&self, v: &Self) -> Self {
        assert_eq!(self.rank(), 2, "matvec lhs must be rank-2, got {:?}", self.shape);
        assert_eq!(v.rank(), 1, "matvec rhs must be rank-1, got {:?}", v.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        assert_eq!(k, v.len(), "matvec dimension mismatch: {:?} vs {:?}", self.shape, v.shape);
        let mut out = vec![0.0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * k..(i + 1) * k];
            *o = row.iter().zip(v.data.iter()).map(|(&a, &b)| a * b).sum();
        }
        Self { data: out, shape: vec![m] }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.rank(), 2, "transpose needs rank-2, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self { data: out, shape: vec![n, m] }
    }

    /// Numerically stable softmax over the last (or only) axis of a rank-1
    /// tensor.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-1 and non-empty.
    pub fn softmax(&self) -> Self {
        assert_eq!(self.rank(), 1, "softmax needs rank-1, got {:?}", self.shape);
        let max = self.max();
        let exps: Vec<f32> = self.data.iter().map(|&v| (v - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        Self { data: exps.iter().map(|&e| e / denom).collect(), shape: self.shape.clone() }
    }

    /// Min-max scales all elements into `[0, 1]`.
    ///
    /// Degenerate inputs (constant tensors) scale to all-zeros, matching the
    /// convention in the paper's coverage computation (§7.1).
    pub fn minmax_scaled(&self) -> Self {
        if self.is_empty() {
            return self.clone();
        }
        let (lo, hi) = (self.min(), self.max());
        let range = hi - lo;
        if range <= f32::EPSILON {
            return Self::zeros(&self.shape);
        }
        self.map(|v| (v - lo) / range)
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.scale(rhs)
    }
}

impl Div<f32> for &Tensor {
    type Output = Tensor;
    fn div(self, rhs: f32) -> Tensor {
        self.scale(1.0 / rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.scale(-1.0)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.add_scaled(rhs, 1.0);
    }
}

impl SubAssign<&Tensor> for Tensor {
    fn sub_assign(&mut self, rhs: &Tensor) {
        self.add_scaled(rhs, -1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_zeros_ones() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[4]);
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full(&[2, 2], 2.5);
        assert_eq!(f.mean(), 2.5);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i3 = Tensor::eye(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn from_vec_checks_length() {
        let r = std::panic::catch_unwind(|| Tensor::from_vec(vec![1.0, 2.0], &[3]));
        assert!(r.is_err());
    }

    #[test]
    fn offset_row_major() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn at_and_set_round_trip() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[1, 2], 7.5);
        assert_eq!(t.at(&[1, 2]), 7.5);
        assert_eq!(t.at(&[2, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_bad_numel_panics() {
        Tensor::zeros(&[2, 2]).reshape(&[5]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]);
        let b = Tensor::from_vec(vec![3.0, 1.0, 2.0, 1.0, 1.0, 0.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[5.0, 1.0, 4.0, 2.0]);
    }

    #[test]
    fn matmul_bt_matches_transpose_matmul() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0], &[2, 3]);
        let b = Tensor::from_vec(vec![3.0, 2.0, 1.0, 1.0, 1.0, 0.0], &[2, 3]);
        let got = a.matmul_bt(&b);
        let want = a.matmul(&b.transpose());
        assert_eq!(got.shape(), want.shape());
        for (g, w) in got.data().iter().zip(want.data().iter()) {
            assert!(g.to_bits() == w.to_bits() || (*g == 0.0 && *w == 0.0));
        }
    }

    #[test]
    fn into_reshaped_is_zero_copy() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let ptr = t.data().as_ptr();
        let r = t.into_reshaped(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.data().as_ptr(), ptr);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let v = Tensor::from_slice(&[1.0, 0.5, -1.0]);
        let got = a.matvec(&v);
        let want = a.matmul(&v.reshape(&[3, 1])).reshape(&[2]);
        assert_eq!(got, want);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let t = Tensor::from_slice(&[1000.0, 1001.0, 1002.0]);
        let s = t.softmax();
        assert!((s.sum() - 1.0).abs() < 1e-6);
        assert!(!s.has_non_finite());
        assert!(s.data()[2] > s.data()[1] && s.data()[1] > s.data()[0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[-1.0, 4.0, 2.0, -3.0]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.argmax(), 1);
        assert_eq!(t.norm_sq(), 1.0 + 16.0 + 4.0 + 9.0);
    }

    #[test]
    fn argmax_ties_resolve_first() {
        let t = Tensor::from_slice(&[1.0, 3.0, 3.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn minmax_scaling() {
        let t = Tensor::from_slice(&[2.0, 4.0, 6.0]);
        let s = t.minmax_scaled();
        assert_eq!(s.data(), &[0.0, 0.5, 1.0]);
        let c = Tensor::full(&[3], 5.0).minmax_scaled();
        assert_eq!(c.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn operators() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).data(), &[4.0, 7.0]);
        assert_eq!((&b - &a).data(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).data(), &[2.0, 4.0]);
        assert_eq!((&b / 2.0).data(), &[1.5, 2.5]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.data(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.data(), &[1.0, 2.0]);
    }

    #[test]
    fn add_scaled_axpy() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let g = Tensor::from_slice(&[2.0, -4.0]);
        a.add_scaled(&g, 0.5);
        assert_eq!(a.data(), &[2.0, -1.0]);
    }

    #[test]
    fn clamp_and_hadamard() {
        let t = Tensor::from_slice(&[-2.0, 0.5, 9.0]);
        assert_eq!(t.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
        let u = Tensor::from_slice(&[2.0, 2.0, 0.5]);
        assert_eq!(t.hadamard(&u).data(), &[-4.0, 1.0, 4.5]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }
}
