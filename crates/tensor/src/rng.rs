//! Seeded randomness helpers.
//!
//! Every stochastic component in the workspace — weight initialization,
//! dataset synthesis, seed selection, the random neuron pick in
//! Algorithm 1 — draws from an explicitly seeded [`Rng`] created here, so
//! any experiment replays bit-for-bit from its `u64` seed.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

use crate::Tensor;

/// The RNG used across the workspace.
pub type Rng = StdRng;

/// Creates the workspace RNG from a seed.
pub fn rng(seed: u64) -> Rng {
    StdRng::seed_from_u64(seed)
}

/// Exports an RNG's raw state so it can be persisted (e.g. in campaign
/// checkpoints) and later resumed bit-exactly with [`rng_from_state`].
pub fn rng_state(r: &Rng) -> [u64; 4] {
    r.state()
}

/// Rebuilds an RNG from a state exported by [`rng_state`]; the stream
/// continues exactly where the exported generator left off.
pub fn rng_from_state(state: [u64; 4]) -> Rng {
    StdRng::from_state(state)
}

/// Derives a child seed from a parent seed and a stream id.
///
/// Used to give independent streams to e.g. each model in the zoo without
/// threading RNG state through every API (splitmix64 finalizer).
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Samples a tensor with elements uniform in `[lo, hi)`.
pub fn uniform(rng: &mut Rng, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

/// Samples one standard normal value via the Box–Muller transform.
pub fn normal_one(rng: &mut Rng) -> f32 {
    // Box–Muller; `u1` is kept away from zero so the log is finite.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0f32);
    let u2: f32 = rng.gen_range(0.0..1.0f32);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Samples a tensor with elements from `N(mean, std^2)`.
pub fn normal(rng: &mut Rng, shape: &[usize], mean: f32, std: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| mean + std * normal_one(rng)).collect();
    Tensor::from_vec(data, shape)
}

/// Returns a random permutation of `0..n` (Fisher–Yates).
pub fn permutation(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Samples `k` distinct indices from `0..n` without replacement.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from a population of {n}");
    let mut perm = permutation(rng, n);
    perm.truncate(k);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = uniform(&mut rng(7), &[32], -1.0, 1.0);
        let b = uniform(&mut rng(7), &[32], -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform(&mut rng(7), &[32], -1.0, 1.0);
        let b = uniform(&mut rng(8), &[32], -1.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn derive_seed_varies_with_stream() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        assert_ne!(s0, s1);
        assert_eq!(s0, derive_seed(42, 0));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = rng(11);
        let _ = uniform(&mut a, &[40], 0.0, 1.0);
        let mut b = rng_from_state(rng_state(&a));
        assert_eq!(uniform(&mut a, &[40], 0.0, 1.0), uniform(&mut b, &[40], 0.0, 1.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&mut rng(1), &[1000], 2.0, 3.0);
        assert!(t.data().iter().all(|&v| (2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = normal(&mut rng(3), &[20000], 1.5, 2.0);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.5).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
        assert!(!t.has_non_finite());
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = permutation(&mut rng(5), 100);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sampling_without_replacement_is_distinct() {
        let s = sample_without_replacement(&mut rng(9), 50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        sample_without_replacement(&mut rng(0), 3, 4);
    }
}
