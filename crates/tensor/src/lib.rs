//! N-dimensional `f32` tensors and supporting numerics for deepxplore-rs.
//!
//! This crate is the lowest layer of the workspace. It provides:
//!
//! - [`Tensor`]: a dense, row-major, heap-allocated `f32` tensor with the
//!   elementwise, linear-algebra and reduction operations the neural-network
//!   engine (`dx-nn`) is built from.
//! - [`rng`]: seeded random sampling (uniform, normal, permutations) so every
//!   experiment in the workspace is reproducible from a single `u64` seed.
//! - [`image`]: a thin channel-height-width view over [`Tensor`] with raster
//!   primitives (rectangles, lines, disks) used by the synthetic dataset
//!   renderers, plus PGM/PPM encoding for inspecting generated tests.
//! - [`metrics`]: distances (L1/L2/L∞) and structural similarity (SSIM),
//!   used by the diversity experiment (Table 5 of the paper) and the
//!   training-data pollution detector (§7.3).
//! - [`kernels`]: blocked / transposed / fused matmul kernels over raw
//!   `&[f32]` slices — the autovectorization-friendly hot path behind
//!   [`Tensor::matmul`] and the batched campaign pipeline.
//! - [`workspace`]: a free-list buffer arena ([`Workspace`]) that lets the
//!   per-iterate forward/backward passes reuse intermediate activation and
//!   gradient buffers instead of allocating.
//!
//! The design goal is *auditability first, then speed*: everything is plain
//! safe Rust over contiguous `Vec<f32>` buffers, with shape errors reported
//! as panics carrying both offending shapes (they are programmer errors, not
//! runtime conditions). The kernels get their speed from cache blocking,
//! bounds-check-free iterator loops and buffer reuse — never from changing
//! float semantics (results stay bit-identical to the naive reference).
//!
//! # Examples
//!
//! ```
//! use dx_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod kernels;
pub mod metrics;
pub mod rng;
pub mod tensor;
pub mod workspace;

pub use image::Image;
pub use kernels::FusedAct;
pub use tensor::Tensor;
pub use workspace::Workspace;
