//! Channel–height–width images over [`Tensor`], raster primitives, and
//! PGM/PPM encoding.
//!
//! The synthetic dataset renderers (`dx-datasets`) draw digits, road scenes
//! and textures with the primitives here; the constraint gallery bench
//! (Figure 8 of the paper) uses the encoders to dump seed and
//! difference-inducing inputs for visual inspection.

use std::io::{self, Write};
use std::path::Path;

use crate::Tensor;

/// An image stored as a `[channels, height, width]` tensor with values
/// conventionally in `[0, 1]`.
///
/// `Image` owns its tensor; [`Image::into_tensor`] and [`Image::from_tensor`]
/// convert at zero conceptual cost. Pixel access is `(channel, y, x)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Image {
    tensor: Tensor,
}

impl Image {
    /// Creates a black image.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        Self { tensor: Tensor::zeros(&[channels, height, width]) }
    }

    /// Wraps a `[C, H, W]` tensor as an image.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank-3.
    pub fn from_tensor(tensor: Tensor) -> Self {
        assert_eq!(tensor.rank(), 3, "images are [C, H, W]; got shape {:?}", tensor.shape());
        Self { tensor }
    }

    /// Returns the underlying tensor.
    pub fn tensor(&self) -> &Tensor {
        &self.tensor
    }

    /// Consumes the image, returning its tensor.
    pub fn into_tensor(self) -> Tensor {
        self.tensor
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.tensor.shape()[0]
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.tensor.shape()[1]
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.tensor.shape()[2]
    }

    /// Reads a pixel.
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.tensor.at(&[c, y, x])
    }

    /// Writes a pixel.
    pub fn put(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.tensor.set(&[c, y, x], v);
    }

    /// Writes a pixel in every channel (useful for grayscale-style drawing
    /// on RGB images).
    pub fn put_all(&mut self, y: usize, x: usize, v: f32) {
        for c in 0..self.channels() {
            self.put(c, y, x, v);
        }
    }

    /// Fills the whole image with `v`.
    pub fn fill(&mut self, v: f32) {
        self.tensor.map_inplace(|_| v);
    }

    /// Fills the axis-aligned rectangle with corner `(y, x)` and size
    /// `h`×`w` (clipped to the image) in every channel.
    pub fn fill_rect(&mut self, y: usize, x: usize, h: usize, w: usize, v: f32) {
        let (ih, iw) = (self.height(), self.width());
        for yy in y..(y + h).min(ih) {
            for xx in x..(x + w).min(iw) {
                self.put_all(yy, xx, v);
            }
        }
    }

    /// Draws a line from `(y0, x0)` to `(y1, x1)` with the given stroke
    /// `thickness`, in every channel (Bresenham with a square brush).
    pub fn draw_line(&mut self, y0: i32, x0: i32, y1: i32, x1: i32, thickness: i32, v: f32) {
        let (mut y, mut x) = (y0, x0);
        let dy = (y1 - y0).abs();
        let dx = (x1 - x0).abs();
        let sy = if y0 < y1 { 1 } else { -1 };
        let sx = if x0 < x1 { 1 } else { -1 };
        let mut err = dx - dy;
        loop {
            self.stamp(y, x, thickness, v);
            if y == y1 && x == x1 {
                break;
            }
            let e2 = 2 * err;
            if e2 > -dy {
                err -= dy;
                x += sx;
            }
            if e2 < dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Draws a filled disk of the given `radius` centred at `(cy, cx)`, in
    /// every channel.
    pub fn draw_disk(&mut self, cy: i32, cx: i32, radius: i32, v: f32) {
        for y in (cy - radius)..=(cy + radius) {
            for x in (cx - radius)..=(cx + radius) {
                let (dy, dx) = (y - cy, x - cx);
                if dy * dy + dx * dx <= radius * radius {
                    self.stamp(y, x, 1, v);
                }
            }
        }
    }

    /// Stamps a `thickness`×`thickness` square brush at `(y, x)`, ignoring
    /// out-of-bounds pixels.
    fn stamp(&mut self, y: i32, x: i32, thickness: i32, v: f32) {
        let half = thickness / 2;
        for yy in (y - half)..=(y + half) {
            for xx in (x - half)..=(x + half) {
                if yy >= 0
                    && xx >= 0
                    && (yy as usize) < self.height()
                    && (xx as usize) < self.width()
                {
                    self.put_all(yy as usize, xx as usize, v);
                }
            }
        }
    }

    /// Adds `delta` to every pixel and clamps to `[0, 1]` — the paper's
    /// "lighting" transformation applied directly (used by dataset
    /// augmentation; the DeepXplore lighting *constraint* instead shapes the
    /// gradient, see `deepxplore::constraints`).
    pub fn adjust_brightness(&self, delta: f32) -> Self {
        Self { tensor: self.tensor.map(|v| (v + delta).clamp(0.0, 1.0)) }
    }

    /// Encodes as binary PGM (P5). Multi-channel images are converted to
    /// luminance by averaging channels.
    pub fn to_pgm(&self) -> Vec<u8> {
        let (h, w) = (self.height(), self.width());
        let mut out = format!("P5\n{w} {h}\n255\n").into_bytes();
        for y in 0..h {
            for x in 0..w {
                let mut v = 0.0;
                for c in 0..self.channels() {
                    v += self.get(c, y, x);
                }
                v /= self.channels() as f32;
                out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Encodes as binary PPM (P6). Grayscale images replicate their channel;
    /// images with ≥3 channels use the first three.
    pub fn to_ppm(&self) -> Vec<u8> {
        let (h, w) = (self.height(), self.width());
        let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
        for y in 0..h {
            for x in 0..w {
                for c in 0..3 {
                    let ch = if self.channels() >= 3 { c } else { 0 };
                    let v = self.get(ch, y, x);
                    out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
                }
            }
        }
        out
    }

    /// Writes the image to `path` as PGM (single channel) or PPM (colour),
    /// chosen by channel count.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let bytes = if self.channels() >= 3 { self.to_ppm() } else { self.to_pgm() };
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes)
    }

    /// Decodes a binary PGM (P5) or PPM (P6) image into a 1- or 3-channel
    /// image with values in `[0, 1]`.
    ///
    /// Supports the subset this crate writes: binary encodings with a
    /// `maxval` of at most 255 and `#` comment lines in the header.
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if bytes.len() < 2 {
            return Err(bad("truncated netpbm header"));
        }
        let channels = match &bytes[..2] {
            b"P5" => 1,
            b"P6" => 3,
            _ => return Err(bad("not a binary PGM/PPM file")),
        };
        // Parse three whitespace-separated header integers after the magic,
        // skipping comment lines.
        let mut pos = 2;
        let mut fields = [0usize; 3];
        for field in &mut fields {
            // Skip whitespace and comments.
            loop {
                while pos < bytes.len() && bytes[pos].is_ascii_whitespace() {
                    pos += 1;
                }
                if pos < bytes.len() && bytes[pos] == b'#' {
                    while pos < bytes.len() && bytes[pos] != b'\n' {
                        pos += 1;
                    }
                } else {
                    break;
                }
            }
            let start = pos;
            while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                pos += 1;
            }
            if start == pos {
                return Err(bad("malformed netpbm header"));
            }
            *field = std::str::from_utf8(&bytes[start..pos])
                .map_err(|_| bad("malformed netpbm header"))?
                .parse()
                .map_err(|_| bad("malformed netpbm header"))?;
        }
        let (w, h, maxval) = (fields[0], fields[1], fields[2]);
        if maxval == 0 || maxval > 255 {
            return Err(bad("unsupported netpbm maxval"));
        }
        // Exactly one whitespace byte separates header and raster.
        if pos >= bytes.len() || !bytes[pos].is_ascii_whitespace() {
            return Err(bad("missing raster separator"));
        }
        pos += 1;
        let need = w * h * channels;
        if bytes.len() < pos + need {
            return Err(bad("truncated raster data"));
        }
        let raster = &bytes[pos..pos + need];
        let mut img = Image::new(channels, h, w);
        for y in 0..h {
            for x in 0..w {
                for c in 0..channels {
                    let v = raster[(y * w + x) * channels + c] as f32 / maxval as f32;
                    img.put(c, y, x, v);
                }
            }
        }
        Ok(img)
    }

    /// Loads a PGM/PPM image from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::decode(&std::fs::read(path)?)
    }

    /// Renders the (luminance of the) image as ASCII art, darker pixels as
    /// denser glyphs — handy in terminal demos and failing-test output.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut s = String::with_capacity((self.width() + 1) * self.height());
        for y in 0..self.height() {
            for x in 0..self.width() {
                let mut v = 0.0;
                for c in 0..self.channels() {
                    v += self.get(c, y, x);
                }
                v /= self.channels() as f32;
                let idx = (v.clamp(0.0, 1.0) * (RAMP.len() - 1) as f32).round() as usize;
                s.push(RAMP[idx] as char);
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_dims() {
        let img = Image::new(3, 4, 5);
        assert_eq!(img.channels(), 3);
        assert_eq!(img.height(), 4);
        assert_eq!(img.width(), 5);
        assert_eq!(img.tensor().shape(), &[3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "images are [C, H, W]")]
    fn from_tensor_rejects_wrong_rank() {
        Image::from_tensor(Tensor::zeros(&[4, 4]));
    }

    #[test]
    fn pixel_round_trip() {
        let mut img = Image::new(1, 3, 3);
        img.put(0, 1, 2, 0.7);
        assert_eq!(img.get(0, 1, 2), 0.7);
    }

    #[test]
    fn fill_rect_clips() {
        let mut img = Image::new(1, 4, 4);
        img.fill_rect(2, 2, 10, 10, 1.0);
        assert_eq!(img.get(0, 3, 3), 1.0);
        assert_eq!(img.get(0, 1, 1), 0.0);
        let lit = img.tensor().data().iter().filter(|&&v| v == 1.0).count();
        assert_eq!(lit, 4);
    }

    #[test]
    fn line_endpoints_are_drawn() {
        let mut img = Image::new(1, 8, 8);
        img.draw_line(0, 0, 7, 7, 1, 1.0);
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(0, 7, 7), 1.0);
        assert_eq!(img.get(0, 3, 3), 1.0);
    }

    #[test]
    fn line_ignores_out_of_bounds() {
        let mut img = Image::new(1, 4, 4);
        img.draw_line(-2, -2, 6, 6, 3, 1.0);
        assert_eq!(img.get(0, 0, 0), 1.0);
    }

    #[test]
    fn disk_is_roughly_round() {
        let mut img = Image::new(1, 9, 9);
        img.draw_disk(4, 4, 3, 1.0);
        assert_eq!(img.get(0, 4, 4), 1.0);
        assert_eq!(img.get(0, 4, 7), 1.0);
        assert_eq!(img.get(0, 0, 0), 0.0);
    }

    #[test]
    fn brightness_clamps() {
        let mut img = Image::new(1, 1, 2);
        img.put(0, 0, 0, 0.9);
        img.put(0, 0, 1, 0.1);
        let up = img.adjust_brightness(0.3);
        assert_eq!(up.get(0, 0, 0), 1.0);
        assert!((up.get(0, 0, 1) - 0.4).abs() < 1e-6);
        let down = img.adjust_brightness(-0.3);
        assert_eq!(down.get(0, 0, 1), 0.0);
    }

    #[test]
    fn pgm_header_and_size() {
        let img = Image::new(1, 2, 3);
        let pgm = img.to_pgm();
        assert!(pgm.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(pgm.len(), b"P5\n3 2\n255\n".len() + 6);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(3, 2, 2);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n2 2\n255\n".len() + 12);
    }

    #[test]
    fn ascii_dimensions() {
        let img = Image::new(1, 3, 5);
        let art = img.to_ascii();
        assert_eq!(art.lines().count(), 3);
        assert!(art.lines().all(|l| l.len() == 5));
    }

    #[test]
    fn save_writes_file() {
        let dir = std::env::temp_dir().join("dx_tensor_image_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        Image::new(1, 2, 2).save(&path).unwrap();
        assert!(path.exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pgm_encode_decode_round_trip() {
        let mut img = Image::new(1, 3, 4);
        for y in 0..3 {
            for x in 0..4 {
                img.put(0, y, x, (y * 4 + x) as f32 / 11.0);
            }
        }
        let decoded = Image::decode(&img.to_pgm()).unwrap();
        assert_eq!(decoded.channels(), 1);
        assert_eq!((decoded.height(), decoded.width()), (3, 4));
        for y in 0..3 {
            for x in 0..4 {
                assert!(
                    (decoded.get(0, y, x) - img.get(0, y, x)).abs() <= 0.5 / 255.0,
                    "pixel ({y},{x}) drifted beyond quantization"
                );
            }
        }
    }

    #[test]
    fn ppm_encode_decode_round_trip() {
        let mut img = Image::new(3, 2, 2);
        img.put(0, 0, 0, 1.0);
        img.put(1, 1, 1, 0.5);
        img.put(2, 0, 1, 0.25);
        let decoded = Image::decode(&img.to_ppm()).unwrap();
        assert_eq!(decoded.channels(), 3);
        assert!((decoded.get(0, 0, 0) - 1.0).abs() < 1.0 / 255.0);
        assert!((decoded.get(1, 1, 1) - 0.5).abs() < 1.0 / 255.0);
        assert!((decoded.get(2, 0, 1) - 0.25).abs() < 1.0 / 255.0);
    }

    #[test]
    fn decode_handles_comments() {
        let mut bytes = b"P5\n# a comment\n2 1\n255\n".to_vec();
        bytes.extend_from_slice(&[0, 255]);
        let img = Image::decode(&bytes).unwrap();
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert_eq!(img.get(0, 0, 1), 1.0);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Image::decode(b"JPEG nonsense").is_err());
        assert!(Image::decode(b"P5\n2 2\n255\n\x00").is_err()); // Truncated.
        assert!(Image::decode(b"P5\n2 2\n70000\n").is_err()); // Bad maxval.
    }

    #[test]
    fn file_load_round_trip() {
        let dir = std::env::temp_dir().join("dx_tensor_image_load");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.pgm");
        let mut img = Image::new(1, 4, 4);
        img.draw_disk(2, 2, 1, 0.8);
        img.save(&path).unwrap();
        let loaded = Image::load(&path).unwrap();
        assert_eq!((loaded.height(), loaded.width()), (4, 4));
        assert!((loaded.get(0, 2, 2) - 0.8).abs() < 1.0 / 255.0);
        std::fs::remove_file(&path).unwrap();
    }
}
