//! Reusable buffer arena for intermediate activations and gradients.
//!
//! The campaign hot loop historically allocated (and dropped) every
//! intermediate activation, mask, and gradient tensor on every iterate of
//! every seed. [`Workspace`] replaces that churn with a free-list of
//! `Vec<f32>` buffers: a finished pass returns its buffers to the pool and
//! the next iterate draws the same allocations back out. This is the CPU
//! analogue of a tile-pool in accelerator runtimes — buffers are recycled
//! by capacity, not identity, so steady-state iterates allocate nothing.
//!
//! Buffers handed out by [`Workspace::take`] are always zero-filled to the
//! requested length, so kernels that accumulate (`matmul_acc`) can use them
//! directly and bit-compatibility with freshly-allocated `Tensor::zeros`
//! buffers is preserved.

use crate::Tensor;

/// Upper bound on pooled buffers; beyond this, returned buffers are freed.
///
/// A forward+backward pass over the deepest zoo model holds ~2 buffers per
/// layer across a handful of models, so 64 covers the steady state while
/// bounding worst-case retention.
const MAX_POOLED: usize = 64;

/// A free-list arena of reusable `f32` buffers.
///
/// Not thread-safe by design: each campaign worker owns one workspace, the
/// same way each worker owns its RNG lane.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes an empty buffer with at least the given capacity.
    ///
    /// Reuses the pooled buffer whose capacity fits most tightly (best-fit
    /// keeps big buffers available for big requests); allocates only when no
    /// pooled buffer is large enough. The buffer comes back cleared so the
    /// caller can `extend`/`push` without touching stale contents.
    pub fn take_empty(&mut self, capacity: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            if buf.capacity() >= capacity
                && best.is_none_or(|b| buf.capacity() < self.pool[b].capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf
            }
            None => Vec::with_capacity(capacity),
        }
    }

    /// Takes a zero-filled buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_empty(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Takes a buffer holding a copy of `src` (single write pass, no
    /// intermediate zero fill).
    pub fn take_copy(&mut self, src: &[f32]) -> Vec<f32> {
        let mut buf = self.take_empty(src.len());
        buf.extend_from_slice(src);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.pool.len() < MAX_POOLED {
            self.pool.push(buf);
        }
    }

    /// Takes a zero-filled tensor of the given shape, backed by a pooled buffer.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        Tensor::from_vec(self.take(len), shape)
    }

    /// Returns a tensor's backing buffer to the pool.
    pub fn put_tensor(&mut self, t: Tensor) {
        self.put(t.into_vec());
    }

    /// Number of buffers currently pooled (for tests and diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_buffers() {
        let mut ws = Workspace::new();
        let buf = ws.take(100);
        let ptr = buf.as_ptr();
        ws.put(buf);
        assert_eq!(ws.pooled(), 1);
        let buf2 = ws.take(80);
        assert_eq!(buf2.as_ptr(), ptr, "smaller request should reuse the pooled buffer");
        assert_eq!(buf2.len(), 80);
        assert!(buf2.iter().all(|&v| v == 0.0));
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn take_zeroes_dirty_buffers() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(4);
        buf.fill(7.0);
        ws.put(buf);
        let buf2 = ws.take(4);
        assert!(buf2.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn best_fit_prefers_tightest_capacity() {
        let mut ws = Workspace::new();
        ws.put(vec![0.0; 1000]);
        ws.put(vec![0.0; 10]);
        let buf = ws.take(8);
        assert!(buf.capacity() < 1000, "should pick the 10-capacity buffer");
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn take_copy_reuses_and_copies() {
        let mut ws = Workspace::new();
        ws.put(vec![9.0; 16]);
        let buf = ws.take_copy(&[1.0, 2.0, 3.0]);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn tensor_round_trip() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        ws.put_tensor(t);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..200 {
            ws.put(vec![0.0; 8]);
        }
        assert!(ws.pooled() <= 64);
    }
}
