//! Property-based tests over the dataset generators: every sample must be
//! domain-valid for *any* configuration the generators accept.

use dx_datasets::{drebin, driving, imagenet, mnist, pdf, pollute_labels};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mnist_samples_valid(seed in 0u64..1000, n in 4usize..24) {
        let ds = mnist::generate(&mnist::MnistConfig { n_train: n, n_test: 4, seed, side: 28 });
        prop_assert_eq!(ds.train_x.shape(), &[n, 1, 28, 28]);
        prop_assert!(ds.train_x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(ds.train_labels.classes().iter().all(|&l| l < 10));
        prop_assert!(!ds.train_x.has_non_finite());
    }

    #[test]
    fn imagenet_samples_valid(seed in 0u64..1000, n in 4usize..16) {
        let ds = imagenet::generate(&imagenet::ImagenetConfig { n_train: n, n_test: 4, seed, side: 32 });
        prop_assert_eq!(ds.train_x.shape(), &[n, 3, 32, 32]);
        prop_assert!(ds.train_x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(ds.train_labels.classes().iter().all(|&l| l < 10));
    }

    #[test]
    fn driving_targets_in_range(seed in 0u64..1000, n in 4usize..16) {
        let ds = driving::generate(&driving::DrivingConfig {
            n_train: n, n_test: 4, seed, height: 32, width: 64,
        });
        prop_assert!(ds.train_x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(ds
            .train_labels
            .values()
            .data()
            .iter()
            .all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn pdf_features_integral(seed in 0u64..1000, n in 4usize..16) {
        let ds = pdf::generate(&pdf::PdfConfig {
            n_train: n, n_test: 4, seed, malicious_fraction: 0.5, label_noise: 0.04,
        });
        let scale = ds.feature_scale.as_ref().unwrap();
        for i in 0..n {
            for f in 0..pdf::NUM_FEATURES {
                let raw = ds.train_x.at(&[i, f]) * scale.data()[f];
                prop_assert!((raw - raw.round()).abs() < 1e-3);
                prop_assert!(raw >= 0.0);
            }
        }
    }

    #[test]
    fn drebin_binary_and_masked(seed in 0u64..1000, width in 1usize..4) {
        let width = width * 400;
        let ds = drebin::generate(&drebin::DrebinConfig {
            n_train: 8, n_test: 4, seed, width, malicious_fraction: 0.5, label_noise: 0.04,
        });
        prop_assert!(ds.train_x.data().iter().all(|&v| v == 0.0 || v == 1.0));
        let mask = ds.manifest_mask.as_ref().unwrap();
        prop_assert_eq!(mask.len(), width);
        prop_assert_eq!(ds.feature_names.len(), width);
    }

    #[test]
    fn pollution_bounds(fraction in 0.0f32..1.0, seed in 0u64..1000) {
        let labels: Vec<usize> = (0..60).map(|i| i % 10).collect();
        let (polluted, flipped) = pollute_labels(&labels, 9, 1, fraction, seed);
        // Never flips more than the population of nines.
        let nines = labels.iter().filter(|&&l| l == 9).count();
        prop_assert!(flipped.len() <= nines);
        // Flipped labels are exactly the difference between the vectors.
        let diff: Vec<usize> = (0..60).filter(|&i| polluted[i] != labels[i]).collect();
        prop_assert_eq!(diff, flipped);
    }
}
