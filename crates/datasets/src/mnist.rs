//! Procedurally rendered hand-written-style digits (MNIST stand-in).
//!
//! Each digit class is a set of stroke templates in a unit box, rendered
//! through a randomized affine transform (translation, scale, rotation,
//! shear), stroke-thickness jitter, a box blur and pixel noise. The result
//! is a 10-class, 1×28×28 dataset on which the paper's LeNet variants train
//! to high accuracy yet — like on real MNIST — disagree on corner cases.

use dx_tensor::{rng, Image, Tensor};

use crate::common::{Dataset, Labels};

/// Configuration for the MNIST-like generator.
#[derive(Clone, Copy, Debug)]
pub struct MnistConfig {
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Master seed.
    pub seed: u64,
    /// Image side (the paper uses 28).
    pub side: usize,
}

impl Default for MnistConfig {
    fn default() -> Self {
        Self { n_train: 4000, n_test: 800, seed: 17, side: 28 }
    }
}

type Polyline = Vec<(f32, f32)>;

/// Samples `n` points along a quadratic Bézier curve.
fn bezier(p0: (f32, f32), p1: (f32, f32), p2: (f32, f32), n: usize) -> Polyline {
    (0..=n)
        .map(|i| {
            let t = i as f32 / n as f32;
            let u = 1.0 - t;
            (
                u * u * p0.0 + 2.0 * u * t * p1.0 + t * t * p2.0,
                u * u * p0.1 + 2.0 * u * t * p1.1 + t * t * p2.1,
            )
        })
        .collect()
}

/// Samples `n` points along a full ellipse.
fn ellipse(cx: f32, cy: f32, rx: f32, ry: f32, n: usize) -> Polyline {
    (0..=n)
        .map(|i| {
            let a = std::f32::consts::TAU * i as f32 / n as f32;
            (cx + rx * a.cos(), cy + ry * a.sin())
        })
        .collect()
}

/// Stroke templates per digit in unit coordinates `(x, y)`, y growing down.
fn digit_strokes(digit: usize) -> Vec<Polyline> {
    match digit {
        0 => vec![ellipse(0.5, 0.5, 0.28, 0.4, 24)],
        1 => vec![
            vec![(0.35, 0.25), (0.55, 0.08)],
            vec![(0.55, 0.08), (0.55, 0.9)],
            vec![(0.35, 0.9), (0.72, 0.9)],
        ],
        2 => vec![
            bezier((0.22, 0.3), (0.5, -0.08), (0.78, 0.32), 12),
            bezier((0.78, 0.32), (0.72, 0.6), (0.22, 0.9), 12),
            vec![(0.22, 0.9), (0.8, 0.9)],
        ],
        3 => vec![
            bezier((0.25, 0.12), (0.85, 0.1), (0.5, 0.48), 12),
            bezier((0.5, 0.48), (0.95, 0.65), (0.25, 0.88), 12),
        ],
        4 => vec![
            vec![(0.68, 0.08), (0.68, 0.92)],
            vec![(0.68, 0.08), (0.22, 0.62)],
            vec![(0.22, 0.62), (0.85, 0.62)],
        ],
        5 => vec![
            vec![(0.75, 0.08), (0.28, 0.08)],
            vec![(0.28, 0.08), (0.27, 0.45)],
            bezier((0.27, 0.45), (0.95, 0.5), (0.45, 0.9), 14),
            vec![(0.45, 0.9), (0.25, 0.82)],
        ],
        6 => vec![
            bezier((0.7, 0.08), (0.25, 0.3), (0.3, 0.62), 12),
            ellipse(0.5, 0.68, 0.22, 0.22, 20),
        ],
        7 => vec![vec![(0.2, 0.1), (0.8, 0.1)], vec![(0.8, 0.1), (0.42, 0.92)]],
        8 => vec![ellipse(0.5, 0.3, 0.2, 0.2, 20), ellipse(0.5, 0.7, 0.24, 0.22, 20)],
        9 => vec![
            ellipse(0.5, 0.32, 0.22, 0.22, 20),
            bezier((0.72, 0.34), (0.74, 0.7), (0.55, 0.92), 10),
        ],
        _ => panic!("digit {digit} out of range"),
    }
}

/// 3×3 box blur, edge pixels average over the in-bounds neighbourhood.
fn box_blur(img: &Image) -> Image {
    let (h, w) = (img.height(), img.width());
    let mut out = Image::new(1, h, w);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            let mut cnt = 0.0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let (yy, xx) = (y as i32 + dy, x as i32 + dx);
                    if yy >= 0 && xx >= 0 && (yy as usize) < h && (xx as usize) < w {
                        acc += img.get(0, yy as usize, xx as usize);
                        cnt += 1.0;
                    }
                }
            }
            out.put(0, y, x, acc / cnt);
        }
    }
    out
}

/// Renders one digit sample.
pub fn render_digit(digit: usize, side: usize, r: &mut rng::Rng) -> Tensor {
    use rand::Rng as _;
    let mut img = Image::new(1, side, side);
    let margin = side as f32 * 0.14;
    let span = side as f32 - 2.0 * margin;
    let scale = span * r.gen_range(0.85..1.1f32);
    let angle: f32 = r.gen_range(-0.18..0.18f32);
    let shear: f32 = r.gen_range(-0.15..0.15f32);
    let (tx, ty) = (margin + r.gen_range(-1.5..1.5f32), margin + r.gen_range(-1.5..1.5f32));
    let ink = r.gen_range(0.75..1.0f32);
    let thickness = if r.gen_range(0.0..1.0f32) < 0.6 { 2 } else { 1 };
    let (sin, cos) = angle.sin_cos();
    let map = |(x, y): (f32, f32)| -> (i32, i32) {
        let (cx, cy) = (x - 0.5, y - 0.5);
        let xr = cx * cos - cy * sin + shear * cy;
        let yr = cx * sin + cy * cos;
        ((ty + (yr + 0.5) * scale).round() as i32, (tx + (xr + 0.5) * scale).round() as i32)
    };
    for stroke in digit_strokes(digit) {
        for pair in stroke.windows(2) {
            let (y0, x0) = map(pair[0]);
            let (y1, x1) = map(pair[1]);
            img.draw_line(y0, x0, y1, x1, thickness, ink);
        }
    }
    let img = box_blur(&img);
    let mut t = img.into_tensor();
    for v in t.data_mut() {
        *v = (*v + rng::normal_one(r) * 0.03).clamp(0.0, 1.0);
    }
    t
}

fn generate_split(n: usize, side: usize, r: &mut rng::Rng) -> (Tensor, Vec<usize>) {
    use rand::Rng as _;
    let mut data = Vec::with_capacity(n * side * side);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let digit = r.gen_range(0..10usize);
        let img = render_digit(digit, side, r);
        data.extend_from_slice(img.data());
        labels.push(digit);
    }
    (Tensor::from_vec(data, &[n, 1, side, side]), labels)
}

/// Generates the MNIST-like dataset.
pub fn generate(cfg: &MnistConfig) -> Dataset {
    let mut r = rng::rng(cfg.seed);
    let (train_x, train_l) = generate_split(cfg.n_train, cfg.side, &mut r);
    let (test_x, test_l) = generate_split(cfg.n_test, cfg.side, &mut r);
    Dataset {
        name: "mnist".into(),
        train_x,
        train_labels: Labels::Classes(train_l),
        test_x,
        test_labels: Labels::Classes(test_l),
        class_names: (0..10).map(|d| d.to_string()).collect(),
        feature_names: Vec::new(),
        feature_scale: None,
        manifest_mask: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let ds = generate(&MnistConfig { n_train: 20, n_test: 10, seed: 0, side: 28 });
        assert_eq!(ds.train_x.shape(), &[20, 1, 28, 28]);
        assert_eq!(ds.test_x.shape(), &[10, 1, 28, 28]);
        assert_eq!(ds.train_labels.len(), 20);
        assert!(ds.train_x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(ds.class_names.len(), 10);
    }

    #[test]
    fn digits_have_ink() {
        let mut r = rng::rng(1);
        for d in 0..10 {
            let img = render_digit(d, 28, &mut r);
            let ink: f32 = img.sum();
            assert!(ink > 5.0, "digit {d} rendered almost empty (ink {ink})");
        }
    }

    #[test]
    fn different_digits_look_different() {
        // Render each class with the same nuisance draw and check pairwise
        // distances are substantial.
        let renders: Vec<Tensor> = (0..10)
            .map(|d| {
                let mut r = rng::rng(99);
                render_digit(d, 28, &mut r)
            })
            .collect();
        for a in 0..10 {
            for b in (a + 1)..10 {
                let dist = dx_tensor::metrics::l1_distance(&renders[a], &renders[b]);
                assert!(dist > 3.0, "digits {a} and {b} nearly identical ({dist})");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = MnistConfig { n_train: 8, n_test: 4, seed: 5, side: 28 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train_x, b.train_x);
        assert_eq!(a.train_labels.classes(), b.train_labels.classes());
    }

    #[test]
    fn all_classes_present_in_large_sample() {
        let ds = generate(&MnistConfig { n_train: 500, n_test: 10, seed: 2, side: 28 });
        let mut seen = [false; 10];
        for &l in ds.train_labels.classes() {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "some class missing: {seen:?}");
    }

    #[test]
    fn small_side_renders_without_panic() {
        let mut r = rng::rng(3);
        let img = render_digit(8, 14, &mut r);
        assert_eq!(img.shape(), &[1, 14, 14]);
    }
}
