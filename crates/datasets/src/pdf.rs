//! Synthetic PDF malware features (Contagio/VirusTotal stand-in).
//!
//! The paper's PDF models are plain MLPs over the 135 static document
//! features of PDFrate (Smutz & Stavrou 2012): object/keyword counts,
//! metadata string lengths, byte offsets and structural ratios. We model
//! benign and malicious documents as two populations over the same 135
//! features — a subset strongly discriminative (malicious PDFs are small,
//! carry JavaScript actions, few fonts/pages), the rest overlapping noise —
//! and emit *normalized* model inputs together with the per-feature scale
//! needed to recover raw integer feature values, which is what the
//! integer-step domain constraint (§6.2, Table 4) operates on.

use dx_tensor::{rng, Tensor};
use rand::Rng as _;

use crate::common::{Dataset, Labels};

/// Number of static features (as in PDFrate).
pub const NUM_FEATURES: usize = 135;

/// Configuration for the PDF-feature generator.
#[derive(Clone, Copy, Debug)]
pub struct PdfConfig {
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Master seed.
    pub seed: u64,
    /// Fraction of samples that are malicious.
    pub malicious_fraction: f32,
    /// Probability that a sample's label is flipped — real PDF corpora are
    /// labelled by imperfect AV aggregation, and the paper's detectors top
    /// out near 96%; label noise reproduces that ceiling (and the genuinely
    /// ambiguous boundary regions differential testing feeds on).
    pub label_noise: f32,
}

impl Default for PdfConfig {
    fn default() -> Self {
        Self { n_train: 4000, n_test: 1000, seed: 41, malicious_fraction: 0.5, label_noise: 0.04 }
    }
}

/// Per-feature generative profile.
#[derive(Clone, Debug)]
struct FeatureProfile {
    name: String,
    benign_mean: f32,
    malicious_mean: f32,
    std: f32,
    max: f32,
}

/// Builds the 135 feature profiles, including the specific features the
/// paper's Table 4 reports (`size`, `count_action`, `count_endobj`,
/// `count_font`, `author_num`).
fn feature_profiles() -> Vec<FeatureProfile> {
    fn push_to(v: &mut Vec<FeatureProfile>, name: &str, b: f32, m: f32, std: f32, max: f32) {
        v.push(FeatureProfile {
            name: name.to_string(),
            benign_mean: b,
            malicious_mean: m,
            std,
            max,
        });
    }
    let mut profiles = Vec::with_capacity(NUM_FEATURES);
    // The closure borrows `profiles` for the fixed block only; the loop
    // after it uses `push_to` directly.
    {
        let mut push = |name: &str, b: f32, m: f32, std: f32, max: f32| {
            push_to(&mut profiles, name, b, m, std, max)
        };
        // Headline features from Table 4. The populations overlap substantially
        // (large stds relative to the mean gap) so trained detectors land near
        // the paper's 96% accuracy rather than saturating — saturated models
        // have near-identical boundaries and starve differential testing.
        push("size", 60.0, 14.0, 40.0, 400.0); // File size in KB: malware is tiny.
        push("count_action", 0.6, 5.0, 3.5, 60.0); // Launch/OpenAction entries.
        push("count_endobj", 40.0, 14.0, 24.0, 300.0);
        push("count_font", 6.0, 1.5, 4.0, 60.0);
        push("author_num", 8.0, 3.0, 5.0, 40.0); // Author string length.
        push("count_javascript", 0.3, 2.5, 2.0, 30.0);
        push("count_js", 0.3, 2.5, 2.0, 30.0);
        push("count_page", 9.0, 2.5, 6.0, 120.0);
        push("count_stream", 22.0, 9.0, 13.0, 200.0);
        push("count_obj", 42.0, 15.0, 24.0, 300.0);
        push("count_trailer", 1.2, 1.0, 0.8, 10.0);
        push("count_xref", 1.5, 1.0, 0.9, 10.0);
        push("count_startxref", 1.4, 1.1, 0.8, 10.0);
        push("count_eof", 1.3, 1.1, 0.8, 10.0);
        push("count_image_small", 3.0, 1.0, 2.8, 40.0);
        push("count_image_med", 2.0, 0.6, 2.0, 30.0);
        push("count_image_large", 0.8, 0.3, 1.0, 20.0);
        push("producer_len", 14.0, 7.0, 9.0, 80.0);
        push("title_num", 5.0, 2.0, 4.0, 40.0);
        push("creator_len", 10.0, 5.0, 7.0, 60.0);
    }
    // The remaining features are weakly informative structural counters.
    let groups = ["count_box", "count_objstm", "len_stream", "pos_box", "ratio_size"];
    let mut r = rng::rng(0xDF0D);
    while profiles.len() < NUM_FEATURES {
        let i = profiles.len();
        let group = groups[i % groups.len()];
        let base = r.gen_range(1.0..20.0f32);
        let delta = r.gen_range(-2.0..2.0f32);
        push_to(
            &mut profiles,
            &format!("{group}_{i:03}"),
            base,
            (base + delta).max(0.0),
            r.gen_range(1.0..5.0f32),
            base * 8.0 + 40.0,
        );
    }
    profiles
}

/// Generates the PDF dataset.
///
/// `train_x`/`test_x` hold *normalized* features (`raw / scale`, clamped to
/// `[0, 1]`); `feature_scale` holds the per-feature scale, so
/// `raw = round(normalized · scale)` recovers integer feature values.
pub fn generate(cfg: &PdfConfig) -> Dataset {
    let profiles = feature_profiles();
    let scale: Vec<f32> = profiles.iter().map(|p| p.max).collect();
    let mut r = rng::rng(cfg.seed);
    let mut make_split = |n: usize| -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * NUM_FEATURES);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let malicious = r.gen_range(0.0..1.0f32) < cfg.malicious_fraction;
            let label = if r.gen_range(0.0..1.0f32) < cfg.label_noise {
                usize::from(!malicious)
            } else {
                usize::from(malicious)
            };
            labels.push(label);
            for p in &profiles {
                let mean = if malicious { p.malicious_mean } else { p.benign_mean };
                let raw = (mean + rng::normal_one(&mut r) * p.std).round().clamp(0.0, p.max);
                data.push(raw / p.max);
            }
        }
        (Tensor::from_vec(data, &[n, NUM_FEATURES]), labels)
    };
    let (train_x, train_l) = make_split(cfg.n_train);
    let (test_x, test_l) = make_split(cfg.n_test);
    Dataset {
        name: "pdf".into(),
        train_x,
        train_labels: Labels::Classes(train_l),
        test_x,
        test_labels: Labels::Classes(test_l),
        class_names: vec!["benign".into(), "malicious".into()],
        feature_names: profiles.into_iter().map(|p| p.name).collect(),
        feature_scale: Some(Tensor::from_vec(scale, &[NUM_FEATURES])),
        manifest_mask: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_count_and_headliners() {
        let profiles = feature_profiles();
        assert_eq!(profiles.len(), NUM_FEATURES);
        let names: Vec<&str> = profiles.iter().map(|p| p.name.as_str()).collect();
        for required in ["size", "count_action", "count_endobj", "count_font", "author_num"] {
            assert!(names.contains(&required), "missing feature {required}");
        }
        // Names are unique.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), NUM_FEATURES);
    }

    #[test]
    fn shapes_and_normalization() {
        let ds = generate(&PdfConfig { n_train: 50, n_test: 20, seed: 1, ..Default::default() });
        assert_eq!(ds.train_x.shape(), &[50, NUM_FEATURES]);
        assert!(ds.train_x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(ds.feature_names.len(), NUM_FEATURES);
        assert_eq!(ds.feature_scale.as_ref().unwrap().len(), NUM_FEATURES);
    }

    #[test]
    fn raw_values_are_integers() {
        let ds = generate(&PdfConfig { n_train: 10, n_test: 5, seed: 2, ..Default::default() });
        let scale = ds.feature_scale.as_ref().unwrap();
        for i in 0..10 {
            for f in 0..NUM_FEATURES {
                let raw = ds.train_x.at(&[i, f]) * scale.data()[f];
                assert!(
                    (raw - raw.round()).abs() < 1e-3,
                    "feature {f} of sample {i} is not integral: {raw}"
                );
            }
        }
    }

    #[test]
    fn populations_separate_on_headline_features() {
        let ds = generate(&PdfConfig { n_train: 400, n_test: 10, seed: 3, ..Default::default() });
        let labels = ds.train_labels.classes();
        let size_idx = ds.feature_names.iter().position(|n| n == "size").unwrap();
        let mut sums = [0.0f32; 2];
        let mut counts = [0f32; 2];
        for (i, &l) in labels.iter().enumerate() {
            sums[l] += ds.train_x.at(&[i, size_idx]);
            counts[l] += 1.0;
        }
        let benign_mean = sums[0] / counts[0];
        let malicious_mean = sums[1] / counts[1];
        assert!(
            benign_mean > malicious_mean * 2.0,
            "size should separate populations: benign {benign_mean}, malicious {malicious_mean}"
        );
    }

    #[test]
    fn both_classes_generated() {
        let ds = generate(&PdfConfig { n_train: 100, n_test: 10, seed: 4, ..Default::default() });
        let labels = ds.train_labels.classes();
        assert!(labels.contains(&0));
        assert!(labels.contains(&1));
    }

    #[test]
    fn determinism() {
        let cfg = PdfConfig { n_train: 12, n_test: 4, seed: 5, ..Default::default() };
        assert_eq!(generate(&cfg).train_x, generate(&cfg).train_x);
    }
}
