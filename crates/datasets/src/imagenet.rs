//! Procedural colour images in ten texture/shape classes (ImageNet stand-in).
//!
//! The paper's ImageNet experiments need large multi-layer CNNs over RGB
//! inputs that were trained on a many-class natural-image task. At laptop
//! scale we substitute ten procedurally generated visual concepts —
//! stripes, checkers, disks, rings, triangles, crosses, gradients, blobs and
//! nested frames — with randomized palettes, geometry and noise. They carry
//! enough intra-class variation that three differently shaped CNNs learn
//! similar-but-different decision boundaries, which is all the differential
//! oracle requires.

use dx_tensor::{rng, Image, Tensor};
use rand::Rng as _;

use crate::common::{Dataset, Labels};

/// Configuration for the ImageNet-like generator.
#[derive(Clone, Copy, Debug)]
pub struct ImagenetConfig {
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Master seed.
    pub seed: u64,
    /// Image side (3 channels, `side`×`side`).
    pub side: usize,
}

impl Default for ImagenetConfig {
    fn default() -> Self {
        Self { n_train: 2500, n_test: 500, seed: 23, side: 32 }
    }
}

/// The ten class names.
pub const CLASS_NAMES: [&str; 10] = [
    "stripes_h",
    "stripes_v",
    "checker",
    "disk",
    "ring",
    "triangle",
    "cross",
    "gradient",
    "blobs",
    "frames",
];

fn random_color(r: &mut rng::Rng) -> [f32; 3] {
    [r.gen_range(0.1..1.0f32), r.gen_range(0.1..1.0f32), r.gen_range(0.1..1.0f32)]
}

fn put_rgb(img: &mut Image, y: usize, x: usize, c: [f32; 3]) {
    img.put(0, y, x, c[0]);
    img.put(1, y, x, c[1]);
    img.put(2, y, x, c[2]);
}

fn fill_bg(img: &mut Image, c: [f32; 3]) {
    for y in 0..img.height() {
        for x in 0..img.width() {
            put_rgb(img, y, x, c);
        }
    }
}

/// Renders one sample of the given class.
pub fn render_class(class: usize, side: usize, r: &mut rng::Rng) -> Tensor {
    let mut img = Image::new(3, side, side);
    let bg = random_color(r);
    // Resample the foreground until it contrasts with the background, so
    // every pattern is actually visible.
    let fg = loop {
        let c = random_color(r);
        let dist: f32 = c.iter().zip(bg.iter()).map(|(a, b)| (a - b).abs()).sum();
        if dist > 0.6 {
            break c;
        }
    };
    fill_bg(&mut img, bg);
    let s = side as f32;
    match class {
        0 | 1 => {
            // Horizontal / vertical stripes.
            let period = r.gen_range(3..7usize);
            let phase = r.gen_range(0..period);
            for y in 0..side {
                for x in 0..side {
                    let k = if class == 0 { y } else { x };
                    if (k + phase) / period % 2 == 0 {
                        put_rgb(&mut img, y, x, fg);
                    }
                }
            }
        }
        2 => {
            // Checkerboard.
            let period = r.gen_range(3..8usize);
            for y in 0..side {
                for x in 0..side {
                    if (y / period + x / period) % 2 == 0 {
                        put_rgb(&mut img, y, x, fg);
                    }
                }
            }
        }
        3 | 4 => {
            // Filled disk / ring.
            let cy = r.gen_range(0.35..0.65f32) * s;
            let cx = r.gen_range(0.35..0.65f32) * s;
            let radius = r.gen_range(0.2..0.38f32) * s;
            let inner = radius * r.gen_range(0.45..0.7f32);
            for y in 0..side {
                for x in 0..side {
                    let d = ((y as f32 - cy).powi(2) + (x as f32 - cx).powi(2)).sqrt();
                    let inside = if class == 3 { d <= radius } else { d <= radius && d >= inner };
                    if inside {
                        put_rgb(&mut img, y, x, fg);
                    }
                }
            }
        }
        5 => {
            // Filled triangle via barycentric sign tests.
            let pts: Vec<(f32, f32)> = (0..3)
                .map(|_| (r.gen_range(0.1..0.9f32) * s, r.gen_range(0.1..0.9f32) * s))
                .collect();
            let sign = |p: (f32, f32), a: (f32, f32), b: (f32, f32)| {
                (p.0 - b.0) * (a.1 - b.1) - (a.0 - b.0) * (p.1 - b.1)
            };
            for y in 0..side {
                for x in 0..side {
                    let p = (y as f32, x as f32);
                    let d1 = sign(p, pts[0], pts[1]);
                    let d2 = sign(p, pts[1], pts[2]);
                    let d3 = sign(p, pts[2], pts[0]);
                    let neg = d1 < 0.0 || d2 < 0.0 || d3 < 0.0;
                    let pos = d1 > 0.0 || d2 > 0.0 || d3 > 0.0;
                    if !(neg && pos) {
                        put_rgb(&mut img, y, x, fg);
                    }
                }
            }
        }
        6 => {
            // Cross: two overlapping bars.
            let cy = (r.gen_range(0.35..0.65f32) * s) as usize;
            let cx = (r.gen_range(0.35..0.65f32) * s) as usize;
            let arm = (r.gen_range(0.08..0.16f32) * s).max(1.0) as usize;
            for y in 0..side {
                for x in 0..side {
                    if y.abs_diff(cy) <= arm || x.abs_diff(cx) <= arm {
                        put_rgb(&mut img, y, x, fg);
                    }
                }
            }
        }
        7 => {
            // Linear gradient between the two colours in a random direction.
            let theta = r.gen_range(0.0..std::f32::consts::TAU);
            let (dy, dx) = theta.sin_cos();
            for y in 0..side {
                for x in 0..side {
                    let t = ((y as f32 * dy + x as f32 * dx) / (s * 1.42) + 0.5).clamp(0.0, 1.0);
                    let c = [
                        bg[0] + t * (fg[0] - bg[0]),
                        bg[1] + t * (fg[1] - bg[1]),
                        bg[2] + t * (fg[2] - bg[2]),
                    ];
                    put_rgb(&mut img, y, x, c);
                }
            }
        }
        8 => {
            // A handful of small blobs.
            let count = r.gen_range(5..9usize);
            for _ in 0..count {
                let cy = r.gen_range(0.1..0.9f32) * s;
                let cx = r.gen_range(0.1..0.9f32) * s;
                let radius = r.gen_range(0.05..0.12f32) * s;
                for y in 0..side {
                    for x in 0..side {
                        let d = ((y as f32 - cy).powi(2) + (x as f32 - cx).powi(2)).sqrt();
                        if d <= radius {
                            put_rgb(&mut img, y, x, fg);
                        }
                    }
                }
            }
        }
        9 => {
            // Concentric square frames.
            let gap = r.gen_range(3..6usize);
            let width = r.gen_range(1..3usize);
            for y in 0..side {
                for x in 0..side {
                    let ring = y.min(x).min(side - 1 - y).min(side - 1 - x);
                    if ring % gap < width {
                        put_rgb(&mut img, y, x, fg);
                    }
                }
            }
        }
        _ => panic!("class {class} out of range"),
    }
    let mut t = img.into_tensor();
    for v in t.data_mut() {
        *v = (*v + rng::normal_one(r) * 0.02).clamp(0.0, 1.0);
    }
    t
}

fn generate_split(n: usize, side: usize, r: &mut rng::Rng) -> (Tensor, Vec<usize>) {
    let mut data = Vec::with_capacity(n * 3 * side * side);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = r.gen_range(0..10usize);
        let img = render_class(class, side, r);
        data.extend_from_slice(img.data());
        labels.push(class);
    }
    (Tensor::from_vec(data, &[n, 3, side, side]), labels)
}

/// Generates the ImageNet-like dataset.
pub fn generate(cfg: &ImagenetConfig) -> Dataset {
    let mut r = rng::rng(cfg.seed);
    let (train_x, train_l) = generate_split(cfg.n_train, cfg.side, &mut r);
    let (test_x, test_l) = generate_split(cfg.n_test, cfg.side, &mut r);
    Dataset {
        name: "imagenet".into(),
        train_x,
        train_labels: Labels::Classes(train_l),
        test_x,
        test_labels: Labels::Classes(test_l),
        class_names: CLASS_NAMES.iter().map(|s| s.to_string()).collect(),
        feature_names: Vec::new(),
        feature_scale: None,
        manifest_mask: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let ds = generate(&ImagenetConfig { n_train: 20, n_test: 10, seed: 0, side: 32 });
        assert_eq!(ds.train_x.shape(), &[20, 3, 32, 32]);
        assert!(ds.train_x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(ds.class_names.len(), 10);
    }

    #[test]
    fn every_class_renders() {
        let mut r = rng::rng(1);
        for c in 0..10 {
            let t = render_class(c, 32, &mut r);
            assert_eq!(t.shape(), &[3, 32, 32]);
            assert!(!t.has_non_finite());
            // Images are not constant.
            assert!(t.max() - t.min() > 0.05, "class {c} rendered flat");
        }
    }

    #[test]
    fn determinism() {
        let cfg = ImagenetConfig { n_train: 6, n_test: 3, seed: 9, side: 32 };
        assert_eq!(generate(&cfg).train_x, generate(&cfg).train_x);
    }

    #[test]
    fn stripes_are_oriented() {
        // Horizontal stripes: row-wise variance low, column-wise high.
        let mut r = rng::rng(2);
        let t = render_class(0, 32, &mut r);
        let mut row_changes = 0;
        let mut col_changes = 0;
        for i in 1..32 {
            if (t.at(&[0, i, 16]) - t.at(&[0, i - 1, 16])).abs() > 0.2 {
                col_changes += 1;
            }
            if (t.at(&[0, 16, i]) - t.at(&[0, 16, i - 1])).abs() > 0.2 {
                row_changes += 1;
            }
        }
        assert!(
            col_changes > row_changes,
            "horizontal stripes should vary down columns ({col_changes} vs {row_changes})"
        );
    }
}
