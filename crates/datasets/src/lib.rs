//! Synthetic stand-ins for the five DeepXplore evaluation datasets.
//!
//! The paper evaluates on MNIST, ImageNet, the Udacity driving challenge,
//! Contagio/VirusTotal PDFs and Drebin Android apps — roughly 162 GB of
//! proprietary or download-gated data. This crate procedurally generates
//! datasets with the same *shape*: input dimensionality, label semantics,
//! class structure, feature families and — critically — the domain
//! constraints DeepXplore's test generation must respect (pixel ranges,
//! integer PDF features, add-only Android manifest features).
//!
//! Every generator is a pure function of its configuration (including the
//! seed), so any experiment in the workspace replays exactly.
//!
//! | Module | Paper dataset | Task |
//! |---|---|---|
//! | [`mnist`] | MNIST | 10-class digit images, 1×28×28 |
//! | [`imagenet`] | ImageNet | 10-class texture/shape images, 3×32×32 |
//! | [`driving`] | Udacity self-driving | steering-angle regression, 1×32×64 |
//! | [`pdf`] | Contagio/VirusTotal | malware detection over 135 integer features |
//! | [`drebin`] | Drebin | malware detection over sparse binary features |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod drebin;
pub mod driving;
pub mod imagenet;
pub mod mnist;
pub mod pdf;

pub use common::{pollute_labels, Dataset, Labels};
