//! The dataset container shared by all five generators.

use dx_tensor::{rng, Tensor};

/// Ground-truth labels: class indices for classifiers, a `[N, O]` tensor for
/// regressors (the driving dataset's steering angles).
#[derive(Clone, Debug)]
pub enum Labels {
    /// Class indices, one per sample.
    Classes(Vec<usize>),
    /// Continuous targets, `[N, O]`.
    Values(Tensor),
}

impl Labels {
    /// Number of labelled samples.
    pub fn len(&self) -> usize {
        match self {
            Labels::Classes(c) => c.len(),
            Labels::Values(v) => v.shape()[0],
        }
    }

    /// Whether there are no labels.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The class labels.
    ///
    /// # Panics
    ///
    /// Panics for regression labels.
    pub fn classes(&self) -> &[usize] {
        match self {
            Labels::Classes(c) => c,
            Labels::Values(_) => panic!("labels are regression values, not classes"),
        }
    }

    /// The regression targets.
    ///
    /// # Panics
    ///
    /// Panics for class labels.
    pub fn values(&self) -> &Tensor {
        match self {
            Labels::Values(v) => v,
            Labels::Classes(_) => panic!("labels are classes, not regression values"),
        }
    }
}

/// A generated dataset with train/test splits and domain metadata.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Short dataset id (`"mnist"`, `"imagenet"`, …).
    pub name: String,
    /// Training inputs, `[N, ...]`.
    pub train_x: Tensor,
    /// Training labels.
    pub train_labels: Labels,
    /// Test inputs, `[M, ...]`.
    pub test_x: Tensor,
    /// Test labels.
    pub test_labels: Labels,
    /// Class names for classifiers (empty for regression).
    pub class_names: Vec<String>,
    /// Feature names for tabular datasets (empty for images).
    pub feature_names: Vec<String>,
    /// Per-feature scale mapping normalized model inputs back to raw
    /// feature units (tabular datasets; `raw = normalized · scale`).
    pub feature_scale: Option<Tensor>,
    /// For Drebin-like data: which features live in the app manifest and may
    /// therefore be *added* by DeepXplore's constraint (§6.2).
    pub manifest_mask: Option<Vec<bool>>,
}

impl Dataset {
    /// Input shape of one sample (without batch).
    pub fn sample_shape(&self) -> &[usize] {
        &self.train_x.shape()[1..]
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_x.shape()[0]
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_x.shape()[0]
    }
}

/// Mislabels a fraction of one class as another — the paper's §7.3
/// training-data pollution attack (30% of MNIST "9"s relabelled "1").
///
/// Returns the polluted labels and the indices that were flipped.
///
/// # Panics
///
/// Panics unless `0 ≤ fraction ≤ 1`.
pub fn pollute_labels(
    labels: &[usize],
    from_class: usize,
    to_class: usize,
    fraction: f32,
    seed: u64,
) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction {fraction} out of range");
    let candidates: Vec<usize> =
        labels.iter().enumerate().filter(|(_, &l)| l == from_class).map(|(i, _)| i).collect();
    let k = (candidates.len() as f32 * fraction).round() as usize;
    let mut r = rng::rng(seed);
    let picked = rng::sample_without_replacement(&mut r, candidates.len(), k);
    let mut out = labels.to_vec();
    let mut flipped: Vec<usize> = picked.into_iter().map(|i| candidates[i]).collect();
    flipped.sort_unstable();
    for &i in &flipped {
        out[i] = to_class;
    }
    (out, flipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_len_both_kinds() {
        assert_eq!(Labels::Classes(vec![0, 1, 2]).len(), 3);
        assert_eq!(Labels::Values(Tensor::zeros(&[5, 1])).len(), 5);
    }

    #[test]
    #[should_panic(expected = "regression values")]
    fn classes_accessor_guards() {
        Labels::Values(Tensor::zeros(&[1, 1])).classes();
    }

    #[test]
    fn pollution_flips_requested_fraction() {
        let labels: Vec<usize> = (0..100).map(|i| i % 10).collect();
        let (polluted, flipped) = pollute_labels(&labels, 9, 1, 0.3, 42);
        // 10 nines, 30% -> 3 flips.
        assert_eq!(flipped.len(), 3);
        for &i in &flipped {
            assert_eq!(labels[i], 9);
            assert_eq!(polluted[i], 1);
        }
        // Untouched labels stay put.
        for i in 0..100 {
            if !flipped.contains(&i) {
                assert_eq!(polluted[i], labels[i]);
            }
        }
    }

    #[test]
    fn pollution_is_deterministic() {
        let labels: Vec<usize> = (0..50).map(|i| i % 10).collect();
        let a = pollute_labels(&labels, 9, 1, 0.5, 7);
        let b = pollute_labels(&labels, 9, 1, 0.5, 7);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn zero_fraction_flips_nothing() {
        let labels = vec![9, 9, 9];
        let (polluted, flipped) = pollute_labels(&labels, 9, 1, 0.0, 0);
        assert!(flipped.is_empty());
        assert_eq!(polluted, labels);
    }
}
