//! Sparse binary Android-app features (Drebin stand-in).
//!
//! Drebin represents an app as ~545k binary features in eight families,
//! four extracted from the manifest (hardware components, requested
//! permissions, app components, filtered intents) and four from
//! disassembled code (restricted/suspicious API calls, used permissions,
//! network addresses). We reproduce the family structure and sparsity at a
//! configurable width (default 1,200 features) — the add-only, manifest-only
//! domain constraint of §6.2 depends on the family split, not the width.
//!
//! The specific feature names the paper's Table 3 reports
//! (`feature::bluetooth`, `activity::.SmartAlertTerms`, …) are embedded in
//! the vocabulary so the corresponding bench reproduces the table verbatim.

use dx_tensor::{rng, Tensor};
use rand::Rng as _;

use crate::common::{Dataset, Labels};

/// Feature families, in vocabulary order. The first four live in the
/// Android manifest and are the only features DeepXplore may modify.
pub const FAMILIES: [&str; 8] = [
    "feature",          // S1: hardware components (manifest).
    "permission",       // S2: requested permissions (manifest).
    "activity",         // S3a: app components (manifest).
    "service_receiver", // S3b/S4: components + filtered intents (manifest).
    "api_call",         // S5: restricted API calls (code).
    "real_permission",  // S6: used permissions (code).
    "call",             // S7: suspicious API calls (code).
    "url",              // S8: network addresses (code).
];

/// Number of manifest families (prefix of [`FAMILIES`]).
pub const MANIFEST_FAMILIES: usize = 4;

/// Configuration for the Drebin-like generator.
#[derive(Clone, Copy, Debug)]
pub struct DrebinConfig {
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Master seed.
    pub seed: u64,
    /// Total feature count (split evenly across the eight families).
    pub width: usize,
    /// Fraction of samples that are malicious.
    pub malicious_fraction: f32,
    /// Probability that a sample's label is flipped (see the PDF
    /// generator's rationale; the paper's Drebin models reach 92.7-98.6%).
    pub label_noise: f32,
}

impl Default for DrebinConfig {
    fn default() -> Self {
        Self {
            n_train: 3000,
            n_test: 800,
            seed: 53,
            width: 1200,
            malicious_fraction: 0.45,
            label_noise: 0.04,
        }
    }
}

/// Names from the paper's Table 3, seeded into the vocabulary.
const TABLE3_NAMES: [&str; 6] = [
    "feature::bluetooth",
    "activity::.SmartAlertTerms",
    "service_receiver::.rrltpsi",
    "provider::xclockprovider",
    "permission::CALL_PHONE",
    "provider::contentprovider",
];

/// Builds the feature vocabulary: `width` names across the eight families,
/// with the Table 3 names occupying fixed early slots of their families.
pub fn vocabulary(width: usize) -> Vec<String> {
    assert!(width >= 64, "vocabulary width {width} too small to be meaningful");
    let per_family = width / FAMILIES.len();
    let mut names = Vec::with_capacity(width);
    for (fi, family) in FAMILIES.iter().enumerate() {
        let count = if fi == FAMILIES.len() - 1 {
            width - per_family * (FAMILIES.len() - 1)
        } else {
            per_family
        };
        for j in 0..count {
            names.push(format!("{family}::item_{j:04}"));
        }
    }
    // Replace early slots with the paper's names, keeping family alignment:
    // the `provider::` entries live in the service_receiver family region
    // (app components).
    let family_start = |fi: usize| fi * per_family;
    names[family_start(0)] = TABLE3_NAMES[0].into(); // feature::bluetooth.
    names[family_start(1)] = TABLE3_NAMES[4].into(); // permission::CALL_PHONE.
    names[family_start(2)] = TABLE3_NAMES[1].into(); // activity::.SmartAlertTerms.
    names[family_start(3)] = TABLE3_NAMES[2].into(); // service_receiver::.rrltpsi.
    names[family_start(3) + 1] = TABLE3_NAMES[3].into(); // provider::xclockprovider.
    names[family_start(3) + 2] = TABLE3_NAMES[5].into(); // provider::contentprovider.
    names
}

/// Generates the Drebin-like dataset.
///
/// Benign and malicious apps are Bernoulli feature vectors; a block of
/// code-family features fires far more often in malware (the detector's
/// signal), manifest features are mostly benign noise — which is exactly
/// why the paper's manifest-only evasion is interesting: the attacker may
/// only touch weakly informative features, and DeepXplore still finds
/// combinations that flip the models.
pub fn generate(cfg: &DrebinConfig) -> Dataset {
    let names = vocabulary(cfg.width);
    let per_family = cfg.width / FAMILIES.len();
    let manifest_end = per_family * MANIFEST_FAMILIES;
    let manifest_mask: Vec<bool> = (0..cfg.width).map(|i| i < manifest_end).collect();
    // Per-feature activation probabilities.
    let mut prof = rng::rng(rng::derive_seed(cfg.seed, 1));
    let mut p_benign = Vec::with_capacity(cfg.width);
    let mut p_malicious = Vec::with_capacity(cfg.width);
    for i in 0..cfg.width {
        let base = prof.gen_range(0.01..0.08f32);
        let is_code = i >= manifest_end;
        // An eighth of code features are moderately indicative of malware
        // (weak enough that detectors stay near the paper's 93-98% accuracy
        // instead of saturating); a tenth of manifest features lean
        // malicious, another tenth lean benign.
        let (b, m) = if is_code && i % 8 == 0 {
            (base * 0.7, base + prof.gen_range(0.10..0.22f32))
        } else if !is_code && i % 10 == 0 {
            (base, base + prof.gen_range(0.04..0.12f32))
        } else if !is_code && i % 10 == 1 {
            (base + prof.gen_range(0.04..0.12f32), base)
        } else {
            (base, base)
        };
        p_benign.push(b.clamp(0.0, 1.0));
        p_malicious.push(m.clamp(0.0, 1.0));
    }
    let mut r = rng::rng(cfg.seed);
    let mut make_split = |n: usize| -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * cfg.width);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let malicious = r.gen_range(0.0..1.0f32) < cfg.malicious_fraction;
            let label = if r.gen_range(0.0..1.0f32) < cfg.label_noise {
                usize::from(!malicious)
            } else {
                usize::from(malicious)
            };
            labels.push(label);
            let probs = if malicious { &p_malicious } else { &p_benign };
            for &p in probs {
                data.push(f32::from(r.gen_range(0.0..1.0f32) < p));
            }
        }
        (Tensor::from_vec(data, &[n, cfg.width]), labels)
    };
    let (train_x, train_l) = make_split(cfg.n_train);
    let (test_x, test_l) = make_split(cfg.n_test);
    Dataset {
        name: "drebin".into(),
        train_x,
        train_labels: Labels::Classes(train_l),
        test_x,
        test_labels: Labels::Classes(test_l),
        class_names: vec!["benign".into(), "malicious".into()],
        feature_names: names,
        feature_scale: None,
        manifest_mask: Some(manifest_mask),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_has_paper_names() {
        let names = vocabulary(1200);
        assert_eq!(names.len(), 1200);
        for required in TABLE3_NAMES {
            assert!(names.iter().any(|n| n == required), "missing {required}");
        }
    }

    #[test]
    fn features_are_binary() {
        let ds = generate(&DrebinConfig { n_train: 20, n_test: 10, ..Default::default() });
        assert!(ds.train_x.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn manifest_mask_covers_first_half() {
        let cfg = DrebinConfig { n_train: 4, n_test: 2, width: 800, ..Default::default() };
        let ds = generate(&cfg);
        let mask = ds.manifest_mask.as_ref().unwrap();
        assert_eq!(mask.len(), 800);
        let manifest_count = mask.iter().filter(|&&m| m).count();
        assert_eq!(manifest_count, 400);
        assert!(mask[0] && !mask[799]);
    }

    #[test]
    fn vectors_are_sparse() {
        let ds = generate(&DrebinConfig { n_train: 50, n_test: 5, ..Default::default() });
        let density = ds.train_x.mean();
        assert!(density < 0.25, "density {density} too high for Drebin-like data");
        assert!(density > 0.005, "density {density} implausibly low");
    }

    #[test]
    fn malicious_fire_more_code_features() {
        let cfg = DrebinConfig { n_train: 400, n_test: 5, ..Default::default() };
        let ds = generate(&cfg);
        let labels = ds.train_labels.classes();
        let width = cfg.width;
        let code_start = width / 2;
        let mut code_rate = [0.0f32; 2];
        let mut counts = [0.0f32; 2];
        for (i, &l) in labels.iter().enumerate() {
            let row = &ds.train_x.data()[i * width..(i + 1) * width];
            code_rate[l] += row[code_start..].iter().sum::<f32>();
            counts[l] += 1.0;
        }
        assert!(
            code_rate[1] / counts[1] > 1.3 * (code_rate[0] / counts[0]),
            "malware should fire more code features"
        );
    }

    #[test]
    fn determinism() {
        let cfg = DrebinConfig { n_train: 10, n_test: 5, ..Default::default() };
        assert_eq!(generate(&cfg).train_x, generate(&cfg).train_x);
    }
}
