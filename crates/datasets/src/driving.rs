//! Procedurally rendered road scenes with steering labels (Udacity
//! self-driving stand-in).
//!
//! Each frame is a perspective view of a road whose curvature draws the
//! centreline left or right; the regression target is the normalized
//! steering angle a centred car should apply. This preserves the two
//! properties the paper's driving experiments rely on: a *continuous*
//! model output (the only regression task in the evaluation) and a natural
//! left/right disagreement oracle for differential testing.

use dx_tensor::{rng, Image, Tensor};
use rand::Rng as _;

use crate::common::{Dataset, Labels};

/// Configuration for the driving-scene generator.
#[derive(Clone, Copy, Debug)]
pub struct DrivingConfig {
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Master seed.
    pub seed: u64,
    /// Frame height.
    pub height: usize,
    /// Frame width.
    pub width: usize,
}

impl Default for DrivingConfig {
    fn default() -> Self {
        Self { n_train: 2500, n_test: 500, seed: 31, height: 32, width: 64 }
    }
}

/// Steering-angle threshold (normalized units) above which two predictions
/// count as *directionally* different — the paper's "one car turns left,
/// the other turns right" oracle.
pub const STEER_DIRECTION_THRESHOLD: f32 = 0.2;

/// Renders one frame for the given curvature in `[-1, 1]` and returns it.
///
/// Negative curvature bends the road to the left (negative steering),
/// positive to the right.
pub fn render_road(curvature: f32, height: usize, width: usize, r: &mut rng::Rng) -> Tensor {
    let mut img = Image::new(1, height, width);
    let horizon = (height as f32 * r.gen_range(0.3..0.42f32)) as usize;
    let sky = r.gen_range(0.6..0.85f32);
    let ground = r.gen_range(0.28..0.42f32);
    let road = r.gen_range(0.42..0.55f32);
    let marking = r.gen_range(0.85..1.0f32);
    // Sky with a slight vertical gradient.
    for y in 0..horizon {
        let shade = sky - 0.1 * y as f32 / horizon.max(1) as f32;
        for x in 0..width {
            img.put(0, y, x, shade);
        }
    }
    // Ground.
    for y in horizon..height {
        for x in 0..width {
            img.put(0, y, x, ground);
        }
    }
    // Road: for each row below the horizon, a trapezoid slice whose centre
    // drifts with curvature (quadratic in distance) and whose width grows
    // towards the camera.
    let rows = (height - horizon).max(1) as f32;
    let half_w_near = width as f32 * 0.33;
    let half_w_far = 1.5f32;
    let drift = curvature * width as f32 * 0.35;
    for y in horizon..height {
        let t = (y - horizon) as f32 / rows; // 0 at horizon, 1 at bottom.
        let centre = width as f32 / 2.0 + drift * (1.0 - t) * (1.0 - t);
        let half = half_w_far + (half_w_near - half_w_far) * t;
        let x0 = (centre - half).max(0.0) as usize;
        let x1 = ((centre + half) as usize).min(width - 1);
        for x in x0..=x1 {
            img.put(0, y, x, road);
        }
        // Dashed centre lane marking.
        if (y - horizon) % 4 < 2 {
            let cx = centre.round() as i32;
            if cx >= 0 && (cx as usize) < width {
                img.put(0, y, cx as usize, marking);
            }
        }
    }
    // Global illumination jitter and sensor noise.
    let gain = r.gen_range(0.85..1.15f32);
    let mut t = img.into_tensor();
    for v in t.data_mut() {
        *v = (*v * gain + rng::normal_one(r) * 0.02).clamp(0.0, 1.0);
    }
    t
}

fn generate_split(n: usize, height: usize, width: usize, r: &mut rng::Rng) -> (Tensor, Tensor) {
    let mut data = Vec::with_capacity(n * height * width);
    let mut angles = Vec::with_capacity(n);
    for _ in 0..n {
        let curvature = r.gen_range(-1.0..1.0f32);
        let frame = render_road(curvature, height, width, r);
        data.extend_from_slice(frame.data());
        // Steering follows curvature with small actuation noise.
        angles.push((curvature + rng::normal_one(r) * 0.02).clamp(-1.0, 1.0));
    }
    (Tensor::from_vec(data, &[n, 1, height, width]), Tensor::from_vec(angles, &[n, 1]))
}

/// Generates the driving dataset.
pub fn generate(cfg: &DrivingConfig) -> Dataset {
    let mut r = rng::rng(cfg.seed);
    let (train_x, train_y) = generate_split(cfg.n_train, cfg.height, cfg.width, &mut r);
    let (test_x, test_y) = generate_split(cfg.n_test, cfg.height, cfg.width, &mut r);
    Dataset {
        name: "driving".into(),
        train_x,
        train_labels: Labels::Values(train_y),
        test_x,
        test_labels: Labels::Values(test_y),
        class_names: Vec::new(),
        feature_names: Vec::new(),
        feature_scale: None,
        manifest_mask: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_ranges() {
        let ds =
            generate(&DrivingConfig { n_train: 12, n_test: 6, seed: 0, height: 32, width: 64 });
        assert_eq!(ds.train_x.shape(), &[12, 1, 32, 64]);
        assert_eq!(ds.train_labels.values().shape(), &[12, 1]);
        assert!(ds.train_x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(ds.train_labels.values().data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn curvature_moves_the_road() {
        // With identical nuisance draws, opposite curvatures should place
        // road pixels asymmetrically: left curve lights more left half.
        let left = render_road(-0.9, 32, 64, &mut rng::rng(7));
        let right = render_road(0.9, 32, 64, &mut rng::rng(7));
        let half_mass = |t: &Tensor, lo: usize, hi: usize| -> f32 {
            let mut acc = 0.0;
            for y in 8..20 {
                for x in lo..hi {
                    acc += t.at(&[0, y, x]);
                }
            }
            acc
        };
        let left_mass_l = half_mass(&left, 0, 32);
        let left_mass_r = half_mass(&left, 32, 64);
        let right_mass_l = half_mass(&right, 0, 32);
        let right_mass_r = half_mass(&right, 32, 64);
        assert!(
            left_mass_l - left_mass_r > right_mass_l - right_mass_r,
            "curvature has no geometric effect"
        );
    }

    #[test]
    fn determinism() {
        let cfg = DrivingConfig { n_train: 5, n_test: 2, seed: 3, height: 32, width: 64 };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train_x, b.train_x);
        assert_eq!(a.train_labels.values(), b.train_labels.values());
    }

    #[test]
    fn frames_have_structure() {
        let t = render_road(0.0, 32, 64, &mut rng::rng(11));
        // Sky brighter than ground on average.
        let sky: f32 = (0..6)
            .flat_map(|y| (0..64).map(move |x| (y, x)))
            .map(|(y, x)| t.at(&[0, y, x]))
            .sum::<f32>()
            / (6.0 * 64.0);
        let ground: f32 = (26..32)
            .flat_map(|y| (0..8).map(move |x| (y, x)))
            .map(|(y, x)| t.at(&[0, y, x]))
            .sum::<f32>()
            / (6.0 * 8.0);
        assert!(sky > ground, "sky {sky} should exceed off-road ground {ground}");
    }
}
