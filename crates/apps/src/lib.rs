//! Downstream applications of DeepXplore-generated tests (§7.3 of the
//! paper).
//!
//! Two applications are demonstrated:
//!
//! - [`augment`]: retraining a model on its own error-inducing inputs,
//!   auto-labelled by **majority vote** among the models under test — no
//!   manual labelling, unlike adversarial retraining (Figure 10).
//! - [`pollution`]: detecting training-data pollution attacks by tracing
//!   error-inducing inputs back to their most structurally similar (SSIM)
//!   training samples (the 95.6%-detection experiment).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod pollution;

pub use augment::{majority_vote, retrain_with_eval, RetrainOutcome};
pub use pollution::rank_suspects;
