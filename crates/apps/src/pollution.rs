//! Training-data pollution detection (§7.3).
//!
//! The attack: a fraction of one class's training labels are flipped to
//! another class (the paper mislabels 30% of MNIST "9"s as "1"s). The
//! defence: train models on the clean and polluted sets, use DeepXplore to
//! generate inputs the two models *disagree* on (clean says source class,
//! polluted says target class), then rank training samples of the target
//! class by structural similarity (SSIM) to those inputs — the most
//! similar ones are the polluted samples.

use dx_nn::util::row;
use dx_tensor::{metrics, Tensor};

/// Ranks candidate training samples by their maximum SSIM against any of
/// the error-inducing inputs; higher rank = more suspicious.
///
/// `error_inputs` are unbatched or `[1, ...]`-batched samples; `train_x` is
/// the full training tensor; `candidates` restricts the search (typically
/// the indices labelled with the attack's *target* class).
///
/// Returns `(training_index, score)` sorted by descending score.
///
/// # Panics
///
/// Panics if there are no error inputs or candidates.
pub fn rank_suspects(
    error_inputs: &[Tensor],
    train_x: &Tensor,
    candidates: &[usize],
) -> Vec<(usize, f32)> {
    assert!(!error_inputs.is_empty(), "no error-inducing inputs supplied");
    assert!(!candidates.is_empty(), "no candidate training samples");
    let sample_shape = &train_x.shape()[1..];
    let normalized: Vec<Tensor> = error_inputs
        .iter()
        .map(|e| {
            if e.shape() == sample_shape {
                e.clone()
            } else if e.shape().first() == Some(&1) && &e.shape()[1..] == sample_shape {
                e.reshape(sample_shape)
            } else {
                panic!(
                    "error input shape {:?} does not match samples {:?}",
                    e.shape(),
                    sample_shape
                );
            }
        })
        .collect();
    let mut scored: Vec<(usize, f32)> = candidates
        .iter()
        .map(|&i| {
            let sample = row(train_x, i);
            let best = normalized
                .iter()
                .map(|e| metrics::ssim(e, &sample))
                .fold(f32::NEG_INFINITY, f32::max);
            (i, best)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("SSIM values are finite"));
    scored
}

/// Precision/recall of a suspect set against the ground-truth polluted
/// indices.
pub fn detection_quality(suspects: &[usize], polluted: &[usize]) -> (f32, f32) {
    if suspects.is_empty() || polluted.is_empty() {
        return (0.0, 0.0);
    }
    let polluted_set: std::collections::HashSet<usize> = polluted.iter().copied().collect();
    let hit = suspects.iter().filter(|i| polluted_set.contains(i)).count();
    (hit as f32 / suspects.len() as f32, hit as f32 / polluted.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    #[test]
    fn nearest_sample_ranks_first() {
        let mut r = rng::rng(0);
        // Training set of 10 random images; the error input is a tiny
        // perturbation of sample 7.
        let train = rng::uniform(&mut r, &[10, 1, 8, 8], 0.0, 1.0);
        let mut probe = row(&train, 7);
        probe.data_mut()[3] += 0.01;
        let ranked = rank_suspects(&[probe], &train, &(0..10).collect::<Vec<_>>());
        assert_eq!(ranked[0].0, 7, "nearest sample should rank first: {ranked:?}");
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn candidates_restrict_the_search() {
        let mut r = rng::rng(1);
        let train = rng::uniform(&mut r, &[10, 1, 6, 6], 0.0, 1.0);
        let probe = row(&train, 2);
        let ranked = rank_suspects(&[probe], &train, &[4, 5, 6]);
        assert_eq!(ranked.len(), 3);
        assert!(ranked.iter().all(|(i, _)| [4, 5, 6].contains(i)));
    }

    #[test]
    fn batched_error_inputs_accepted() {
        let mut r = rng::rng(2);
        let train = rng::uniform(&mut r, &[5, 1, 6, 6], 0.0, 1.0);
        let probe = dx_nn::util::gather_rows(&train, &[3]);
        let ranked = rank_suspects(&[probe], &train, &(0..5).collect::<Vec<_>>());
        assert_eq!(ranked[0].0, 3);
    }

    #[test]
    fn detection_quality_math() {
        let (precision, recall) = detection_quality(&[1, 2, 3, 4], &[2, 4, 9]);
        assert!((precision - 0.5).abs() < 1e-6);
        assert!((recall - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_sets_are_zero_quality() {
        assert_eq!(detection_quality(&[], &[1]), (0.0, 0.0));
        assert_eq!(detection_quality(&[1], &[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_error_input_rejected() {
        let train = Tensor::zeros(&[3, 1, 4, 4]);
        rank_suspects(&[Tensor::zeros(&[1, 5, 5])], &train, &[0]);
    }
}
