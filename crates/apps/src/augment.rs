//! Training-set augmentation with auto-labelled error-inducing inputs.

use dx_nn::network::Network;
use dx_nn::train::{evaluate_classifier, train_classifier, TrainConfig};
use dx_nn::util::stack;
use dx_nn::Optimizer;
use dx_tensor::Tensor;

/// Labels an input by majority vote among several models (the paper's
/// automatic labelling rule, after Freund & Schapire \[23\]).
///
/// Returns `None` on a tie — such inputs are discarded rather than
/// mislabelled.
pub fn majority_vote(models: &[Network], x: &Tensor) -> Option<usize> {
    assert!(!models.is_empty(), "majority vote needs at least one model");
    let mut votes = std::collections::HashMap::new();
    for m in models {
        *votes.entry(m.predict_classes(x)[0]).or_insert(0usize) += 1;
    }
    let best = votes.iter().max_by_key(|(_, &c)| c).map(|(&l, &c)| (l, c))?;
    let ties = votes.values().filter(|&&c| c == best.1).count();
    if ties > 1 {
        None
    } else {
        Some(best.0)
    }
}

/// The result of an augmented retraining run.
#[derive(Clone, Debug)]
pub struct RetrainOutcome {
    /// Test accuracy before retraining (epoch 0 of Figure 10).
    pub initial_accuracy: f32,
    /// Test accuracy after each retraining epoch.
    pub epoch_accuracy: Vec<f32>,
}

impl RetrainOutcome {
    /// The best accuracy reached during retraining.
    pub fn best(&self) -> f32 {
        self.epoch_accuracy.iter().copied().fold(self.initial_accuracy, f32::max)
    }

    /// Final accuracy minus initial accuracy.
    pub fn improvement(&self) -> f32 {
        self.epoch_accuracy.last().copied().unwrap_or(self.initial_accuracy) - self.initial_accuracy
    }
}

/// Retrains `net` on the original training set plus `extra` samples,
/// evaluating test accuracy after every epoch (the Figure 10 measurement).
///
/// `extra` pairs are typically DeepXplore tests labelled by
/// [`majority_vote`], FGSM inputs with their source labels, or extra random
/// samples.
///
/// # Panics
///
/// Panics on empty or inconsistent inputs.
#[allow(clippy::too_many_arguments)] // Mirrors the experiment's parameter list.
pub fn retrain_with_eval(
    net: &mut Network,
    train_x: &Tensor,
    train_labels: &[usize],
    extra: &[(Tensor, usize)],
    test_x: &Tensor,
    test_labels: &[usize],
    epochs: usize,
    seed: u64,
) -> RetrainOutcome {
    assert_eq!(train_x.shape()[0], train_labels.len(), "train set inconsistent");
    let initial_accuracy = evaluate_classifier(net, test_x, test_labels);
    // Merge original and extra data into one tensor.
    let (aug_x, aug_labels) = if extra.is_empty() {
        (train_x.clone(), train_labels.to_vec())
    } else {
        let mut rows: Vec<Tensor> = Vec::with_capacity(train_x.shape()[0] + extra.len());
        for i in 0..train_x.shape()[0] {
            rows.push(dx_nn::util::row(train_x, i));
        }
        let mut labels = train_labels.to_vec();
        let sample_shape = &train_x.shape()[1..];
        for (x, l) in extra {
            // Accept bare sample shapes or batched [1, ...] inputs. The
            // comparison is against the actual sample shape — a leading
            // dimension of 1 (e.g. a grayscale channel) is not a batch.
            let sample = if x.shape() == sample_shape {
                x.clone()
            } else if x.shape().first() == Some(&1) && &x.shape()[1..] == sample_shape {
                dx_nn::util::row(x, 0)
            } else {
                panic!(
                    "extra sample shape {:?} does not match training samples {:?}",
                    x.shape(),
                    sample_shape
                );
            };
            rows.push(sample);
            labels.push(*l);
        }
        (stack(&rows), labels)
    };
    let mut epoch_accuracy = Vec::with_capacity(epochs);
    let mut opt = Optimizer::adam(5e-4);
    for e in 0..epochs {
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 32,
            seed: seed.wrapping_add(e as u64),
            shuffle: true,
        };
        train_classifier(net, &aug_x, &aug_labels, &cfg, &mut opt);
        epoch_accuracy.push(evaluate_classifier(net, test_x, test_labels));
    }
    RetrainOutcome { initial_accuracy, epoch_accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;
    use dx_tensor::rng;

    fn toy(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut r = rng::rng(seed);
        let x = rng::uniform(&mut r, &[n, 4], 0.0, 1.0);
        let labels = (0..n).map(|i| usize::from(x.at(&[i, 0]) + x.at(&[i, 1]) > 1.0)).collect();
        (x, labels)
    }

    fn mlp(seed: u64) -> Network {
        let mut net = Network::new(
            &[4],
            vec![Layer::dense(4, 12), Layer::relu(), Layer::dense(12, 2), Layer::softmax()],
        );
        net.init_weights(&mut rng::rng(seed));
        net
    }

    #[test]
    fn majority_vote_counts_correctly() {
        // Three fixed models; check the vote on one input against their
        // individual predictions.
        let models = vec![mlp(1), mlp(2), mlp(3)];
        let x = rng::uniform(&mut rng::rng(4), &[1, 4], 0.0, 1.0);
        let preds: Vec<usize> = models.iter().map(|m| m.predict_classes(&x)[0]).collect();
        let vote = majority_vote(&models, &x);
        let count0 = preds.iter().filter(|&&p| p == 0).count();
        let expect = match count0 {
            0 | 1 => Some(1),
            2 | 3 => Some(0),
            _ => unreachable!(),
        };
        assert_eq!(vote, expect);
    }

    #[test]
    fn majority_vote_ties_are_none() {
        // Two models that disagree -> tie -> None. Build by perturbation
        // until disagreement is found.
        let base = mlp(5);
        let mut r = rng::rng(6);
        for attempt in 0..200 {
            let other = base.perturbed(0.3, attempt);
            let x = rng::uniform(&mut r, &[1, 4], 0.0, 1.0);
            let a = base.predict_classes(&x)[0];
            let b = other.predict_classes(&x)[0];
            if a != b {
                assert_eq!(majority_vote(&[base.clone(), other], &x), None);
                return;
            }
        }
        panic!("could not construct a disagreement");
    }

    #[test]
    fn retraining_improves_undertrained_model() {
        let (x, labels) = toy(300, 7);
        let (tx, tl) = toy(100, 8);
        let mut net = mlp(9);
        // A short warmup so the model starts above chance but clearly
        // undertrained.
        let cfg = TrainConfig { epochs: 1, batch_size: 32, seed: 10, shuffle: true };
        train_classifier(&mut net, &x, &labels, &cfg, &mut Optimizer::adam(1e-3));
        let outcome = retrain_with_eval(&mut net, &x, &labels, &[], &tx, &tl, 5, 11);
        assert_eq!(outcome.epoch_accuracy.len(), 5);
        assert!(outcome.best() >= outcome.initial_accuracy, "retraining regressed: {outcome:?}");
    }

    #[test]
    fn extra_samples_are_used() {
        let (x, labels) = toy(60, 12);
        let (tx, tl) = toy(40, 13);
        let mut net = mlp(14);
        // Extra set: more labelled points from the same distribution.
        let (ex, el) = toy(40, 15);
        let extra: Vec<(Tensor, usize)> =
            (0..40).map(|i| (dx_nn::util::row(&ex, i), el[i])).collect();
        let out_with = retrain_with_eval(&mut net, &x, &labels, &extra, &tx, &tl, 3, 16);
        assert_eq!(out_with.epoch_accuracy.len(), 3);
        // And batched [1, ...] extras are accepted too.
        let mut net2 = mlp(14);
        let extra_batched: Vec<(Tensor, usize)> =
            (0..40).map(|i| (dx_nn::util::gather_rows(&ex, &[i]), el[i])).collect();
        let out_b = retrain_with_eval(&mut net2, &x, &labels, &extra_batched, &tx, &tl, 3, 16);
        assert_eq!(out_with.epoch_accuracy, out_b.epoch_accuracy);
    }

    #[test]
    fn improvement_is_final_minus_initial() {
        let o = RetrainOutcome { initial_accuracy: 0.9, epoch_accuracy: vec![0.91, 0.93] };
        assert!((o.improvement() - 0.03).abs() < 1e-6);
        assert!((o.best() - 0.93).abs() < 1e-6);
    }
}
