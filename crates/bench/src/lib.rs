//! Shared support for the table/figure bench harnesses.
//!
//! Every bench target regenerates one table or figure of the paper. They
//! are `harness = false` binaries because their product is a printed table
//! (and a copy under `bench_results/`), not a timing curve; the one
//! criterion target (`micro_engine`) covers raw engine throughput.
//!
//! Scale: the paper uses 2,000 seeds per experiment and minutes of GPU
//! time per cell; the defaults here are scaled so the whole suite finishes
//! on a laptop CPU. Set `DX_SEEDS=<n>` to raise the seed count and
//! `DX_SCALE=test` to run everything at smoke-test size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::Write as _;
use std::path::PathBuf;

use deepxplore::generator::TaskKind;
use deepxplore::{Constraint, Hyperparams};
use dx_datasets::driving::STEER_DIRECTION_THRESHOLD;
use dx_datasets::Dataset;
use dx_models::{DatasetKind, Scale, Zoo, ZooConfig};

/// Tees bench output to stdout and `bench_results/<name>.txt`.
pub struct BenchOut {
    file: File,
}

impl BenchOut {
    /// Opens the output file for a bench target.
    pub fn new(name: &str) -> Self {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("creating bench_results/");
        let file =
            File::create(dir.join(format!("{name}.txt"))).expect("creating bench result file");
        Self { file }
    }

    /// Writes one line to both sinks.
    pub fn line(&mut self, s: impl AsRef<str>) {
        println!("{}", s.as_ref());
        writeln!(self.file, "{}", s.as_ref()).expect("writing bench result line");
    }
}

/// The directory bench results are written to (`bench_results/` at the
/// workspace root, next to `Cargo.toml`).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("bench_results")
}

/// Number of seeds for generation experiments: `DX_SEEDS` or the given
/// default (the paper's counterpart is 2,000).
pub fn seed_count(default: usize) -> usize {
    std::env::var("DX_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// The bench zoo: full scale unless `DX_SCALE=test`.
pub fn bench_zoo() -> Zoo {
    Zoo::new(ZooConfig::new(Scale::from_env()))
}

/// Per-dataset experiment configuration mirroring the paper's Table 2.
pub struct Setup {
    /// Dataset kind.
    pub kind: DatasetKind,
    /// Classification or steering regression.
    pub task: TaskKind,
    /// Table 2 hyperparameters (step sizes translated to `[0, 1]` pixels).
    pub hp: Hyperparams,
    /// The dataset's default domain constraint.
    pub constraint: Constraint,
}

/// Builds the Table 2 setup for a dataset (the constraint needs dataset
/// metadata — feature scales and the manifest mask).
pub fn setup_for(kind: DatasetKind, ds: &Dataset) -> Setup {
    let (task, hp, constraint) = match kind {
        DatasetKind::Mnist | DatasetKind::Imagenet => {
            (TaskKind::Classification, Hyperparams::image_defaults(), Constraint::Lighting)
        }
        DatasetKind::Driving => (
            TaskKind::Regression { direction_threshold: STEER_DIRECTION_THRESHOLD },
            Hyperparams::image_defaults(),
            Constraint::Lighting,
        ),
        DatasetKind::Pdf => (
            TaskKind::Classification,
            Hyperparams::pdf_defaults(),
            Constraint::PdfFeatures {
                scale: ds
                    .feature_scale
                    .as_ref()
                    .expect("pdf dataset carries feature scales")
                    .data()
                    .to_vec(),
            },
        ),
        DatasetKind::Drebin => (
            TaskKind::Classification,
            Hyperparams::drebin_defaults(),
            Constraint::DrebinManifest {
                manifest_mask: ds
                    .manifest_mask
                    .clone()
                    .expect("drebin dataset carries a manifest mask"),
            },
        ),
    };
    Setup { kind, task, hp, constraint }
}

/// The three model ids of a dataset, in Table 1 order.
pub fn trio_ids(kind: DatasetKind) -> [&'static str; 3] {
    match kind {
        DatasetKind::Mnist => ["MNI_C1", "MNI_C2", "MNI_C3"],
        DatasetKind::Imagenet => ["IMG_C1", "IMG_C2", "IMG_C3"],
        DatasetKind::Driving => ["DRV_C1", "DRV_C2", "DRV_C3"],
        DatasetKind::Pdf => ["PDF_C1", "PDF_C2", "PDF_C3"],
        DatasetKind::Drebin => ["APP_C1", "APP_C2", "APP_C3"],
    }
}

/// Mean wall-clock time (seconds) and iterations to the *first*
/// difference-inducing input, averaged over `runs` independent runs — the
/// measurement behind Tables 9, 10 and 11.
///
/// Each run draws its own seed sample and processes up to 12 seeds until
/// the first difference appears; runs that find none are excluded (as the
/// paper's timeouts are). Returns `None` if every run timed out.
pub fn time_to_first_difference(
    zoo: &mut Zoo,
    kind: DatasetKind,
    hp: Hyperparams,
    constraint_override: Option<Constraint>,
    runs: usize,
) -> Option<(f32, f32)> {
    use deepxplore::generator::Generator;
    use dx_coverage::CoverageConfig;
    use dx_nn::util::gather_rows;
    use dx_tensor::rng;

    let models = zoo.trio(kind);
    let ds = zoo.dataset(kind).clone();
    let setup = setup_for(kind, &ds);
    let constraint = constraint_override.unwrap_or(setup.constraint);
    let mut total_secs = 0.0f32;
    let mut total_iters = 0.0f32;
    let mut succeeded = 0usize;
    for run in 0..runs {
        let mut gen = Generator::new(
            models.clone(),
            setup.task,
            hp,
            constraint.clone(),
            CoverageConfig::default(),
            0x0009_0000 + run as u64,
        );
        let mut r = rng::rng(0x000A_0000 + run as u64);
        let picks = rng::sample_without_replacement(&mut r, ds.test_len(), 12.min(ds.test_len()));
        let t0 = std::time::Instant::now();
        for (i, &p) in picks.iter().enumerate() {
            let seed = gather_rows(&ds.test_x, &[p]);
            if let Some(test) = gen.generate_from_seed(i, &seed) {
                total_secs += t0.elapsed().as_secs_f32();
                total_iters += test.iterations as f32;
                succeeded += 1;
                break;
            }
        }
    }
    if succeeded == 0 {
        None
    } else {
        Some((total_secs / succeeded as f32, total_iters / succeeded as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_count_default_applies() {
        if std::env::var("DX_SEEDS").is_err() {
            assert_eq!(seed_count(123), 123);
        }
    }

    #[test]
    fn trio_ids_cover_all_kinds() {
        for kind in DatasetKind::ALL {
            assert_eq!(trio_ids(kind).len(), 3);
        }
    }
}
