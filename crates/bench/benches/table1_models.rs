//! Table 1: the fifteen DNNs — architecture, neuron counts and accuracy.
//!
//! The paper reports pretrained/reference accuracies; we train from
//! scratch on the synthetic datasets, so the "Our Acc." column is the one
//! to compare *shapes* against (all models reach high accuracy; driving
//! reports 1-MSE).

use dx_bench::{bench_zoo, trio_ids, BenchOut};
use dx_coverage::{CoverageConfig, CoverageTracker, Granularity};
use dx_models::{DatasetKind, SPECS};

fn main() {
    let mut out = BenchOut::new("table1_models");
    let mut zoo = bench_zoo();
    out.line("Table 1: Details of the DNNs and datasets used to evaluate DeepXplore");
    out.line(format!(
        "{:<8} {:<22} {:>9} {:>13} {:>9} {:>10}",
        "DNN", "Architecture", "#neurons", "#unit-neurons", "params", "accuracy"
    ));
    for kind in DatasetKind::ALL {
        for id in trio_ids(kind) {
            let spec = SPECS.iter().find(|s| s.id == id).expect("known id");
            let net = zoo.model(id);
            let channel = CoverageTracker::for_network(&net, CoverageConfig::default()).total();
            let unit = CoverageTracker::for_network(
                &net,
                CoverageConfig { granularity: Granularity::Unit, ..Default::default() },
            )
            .total();
            let acc = zoo.accuracy(id);
            out.line(format!(
                "{:<8} {:<22} {:>9} {:>13} {:>9} {:>9.2}%",
                id,
                spec.arch,
                channel,
                unit,
                net.param_count(),
                100.0 * acc
            ));
        }
    }
    out.line("");
    out.line("paper: 15 models, 52..94,059 neurons each, accuracies 92.6%..99.96%");
    out.line("(driving rows report 1-MSE, as in the paper's footnote)");
}
