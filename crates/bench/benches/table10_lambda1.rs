//! Table 10: time to the first difference-inducing input as λ1 varies
//! (λ1 weights how hard the chosen model's confidence is pushed down
//! relative to keeping the others up, Eq. 2).

use deepxplore::Hyperparams;
use dx_bench::{bench_zoo, setup_for, time_to_first_difference, BenchOut};
use dx_models::DatasetKind;

fn main() {
    let mut out = BenchOut::new("table10_lambda1");
    let mut zoo = bench_zoo();
    let grid = [0.5f32, 1.0, 2.0, 3.0];
    let runs = 6;
    out.line("Table 10: time (s) to first difference vs λ1 (mean over 6 runs)");
    out.line(format!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}",
        "dataset", "λ1=0.5", "λ1=1", "λ1=2", "λ1=3"
    ));
    for kind in DatasetKind::ALL {
        let ds = zoo.dataset(kind).clone();
        let base = setup_for(kind, &ds).hp;
        let mut cells = Vec::new();
        for &l1 in &grid {
            let hp = Hyperparams { lambda1: l1, max_iters: 40, ..base };
            let cell = match time_to_first_difference(&mut zoo, kind, hp, None, runs) {
                Some((secs, _)) => format!("{secs:>8.3}s"),
                None => format!("{:>9}", "-"),
            };
            cells.push(cell);
        }
        out.line(format!("{:<10} {}", kind.id(), cells.join(" ")));
    }
    out.line("");
    out.line("paper: 0.05s..7.5s; larger λ1 usually helps (fastest cells at λ1=2..3");
    out.line("for MNIST/VirusTotal, λ1=2 for ImageNet/Driving)");
}
