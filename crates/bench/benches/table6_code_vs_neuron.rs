//! Table 6: operator ("code") coverage vs neuron coverage for 10 random
//! test inputs per dataset.
//!
//! The paper's point: 10 inputs exercise 100% of the host code of every
//! model while neuron coverage (t = 0.75, per-layer scaled) never exceeds
//! 34%.

use dx_bench::{bench_zoo, trio_ids, BenchOut};
use dx_coverage::opcov::OpCoverage;
use dx_coverage::{CoverageConfig, CoverageTracker};
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::rng;

fn main() {
    let mut out = BenchOut::new("table6_code_vs_neuron");
    let mut zoo = bench_zoo();
    out.line("Table 6: code coverage vs neuron coverage, 10 random inputs, t = 0.75");
    out.line(format!(
        "{:<10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "dataset", "codeC1", "codeC2", "codeC3", "neurC1", "neurC2", "neurC3"
    ));
    for kind in DatasetKind::ALL {
        let ds = zoo.dataset(kind).clone();
        let mut r = rng::rng(606);
        let picks = rng::sample_without_replacement(&mut r, ds.test_len(), 10);
        let inputs = gather_rows(&ds.test_x, &picks);
        let mut code = Vec::new();
        let mut neuron = Vec::new();
        for id in trio_ids(kind) {
            let net = zoo.model(id);
            let mut oc = OpCoverage::for_network(&net);
            let mut tracker = CoverageTracker::for_network(&net, CoverageConfig::scaled(0.75));
            for i in 0..10 {
                let x = gather_rows(&inputs, &[i]);
                let pass = net.forward(&x);
                oc.record_forward();
                tracker.update(&pass);
            }
            code.push(oc.coverage());
            neuron.push(tracker.coverage());
        }
        out.line(format!(
            "{:<10} | {:>7.0}% {:>7.0}% {:>7.0}% | {:>7.1}% {:>7.1}% {:>7.1}%",
            kind.id(),
            100.0 * code[0],
            100.0 * code[1],
            100.0 * code[2],
            100.0 * neuron[0],
            100.0 * neuron[1],
            100.0 * neuron[2],
        ));
    }
    out.line("");
    out.line("paper: code coverage 100% everywhere; neuron coverage 0.3%..34%");
}
