//! §7.3 pollution detection: 30% of the training "9"s are relabelled "1";
//! DeepXplore inputs that split the clean and polluted models are traced
//! back to training samples by SSIM. The paper identifies 95.6% of the
//! polluted samples.

use deepxplore::generator::{Generator, TaskKind};
use deepxplore::{Constraint, Hyperparams};
use dx_apps::pollution::{detection_quality, rank_suspects};
use dx_bench::{bench_zoo, BenchOut};
use dx_coverage::CoverageConfig;
use dx_datasets::pollute_labels;
use dx_models::variants::{lenet1_wider, train_variant};
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::Tensor;

fn main() {
    let mut out = BenchOut::new("pollution_detection");
    let mut zoo = bench_zoo();
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let clean_labels = ds.train_labels.classes().to_vec();
    let n = ds.train_len();
    let (polluted_labels, flipped) = pollute_labels(&clean_labels, 9, 1, 0.3, 333);
    out.line(format!(
        "pollution attack: {} of the {} nines relabelled as 1",
        flipped.len(),
        clean_labels.iter().filter(|&&l| l == 9).count()
    ));

    let epochs = 3;
    let clean = train_variant(lenet1_wider(0), &ds.train_x, &clean_labels, n, epochs, 9);
    let polluted = train_variant(lenet1_wider(0), &ds.train_x, &polluted_labels, n, epochs, 9);

    // Error-inducing inputs: clean model says 9, polluted says 1.
    let mut gen = Generator::new(
        vec![clean.clone(), polluted.clone()],
        TaskKind::Classification,
        Hyperparams { max_iters: 40, ..Hyperparams::image_defaults() },
        Constraint::Lighting,
        CoverageConfig::default(),
        33,
    );
    let nines: Vec<usize> =
        (0..ds.test_len()).filter(|&i| ds.test_labels.classes()[i] == 9).collect();
    let mut error_inputs: Vec<Tensor> = Vec::new();
    for (i, &p) in nines.iter().enumerate() {
        let x = gather_rows(&ds.test_x, &[p]);
        // Raw disagreements of the right polarity count directly.
        if clean.predict_classes(&x)[0] == 9 && polluted.predict_classes(&x)[0] == 1 {
            error_inputs.push(x.clone());
            continue;
        }
        if let Some(test) = gen.generate_from_seed(i, &x) {
            if clean.predict_classes(&test.input)[0] == 9
                && polluted.predict_classes(&test.input)[0] == 1
            {
                error_inputs.push(test.input.clone());
            }
        }
    }
    out.line(format!("{} error-inducing inputs with the 9-vs-1 polarity", error_inputs.len()));
    if error_inputs.is_empty() {
        out.line("pollution did not change model behaviour at this scale; nothing to trace");
        return;
    }

    // Trace back: candidates are all training samples the polluted model
    // was taught to call 1.
    let candidates: Vec<usize> = (0..n).filter(|&i| polluted_labels[i] == 1).collect();
    let ranked = rank_suspects(&error_inputs, &ds.train_x, &candidates);
    let suspects: Vec<usize> = ranked.iter().take(flipped.len()).map(|(i, _)| *i).collect();
    let (precision, recall) = detection_quality(&suspects, &flipped);
    out.line(format!(
        "top-{} SSIM suspects: precision {:.1}%, recall {:.1}%",
        suspects.len(),
        100.0 * precision,
        100.0 * recall
    ));
    out.line("");
    out.line("paper: 95.6% of polluted samples correctly identified");
}
