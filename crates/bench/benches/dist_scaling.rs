//! Distributed scaling: 1/2/4 worker *processes* against the in-process
//! worker pool, on the MNIST test-scale trio with the same total
//! seed-step budget.
//!
//! Not a paper table — the dist service is this workspace's extension
//! toward the production north star. Every arm fuzzes the same seeds with
//! the same campaign master seed; dist workers are separate OS processes
//! (this binary re-execs itself with `DX_DIST_WORKER=<addr>`), so the
//! comparison includes real serialization, sockets and process overhead.
//! Speedup is relative to the 1-process-worker arm; the machine's core
//! count bounds it, and on a single-core container every arm mostly
//! measures coordination overhead.

use std::time::Duration;

use dx_bench::BenchOut;
use dx_campaign::json::Json;
use dx_campaign::{Campaign, CampaignConfig, ModelSuite};
use dx_coverage::{CoverageConfig, SignalSpec};
use dx_dist::{run_worker, Coordinator, CoordinatorConfig, WorkerConfig};
use dx_models::{DatasetKind, Scale, Zoo, ZooConfig};
use dx_nn::util::gather_rows;
use dx_service::{CampaignSpec, Service, ServiceConfig};
use dx_telemetry::phase::{Phase, TIME_BUCKETS};
use dx_telemetry::MetricsRegistry;
use dx_tensor::{rng, Tensor};

const LABEL: &str = "mnist@dist_scaling";

/// The workers' hot-path phase split as folded into the coordinator's
/// registry from shipped telemetry — the dist-plane view of where the
/// fleet's cycles went.
fn phase_breakdown(registry: &MetricsRegistry) -> String {
    let sums: Vec<(&str, f64)> = Phase::ALL
        .iter()
        .map(|p| {
            let h = registry.histogram("dx_phase_seconds", &[("phase", p.name())], &TIME_BUCKETS);
            (p.name(), h.sum())
        })
        .collect();
    let total: f64 = sums.iter().map(|(_, s)| s).sum();
    if total <= 0.0 {
        return "no phase samples".into();
    }
    let parts: Vec<String> =
        sums.iter().map(|(n, s)| format!("{n} {:.1}%", 100.0 * s / total)).collect();
    parts.join("  ")
}

fn suite_and_seeds(n_seeds: usize, metric: &dx_coverage::MetricSpec) -> (ModelSuite, Tensor) {
    let mut zoo = Zoo::new(ZooConfig::new(Scale::Test));
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let setup = dx_bench::setup_for(DatasetKind::Mnist, &ds);
    let signal = if metric.needs_profiles() {
        SignalSpec::of(CoverageConfig::default(), metric.clone(), Vec::new()).primed(
            &models,
            &ds.train_x,
            128.min(ds.train_x.shape()[0]),
        )
    } else {
        SignalSpec::of(CoverageConfig::scaled(0.25), metric.clone(), Vec::new())
    };
    let suite =
        ModelSuite { models, kind: setup.task, hp: setup.hp, constraint: setup.constraint, signal };
    let mut r = rng::rng(0xca3b);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
    (suite, gather_rows(&ds.test_x, &picks))
}

/// The metric the fleet runs, forwarded to re-exec'd workers via env —
/// both sides must prime identical profiles or admission fails.
fn env_metric() -> dx_coverage::MetricSpec {
    std::env::var("DX_DIST_METRIC")
        .ok()
        .and_then(|m| m.parse().ok())
        .unwrap_or_else(|| dx_coverage::MetricKind::Neuron.into())
}

fn main() {
    // Child mode: this binary re-exec'd as a fleet worker. The verified
    // arm's fleet secret arrives via DX_AUTH_TOKEN, like the CLI's.
    if let Ok(addr) = std::env::var("DX_DIST_WORKER") {
        let (suite, _) = suite_and_seeds(1, &env_metric());
        let cfg =
            WorkerConfig { auth_token: std::env::var("DX_AUTH_TOKEN").ok(), ..Default::default() };
        run_worker(addr.as_str(), suite, LABEL, cfg).expect("bench worker failed");
        return;
    }

    let mut out = BenchOut::new("dist_scaling");
    let n_seeds = dx_bench::seed_count(24);
    let (suite, seeds) = suite_and_seeds(n_seeds, &dx_coverage::MetricKind::Neuron.into());
    let rounds = 3;
    let batch = 2 * seeds.shape()[0] / 3;
    let budget = rounds * batch;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    out.line("Distributed scaling: MNIST test-scale trio, one logical campaign");
    out.line(format!(
        "{} initial seeds, {budget} seed-step budget ({rounds} rounds x {batch}), {cores} core(s) available",
        seeds.shape()[0]
    ));
    out.line(format!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "arm", "seeds/s", "diffs/s", "diffs", "cover%", "speedup"
    ));

    // Baseline: the in-process single-worker pool on the same budget.
    let mut pool = Campaign::new(
        suite.clone(),
        &seeds,
        CampaignConfig {
            workers: 1,
            epochs: rounds,
            batch_per_epoch: batch,
            seed: 42,
            ..Default::default()
        },
    );
    pool.run().expect("no checkpoint dir configured, run cannot fail");
    let pool_sps = pool.report().seeds_per_sec();
    out.line(format!(
        "{:<16} {:>9.2} {:>9.2} {:>9} {:>8.1}% {:>8.2}x",
        "pool (1 thread)",
        pool_sps,
        pool.report().diffs_per_sec(),
        pool.report().total_diffs(),
        100.0 * pool.mean_coverage(),
        1.0,
    ));

    let mut baseline = None;
    for workers in [1usize, 2, 4] {
        let registry = MetricsRegistry::new();
        let coordinator = Coordinator::new(
            &suite,
            LABEL,
            &seeds,
            CoordinatorConfig {
                max_steps: Some(budget),
                batch_per_round: batch,
                lease_size: 4,
                lease_timeout: Duration::from_secs(60),
                seed: 42,
                registry: registry.clone(),
                ..Default::default()
            },
        );
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let exe = std::env::current_exe().expect("current exe");
        let children: Vec<_> = (0..workers)
            .map(|_| {
                std::process::Command::new(&exe)
                    .env("DX_DIST_WORKER", &addr)
                    .env("DX_SCALE", "test")
                    .stdout(std::process::Stdio::null())
                    .spawn()
                    .expect("spawn bench worker")
            })
            .collect();
        let report = coordinator.serve(listener).expect("coordinator serve");
        for mut child in children {
            let _ = child.wait();
        }
        let sps = report.report.seeds_per_sec();
        let merged = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
        let baseline_sps = *baseline.get_or_insert(sps);
        out.line(format!(
            "{:<16} {:>9.2} {:>9.2} {:>9} {:>8.1}% {:>8.2}x",
            format!("dist ({workers} proc)"),
            sps,
            report.report.diffs_per_sec(),
            report.report.total_diffs(),
            100.0 * merged,
            sps / baseline_sps,
        ));
        out.line(format!("    phases: {}", phase_breakdown(&registry)));
    }

    // The trust layer's price: HMAC-authenticated admission, every
    // claimed diff re-executed through the coordinator's own models
    // (spot-check rate 1.0 — the worst case), and adaptive lease sizing.
    // Speedup is relative to the unverified 1-process dist arm, so the
    // column reads directly as verification overhead.
    for workers in [1usize, 2] {
        let registry = MetricsRegistry::new();
        let coordinator = Coordinator::new(
            &suite,
            LABEL,
            &seeds,
            CoordinatorConfig {
                max_steps: Some(budget),
                batch_per_round: batch,
                lease_size: 4,
                lease_max: 16,
                lease_timeout: Duration::from_secs(60),
                seed: 42,
                auth_token: Some("bench-fleet-secret".into()),
                spot_check_rate: 1.0,
                registry: registry.clone(),
                ..Default::default()
            },
        );
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let exe = std::env::current_exe().expect("current exe");
        let children: Vec<_> = (0..workers)
            .map(|_| {
                std::process::Command::new(&exe)
                    .env("DX_DIST_WORKER", &addr)
                    .env("DX_AUTH_TOKEN", "bench-fleet-secret")
                    .env("DX_SCALE", "test")
                    .stdout(std::process::Stdio::null())
                    .spawn()
                    .expect("spawn bench worker")
            })
            .collect();
        let report = coordinator.serve(listener).expect("coordinator serve");
        for mut child in children {
            let _ = child.wait();
        }
        assert_eq!(report.quarantined, 0, "honest bench workers were quarantined");
        let sps = report.report.seeds_per_sec();
        let merged = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
        let baseline_sps = baseline.expect("dist arms ran first");
        out.line(format!(
            "{:<16} {:>9.2} {:>9.2} {:>9} {:>8.1}% {:>8.2}x",
            format!("vrf dist ({workers} proc)"),
            sps,
            report.report.diffs_per_sec(),
            report.report.total_diffs(),
            100.0 * merged,
            sps / baseline_sps,
        ));
        out.line(format!("    phases: {}", phase_breakdown(&registry)));
    }

    // The service plane's price: the same budget split across two tenant
    // campaigns multiplexed over one 2-process fleet by the control-plane
    // dispatcher (stride fairness, per-tenant corpus/coverage/checkpoint
    // state). Speedup is relative to the unverified 1-process dist arm,
    // so the column reads directly as multi-tenancy overhead.
    {
        let registry = MetricsRegistry::new();
        let svc = std::sync::Arc::new(
            Service::new(
                &suite,
                LABEL,
                &seeds,
                ServiceConfig {
                    batch_per_round: batch,
                    lease_size: 4,
                    lease_timeout: Duration::from_secs(60),
                    registry: registry.clone(),
                    ..Default::default()
                },
            )
            .expect("service"),
        );
        let half = seeds.shape()[0] / 2;
        let ids: Vec<u64> = [("bench-a", 0), ("bench-b", half)]
            .iter()
            .map(|&(name, offset)| {
                let spec = CampaignSpec {
                    seed: 42,
                    seeds: half,
                    seed_offset: offset,
                    max_steps: Some(budget / 2),
                    ..CampaignSpec::named(name)
                };
                let granted = svc.submit(spec).expect("submit");
                granted.get("id").and_then(Json::as_u64).expect("submit grants an id")
            })
            .collect();
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let stop = svc.stop_handle();
        let started = std::time::Instant::now();
        let server = {
            let svc = std::sync::Arc::clone(&svc);
            std::thread::spawn(move || svc.serve(listener))
        };
        let exe = std::env::current_exe().expect("current exe");
        let children: Vec<_> = (0..2)
            .map(|_| {
                std::process::Command::new(&exe)
                    .env("DX_DIST_WORKER", &addr)
                    .env("DX_SCALE", "test")
                    .stdout(std::process::Stdio::null())
                    .spawn()
                    .expect("spawn bench worker")
            })
            .collect();
        let tenant_field = |id: u64, field: &str| -> f64 {
            svc.status(id).ok().and_then(|s| s.get(field).and_then(Json::as_f64)).unwrap_or(0.0)
        };
        while !ids.iter().all(|&id| {
            svc.status(id)
                .ok()
                .and_then(|s| s.get("status").map(|v| v.as_str() == Some("done")))
                .unwrap_or(false)
        }) {
            std::thread::sleep(Duration::from_millis(20));
        }
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        stop.stop();
        server.join().expect("service thread").expect("service serve");
        for mut child in children {
            let _ = child.wait();
        }
        let steps: f64 = ids.iter().map(|&id| tenant_field(id, "steps_done")).sum();
        let diffs: f64 = ids.iter().map(|&id| tenant_field(id, "diffs")).sum();
        let cover: f64 =
            ids.iter().map(|&id| tenant_field(id, "mean_coverage")).sum::<f64>() / ids.len() as f64;
        let sps = steps / elapsed;
        let baseline_sps = baseline.expect("dist arms ran first");
        out.line(format!(
            "{:<16} {:>9.2} {:>9.2} {:>9} {:>8.1}% {:>8.2}x",
            "svc (2x2 proc)",
            sps,
            diffs / elapsed,
            diffs as usize,
            100.0 * cover,
            sps / baseline_sps,
        ));
        out.line(format!("    phases: {}", phase_breakdown(&registry)));
    }

    // The profile-based variants: same budget, the finer DeepGauge
    // signals. Section/corner deltas are denser than neuron deltas, so
    // these arms price the extra wire and union cost of each metric; the
    // composite arm additionally prices the component-prefixed deltas.
    for (tag, metric) in [
        ("ms", "multisection:4".parse::<dx_coverage::MetricSpec>().expect("spec")),
        ("ms+b", "multisection:4+boundary".parse().expect("spec")),
    ] {
        let (var_suite, var_seeds) = suite_and_seeds(n_seeds, &metric);
        out.line(format!(
            "{metric} variant (same budget, profiles primed from 128 training inputs)"
        ));
        let mut var_pool = Campaign::new(
            var_suite.clone(),
            &var_seeds,
            CampaignConfig {
                workers: 1,
                epochs: rounds,
                batch_per_epoch: batch,
                seed: 42,
                ..Default::default()
            },
        );
        var_pool.run().expect("no checkpoint dir configured, run cannot fail");
        let var_pool_sps = var_pool.report().seeds_per_sec();
        out.line(format!(
            "{:<16} {:>9.2} {:>9.2} {:>9} {:>8.1}% {:>8.2}x",
            format!("{tag} pool (1 thr)"),
            var_pool_sps,
            var_pool.report().diffs_per_sec(),
            var_pool.report().total_diffs(),
            100.0 * var_pool.mean_coverage(),
            var_pool_sps / pool_sps,
        ));
        for workers in [1usize, 2] {
            let coordinator = Coordinator::new(
                &var_suite,
                LABEL,
                &var_seeds,
                CoordinatorConfig {
                    max_steps: Some(budget),
                    batch_per_round: batch,
                    lease_size: 4,
                    lease_timeout: Duration::from_secs(60),
                    seed: 42,
                    ..Default::default()
                },
            );
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
            let addr = listener.local_addr().expect("local addr").to_string();
            let exe = std::env::current_exe().expect("current exe");
            let children: Vec<_> = (0..workers)
                .map(|_| {
                    std::process::Command::new(&exe)
                        .env("DX_DIST_WORKER", &addr)
                        .env("DX_DIST_METRIC", metric.to_string())
                        .env("DX_SCALE", "test")
                        .stdout(std::process::Stdio::null())
                        .spawn()
                        .expect("spawn bench worker")
                })
                .collect();
            let report = coordinator.serve(listener).expect("coordinator serve");
            for mut child in children {
                let _ = child.wait();
            }
            let sps = report.report.seeds_per_sec();
            let merged = report.coverage.iter().sum::<f32>() / report.coverage.len() as f32;
            out.line(format!(
                "{:<16} {:>9.2} {:>9.2} {:>9} {:>8.1}% {:>8.2}x",
                format!("{tag} dist ({workers} proc)"),
                sps,
                report.report.diffs_per_sec(),
                report.report.total_diffs(),
                100.0 * merged,
                sps / var_pool_sps,
            ));
        }
    }
}
