//! Table 11: time to the first difference-inducing input as λ2 varies
//! (λ2 weights the neuron-coverage objective against differential
//! behaviour, Eq. 3).

use deepxplore::Hyperparams;
use dx_bench::{bench_zoo, setup_for, time_to_first_difference, BenchOut};
use dx_models::DatasetKind;

fn main() {
    let mut out = BenchOut::new("table11_lambda2");
    let mut zoo = bench_zoo();
    let grid = [0.5f32, 1.0, 2.0, 3.0];
    let runs = 6;
    out.line("Table 11: time (s) to first difference vs λ2 (mean over 6 runs)");
    out.line(format!(
        "{:<10} {:>9} {:>9} {:>9} {:>9}",
        "dataset", "λ2=0.5", "λ2=1", "λ2=2", "λ2=3"
    ));
    for kind in DatasetKind::ALL {
        let ds = zoo.dataset(kind).clone();
        let base = setup_for(kind, &ds).hp;
        let mut cells = Vec::new();
        for &l2 in &grid {
            let hp = Hyperparams { lambda2: l2, max_iters: 40, ..base };
            let cell = match time_to_first_difference(&mut zoo, kind, hp, None, runs) {
                Some((secs, _)) => format!("{secs:>8.3}s"),
                None => format!("{:>9}", "-"),
            };
            cells.push(cell);
        }
        out.line(format!("{:<10} {}", kind.id(), cells.join(" ")));
    }
    out.line("");
    out.line("paper: λ2 = 0.5 is optimal for every dataset; time grows with λ2");
    out.line("(the coverage objective pulls the search away from the boundary)");
}
