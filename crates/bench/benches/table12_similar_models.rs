//! Table 12: how many gradient-ascent iterations DeepXplore needs to split
//! two models, as a function of how *similar* they are.
//!
//! A control LeNet-1 is compared against variants differing only in
//! (1) withheld training samples, (2) extra filters per conv layer, or
//! (3) extra training epochs. Identical models time out ('-'), and fewer
//! differences mean more iterations — the paper's headline trend.

use deepxplore::generator::mean_iterations_to_difference;
use deepxplore::{Constraint, Hyperparams};
use dx_bench::{bench_zoo, seed_count, BenchOut};
use dx_models::variants::{lenet1_wider, train_variant};
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::rng;

fn main() {
    let mut out = BenchOut::new("table12_similar_models");
    let mut zoo = bench_zoo();
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let labels = ds.train_labels.classes().to_vec();
    let n_train = ds.train_len();
    let base_samples = n_train - 1100; // Room to withhold up to 1,000.
    let base_epochs = 3;
    let n_seeds = seed_count(25);
    let hp = Hyperparams { max_iters: 300, ..Hyperparams::image_defaults() };

    let control =
        train_variant(lenet1_wider(0), &ds.train_x, &labels, base_samples, base_epochs, 42);
    let mut r = rng::rng(1212);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
    let seeds = gather_rows(&ds.test_x, &picks);

    let measure = |variant: &dx_nn::Network, tag: &str| -> String {
        match mean_iterations_to_difference(&control, variant, &seeds, hp, Constraint::Clip, 99) {
            Some(iters) => format!("{iters:>8.1}"),
            None => {
                let _ = tag;
                format!("{:>8}", "-")
            }
        }
    };

    out.line(format!(
        "Table 12: mean iterations to first difference vs model similarity \
         ({n_seeds} seeds, timeout {} iters; paper: 100 seeds, 1,000 iters)",
        hp.max_iters
    ));

    // Axis 1: withheld training samples.
    out.line("");
    out.line("training samples withheld:   0        1      100     1000");
    let mut cells = Vec::new();
    for &d in &[0usize, 1, 100, 1000] {
        let v =
            train_variant(lenet1_wider(0), &ds.train_x, &labels, base_samples - d, base_epochs, 42);
        cells.push(measure(&v, "samples"));
    }
    out.line(format!("mean iterations:          {}", cells.join(" ")));

    // Axis 2: extra filters per conv layer.
    out.line("");
    out.line("extra filters per layer:     0        1        2        3        4");
    let mut cells = Vec::new();
    for &d in &[0usize, 1, 2, 3, 4] {
        let v = train_variant(lenet1_wider(d), &ds.train_x, &labels, base_samples, base_epochs, 42);
        cells.push(measure(&v, "filters"));
    }
    out.line(format!("mean iterations:          {}", cells.join(" ")));

    // Axis 3: extra training epochs.
    out.line("");
    out.line("extra training epochs:       0        1        2        4");
    let mut cells = Vec::new();
    for &d in &[0usize, 1, 2, 4] {
        let v =
            train_variant(lenet1_wider(0), &ds.train_x, &labels, base_samples, base_epochs + d, 42);
        cells.push(measure(&v, "epochs"));
    }
    out.line(format!("mean iterations:          {}", cells.join(" ")));

    out.line("");
    out.line("paper: identical models time out ('-'); iterations fall as the");
    out.line("difference grows (e.g. 616->504->257 for withheld samples,");
    out.line("70->19 for 1->4 extra filters)");
}
