//! Table 8: total time for DeepXplore to reach 100% neuron coverage, and
//! the number of seeds it needed.
//!
//! As in the paper, image models track coverage only on non-dense layers
//! (dense-layer neurons are very hard to activate); the malware MLPs track
//! everything. Coverage uses t = 0 on raw activations. If 100% is not
//! reached within the seed budget, the achieved coverage is reported.

use deepxplore::generator::Generator;
use deepxplore::Hyperparams;
use dx_bench::{bench_zoo, seed_count, setup_for, BenchOut};
use dx_coverage::CoverageConfig;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::rng;

/// Activation indices of spatial (non-dense) coverage layers; falls back
/// to all coverage layers for pure MLPs.
fn non_dense_activations(net: &dx_nn::Network) -> Vec<usize> {
    let spatial: Vec<usize> = net
        .coverage_activation_indices()
        .into_iter()
        .filter(|&a| net.activation_shapes()[a].len() == 3)
        .collect();
    if spatial.is_empty() {
        net.coverage_activation_indices()
    } else {
        spatial
    }
}

fn main() {
    let mut out = BenchOut::new("table8_full_coverage_time");
    let mut zoo = bench_zoo();
    let budget = seed_count(120);
    out.line("Table 8: time to reach 100% neuron coverage (t = 0, non-dense layers)");
    out.line(format!(
        "{:<10} {:>9} {:>9} {:>9} {:>8} {:>10}",
        "dataset", "C1", "C2", "C3", "#seeds", "coverage"
    ));
    for kind in DatasetKind::ALL {
        let models = zoo.trio(kind);
        let ds = zoo.dataset(kind).clone();
        let setup = setup_for(kind, &ds);
        let tracked: Vec<Vec<usize>> = models.iter().map(non_dense_activations).collect();
        let mut gen = Generator::new(
            models,
            setup.task,
            Hyperparams { desired_coverage: Some(1.0), count_preexisting: true, ..setup.hp },
            setup.constraint,
            CoverageConfig::default(),
            808,
        )
        .with_tracked_activations(&tracked);
        let mut r = rng::rng(809);
        let n = budget.min(ds.test_len());
        let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n);
        let seeds = gather_rows(&ds.test_x, &picks);
        let t0 = std::time::Instant::now();
        let result = gen.run(&seeds);
        let elapsed = t0.elapsed();
        let cov = gen.coverage();
        out.line(format!(
            "{:<10} {:>8.1?} {:>8.1?} {:>8.1?} {:>8} {:>9.1}%",
            kind.id(),
            elapsed,
            elapsed,
            elapsed,
            result.stats.seeds_tried,
            100.0 * (cov.iter().sum::<f32>() / cov.len() as f32),
        ));
    }
    out.line("");
    out.line("paper: 6.6s..196.4s per model with 6..35 seeds (GPU); shape to match:");
    out.line("coverage saturates with a small number of seeds, malware MLPs fastest");
}
