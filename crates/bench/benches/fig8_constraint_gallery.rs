//! Figure 8: the gallery of seed vs difference-inducing images under the
//! three image constraints (lighting, single-rectangle occlusion, multiple
//! tiny black rectangles).
//!
//! Images are written under `bench_results/fig8/` as PGM (grayscale) or
//! PPM (colour); the printed table records each pair's predictions.

use deepxplore::generator::Generator;
use deepxplore::{Constraint, Hyperparams};
use dx_bench::{bench_zoo, setup_for, BenchOut};
use dx_coverage::CoverageConfig;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::Image;

fn main() {
    let mut out = BenchOut::new("fig8_constraint_gallery");
    let dir = dx_bench::results_dir().join("fig8");
    std::fs::create_dir_all(&dir).expect("creating fig8 output dir");
    let mut zoo = bench_zoo();
    out.line("Figure 8: difference-inducing inputs under the three image constraints");
    out.line(format!("images written to {}", dir.display()));
    out.line("");
    out.line(format!(
        "{:<10} {:<12} {:>6} {:>28} {:>8}",
        "dataset", "constraint", "seed#", "predictions", "iters"
    ));

    for kind in [DatasetKind::Mnist, DatasetKind::Imagenet, DatasetKind::Driving] {
        let models = zoo.trio(kind);
        let ds = zoo.dataset(kind).clone();
        let setup = setup_for(kind, &ds);
        let shape = ds.sample_shape().to_vec();
        let constraints: [(&str, Constraint); 3] = [
            ("lighting", Constraint::Lighting),
            ("single_rect", Constraint::SingleRect { h: shape[1] / 4, w: shape[2] / 4 }),
            ("multi_rects", Constraint::MultiRects { size: 3, count: 5 }),
        ];
        for (name, constraint) in constraints {
            let mut gen = Generator::new(
                models.clone(),
                setup.task,
                Hyperparams { max_iters: 40, step: 0.05, ..setup.hp },
                constraint,
                CoverageConfig::default(),
                88,
            );
            let mut found = 0;
            for seed_idx in 0..ds.test_len().min(60) {
                let seed = gather_rows(&ds.test_x, &[seed_idx]);
                let Some(test) = gen.generate_from_seed(seed_idx, &seed) else {
                    continue;
                };
                found += 1;
                let tag = format!("{}_{name}_{found}", kind.id());
                let ext = if shape[0] >= 3 { "ppm" } else { "pgm" };
                let seed_img = Image::from_tensor(seed.reshape(&shape));
                let gen_img = Image::from_tensor(test.input.reshape(&shape));
                seed_img.save(&dir.join(format!("{tag}_seed.{ext}"))).ok();
                gen_img.save(&dir.join(format!("{tag}_diff.{ext}"))).ok();
                out.line(format!(
                    "{:<10} {:<12} {:>6} {:>28} {:>8}",
                    kind.id(),
                    name,
                    seed_idx,
                    format!("{:?}", test.predictions),
                    test.iterations
                ));
                if found == 2 {
                    break;
                }
            }
            if found == 0 {
                out.line(format!("{:<10} {:<12} (no difference within 60 seeds)", kind.id(), name));
            }
        }
    }
    out.line("");
    out.line("paper: shows 18 seed/difference pairs; all three constraints produce");
    out.line("visually plausible corner cases (darker scenes, occluded patches, dirt)");
}
