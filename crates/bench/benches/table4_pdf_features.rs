//! Table 4: the top-3 most in(de)cremented features for PDF malware inputs
//! that a detector then (wrongly) marks as benign.

use deepxplore::generator::Generator;
use dx_bench::{bench_zoo, setup_for, BenchOut};
use dx_coverage::CoverageConfig;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;

fn main() {
    let mut out = BenchOut::new("table4_pdf_features");
    let mut zoo = bench_zoo();
    let models = zoo.trio(DatasetKind::Pdf);
    let ds = zoo.dataset(DatasetKind::Pdf).clone();
    let setup = setup_for(DatasetKind::Pdf, &ds);
    let scale = ds.feature_scale.as_ref().expect("pdf scales").data().to_vec();
    let labels = ds.test_labels.classes();
    let malicious: Vec<usize> = (0..ds.test_len()).filter(|&i| labels[i] == 1).collect();

    let mut gen = Generator::new(
        models.clone(),
        setup.task,
        setup.hp,
        setup.constraint,
        CoverageConfig::default(),
        404,
    );
    out.line("Table 4: top-3 most in(de)cremented features for PDF malware inputs");
    out.line("that a PDF classifier then (wrongly) marks as benign");
    out.line("");
    let mut shown = 0;
    for (si, &seed_idx) in malicious.iter().enumerate() {
        let seed = gather_rows(&ds.test_x, &[seed_idx]);
        let Some(test) = gen.generate_from_seed(si, &seed) else { continue };
        if !models.iter().any(|m| m.predict_classes(&test.input)[0] == 0) {
            continue;
        }
        shown += 1;
        // Rank features by absolute raw change.
        let mut changes: Vec<(usize, i64, i64)> = (0..seed.len())
            .map(|i| {
                let before = (seed.data()[i] * scale[i]).round() as i64;
                let after = (test.input.data()[i] * scale[i]).round() as i64;
                (i, before, after)
            })
            .filter(|(_, b, a)| a != b)
            .collect();
        changes.sort_by_key(|(_, b, a)| -(a - b).abs());
        out.line(format!("input {shown} ({} features changed; top 3 shown)", changes.len()));
        out.line(format!("  {:<24} before  after", "feature"));
        for (i, before, after) in changes.iter().take(3) {
            out.line(format!("  {:<24} {before:>6} {after:>6}", ds.feature_names[*i]));
        }
        out.line("");
        if shown == 2 {
            break;
        }
    }
    if shown < 2 {
        out.line(format!("(only {shown} full evasions found — rerun with more seeds)"));
    }
    out.line("paper: e.g. size 1->34, count_action 0->21, count_endobj 1->20;");
    out.line("size 1->27, count_font 0->15, author_num 10->5");
}
