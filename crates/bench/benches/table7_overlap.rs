//! Table 7: inputs of the same class activate more overlapping neurons
//! than inputs of different classes (LeNet-5 on MNIST, 100 + 100 pairs).

use dx_bench::{bench_zoo, BenchOut};
use dx_coverage::overlap::pair_overlap_stats;
use dx_coverage::{CoverageConfig, CoverageTracker, Granularity};
use dx_models::DatasetKind;
use dx_nn::util::row;
use dx_tensor::{rng, Tensor};
use rand::Rng as _;

fn main() {
    let mut out = BenchOut::new("table7_overlap");
    let mut zoo = bench_zoo();
    let net = zoo.model("MNI_C3"); // LeNet-5, as in the paper.
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let labels = ds.test_labels.classes().to_vec();

    // Index test samples by class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); 10];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    let mut r = rng::rng(707);
    let mut same_pairs: Vec<(Tensor, Tensor)> = Vec::new();
    while same_pairs.len() < 100 {
        let c = r.gen_range(0..10usize);
        if by_class[c].len() < 2 {
            continue;
        }
        let a = by_class[c][r.gen_range(0..by_class[c].len())];
        let b = by_class[c][r.gen_range(0..by_class[c].len())];
        if a != b {
            same_pairs.push((row(&ds.test_x, a), row(&ds.test_x, b)));
        }
    }
    let mut diff_pairs: Vec<(Tensor, Tensor)> = Vec::new();
    while diff_pairs.len() < 100 {
        let c1 = r.gen_range(0..10usize);
        let c2 = r.gen_range(0..10usize);
        if c1 == c2 || by_class[c1].is_empty() || by_class[c2].is_empty() {
            continue;
        }
        let a = by_class[c1][r.gen_range(0..by_class[c1].len())];
        let b = by_class[c2][r.gen_range(0..by_class[c2].len())];
        diff_pairs.push((row(&ds.test_x, a), row(&ds.test_x, b)));
    }

    // Unit granularity to echo the paper's 268-neuron LeNet-5 count.
    let cfg =
        CoverageConfig { threshold: 0.25, scale_per_layer: true, granularity: Granularity::Unit };
    let total = CoverageTracker::for_network(&net, cfg).total();
    let (same_active, same_overlap) = pair_overlap_stats(&net, cfg, &same_pairs);
    let (diff_active, diff_overlap) = pair_overlap_stats(&net, cfg, &diff_pairs);

    out.line("Table 7: average overlap of activated neurons (LeNet-5, 100 pairs each)");
    out.line(format!(
        "{:<12} {:>13} {:>20} {:>13}",
        "pair type", "total neurons", "avg. activated", "avg. overlap"
    ));
    out.line(format!(
        "{:<12} {:>13} {:>20.1} {:>13.1}",
        "diff. class", total, diff_active, diff_overlap
    ));
    out.line(format!(
        "{:<12} {:>13} {:>20.1} {:>13.1}",
        "same class", total, same_active, same_overlap
    ));
    out.line("");
    out.line(format!(
        "same-class overlap exceeds different-class overlap: {}",
        same_overlap > diff_overlap
    ));
    out.line("paper: 268 neurons; activated 83.6 vs 84.1; overlap 45.9 (diff) vs 74.2 (same)");
}
