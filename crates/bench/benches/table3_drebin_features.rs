//! Table 3: manifest features DeepXplore adds to make Android malware
//! pass as benign.

use deepxplore::generator::Generator;
use dx_bench::{bench_zoo, setup_for, BenchOut};
use dx_coverage::CoverageConfig;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;

fn main() {
    let mut out = BenchOut::new("table3_drebin_features");
    let mut zoo = bench_zoo();
    let models = zoo.trio(DatasetKind::Drebin);
    let ds = zoo.dataset(DatasetKind::Drebin).clone();
    let setup = setup_for(DatasetKind::Drebin, &ds);
    let labels = ds.test_labels.classes();
    let malicious: Vec<usize> = (0..ds.test_len()).filter(|&i| labels[i] == 1).collect();

    let mut gen = Generator::new(
        models.clone(),
        setup.task,
        setup.hp,
        setup.constraint,
        CoverageConfig::default(),
        303,
    );
    out.line("Table 3: manifest features added to malware inputs that an Android app");
    out.line("classifier then (wrongly) marks as benign");
    out.line("");
    let mut shown = 0;
    for (si, &seed_idx) in malicious.iter().enumerate() {
        let seed = gather_rows(&ds.test_x, &[seed_idx]);
        let Some(test) = gen.generate_from_seed(si, &seed) else { continue };
        // Require an actual benign verdict from at least one model.
        if !models.iter().any(|m| m.predict_classes(&test.input)[0] == 0) {
            continue;
        }
        shown += 1;
        let added: Vec<&str> = (0..seed.len())
            .filter(|&i| seed.data()[i] < 0.5 && test.input.data()[i] > 0.5)
            .map(|i| ds.feature_names[i].as_str())
            .collect();
        out.line(format!("input {shown} ({} features added; top 3 shown)", added.len()));
        out.line(format!("  {:<40} before  after", "feature"));
        for name in added.iter().take(3) {
            out.line(format!("  {name:<40} {:>6} {:>6}", 0, 1));
        }
        out.line("");
        if shown == 2 {
            break;
        }
    }
    if shown < 2 {
        out.line(format!("(only {shown} full evasions found — rerun with more seeds)"));
    }
    out.line("paper: adds e.g. feature::bluetooth, activity::.SmartAlertTerms,");
    out.line("service_receiver::.rrltpsi / provider::xclockprovider,");
    out.line("permission::CALL_PHONE, provider::contentprovider (all 0 -> 1)");
}
