//! Figure 9: neuron coverage achieved by the same number of inputs from
//! DeepXplore, adversarial testing (FGSM) and random selection, as the
//! activation threshold t varies.
//!
//! Methodology as in the paper: each method contributes the *same number*
//! of inputs (the paper used 1% of each test set); coverage is measured on
//! all three models of the trio and averaged.

use deepxplore::baselines::{fgsm_batch, random_selection};
use deepxplore::generator::Generator;
use deepxplore::Hyperparams;
use dx_bench::{bench_zoo, seed_count, setup_for, BenchOut};
use dx_coverage::{CoverageConfig, CoverageTracker};
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_nn::Network;
use dx_tensor::{rng, Tensor};

/// Mean coverage of `inputs` over the trio at threshold `t`.
fn coverage_of(models: &[Network], inputs: &Tensor, t: f32) -> f32 {
    let mut total = 0.0;
    for m in models {
        let mut tracker = CoverageTracker::for_network(m, CoverageConfig::scaled(t));
        for i in 0..inputs.shape()[0] {
            tracker.update(&m.forward(&gather_rows(inputs, &[i])));
        }
        total += tracker.coverage();
    }
    total / models.len() as f32
}

fn main() {
    let mut out = BenchOut::new("fig9_coverage_vs_threshold");
    let mut zoo = bench_zoo();
    let k = seed_count(30);
    let thresholds = [0.0f32, 0.25, 0.5, 0.75];
    out.line(format!("Figure 9: neuron coverage vs threshold t, {k} inputs per method"));
    for kind in DatasetKind::ALL {
        let models = zoo.trio(kind);
        let ds = zoo.dataset(kind).clone();
        let setup = setup_for(kind, &ds);

        // DeepXplore inputs: run the generator until k tests accumulate.
        let mut gen = Generator::new(
            models.clone(),
            setup.task,
            Hyperparams { max_iters: 40, ..setup.hp },
            setup.constraint,
            CoverageConfig::scaled(0.25),
            909,
        );
        let mut r = rng::rng(910);
        let picks =
            rng::sample_without_replacement(&mut r, ds.test_len(), ds.test_len().min(6 * k));
        let mut dx_inputs: Vec<Tensor> = Vec::new();
        for (i, &p) in picks.iter().enumerate() {
            if dx_inputs.len() >= k {
                break;
            }
            let seed = gather_rows(&ds.test_x, &[p]);
            if let Some(test) = gen.generate_from_seed(i, &seed) {
                dx_inputs.push(test.input.reshape(ds.sample_shape()));
            }
        }
        let have_k = dx_inputs.len().max(1);
        let dx_batch = dx_nn::util::stack(&dx_inputs.to_vec());

        // Baselines with the same number of inputs.
        let random = random_selection(&ds.test_x, have_k, 911);
        let adversarial = match setup.task {
            deepxplore::generator::TaskKind::Classification => {
                let pool = random_selection(&ds.test_x, have_k, 912);
                fgsm_batch(&models[0], &pool, 0.05)
            }
            deepxplore::generator::TaskKind::Regression { .. } => {
                let pool = random_selection(&ds.test_x, have_k, 912);
                let mut advs = Vec::new();
                for i in 0..have_k {
                    let x = gather_rows(&pool, &[i]);
                    advs.push(
                        deepxplore::baselines::fgsm_regressor(&models[0], &x, 0.05)
                            .reshape(ds.sample_shape()),
                    );
                }
                dx_nn::util::stack(&advs)
            }
        };

        out.line("");
        out.line(format!("{} ({} DeepXplore tests collected)", kind.id(), dx_inputs.len()));
        out.line(format!("{:>6} {:>12} {:>12} {:>12}", "t", "deepxplore", "adversarial", "random"));
        for &t in &thresholds {
            out.line(format!(
                "{t:>6.2} {:>11.1}% {:>11.1}% {:>11.1}%",
                100.0 * coverage_of(&models, &dx_batch, t),
                100.0 * coverage_of(&models, &adversarial, t),
                100.0 * coverage_of(&models, &random, t),
            ));
        }
    }
    out.line("");
    out.line("paper: DeepXplore covers 34.4%/33.2% more neurons than random/adversarial");
    out.line("on average; all three methods degrade as t rises");
}
