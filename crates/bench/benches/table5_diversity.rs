//! Table 5: neuron coverage increases the diversity (average L1 distance)
//! of the generated difference-inducing inputs — the λ2 ablation.
//!
//! Three experiments on MNIST seeds, λ2 = 0 (no coverage objective) vs
//! λ2 = 1, reporting average L1 distance from seed, neuron coverage at
//! t = 0.25, and the number of differences found.

use deepxplore::generator::Generator;
use deepxplore::Hyperparams;
use dx_bench::{bench_zoo, seed_count, setup_for, BenchOut};
use dx_coverage::CoverageConfig;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::{metrics, rng};

struct Arm {
    diversity: f32,
    nc: f32,
    diffs: usize,
}

fn run_arm(zoo: &mut dx_models::Zoo, lambda2: f32, exp: u64, n_seeds: usize) -> Arm {
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let setup = setup_for(DatasetKind::Mnist, &ds);
    let hp = Hyperparams { lambda2, ..setup.hp };
    let mut gen =
        Generator::new(models, setup.task, hp, setup.constraint, CoverageConfig::scaled(0.25), exp);
    let mut r = rng::rng(500 + exp);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
    let seeds = gather_rows(&ds.test_x, &picks);
    let result = gen.run(&seeds);
    let mut total_l1 = 0.0;
    for t in &result.tests {
        let seed = gather_rows(&seeds, &[t.seed_index]);
        // The paper reports L1 in 8-bit pixel units; ours are [0, 1], so
        // scale by 255 for comparability.
        total_l1 += metrics::l1_distance(&t.input, &seed) * 255.0;
    }
    Arm {
        diversity: if result.tests.is_empty() { 0.0 } else { total_l1 / result.tests.len() as f32 },
        nc: gen.mean_coverage(),
        diffs: result.stats.differences_found,
    }
}

fn main() {
    let mut out = BenchOut::new("table5_diversity");
    let mut zoo = bench_zoo();
    let n_seeds = seed_count(150);
    out.line(format!(
        "Table 5: diversity of difference-inducing inputs, λ2 = 0 vs λ2 = 1 \
         ({n_seeds} MNIST seeds per run; paper used 2,000)"
    ));
    out.line(format!(
        "{:<5} | {:>12} {:>7} {:>7} | {:>12} {:>7} {:>7}",
        "exp", "div(λ2=0)", "NC", "#diffs", "div(λ2=1)", "NC", "#diffs"
    ));
    for exp in 1..=3u64 {
        let without = run_arm(&mut zoo, 0.0, exp, n_seeds);
        let with = run_arm(&mut zoo, 1.0, exp, n_seeds);
        out.line(format!(
            "{exp:<5} | {:>12.1} {:>6.1}% {:>7} | {:>12.1} {:>6.1}% {:>7}",
            without.diversity,
            100.0 * without.nc,
            without.diffs,
            with.diversity,
            100.0 * with.nc,
            with.diffs,
        ));
    }
    out.line("");
    out.line("paper: λ2=1 raises diversity (237.9->283.3, 194.6->253.2, 170.8->182.7)");
    out.line("and NC by 1-2 points while finding slightly fewer differences");
}
