//! Campaign worker-count scaling: seeds/sec and diffs found at 1/2/4/8
//! workers on the MNIST test-scale trio, for the paper's neuron metric,
//! the DeepGauge multisection signal, its boundary/corner complement,
//! and the multisection+boundary composite.
//!
//! Not a paper table — the campaign engine is this workspace's extension
//! beyond the paper's one-shot Algorithm 1 loop. Each arm runs the same
//! campaign (same seeds, same epoch/batch schedule, same master RNG seed)
//! with a different worker-pool size; speedup is relative to the 1-worker
//! arm of the same metric, so the neuron-vs-multisection rows also show
//! what the finer signal costs per seed. The work is CPU-bound gradient
//! ascent, so scaling tracks the machine's core count — the available
//! parallelism is printed alongside.

use dx_bench::BenchOut;
use dx_campaign::{Campaign, CampaignConfig, ModelSuite};
use dx_coverage::{CoverageConfig, SignalSpec};
use dx_models::{DatasetKind, Scale, Zoo, ZooConfig};
use dx_nn::util::gather_rows;
use dx_telemetry::phase::{set_timing_enabled, Phase, TIME_BUCKETS};
use dx_telemetry::MetricsRegistry;
use dx_tensor::rng;

/// Renders the generator's per-phase wall-clock split as recorded in
/// `registry` during one campaign arm, e.g.
/// `forward 52.1%  gradient 39.0%  constraint 5.6%  coverage 3.3%`.
fn phase_breakdown(registry: &MetricsRegistry) -> String {
    let sums: Vec<(&str, f64)> = Phase::ALL
        .iter()
        .map(|p| {
            let h = registry.histogram("dx_phase_seconds", &[("phase", p.name())], &TIME_BUCKETS);
            (p.name(), h.sum())
        })
        .collect();
    let total: f64 = sums.iter().map(|(_, s)| s).sum();
    if total <= 0.0 {
        return "no phase samples".into();
    }
    let parts: Vec<String> =
        sums.iter().map(|(n, s)| format!("{n} {:.1}%", 100.0 * s / total)).collect();
    parts.join("  ")
}

fn main() {
    let mut out = BenchOut::new("campaign_scaling");
    let mut zoo = Zoo::new(ZooConfig::new(Scale::Test));
    let models = zoo.trio(DatasetKind::Mnist);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let setup = dx_bench::setup_for(DatasetKind::Mnist, &ds);
    let n_seeds = dx_bench::seed_count(24).min(ds.test_len());
    let epochs = 3;
    let batch = 2 * n_seeds / 3;
    let mut r = rng::rng(0xca3b);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds);
    let seeds = gather_rows(&ds.test_x, &picks);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    out.line("Campaign scaling: MNIST test-scale trio, coverage-guided corpus");
    out.line(format!(
        "{n_seeds} initial seeds, {epochs} epochs x {batch} seeds/epoch, \
         {cores} core(s) available"
    ));
    out.line(format!(
        "{:<16} {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "metric", "workers", "seeds/s", "diffs/s", "diffs", "cover%", "speedup"
    ));

    let neuron_spec = SignalSpec::neuron(CoverageConfig::scaled(0.25));
    let ms_spec = SignalSpec::multisection(CoverageConfig::default(), 4, Vec::new()).primed(
        &models,
        &ds.train_x,
        128.min(ds.train_x.shape()[0]),
    );
    // Boundary and the composite share the multisection profiles — same
    // ranges, so the arms differ only in which units they count.
    let boundary_spec = SignalSpec::boundary(CoverageConfig::default(), ms_spec.profiles.clone());
    let composite_spec = SignalSpec::of(
        CoverageConfig::default(),
        "multisection:4+boundary".parse().expect("spec"),
        ms_spec.profiles.clone(),
    );
    for (metric_name, spec, worker_arms) in [
        ("neuron", neuron_spec, &[1usize, 2, 4, 8][..]),
        // The finer DeepGauge signals, on a smaller worker sweep: the
        // interesting number is their per-seed cost vs the neuron rows.
        ("multisection:4", ms_spec, &[1usize, 2][..]),
        ("boundary", boundary_spec, &[1usize, 2][..]),
        ("ms:4+boundary", composite_spec, &[1usize, 2][..]),
    ] {
        let mut baseline = None;
        for &workers in worker_arms {
            let suite = ModelSuite {
                models: models.clone(),
                kind: setup.task,
                hp: setup.hp,
                constraint: setup.constraint.clone(),
                signal: spec.clone(),
            };
            // A fresh registry per arm so the phase breakdown below is
            // this arm's split, not a running total across arms.
            let registry = MetricsRegistry::new();
            let mut campaign = Campaign::new(
                suite,
                &seeds,
                CampaignConfig {
                    workers,
                    epochs,
                    batch_per_epoch: batch,
                    seed: 42,
                    registry: registry.clone(),
                    ..Default::default()
                },
            );
            campaign.run().expect("no checkpoint dir configured, run cannot fail");
            let report = campaign.report();
            let sps = report.seeds_per_sec();
            let baseline_sps = *baseline.get_or_insert(sps);
            out.line(format!(
                "{:<16} {:<8} {:>9.2} {:>9.2} {:>9} {:>8.1}% {:>8.2}x",
                metric_name,
                workers,
                sps,
                report.diffs_per_sec(),
                report.total_diffs(),
                100.0 * campaign.mean_coverage(),
                sps / baseline_sps,
            ));
            out.line(format!("    phases: {}", phase_breakdown(&registry)));
        }
    }

    // Batched tiling sweep: the same single-worker neuron campaign at
    // generator tile widths 1/4/8, with merge-every pinned to 8 across
    // the arms (the effective tile is min(batch, merge-every), and the
    // coverage-sync cadence must match for the arms to do identical
    // work). Tiling is pure — every arm lands on bit-identical corpus
    // and coverage state, so the cover% column must agree — and the
    // speedup column is the batched kernels' throughput win over the
    // scalar (tile-1) path on identical work. The nightly gate reads the
    // "batched speedup:" line below and fails if the tile-8 arm stops
    // paying for itself.
    // Short arms are noisy on a busy CI runner, so the sweep interleaves
    // reps across the widths and keeps each width's best rep — slow drift
    // (thermal, co-tenant load) then hits every width alike instead of
    // whichever arm happened to run last.
    const TILES: [usize; 3] = [1, 4, 8];
    let tile_reps = 3;
    let mut best: [(f64, f64, usize, f32); TILES.len()] = [(0.0, 0.0, 0, 0.0); TILES.len()];
    let mut breakdowns: Vec<String> = vec![String::new(); TILES.len()];
    for _ in 0..tile_reps {
        for (slot, &tile) in TILES.iter().enumerate() {
            let suite = ModelSuite {
                models: models.clone(),
                kind: setup.task,
                hp: setup.hp,
                constraint: setup.constraint.clone(),
                signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
            };
            let registry = MetricsRegistry::new();
            let mut campaign = Campaign::new(
                suite,
                &seeds,
                CampaignConfig {
                    workers: 1,
                    epochs,
                    batch_per_epoch: batch,
                    batch: tile,
                    merge_every: 8,
                    seed: 42,
                    registry: registry.clone(),
                    ..Default::default()
                },
            );
            campaign.run().expect("no checkpoint dir configured, run cannot fail");
            let report = campaign.report();
            let sps = report.seeds_per_sec();
            if sps > best[slot].0 {
                best[slot] =
                    (sps, report.diffs_per_sec(), report.total_diffs(), campaign.mean_coverage());
                breakdowns[slot] = phase_breakdown(&registry);
            }
        }
    }
    let tile1_sps = best[0].0;
    for (slot, &tile) in TILES.iter().enumerate() {
        let (sps, dps, diffs, cover) = best[slot];
        out.line(format!(
            "{:<16} {:<8} {:>9.2} {:>9.2} {:>9} {:>8.1}% {:>8.2}x",
            format!("tile:{tile}"),
            1,
            sps,
            dps,
            diffs,
            100.0 * cover,
            sps / tile1_sps,
        ));
        out.line(format!("    phases: {}", breakdowns[slot]));
    }
    out.line(format!(
        "batched speedup: {:.2}x (tile 8 vs tile 1, best of {tile_reps} interleaved reps each)",
        best[TILES.len() - 1].0 / tile1_sps,
    ));

    // Instrumentation overhead: the same single-worker neuron arm with the
    // hot-path phase timers compiled in but disabled, vs enabled. The gate
    // script asserts the enabled arms stay within a few percent. Reps are
    // interleaved off/on and the best of each side kept, so slow drift
    // (thermal, co-tenant load) hits both sides alike instead of whichever
    // side happened to run last.
    let overhead_reps = 5;
    let sps_once = |timing: bool| -> f64 {
        set_timing_enabled(timing);
        let suite = ModelSuite {
            models: models.clone(),
            kind: setup.task,
            hp: setup.hp,
            constraint: setup.constraint.clone(),
            signal: SignalSpec::neuron(CoverageConfig::scaled(0.25)),
        };
        let mut campaign = Campaign::new(
            suite,
            &seeds,
            CampaignConfig {
                workers: 1,
                epochs,
                batch_per_epoch: batch,
                seed: 42,
                registry: MetricsRegistry::new(),
                ..Default::default()
            },
        );
        campaign.run().expect("no checkpoint dir configured, run cannot fail");
        campaign.report().seeds_per_sec()
    };
    let (mut off, mut on) = (0.0f64, 0.0f64);
    for _ in 0..overhead_reps {
        off = off.max(sps_once(false));
        on = on.max(sps_once(true));
    }
    set_timing_enabled(true);
    out.line(format!(
        "telemetry overhead: {:.1}% (timers on {on:.2} vs off {off:.2} seeds/s, \
         best of {overhead_reps} interleaved reps each)",
        100.0 * (off - on) / off,
    ));
}
