//! Criterion micro-benchmarks of the engine primitives DeepXplore leans
//! on: forward passes, parameter backprop, and the joint input gradient.
//!
//! Not a paper table — a sanity harness for the substrate's performance
//! (the paper's analog is its §8 note that gradient computation takes
//! ~120ms per ImageNet image on a GTX 1070).

use criterion::{criterion_group, criterion_main, Criterion};
use dx_models::arch;
use dx_nn::Network;
use dx_tensor::{rng, Tensor};

fn trained_ish(mut net: Network, seed: u64) -> Network {
    net.init_weights(&mut rng::rng(seed));
    net
}

fn bench_forward(c: &mut Criterion) {
    let lenet = trained_ish(arch::lenet5(), 1);
    let x = rng::uniform(&mut rng::rng(2), &[1, 1, 28, 28], 0.0, 1.0);
    c.bench_function("lenet5_forward", |b| b.iter(|| lenet.forward(&x)));

    let dave = trained_ish(arch::dave_orig(), 3);
    let frame = rng::uniform(&mut rng::rng(4), &[1, 1, 32, 64], 0.0, 1.0);
    c.bench_function("dave_orig_forward", |b| b.iter(|| dave.forward(&frame)));
}

fn bench_backward(c: &mut Criterion) {
    let lenet = trained_ish(arch::lenet5(), 5);
    let x = rng::uniform(&mut rng::rng(6), &[4, 1, 28, 28], 0.0, 1.0);
    c.bench_function("lenet5_backward_params_b4", |b| {
        b.iter(|| {
            let pass = lenet.forward(&x);
            let grad = Tensor::ones(pass.output().shape());
            lenet.backward_params(&pass, &grad)
        })
    });
}

fn bench_input_gradient(c: &mut Criterion) {
    let lenet = trained_ish(arch::lenet5(), 7);
    let x = rng::uniform(&mut rng::rng(8), &[1, 1, 28, 28], 0.0, 1.0);
    c.bench_function("lenet5_class_input_gradient", |b| {
        b.iter(|| {
            let pass = lenet.forward(&x);
            lenet.class_score_input_gradient(&pass, 3)
        })
    });

    let vgg = trained_ish(arch::vgg_mini_16(), 9);
    let img = rng::uniform(&mut rng::rng(10), &[1, 3, 32, 32], 0.0, 1.0);
    c.bench_function("vgg_mini16_class_input_gradient", |b| {
        b.iter(|| {
            let pass = vgg.forward(&img);
            vgg.class_score_input_gradient(&pass, 0)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_forward, bench_backward, bench_input_gradient
}
criterion_main!(benches);
