//! Table 9: time to the first difference-inducing input as the gradient
//! step size `s` varies.
//!
//! Paper grid: s ∈ {0.01, 0.1, 1, 10, 100} on 8-bit pixels. Our inputs are
//! normalized to `[0, 1]`, so the image grid is divided by 255 (the paper's
//! s = 10 is our 0.039); the tabular datasets use the grid verbatim.

use deepxplore::Hyperparams;
use dx_bench::{bench_zoo, time_to_first_difference, BenchOut};
use dx_models::DatasetKind;

fn main() {
    let mut out = BenchOut::new("table9_step_size");
    let mut zoo = bench_zoo();
    let paper_grid = [0.01f32, 0.1, 1.0, 10.0, 100.0];
    let runs = 6;
    out.line("Table 9: time (s) to first difference vs step size s (mean over 6 runs)");
    out.line(format!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "dataset", "s=0.01", "s=0.1", "s=1", "s=10", "s=100"
    ));
    for kind in [
        DatasetKind::Mnist,
        DatasetKind::Imagenet,
        DatasetKind::Driving,
        DatasetKind::Pdf,
        DatasetKind::Drebin,
    ] {
        let mut cells = Vec::new();
        for &s_paper in &paper_grid {
            // Image pixels were 8-bit in the paper; normalize the step.
            let step = match kind {
                DatasetKind::Mnist | DatasetKind::Imagenet | DatasetKind::Driving => {
                    s_paper / 255.0
                }
                _ => s_paper,
            };
            let hp = Hyperparams { step, max_iters: 40, ..Hyperparams::image_defaults() };
            let cell = match time_to_first_difference(&mut zoo, kind, hp, None, runs) {
                Some((secs, _)) => format!("{secs:>8.3}s"),
                None => format!("{:>9}", "-"),
            };
            cells.push(cell);
        }
        out.line(format!("{:<10} {}", kind.id(), cells.join(" ")));
    }
    out.line("");
    out.line("'-' = no difference within the iteration budget (the paper's timeout).");
    out.line("paper: optimum varies per dataset (MNIST fastest at small s, ImageNet");
    out.line("at s=10); too-small steps slow everything down");
}
