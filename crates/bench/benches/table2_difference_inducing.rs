//! Table 2: number of difference-inducing inputs found per tested DNN,
//! with the paper's hyperparameters.
//!
//! The paper randomly selects 2,000 seeds per dataset; the default here is
//! 200 (`DX_SEEDS` to override). The reproduction target is the *shape*:
//! every dataset yields a substantial number of differences.

use deepxplore::generator::Generator;
use dx_bench::{bench_zoo, seed_count, setup_for, BenchOut};
use dx_coverage::CoverageConfig;
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::rng;

fn main() {
    let mut out = BenchOut::new("table2_difference_inducing");
    let mut zoo = bench_zoo();
    let n_seeds = seed_count(200);
    out.line(format!(
        "Table 2: difference-inducing inputs per dataset ({n_seeds} seeds; paper used 2,000)"
    ));
    out.line(format!(
        "{:<10} {:>5} {:>5} {:>7} {:>4} {:>12} {:>12} {:>9}",
        "dataset", "λ1", "λ2", "s", "t", "#seeds used", "#differences", "time"
    ));
    for kind in DatasetKind::ALL {
        let models = zoo.trio(kind);
        let ds = zoo.dataset(kind).clone();
        let setup = setup_for(kind, &ds);
        let mut gen = Generator::new(
            models,
            setup.task,
            setup.hp,
            setup.constraint,
            CoverageConfig::default(),
            0xBEEF,
        );
        let n = n_seeds.min(ds.test_len());
        let mut r = rng::rng(2000);
        let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n);
        let seeds = gather_rows(&ds.test_x, &picks);
        let result = gen.run(&seeds);
        out.line(format!(
            "{:<10} {:>5.1} {:>5.2} {:>7.3} {:>4.1} {:>12} {:>12} {:>8.1?}",
            kind.id(),
            setup.hp.lambda1,
            setup.hp.lambda2,
            setup.hp.step,
            0.0,
            result.stats.seeds_tried,
            result.stats.differences_found,
            result.stats.elapsed,
        ));
    }
    out.line("");
    out.line("paper (2,000 seeds): MNIST 827..1,968; ImageNet 1,969..1,996;");
    out.line("Driving 1,720..1,930; PDF 789..1,253; Drebin 2,000 per model");
}
