//! Ablations of DESIGN.md §5: design choices the paper fixes that we can
//! vary — obj2 neuron-pick strategy, per-layer scaling, and conv-neuron
//! granularity.

use deepxplore::generator::Generator;
use deepxplore::hyper::NeuronPick;
use deepxplore::Hyperparams;
use dx_bench::{bench_zoo, seed_count, setup_for, BenchOut};
use dx_coverage::{CoverageConfig, Granularity};
use dx_models::DatasetKind;
use dx_nn::util::gather_rows;
use dx_tensor::rng;

fn main() {
    let mut out = BenchOut::new("ablations");
    let mut zoo = bench_zoo();
    let n_seeds = seed_count(80);
    let ds = zoo.dataset(DatasetKind::Mnist).clone();
    let setup = setup_for(DatasetKind::Mnist, &ds);
    let mut r = rng::rng(4040);
    let picks = rng::sample_without_replacement(&mut r, ds.test_len(), n_seeds.min(ds.test_len()));
    let seeds = gather_rows(&ds.test_x, &picks);

    out.line(format!("Ablations on the MNIST trio ({n_seeds} seeds; lighting constraint)"));
    out.line(format!("{:<34} {:>8} {:>10} {:>10}", "variant", "#diffs", "coverage", "iters"));

    let mut run = |name: &str, hp: Hyperparams, cfg: CoverageConfig, out: &mut BenchOut| {
        let models = zoo.trio(DatasetKind::Mnist);
        let mut gen = Generator::new(models, setup.task, hp, setup.constraint.clone(), cfg, 41);
        let result = gen.run(&seeds);
        out.line(format!(
            "{name:<34} {:>8} {:>9.1}% {:>10}",
            result.stats.differences_found,
            100.0 * gen.mean_coverage(),
            result.stats.total_iterations
        ));
    };

    // 1. Neuron-pick strategy (obj2, Algorithm 1 line 33).
    let base_hp = Hyperparams { max_iters: 40, ..setup.hp };
    run("pick=random (paper)", base_hp, CoverageConfig::scaled(0.25), &mut out);
    run(
        "pick=nearest",
        Hyperparams { neuron_pick: NeuronPick::Nearest, ..base_hp },
        CoverageConfig::scaled(0.25),
        &mut out,
    );

    // 2. Per-layer scaling of activations before thresholding (§7.1).
    run(
        "scaling=on t=0.25 (paper)",
        base_hp,
        CoverageConfig { threshold: 0.25, scale_per_layer: true, ..Default::default() },
        &mut out,
    );
    run(
        "scaling=off t=0.25",
        base_hp,
        CoverageConfig { threshold: 0.25, scale_per_layer: false, ..Default::default() },
        &mut out,
    );

    // 3. Multiple neurons jointly maximized per iteration (§4.2 note).
    run("neurons/model=1 (paper)", base_hp, CoverageConfig::scaled(0.25), &mut out);
    run(
        "neurons/model=4",
        Hyperparams { neurons_per_model: 4, ..base_hp },
        CoverageConfig::scaled(0.25),
        &mut out,
    );

    // 4. Conv-neuron granularity.
    run(
        "granularity=channel-mean (paper)",
        base_hp,
        CoverageConfig {
            threshold: 0.25,
            scale_per_layer: true,
            granularity: Granularity::ChannelMean,
        },
        &mut out,
    );
    run(
        "granularity=unit",
        base_hp,
        CoverageConfig { threshold: 0.25, scale_per_layer: true, granularity: Granularity::Unit },
        &mut out,
    );

    // 5. Transferability (extension, not in the paper): grow differences
    // against two of the three models, then ask whether the held-out model
    // also behaves anomalously on them (disagrees with the majority).
    out.line("");
    let trio = zoo.trio(DatasetKind::Mnist);
    let holdout = trio[2].clone();
    let mut gen = Generator::new(
        vec![trio[0].clone(), trio[1].clone()],
        setup.task,
        base_hp,
        setup.constraint.clone(),
        CoverageConfig::scaled(0.25),
        43,
    );
    let result = gen.run(&seeds);
    let mut transferred = 0;
    for t in &result.tests {
        let pair: Vec<usize> =
            vec![trio[0].predict_classes(&t.input)[0], trio[1].predict_classes(&t.input)[0]];
        let third = holdout.predict_classes(&t.input)[0];
        // Transfer = the held-out model disagrees with at least one of the
        // two models it never participated against.
        if pair.iter().any(|&p| p != third) {
            transferred += 1;
        }
    }
    out.line(format!(
        "transferability: {transferred}/{} two-model differences also split the held-out model",
        result.tests.len()
    ));

    out.line("");
    out.line("notes: picking several neurons per iteration finds more differences in");
    out.line("fewer iterations than the paper's single pick; without per-layer scaling");
    out.line("a fixed t reads differently across layers, so coverage values are only");
    out.line("comparable within one scaling convention; transfer of two-model");
    out.line("differences to a held-out model is near-total on same-data trios");
}
