//! Property-based tests for the domain constraints — the invariants §6.2
//! promises must hold for *any* gradient, step size and input.

#![allow(clippy::needless_range_loop)] // Tests co-index several parallel arrays.
use deepxplore::Constraint;
use dx_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a batched image `[1, 1, 8, 8]` with pixels in `[0, 1]`.
fn image() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(0.0f32..1.0, 64).prop_map(|v| Tensor::from_vec(v, &[1, 1, 8, 8]))
}

/// Strategy: a gradient of the same shape, any sign.
fn gradient() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, 64).prop_map(|v| Tensor::from_vec(v, &[1, 1, 8, 8]))
}

/// Strategy: a binary feature vector `[1, 24]`.
fn binary_features() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(0usize..2, 24)
        .prop_map(|v| Tensor::from_vec(v.iter().map(|&b| b as f32).collect(), &[1, 24]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn clip_keeps_unit_box(x in image(), g in gradient(), s in 0.0f32..1.0) {
        let next = Constraint::Clip.step(&x, &g, s);
        prop_assert!(next.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn lighting_shift_is_uniform_before_clamp(x in image(), g in gradient(), s in 0.001f32..0.2) {
        let next = Constraint::Lighting.step(&x, &g, s);
        // Every pixel's movement is either the common shift or a clamp.
        let dir = if g.mean() >= 0.0 { 1.0 } else { -1.0 };
        for i in 0..64 {
            let want = (x.data()[i] + s * dir).clamp(0.0, 1.0);
            prop_assert!((next.data()[i] - want).abs() < 1e-6);
        }
    }

    #[test]
    fn single_rect_touches_at_most_window(x in image(), g in gradient(), s in 0.001f32..0.5) {
        let next = Constraint::SingleRect { h: 3, w: 3 }.step(&x, &g, s);
        let changed = next
            .data()
            .iter()
            .zip(x.data().iter())
            .filter(|(a, b)| (**a - **b).abs() > 1e-7)
            .count();
        prop_assert!(changed <= 9, "changed {changed} pixels");
        prop_assert!(next.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn multi_rects_never_brighten(x in image(), g in gradient(), s in 0.001f32..0.5) {
        let next = Constraint::MultiRects { size: 2, count: 4 }.step(&x, &g, s);
        for i in 0..64 {
            prop_assert!(next.data()[i] <= x.data()[i] + 1e-7);
            prop_assert!(next.data()[i] >= 0.0);
        }
    }

    #[test]
    fn drebin_only_adds_manifest_features(
        x in binary_features(),
        g in proptest::collection::vec(-2.0f32..2.0, 24),
    ) {
        let grad = Tensor::from_vec(g, &[1, 24]);
        let mask: Vec<bool> = (0..24).map(|i| i < 12).collect();
        let c = Constraint::DrebinManifest { manifest_mask: mask.clone() };
        let next = c.step(&x, &grad, 1.0);
        let mut flips = 0;
        for i in 0..24 {
            let (before, after) = (x.data()[i], next.data()[i]);
            if (before - after).abs() > 1e-7 {
                flips += 1;
                prop_assert!(mask[i], "non-manifest feature {i} changed");
                prop_assert!(before < 0.5 && after > 0.5, "feature {i} removed");
                prop_assert!(grad.data()[i] > 0.0, "flip against the gradient");
            }
        }
        prop_assert!(flips <= 1, "more than one feature flipped per step");
    }

    #[test]
    fn drebin_is_idempotent_at_saturation(g in proptest::collection::vec(0.1f32..2.0, 24)) {
        // Once every manifest feature is 1 no step can change anything.
        let x = Tensor::ones(&[1, 24]);
        let grad = Tensor::from_vec(g, &[1, 24]);
        let c = Constraint::DrebinManifest { manifest_mask: vec![true; 24] };
        prop_assert_eq!(c.step(&x, &grad, 1.0), x);
    }

    #[test]
    fn pdf_features_stay_integral_and_bounded(
        raw in proptest::collection::vec(0i32..50, 16),
        g in proptest::collection::vec(-2.0f32..2.0, 16),
        s in 0.01f32..2.0,
    ) {
        let scale = vec![50.0f32; 16];
        let x = Tensor::from_vec(raw.iter().map(|&r| r as f32 / 50.0).collect(), &[1, 16]);
        let grad = Tensor::from_vec(g, &[1, 16]);
        let c = Constraint::PdfFeatures { scale: scale.clone() };
        let next = c.step(&x, &grad, s);
        for i in 0..16 {
            let r = next.data()[i] * scale[i];
            prop_assert!((r - r.round()).abs() < 1e-3, "feature {i} raw {r} not integral");
            prop_assert!((-1e-4..=50.0 + 1e-4).contains(&r), "feature {i} out of bounds");
        }
    }

    #[test]
    fn pdf_always_makes_progress_under_nonzero_gradient(
        g in proptest::collection::vec(0.01f32..1.0, 8),
    ) {
        // With strictly positive gradients and headroom, some feature must
        // move (the integer-fallback guarantee).
        let scale = vec![100.0f32; 8];
        let x = Tensor::from_vec(vec![0.5; 8], &[1, 8]);
        let grad = Tensor::from_vec(g, &[1, 8]);
        let next = Constraint::PdfFeatures { scale }.step(&x, &grad, 0.001);
        prop_assert_ne!(next.data(), x.data());
    }

    #[test]
    fn constraints_preserve_shape(x in image(), g in gradient()) {
        for c in [
            Constraint::Clip,
            Constraint::Lighting,
            Constraint::SingleRect { h: 2, w: 4 },
            Constraint::MultiRects { size: 2, count: 2 },
        ] {
            let next = c.step(&x, &g, 0.1);
            prop_assert_eq!(next.shape(), x.shape());
        }
    }
}
