//! The two baselines the paper compares against (§7.2, Figures 9–10):
//! random test selection and FGSM adversarial examples.

use dx_nn::network::Network;
use dx_nn::util::gather_rows;
use dx_tensor::{rng, Tensor};

/// Randomly selects `n` inputs from a batched pool — the paper's "random
/// selection from the original test set" baseline.
///
/// # Panics
///
/// Panics if `n` exceeds the pool size.
pub fn random_selection(pool: &Tensor, n: usize, seed: u64) -> Tensor {
    let total = pool.shape()[0];
    let mut r = rng::rng(seed);
    let idx = rng::sample_without_replacement(&mut r, total, n);
    gather_rows(pool, &idx)
}

/// Fast gradient sign method (Goodfellow et al. 2015) against a classifier:
/// one `ε`-step that *lowers* the true-class probability, clipped to
/// `[0, 1]`.
///
/// This is the adversarial baseline of the paper's Figure 9/10 comparison
/// (\[26\] in the paper).
pub fn fgsm_classifier(model: &Network, x: &Tensor, label: usize, epsilon: f32) -> Tensor {
    let pass = model.forward(x);
    // Ascend -log p_label ⇔ descend p_label: seed the output with -1 at the
    // label (maximizing the *negative* class score is the attack).
    let grad = model.class_score_input_gradient(&pass, label);
    let mut adv = x.clone();
    for (v, g) in adv.data_mut().iter_mut().zip(grad.data().iter()) {
        // Move against the class gradient.
        *v = (*v - epsilon * g.signum()).clamp(0.0, 1.0);
    }
    adv
}

/// FGSM against a scalar regressor: one `ε`-step that pushes the output
/// away from its current value (sign chosen to increase the prediction's
/// magnitude of change), clipped to `[0, 1]`.
pub fn fgsm_regressor(model: &Network, x: &Tensor, epsilon: f32) -> Tensor {
    let pass = model.forward(x);
    let mut seed = Tensor::zeros(pass.output().shape());
    seed.data_mut().fill(1.0);
    let grad = model.input_gradient(&pass, &[(model.num_layers(), seed)]);
    let mut adv = x.clone();
    for (v, g) in adv.data_mut().iter_mut().zip(grad.data().iter()) {
        *v = (*v + epsilon * g.signum()).clamp(0.0, 1.0);
    }
    adv
}

/// Generates one FGSM adversarial input per pool row against `model`
/// (classification), using the model's own predictions as labels — no
/// manual labelling, matching how the baseline is run in the paper's
/// coverage comparison.
pub fn fgsm_batch(model: &Network, pool: &Tensor, epsilon: f32) -> Tensor {
    let n = pool.shape()[0];
    let mut out = Tensor::zeros(pool.shape());
    let row_len: usize = pool.shape()[1..].iter().product();
    for i in 0..n {
        let x = gather_rows(pool, &[i]);
        let label = model.predict_classes(&x)[0];
        let adv = fgsm_classifier(model, &x, label, epsilon);
        out.data_mut()[i * row_len..(i + 1) * row_len].copy_from_slice(adv.data());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;
    use dx_nn::train::{train_classifier, TrainConfig};
    use dx_nn::Optimizer;

    fn trained_classifier(seed: u64) -> (Network, Tensor, Vec<usize>) {
        let mut r = rng::rng(seed);
        let x = rng::uniform(&mut r, &[200, 4], 0.0, 1.0);
        let labels: Vec<usize> =
            (0..200).map(|i| usize::from(x.at(&[i, 0]) + x.at(&[i, 1]) > 1.0)).collect();
        let mut net = Network::new(
            &[4],
            vec![Layer::dense(4, 12), Layer::relu(), Layer::dense(12, 2), Layer::softmax()],
        );
        net.init_weights(&mut r);
        let cfg = TrainConfig { epochs: 25, batch_size: 16, seed, shuffle: true };
        train_classifier(&mut net, &x, &labels, &cfg, &mut Optimizer::adam(0.02));
        (net, x, labels)
    }

    #[test]
    fn random_selection_draws_from_pool() {
        let pool = rng::uniform(&mut rng::rng(0), &[20, 3], 0.0, 1.0);
        let sel = random_selection(&pool, 5, 1);
        assert_eq!(sel.shape(), &[5, 3]);
        // Every selected row exists in the pool.
        for i in 0..5 {
            let r = &sel.data()[i * 3..(i + 1) * 3];
            let found = (0..20).any(|j| &pool.data()[j * 3..(j + 1) * 3] == r);
            assert!(found);
        }
    }

    #[test]
    fn random_selection_is_deterministic() {
        let pool = rng::uniform(&mut rng::rng(2), &[30, 2], 0.0, 1.0);
        assert_eq!(random_selection(&pool, 10, 3), random_selection(&pool, 10, 3));
    }

    #[test]
    fn fgsm_lowers_true_class_probability() {
        let (net, x, labels) = trained_classifier(5);
        let mut lowered = 0;
        let mut tried = 0;
        for i in (0..40).step_by(4) {
            let xi = gather_rows(&x, &[i]);
            let before = net.output(&xi).at(&[0, labels[i]]);
            let adv = fgsm_classifier(&net, &xi, labels[i], 0.15);
            let after = net.output(&adv).at(&[0, labels[i]]);
            tried += 1;
            if after < before {
                lowered += 1;
            }
        }
        assert!(
            lowered * 10 >= tried * 8,
            "FGSM lowered confidence on only {lowered}/{tried} inputs"
        );
    }

    #[test]
    fn fgsm_stays_in_unit_box() {
        let (net, x, labels) = trained_classifier(6);
        let xi = gather_rows(&x, &[0]);
        let adv = fgsm_classifier(&net, &xi, labels[0], 0.5);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fgsm_batch_shapes() {
        let (net, x, _) = trained_classifier(7);
        let pool = gather_rows(&x, &[0, 1, 2]);
        let advs = fgsm_batch(&net, &pool, 0.1);
        assert_eq!(advs.shape(), pool.shape());
        assert_ne!(advs, pool);
    }

    #[test]
    fn fgsm_regressor_moves_output_up() {
        let mut net = Network::new(
            &[3],
            vec![Layer::dense(3, 8), Layer::tanh(), Layer::dense(8, 1), Layer::tanh()],
        );
        net.init_weights(&mut rng::rng(8));
        let x = rng::uniform(&mut rng::rng(9), &[1, 3], 0.3, 0.7);
        let before = net.output(&x).data()[0];
        let adv = fgsm_regressor(&net, &x, 0.2);
        let after = net.output(&adv).data()[0];
        assert!(after >= before, "ascent step decreased the output");
    }
}
