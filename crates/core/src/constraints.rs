//! Domain-specific constraints (§6.2).
//!
//! A constraint owns the *whole* update rule: given the current input, the
//! joint-objective gradient and the step size, it produces the next input,
//! guaranteeing domain validity by construction (the paper's rule-based
//! method — the seed satisfies the constraints, and every step preserves
//! them).

use dx_tensor::Tensor;

/// A domain-specific input constraint.
#[derive(Clone, Debug)]
pub enum Constraint {
    /// Plain gradient ascent clipped to the `[0, 1]` box — the
    /// unconstrained baseline.
    Clip,
    /// Lighting (§6.2 image constraint 1): every pixel moves by the same
    /// amount, brighter or darker according to the sign of the mean
    /// gradient. Content is untouched; only global illumination changes.
    Lighting,
    /// Occlusion by a single `h`×`w` rectangle (§6.2 image constraint 2):
    /// only the window with the largest absolute gradient mass is modified,
    /// simulating a blocked camera region.
    SingleRect {
        /// Rectangle height in pixels.
        h: usize,
        /// Rectangle width in pixels.
        w: usize,
    },
    /// Occlusion by multiple tiny black rectangles (§6.2 image constraint
    /// 3): up to `count` grid-aligned `size`×`size` patches may only
    /// *darken* (patches whose mean gradient is positive are zeroed),
    /// simulating dirt on the lens.
    MultiRects {
        /// Patch side in pixels.
        size: usize,
        /// Maximum number of patches modified per step.
        count: usize,
    },
    /// Drebin constraint: only *add* (0 → 1) features that live in the
    /// Android manifest; one feature — the eligible one with the largest
    /// positive gradient — flips per step, so app code is never touched
    /// and functionality is preserved.
    DrebinManifest {
        /// Which features are manifest features.
        manifest_mask: Vec<bool>,
    },
    /// Contagio/VirusTotal constraint: features are integers in
    /// `[0, scale_i]`; the model consumes `x_i = raw_i / scale_i`, and each
    /// step rounds to whole raw units (the paper rounds gradients to
    /// integers for discrete features).
    PdfFeatures {
        /// Per-feature scale (maximum raw value).
        scale: Vec<f32>,
    },
}

impl Constraint {
    /// Short name used in logs and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            Constraint::Clip => "clip",
            Constraint::Lighting => "lighting",
            Constraint::SingleRect { .. } => "single_rect",
            Constraint::MultiRects { .. } => "multi_rects",
            Constraint::DrebinManifest { .. } => "drebin_manifest",
            Constraint::PdfFeatures { .. } => "pdf_features",
        }
    }

    /// Applies one constrained gradient-ascent step and returns the next
    /// input (batched, same shape as `x`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent with the constraint's metadata.
    #[allow(clippy::needless_range_loop)] // Loops co-index x, grad and masks.
    pub fn step(&self, x: &Tensor, grad: &Tensor, s: f32) -> Tensor {
        assert_eq!(
            x.shape(),
            grad.shape(),
            "constraint step: input {:?} vs gradient {:?}",
            x.shape(),
            grad.shape()
        );
        match self {
            Constraint::Clip => {
                let mut next = x.clone();
                next.add_scaled(grad, s);
                next.clamp(0.0, 1.0)
            }
            Constraint::Lighting => {
                let direction = if grad.mean() >= 0.0 { 1.0 } else { -1.0 };
                x.map(|v| (v + s * direction).clamp(0.0, 1.0))
            }
            Constraint::SingleRect { h, w } => {
                let (win_y, win_x) = best_window(grad, *h, *w);
                let mut next = x.clone();
                apply_window(&mut next, grad, s, win_y, *h, win_x, *w);
                next.clamp(0.0, 1.0)
            }
            Constraint::MultiRects { size, count } => {
                // Selected patches darken uniformly (the "tiny black
                // rectangles" of §6.2): the original implementation replaces
                // a kept patch's gradient with -1, so the patch moves toward
                // black as a block rather than following per-pixel signs.
                let mut next = x.clone();
                for (py, px) in darkening_patches(grad, *size, *count) {
                    darken_window(&mut next, s, py, *size, px, *size);
                }
                next.clamp(0.0, 1.0)
            }
            Constraint::DrebinManifest { manifest_mask } => {
                assert_eq!(
                    manifest_mask.len(),
                    x.len(),
                    "manifest mask covers {} features, input has {}",
                    manifest_mask.len(),
                    x.len()
                );
                let mut best: Option<(usize, f32)> = None;
                for i in 0..x.len() {
                    let eligible = manifest_mask[i] && x.data()[i] < 0.5 && grad.data()[i] > 0.0;
                    if eligible && best.is_none_or(|(_, g)| grad.data()[i] > g) {
                        best = Some((i, grad.data()[i]));
                    }
                }
                let mut next = x.clone();
                if let Some((i, _)) = best {
                    next.data_mut()[i] = 1.0;
                }
                next
            }
            Constraint::PdfFeatures { scale } => {
                assert_eq!(
                    scale.len(),
                    x.len(),
                    "scale covers {} features, input has {}",
                    scale.len(),
                    x.len()
                );
                let mut next = x.clone();
                let mut changed = false;
                for i in 0..x.len() {
                    let raw = x.data()[i] * scale[i];
                    let delta_raw = s * grad.data()[i] * scale[i];
                    let new_raw = (raw + delta_raw).round().clamp(0.0, scale[i]);
                    if (new_raw - raw.round()).abs() >= 1.0 {
                        next.data_mut()[i] = new_raw / scale[i];
                        changed = true;
                    }
                }
                if !changed {
                    // The scaled gradient rounded away everywhere: take a
                    // single whole-unit step on the steepest feature so the
                    // integer hill climb still makes progress.
                    let mut best = 0;
                    for i in 1..x.len() {
                        if grad.data()[i].abs() > grad.data()[best].abs() {
                            best = i;
                        }
                    }
                    let raw = x.data()[best] * scale[best];
                    let new_raw =
                        (raw + grad.data()[best].signum()).round().clamp(0.0, scale[best]);
                    next.data_mut()[best] = new_raw / scale[best];
                }
                next
            }
        }
    }
}

/// Finds the `h`×`w` window (over all channels) with the largest absolute
/// gradient sum, scanning with stride 2 for speed.
fn best_window(grad: &Tensor, h: usize, w: usize) -> (usize, usize) {
    assert_eq!(grad.rank(), 4, "image constraints expect [1, C, H, W], got {:?}", grad.shape());
    let (c, ih, iw) = (grad.shape()[1], grad.shape()[2], grad.shape()[3]);
    assert!(h <= ih && w <= iw, "window {h}x{w} exceeds image {ih}x{iw}");
    let mut best = (0usize, 0usize);
    let mut best_mass = f32::NEG_INFINITY;
    let mut y = 0;
    while y + h <= ih {
        let mut x = 0;
        while x + w <= iw {
            let mut mass = 0.0;
            for ch in 0..c {
                for yy in y..y + h {
                    for xx in x..x + w {
                        mass += grad.at(&[0, ch, yy, xx]).abs();
                    }
                }
            }
            if mass > best_mass {
                best_mass = mass;
                best = (y, x);
            }
            x += 2;
        }
        y += 2;
    }
    best
}

/// Adds `s · grad` inside a window, all channels.
fn apply_window(x: &mut Tensor, grad: &Tensor, s: f32, y: usize, h: usize, x0: usize, w: usize) {
    let (c, ih, iw) = (x.shape()[1], x.shape()[2], x.shape()[3]);
    for ch in 0..c {
        for yy in y..(y + h).min(ih) {
            for xx in x0..(x0 + w).min(iw) {
                let off = ((ch * ih) + yy) * iw + xx;
                x.data_mut()[off] += s * grad.data()[off];
            }
        }
    }
}

/// Subtracts `s` uniformly inside a window, all channels (block darkening).
fn darken_window(x: &mut Tensor, s: f32, y: usize, h: usize, x0: usize, w: usize) {
    let (c, ih, iw) = (x.shape()[1], x.shape()[2], x.shape()[3]);
    for ch in 0..c {
        for yy in y..(y + h).min(ih) {
            for xx in x0..(x0 + w).min(iw) {
                let off = ((ch * ih) + yy) * iw + xx;
                x.data_mut()[off] -= s;
            }
        }
    }
}

/// Grid-aligned `size`×`size` patches whose mean gradient is negative
/// (darkening only), most negative first, at most `count`.
fn darkening_patches(grad: &Tensor, size: usize, count: usize) -> Vec<(usize, usize)> {
    assert_eq!(grad.rank(), 4, "image constraints expect [1, C, H, W], got {:?}", grad.shape());
    let (c, ih, iw) = (grad.shape()[1], grad.shape()[2], grad.shape()[3]);
    let mut patches: Vec<(f32, usize, usize)> = Vec::new();
    let mut y = 0;
    while y + size <= ih {
        let mut x = 0;
        while x + size <= iw {
            let mut mean = 0.0;
            for ch in 0..c {
                for yy in y..y + size {
                    for xx in x..x + size {
                        mean += grad.at(&[0, ch, yy, xx]);
                    }
                }
            }
            mean /= (c * size * size) as f32;
            if mean < 0.0 {
                patches.push((mean, y, x));
            }
            x += size;
        }
        y += size;
    }
    patches.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("gradient means are finite"));
    patches.into_iter().take(count).map(|(_, y, x)| (y, x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_tensor::rng;

    #[test]
    fn clip_stays_in_box() {
        let x = Tensor::full(&[1, 4], 0.9);
        let g = Tensor::ones(&[1, 4]);
        let next = Constraint::Clip.step(&x, &g, 0.5);
        assert!(next.data().iter().all(|&v| v <= 1.0));
    }

    #[test]
    fn lighting_moves_all_pixels_equally() {
        let x = rng::uniform(&mut rng::rng(0), &[1, 1, 4, 4], 0.3, 0.7);
        let mut g = Tensor::zeros(&[1, 1, 4, 4]);
        g.data_mut()[5] = 1.0; // Positive mean — brighten.
        let next = Constraint::Lighting.step(&x, &g, 0.1);
        for i in 0..x.len() {
            assert!((next.data()[i] - x.data()[i] - 0.1).abs() < 1e-6);
        }
        // Negative mean — darken.
        let g = Tensor::full(&[1, 1, 4, 4], -0.2);
        let next = Constraint::Lighting.step(&x, &g, 0.1);
        for i in 0..x.len() {
            assert!((x.data()[i] - next.data()[i] - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn single_rect_modifies_only_one_window() {
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let mut g = Tensor::zeros(&[1, 1, 8, 8]);
        // Strong gradient in the lower-right corner.
        for y in 5..8 {
            for xx in 5..8 {
                g.set(&[0, 0, y, xx], 1.0);
            }
        }
        let next = Constraint::SingleRect { h: 3, w: 3 }.step(&x, &g, 0.2);
        let changed: Vec<usize> =
            (0..64).filter(|&i| (next.data()[i] - x.data()[i]).abs() > 1e-6).collect();
        assert!(!changed.is_empty());
        assert!(changed.len() <= 9, "changed {} pixels", changed.len());
        // All changes confined to the bottom-right region.
        for &i in &changed {
            let (y, xx) = (i / 8, i % 8);
            assert!(y >= 4 && xx >= 4, "unexpected change at ({y}, {xx})");
        }
    }

    #[test]
    fn multi_rects_only_darken() {
        let x = Tensor::full(&[1, 1, 8, 8], 0.5);
        let mut g = rng::uniform(&mut rng::rng(1), &[1, 1, 8, 8], -1.0, 1.0);
        // Force one patch to be strongly negative.
        for y in 0..2 {
            for xx in 0..2 {
                g.set(&[0, 0, y, xx], -1.0);
            }
        }
        let next = Constraint::MultiRects { size: 2, count: 3 }.step(&x, &g, 0.2);
        for i in 0..64 {
            assert!(
                next.data()[i] <= x.data()[i] + 1e-6,
                "multi-rects must never brighten (pixel {i})"
            );
        }
        assert!(next.data().iter().zip(x.data()).any(|(a, b)| a < b));
    }

    #[test]
    fn drebin_flips_exactly_one_manifest_feature() {
        let x = Tensor::zeros(&[1, 6]);
        let g = Tensor::from_vec(vec![0.1, 0.9, 0.5, -0.3, 0.8, 0.7], &[1, 6]);
        let mask = vec![true, true, true, false, false, false];
        let c = Constraint::DrebinManifest { manifest_mask: mask };
        let next = c.step(&x, &g, 1.0);
        // Feature 1 has the largest positive gradient among manifest slots.
        assert_eq!(next.data(), &[0.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        // A second step flips the next best (feature 2).
        let next2 = c.step(&next, &g, 1.0);
        assert_eq!(next2.data(), &[0.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn drebin_never_removes_features() {
        let x = Tensor::from_vec(vec![1.0, 1.0, 0.0], &[1, 3]);
        let g = Tensor::from_vec(vec![-5.0, -5.0, -5.0], &[1, 3]);
        let c = Constraint::DrebinManifest { manifest_mask: vec![true; 3] };
        let next = c.step(&x, &g, 1.0);
        assert_eq!(next.data(), x.data(), "negative gradients must not delete features");
    }

    #[test]
    fn pdf_steps_are_integral_in_raw_units() {
        let scale = vec![100.0, 50.0];
        let x = Tensor::from_vec(vec![0.10, 0.20], &[1, 2]); // Raw 10, 10.
        let g = Tensor::from_vec(vec![0.9, -0.6], &[1, 2]);
        let c = Constraint::PdfFeatures { scale: scale.clone() };
        let next = c.step(&x, &g, 0.1);
        for (i, &s) in scale.iter().enumerate() {
            let raw = next.data()[i] * s;
            assert!((raw - raw.round()).abs() < 1e-3, "feature {i} raw {raw} not integral");
        }
        // Feature 0 moved up, feature 1 down.
        assert!(next.data()[0] > x.data()[0]);
        assert!(next.data()[1] < x.data()[1]);
    }

    #[test]
    fn pdf_fallback_guarantees_progress() {
        let scale = vec![100.0, 100.0];
        let x = Tensor::from_vec(vec![0.5, 0.5], &[1, 2]);
        // Tiny gradients that would round to zero raw movement.
        let g = Tensor::from_vec(vec![1e-4, 3e-4], &[1, 2]);
        let c = Constraint::PdfFeatures { scale };
        let next = c.step(&x, &g, 0.1);
        assert_ne!(next.data(), x.data(), "fallback must move one feature");
        // The steeper feature (index 1) moved by exactly one raw unit.
        assert!((next.data()[1] * 100.0 - 51.0).abs() < 1e-3);
    }

    #[test]
    fn pdf_respects_bounds() {
        let scale = vec![10.0];
        let x = Tensor::from_vec(vec![1.0], &[1, 1]); // Raw 10 == max.
        let g = Tensor::from_vec(vec![5.0], &[1, 1]);
        let next = Constraint::PdfFeatures { scale }.step(&x, &g, 1.0);
        assert!(next.data()[0] <= 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Constraint::Lighting.name(), "lighting");
        assert_eq!(Constraint::SingleRect { h: 2, w: 2 }.name(), "single_rect");
    }
}
