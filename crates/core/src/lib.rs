//! DeepXplore: automated whitebox testing of deep learning systems.
//!
//! A faithful Rust implementation of the SOSP 2017 paper by Pei, Cao, Yang
//! and Jana. Given several independently trained DNNs for the same task,
//! DeepXplore generates test inputs that (a) make the models disagree —
//! erroneous corner cases found *without manual labels* — and (b) activate
//! previously uncovered neurons, by gradient ascent on the joint objective
//!
//! ```text
//! obj(x) = (Σ_{k≠j} F_k(x)[c] − λ1·F_j(x)[c]) + λ2·f_n(x)      (Eq. 3)
//! ```
//!
//! under domain-specific constraints that keep the generated inputs
//! physically plausible (lighting changes, camera occlusion, add-only
//! Android manifest features, integer PDF features).
//!
//! The crate maps onto the paper as follows:
//!
//! | Paper | Here |
//! |---|---|
//! | Algorithm 1 | [`generator::Generator`] |
//! | Equations 2–3, hyperparameters λ1, λ2, s, t | [`hyper::Hyperparams`] |
//! | §6.2 domain constraints | [`constraints::Constraint`] |
//! | differential oracle (classification + steering) | [`diff`] |
//! | random / adversarial baselines (§7.2) | [`baselines`] |
//!
//! # Examples
//!
//! Generate a difference-inducing input for two tiny classifiers:
//!
//! ```
//! use deepxplore::constraints::Constraint;
//! use deepxplore::generator::{Generator, TaskKind};
//! use deepxplore::hyper::Hyperparams;
//! use dx_coverage::CoverageConfig;
//! use dx_nn::layer::Layer;
//! use dx_nn::Network;
//! use dx_tensor::rng;
//!
//! let mut base = Network::new(
//!     &[4],
//!     vec![Layer::dense(4, 12), Layer::relu(), Layer::dense(12, 3), Layer::softmax()],
//! );
//! base.init_weights(&mut rng::rng(1));
//! // Two similar-but-different models: they agree on most inputs, but
//! // their decision boundaries differ slightly — the differential setting.
//! let models = vec![base.clone(), base.perturbed(0.08, 2)];
//! let mut gen = Generator::new(
//!     models,
//!     TaskKind::Classification,
//!     Hyperparams { step: 0.5, max_iters: 40, ..Default::default() },
//!     Constraint::Clip,
//!     CoverageConfig::default(),
//!     7,
//! );
//! let seeds = rng::uniform(&mut rng::rng(5), &[8, 4], 0.2, 0.8);
//! let result = gen.run(&seeds);
//! // Random nets disagree readily; at least one difference is expected.
//! assert!(result.stats.differences_found > 0);
//! ```
//!
//! # Campaigns
//!
//! [`Generator::run`] is the paper's one-shot loop: a fixed seed list,
//! consumed once. For long-running, coverage-guided testing use the
//! `dx-campaign` crate, which wraps this generator in a persistent
//! fuzzing campaign: an energy-scheduled corpus (seeds that yield new
//! coverage or differences are re-queued and their productive mutants
//! enter the corpus), a multi-threaded worker pool whose per-worker
//! coverage bitmaps merge into a shared global union, JSONL checkpoints
//! for resumable runs, and per-epoch throughput reporting
//! (seeds/sec, diffs/sec, coverage over time).
//!
//! The campaign engine drives this crate through [`Generator::run_seed`] —
//! the per-seed step API, which additionally tracks coverage at every
//! gradient-ascent iterate and surfaces DLFuzz-style corpus candidates —
//! and synchronizes coverage across workers with
//! [`Generator::sync_coverage_into`] / [`Generator::adopt_coverage`].
//! From the command line: `deepxplore campaign --dataset mnist --workers 4`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod constraints;
pub mod diff;
pub mod generator;
pub mod hyper;

pub use constraints::Constraint;
pub use generator::{GenResult, GeneratedTest, Generator, SeedRun, TaskKind};
pub use hyper::Hyperparams;
