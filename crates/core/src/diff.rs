//! The differential-testing oracle: when do model outputs *disagree*?

use dx_tensor::Tensor;

/// A recorded model output for one input.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Prediction {
    /// Predicted class (classifiers).
    Class(usize),
    /// Predicted scalar (the steering regressors).
    Value(f32),
}

/// Driving direction derived from a steering value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Steering below `-threshold`.
    Left,
    /// Steering within `±threshold`.
    Straight,
    /// Steering above `threshold`.
    Right,
}

/// Maps a steering value to a direction with the given dead zone.
pub fn direction(value: f32, threshold: f32) -> Direction {
    if value < -threshold {
        Direction::Left
    } else if value > threshold {
        Direction::Right
    } else {
        Direction::Straight
    }
}

/// Extracts the prediction from a classifier's `[1, K]` output.
pub fn class_of(output: &Tensor) -> Prediction {
    Prediction::Class(output.argmax())
}

/// Extracts the prediction from a regressor's `[1, 1]` output.
pub fn value_of(output: &Tensor) -> Prediction {
    Prediction::Value(output.data()[0])
}

/// Whether a set of predictions contains a behavioural difference.
///
/// Classifiers differ when any two predicted classes differ; steering
/// regressors differ when any two predicted *directions* differ — the
/// paper's "one car decides to turn left while another turns right"
/// oracle (Figure 1), with `threshold` as the dead zone.
pub fn differs(predictions: &[Prediction], threshold: f32) -> bool {
    if predictions.len() < 2 {
        return false;
    }
    match predictions[0] {
        Prediction::Class(first) => predictions.iter().any(|p| match p {
            Prediction::Class(c) => *c != first,
            Prediction::Value(_) => panic!("mixed prediction kinds"),
        }),
        Prediction::Value(first) => {
            let d0 = direction(first, threshold);
            predictions.iter().any(|p| match p {
                Prediction::Value(v) => direction(*v, threshold) != d0,
                Prediction::Class(_) => panic!("mixed prediction kinds"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_disagreement() {
        let same = [Prediction::Class(3), Prediction::Class(3), Prediction::Class(3)];
        assert!(!differs(&same, 0.0));
        let diff = [Prediction::Class(3), Prediction::Class(3), Prediction::Class(7)];
        assert!(differs(&diff, 0.0));
    }

    #[test]
    fn direction_dead_zone() {
        assert_eq!(direction(0.05, 0.2), Direction::Straight);
        assert_eq!(direction(-0.5, 0.2), Direction::Left);
        assert_eq!(direction(0.5, 0.2), Direction::Right);
    }

    #[test]
    fn steering_disagreement_uses_directions() {
        // Both right: no difference even though values differ.
        let same = [Prediction::Value(0.5), Prediction::Value(0.9)];
        assert!(!differs(&same, 0.2));
        // Left vs right: difference.
        let diff = [Prediction::Value(-0.5), Prediction::Value(0.5)];
        assert!(differs(&diff, 0.2));
        // Straight vs right: also a difference.
        let edge = [Prediction::Value(0.0), Prediction::Value(0.5)];
        assert!(differs(&edge, 0.2));
    }

    #[test]
    fn single_prediction_never_differs() {
        assert!(!differs(&[Prediction::Class(1)], 0.0));
        assert!(!differs(&[], 0.0));
    }

    #[test]
    fn extractors() {
        let out = Tensor::from_vec(vec![0.1, 0.7, 0.2], &[1, 3]);
        assert_eq!(class_of(&out), Prediction::Class(1));
        let reg = Tensor::from_vec(vec![-0.4], &[1, 1]);
        assert_eq!(value_of(&reg), Prediction::Value(-0.4));
    }
}
