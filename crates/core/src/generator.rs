//! Algorithm 1: test-input generation via joint optimization.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dx_coverage::neuron::injection_for_neuron;
use dx_coverage::{CoverageConfig, CoverageSignal, CoverageTracker};
use dx_nn::network::{ForwardPass, Network};
use dx_nn::util::{gather_rows, row};
use dx_telemetry::phase::{Phase, PhaseAccum};
use dx_telemetry::phase_timer;
use dx_tensor::{rng, Tensor, Workspace};
use rand::Rng as _;

use crate::constraints::Constraint;
use crate::diff::{class_of, differs, value_of, Prediction};
use crate::hyper::Hyperparams;

/// What the models under test compute.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TaskKind {
    /// Softmax classifiers; the oracle compares argmax classes.
    Classification,
    /// Scalar regressors (steering); the oracle compares directions with
    /// the embedded dead-zone threshold.
    Regression {
        /// Direction dead zone.
        direction_threshold: f32,
    },
}

/// One generated difference-inducing test.
#[derive(Clone, Debug)]
pub struct GeneratedTest {
    /// Index of the seed input this test was grown from.
    pub seed_index: usize,
    /// The difference-inducing input (batched `[1, ...]`).
    pub input: Tensor,
    /// Gradient-ascent iterations taken.
    pub iterations: usize,
    /// Each model's prediction on the generated input.
    pub predictions: Vec<Prediction>,
    /// Which model Algorithm 1 chose to push away (the `j` of Eq. 2).
    pub target_model: usize,
}

/// Aggregate statistics of a generation run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Seeds consumed (including skipped ones).
    pub seeds_tried: usize,
    /// Seeds skipped because the models already disagreed.
    pub seeds_skipped_preexisting: usize,
    /// Difference-inducing inputs found.
    pub differences_found: usize,
    /// Total gradient-ascent iterations across all seeds.
    pub total_iterations: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Result of one per-seed campaign step ([`Generator::run_seed`]).
///
/// Richer than the boolean found/not-found view of [`Generator::run`]:
/// campaign engines schedule seeds by how much *progress* a step made, so
/// the step reports coverage gained and DLFuzz-style corpus candidates —
/// intermediate inputs that activated new neurons while the models still
/// agreed, which make good future seeds.
#[derive(Clone, Debug)]
pub struct SeedRun {
    /// The difference-inducing test, when one was found.
    pub test: Option<GeneratedTest>,
    /// Whether the models disagreed on the unmutated seed (Algorithm 1
    /// line 4-5 assumes agreement; such seeds cannot be grown further).
    pub preexisting: bool,
    /// Gradient-ascent iterations taken.
    pub iterations: usize,
    /// Coverage units (neurons, multisection range sections, or boundary
    /// corners) newly covered across all models during this step.
    pub newly_covered: usize,
    /// [`SeedRun::newly_covered`] split by metric component, in the
    /// signal's component order (one entry for simple metrics). Campaign
    /// energy models use this to reward progress per component — a rare
    /// boundary corner is worth more than yet another neuron section.
    pub newly_by_component: Vec<usize>,
    /// The last intermediate input that covered new neurons while the
    /// models still agreed — a coverage-guided corpus candidate.
    pub corpus_candidate: Option<Tensor>,
}

impl SeedRun {
    /// Whether the step produced a difference-inducing input.
    pub fn found_difference(&self) -> bool {
        self.test.is_some() && !self.preexisting
    }
}

/// Result of a generation run.
#[derive(Clone, Debug)]
pub struct GenResult {
    /// The difference-inducing tests, in discovery order.
    pub tests: Vec<GeneratedTest>,
    /// Run statistics.
    pub stats: RunStats,
    /// Final per-model neuron coverage.
    pub coverage: Vec<f32>,
}

/// The DeepXplore test generator (Algorithm 1).
///
/// Holds the models under test, their coverage signals (`cov_tracker` —
/// the paper's neuron metric or any other [`CoverageSignal`]), the
/// joint-optimization hyperparameters and the domain constraint; it is
/// deterministic given its construction seed.
pub struct Generator {
    models: Vec<Network>,
    kind: TaskKind,
    hp: Hyperparams,
    constraint: Constraint,
    signals: Vec<CoverageSignal>,
    rng: rng::Rng,
    /// Per-phase hot-path timing since the last
    /// [`Generator::take_phase_stats`]; plain (non-atomic) because each
    /// generator is owned by exactly one worker thread.
    phases: PhaseAccum,
    /// Buffer arena shared by the scalar and batched hot paths; every
    /// intermediate activation and gradient is drawn from (and recycled
    /// into) this pool, so steady-state iterates allocate nothing.
    ws: Workspace,
}

impl Generator {
    /// Creates a generator over at least two models with identical
    /// input/output shapes, steering by the paper's neuron metric.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two models or mismatched shapes.
    pub fn new(
        models: Vec<Network>,
        kind: TaskKind,
        hp: Hyperparams,
        constraint: Constraint,
        coverage: CoverageConfig,
        seed: u64,
    ) -> Self {
        let signals = models
            .iter()
            .map(|m| CoverageSignal::Neuron(CoverageTracker::for_network(m, coverage)))
            .collect();
        Self::with_signals(models, kind, hp, constraint, signals, seed)
    }

    /// [`Generator::new`] over explicit per-model coverage signals — the
    /// metric-generic constructor campaign engines use (e.g. with
    /// `dx_coverage::SignalSpec::build`).
    ///
    /// # Panics
    ///
    /// Panics with fewer than two models, mismatched shapes, or a signal
    /// count different from the model count.
    pub fn with_signals(
        models: Vec<Network>,
        kind: TaskKind,
        hp: Hyperparams,
        constraint: Constraint,
        signals: Vec<CoverageSignal>,
        seed: u64,
    ) -> Self {
        assert!(models.len() >= 2, "differential testing needs at least two models");
        assert_eq!(signals.len(), models.len(), "one coverage signal per model");
        let in_shape = models[0].input_shape().to_vec();
        let out_shape = models[0].activation_shapes().last().expect("nonempty").clone();
        for m in &models[1..] {
            assert_eq!(m.input_shape(), in_shape.as_slice(), "input shapes differ");
            assert_eq!(
                m.activation_shapes().last().expect("nonempty"),
                &out_shape,
                "output shapes differ"
            );
        }
        Self {
            models,
            kind,
            hp,
            constraint,
            signals,
            rng: rng::rng(seed),
            phases: PhaseAccum::new(),
            ws: Workspace::new(),
        }
    }

    /// Replaces the coverage trackers with ones over an explicit activation
    /// subset (Table 8 excludes dense layers this way).
    ///
    /// # Panics
    ///
    /// Panics unless the generator steers by the neuron metric — explicit
    /// activation subsets are a neuron-coverage feature.
    pub fn with_tracked_activations(mut self, per_model: &[Vec<usize>]) -> Self {
        assert_eq!(per_model.len(), self.models.len(), "one activation list per model");
        let config = *self.signals[0]
            .as_neuron()
            .expect("tracked-activation subsets apply to the neuron metric")
            .config();
        self.signals = self
            .models
            .iter()
            .zip(per_model.iter())
            .map(|(m, acts)| {
                CoverageSignal::Neuron(CoverageTracker::for_activations(m, acts, config))
            })
            .collect();
        self
    }

    /// The models under test.
    pub fn models(&self) -> &[Network] {
        &self.models
    }

    /// Per-model coverage so far (under whatever metric the signals use).
    pub fn coverage(&self) -> Vec<f32> {
        self.signals.iter().map(|t| t.coverage()).collect()
    }

    /// The per-model coverage signals (same order as [`Generator::models`]).
    pub fn signals(&self) -> &[CoverageSignal] {
        &self.signals
    }

    /// Folds this generator's coverage into a global per-model union;
    /// returns how many units were new to the global view.
    ///
    /// # Panics
    ///
    /// Panics when `global` has a different model count or incompatible
    /// signals.
    pub fn sync_coverage_into(&self, global: &mut [CoverageSignal]) -> usize {
        assert_eq!(global.len(), self.signals.len(), "one global signal per model");
        global.iter_mut().zip(self.signals.iter()).map(|(g, local)| g.merge(local)).sum()
    }

    /// Adopts a global per-model coverage union into this generator, so it
    /// stops targeting units other workers already covered.
    ///
    /// # Panics
    ///
    /// Panics when `global` has a different model count or incompatible
    /// signals.
    pub fn adopt_coverage(&mut self, global: &[CoverageSignal]) {
        assert_eq!(global.len(), self.signals.len(), "one global signal per model");
        for (local, g) in self.signals.iter_mut().zip(global.iter()) {
            local.merge(g);
        }
    }

    /// Exports the generator's RNG state (neuron picks and target-model
    /// draws) for checkpointing; restore with
    /// [`Generator::set_rng_state`] to continue the exact stream.
    pub fn rng_state(&self) -> [u64; 4] {
        rng::rng_state(&self.rng)
    }

    /// Restores an RNG state exported by [`Generator::rng_state`].
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = rng::rng_from_state(state);
    }

    /// Drains the per-phase timing accumulated by [`Generator::run_seed`]
    /// since the last call — the delta a campaign worker folds into its
    /// registry (or ships to its coordinator) at a sync boundary.
    pub fn take_phase_stats(&mut self) -> PhaseAccum {
        self.phases.take()
    }

    /// Mean neuron coverage across models.
    pub fn mean_coverage(&self) -> f32 {
        let c = self.coverage();
        c.iter().sum::<f32>() / c.len() as f32
    }

    /// Predictions of every model on a batched input.
    pub fn predict_all(&self, x: &Tensor) -> Vec<Prediction> {
        self.models
            .iter()
            .map(|m| {
                let out = m.output(x);
                match self.kind {
                    TaskKind::Classification => class_of(&out),
                    TaskKind::Regression { .. } => value_of(&out),
                }
            })
            .collect()
    }

    fn direction_threshold(&self) -> f32 {
        match self.kind {
            TaskKind::Classification => 0.0,
            TaskKind::Regression { direction_threshold } => direction_threshold,
        }
    }

    /// Runs Algorithm 1 over a batch of seeds (one cycle), stopping early
    /// if `desired_coverage` is reached.
    pub fn run(&mut self, seeds: &Tensor) -> GenResult {
        let started = Instant::now();
        let mut stats = RunStats::default();
        let mut tests = Vec::new();
        let n = seeds.shape()[0];
        for i in 0..n {
            stats.seeds_tried += 1;
            let seed_x = gather_rows(seeds, &[i]);
            match self.grow(i, &seed_x, &mut stats) {
                SeedOutcome::Difference(test) => {
                    stats.differences_found += 1;
                    tests.push(test);
                }
                SeedOutcome::Preexisting => stats.seeds_skipped_preexisting += 1,
                SeedOutcome::Exhausted => {}
            }
            if let Some(p) = self.hp.desired_coverage {
                if self.mean_coverage() >= p {
                    break;
                }
            }
        }
        stats.elapsed = started.elapsed();
        GenResult { tests, stats, coverage: self.coverage() }
    }

    /// One campaign step: grows a single seed, tracking coverage at every
    /// iterate and reporting corpus candidates.
    ///
    /// This is the per-seed API the campaign engine schedules over. It
    /// differs from the batch loop ([`Generator::run`], Algorithm 1 as
    /// printed) in two ways:
    ///
    /// - **Coverage per iterate.** Every intermediate input's activations
    ///   fold into `cov_tracker`, not just the final difference-inducing
    ///   one — the feedback signal coverage-guided scheduling needs.
    /// - **One forward per model per iterate.** The batch loop runs two
    ///   (one for the gradient, one for the oracle); here the same pass
    ///   feeds gradient, oracle and coverage, roughly halving per-iteration
    ///   cost.
    pub fn run_seed(&mut self, seed_index: usize, seed_x: &Tensor) -> SeedRun {
        let threshold = self.direction_threshold();
        let mut run = SeedRun {
            test: None,
            preexisting: false,
            iterations: 0,
            newly_covered: 0,
            newly_by_component: vec![0; self.signals[0].n_components()],
            corpus_candidate: None,
        };
        let mut passes = phase_timer!(self.phases, Phase::Forward, self.forward_all_lite(seed_x));
        let initial = self.predictions_of(&passes);
        phase_timer!(self.phases, Phase::Coverage, {
            for (pass, tracker) in passes.iter().zip(self.signals.iter_mut()) {
                run.newly_covered += tracker.update_accum(pass, &mut run.newly_by_component);
            }
        });
        if differs(&initial, threshold) {
            run.preexisting = true;
            if self.hp.count_preexisting {
                run.test = Some(GeneratedTest {
                    seed_index,
                    input: seed_x.clone(),
                    iterations: 0,
                    predictions: initial,
                    target_model: 0,
                });
            }
            self.recycle_passes(passes);
            return run;
        }
        let c = match initial[0] {
            Prediction::Class(c) => c,
            Prediction::Value(_) => 0,
        };
        let j = self.rng.gen_range(0..self.models.len());
        let mut x = seed_x.clone();
        for iter in 1..=self.hp.max_iters {
            let grad =
                phase_timer!(self.phases, Phase::Gradient, self.joint_gradient_from(&passes, c, j));
            let next = phase_timer!(
                self.phases,
                Phase::Constraint,
                self.constraint.step(&x, &grad, self.hp.step)
            );
            self.ws.put_tensor(grad);
            if next == x {
                // The constraint admits no further movement from here.
                self.recycle_passes(passes);
                return run;
            }
            x = next;
            run.iterations = iter;
            let fresh = phase_timer!(self.phases, Phase::Forward, self.forward_all_lite(&x));
            self.recycle_passes(std::mem::replace(&mut passes, fresh));
            let preds = self.predictions_of(&passes);
            let newly: usize = phase_timer!(
                self.phases,
                Phase::Coverage,
                passes
                    .iter()
                    .zip(self.signals.iter_mut())
                    .map(|(pass, tracker)| tracker.update_accum(pass, &mut run.newly_by_component))
                    .sum()
            );
            run.newly_covered += newly;
            let found = differs(&preds, threshold);
            if newly > 0 && !found {
                run.corpus_candidate = Some(x.clone());
            }
            if found {
                run.test = Some(GeneratedTest {
                    seed_index,
                    input: x,
                    iterations: iter,
                    predictions: preds,
                    target_model: j,
                });
                self.recycle_passes(passes);
                return run;
            }
        }
        self.recycle_passes(passes);
        run
    }

    /// One cache-light forward per model, all buffers from the arena.
    fn forward_all_lite(&mut self, x: &Tensor) -> Vec<ForwardPass> {
        let Self { models, ws, .. } = self;
        models.iter().map(|m| m.forward_lite(x, ws)).collect()
    }

    /// Returns a set of per-model passes to the arena.
    fn recycle_passes(&mut self, passes: Vec<ForwardPass>) {
        for p in passes {
            p.recycle(&mut self.ws);
        }
    }

    /// Batched campaign step: grows every seed in `seeds` (`[N, ...]`, one
    /// row per entry of `seed_indices`) with one stacked forward and one
    /// batched joint-objective backward per model per iterate, processing
    /// all `N` rows as a single tile.
    ///
    /// Results are bit-identical per seed to [`Generator::run_batch_tiled`]
    /// at any tile width — see there for the invariance contract.
    ///
    /// # Panics
    ///
    /// Panics unless `seeds` has one row per seed index.
    pub fn run_batch(&mut self, seed_indices: &[usize], seeds: &Tensor) -> Vec<SeedRun> {
        self.run_batch_tiled(seed_indices, seeds, seed_indices.len().max(1))
    }

    /// [`Generator::run_batch`] with an explicit tile width: rows are
    /// processed `batch` at a time (the last tile may be narrower).
    ///
    /// `batch` is pure execution tiling — for a fixed job list the results
    /// are bit-identical for every width, because the per-job random and
    /// coverage state is fixed at call entry:
    ///
    /// - One RNG lane seed is drawn from the generator RNG per job,
    ///   upfront, in job order; every per-job random decision (the target
    ///   model `j`, obj2 neuron picks) comes from that job's own lane in
    ///   (iterate, model) order.
    /// - Each job steers against a clone of the coverage signals as of
    ///   call entry; the clones merge back into the generator's signals in
    ///   job order before the call returns, and each job's
    ///   [`SeedRun::newly_covered`] counts against its own clone.
    ///
    /// The CI batch-parity smoke holds a whole campaign to this contract
    /// (`--batch 1` vs `--batch 8` checkpoints diff bit-identical).
    ///
    /// # Panics
    ///
    /// Panics unless `seeds` has one row per seed index.
    pub fn run_batch_tiled(
        &mut self,
        seed_indices: &[usize],
        seeds: &Tensor,
        batch: usize,
    ) -> Vec<SeedRun> {
        let n = seed_indices.len();
        assert_eq!(seeds.shape()[0], n, "one seed row per seed index");
        let mut runs: Vec<SeedRun> = (0..n)
            .map(|_| SeedRun {
                test: None,
                preexisting: false,
                iterations: 0,
                newly_covered: 0,
                newly_by_component: vec![0; self.signals[0].n_components()],
                corpus_candidate: None,
            })
            .collect();
        if n == 0 {
            return runs;
        }
        let mut lanes: Vec<rng::Rng> =
            (0..n).map(|_| rng::rng(self.rng.gen_range(0..u64::MAX))).collect();
        let mut job_signals: Vec<Vec<CoverageSignal>> =
            (0..n).map(|_| self.signals.clone()).collect();
        let batch = batch.max(1);
        let mut start = 0;
        while start < n {
            let end = (start + batch).min(n);
            let tile: Vec<usize> = (start..end).collect();
            self.run_tile(&tile, seed_indices, seeds, &mut lanes, &mut job_signals, &mut runs);
            start = end;
        }
        for local in &job_signals {
            for (global, l) in self.signals.iter_mut().zip(local.iter()) {
                global.merge(l);
            }
        }
        runs
    }

    /// Grows one tile of jobs in lockstep. `tile` holds job indices into
    /// `seed_indices`/`runs`; `lanes`/`job_signals` are the per-job RNG
    /// lanes and coverage clones owned by [`Generator::run_batch_tiled`].
    fn run_tile(
        &mut self,
        tile: &[usize],
        seed_indices: &[usize],
        seeds: &Tensor,
        lanes: &mut [rng::Rng],
        job_signals: &mut [Vec<CoverageSignal>],
        runs: &mut [SeedRun],
    ) {
        let threshold = self.direction_threshold();
        // `rows[a]` is the job whose input occupies row `a` of `x` (and of
        // every batched pass); `live[a]` is false once that job retired. A
        // retired row keeps its slot (with zeroed objectives) until the
        // next constraint step rebuilds `x` from live rows only — batched
        // passes cannot drop rows in place.
        let mut rows: Vec<usize> = tile.to_vec();
        let mut x = gather_rows(seeds, tile);
        let mut passes = phase_timer!(self.phases, Phase::Forward, self.forward_all_lite(&x));
        let mut row_passes = self.row_passes_of(&passes, rows.len());
        phase_timer!(self.phases, Phase::Coverage, {
            for (a, &ji) in rows.iter().enumerate() {
                let r = &mut runs[ji];
                for (rp, tracker) in row_passes[a].iter().zip(job_signals[ji].iter_mut()) {
                    r.newly_covered += tracker.update_accum(rp, &mut r.newly_by_component);
                }
            }
        });
        // Algorithm 1 lines 4-6 per job: agreement check, common class c,
        // target model j (from the job's own lane).
        let mut cs = vec![0usize; runs.len()];
        let mut js = vec![0usize; runs.len()];
        let mut live = vec![false; rows.len()];
        for (a, &ji) in rows.iter().enumerate() {
            let initial = self.predictions_of(&row_passes[a]);
            if differs(&initial, threshold) {
                runs[ji].preexisting = true;
                if self.hp.count_preexisting {
                    runs[ji].test = Some(GeneratedTest {
                        seed_index: seed_indices[ji],
                        input: gather_rows(seeds, &[ji]),
                        iterations: 0,
                        predictions: initial,
                        target_model: 0,
                    });
                }
                continue;
            }
            cs[ji] = match initial[0] {
                Prediction::Class(c) => c,
                Prediction::Value(_) => 0,
            };
            js[ji] = lanes[ji].gen_range(0..self.models.len());
            live[a] = true;
        }
        for iter in 1..=self.hp.max_iters {
            if !live.iter().any(|&l| l) {
                break;
            }
            let grad = phase_timer!(
                self.phases,
                Phase::Gradient,
                self.tile_gradient(
                    &passes,
                    &row_passes,
                    &rows,
                    &live,
                    &cs,
                    &js,
                    lanes,
                    job_signals
                )
            );
            // Per-row constraint steps, in job order; exhausted rows (and
            // rows already retired) drop out of the next tile.
            let mut kept: Vec<usize> = Vec::with_capacity(rows.len());
            let mut next_rows: Vec<Tensor> = Vec::with_capacity(rows.len());
            phase_timer!(self.phases, Phase::Constraint, {
                for (a, &ji) in rows.iter().enumerate() {
                    if !live[a] {
                        continue;
                    }
                    let xa = gather_rows(&x, &[a]);
                    let ga = gather_rows(&grad, &[a]);
                    let next = self.constraint.step(&xa, &ga, self.hp.step);
                    if next == xa {
                        // The constraint admits no further movement.
                        continue;
                    }
                    kept.push(ji);
                    next_rows.push(next);
                }
            });
            self.ws.put_tensor(grad);
            self.recycle_passes(passes);
            for rp in row_passes {
                self.recycle_passes(rp);
            }
            if kept.is_empty() {
                return;
            }
            for &ji in &kept {
                runs[ji].iterations = iter;
            }
            self.ws.put_tensor(x);
            x = stack_rows(&next_rows, &mut self.ws);
            for t in next_rows {
                self.ws.put_tensor(t);
            }
            rows = kept;
            live = vec![true; rows.len()];
            passes = phase_timer!(self.phases, Phase::Forward, self.forward_all_lite(&x));
            row_passes = self.row_passes_of(&passes, rows.len());
            let mut newly_now = vec![0usize; rows.len()];
            phase_timer!(self.phases, Phase::Coverage, {
                for (a, &ji) in rows.iter().enumerate() {
                    let r = &mut runs[ji];
                    for (rp, tracker) in row_passes[a].iter().zip(job_signals[ji].iter_mut()) {
                        let nc = tracker.update_accum(rp, &mut r.newly_by_component);
                        r.newly_covered += nc;
                        newly_now[a] += nc;
                    }
                }
            });
            for (a, &ji) in rows.iter().enumerate() {
                let preds = self.predictions_of(&row_passes[a]);
                let found = differs(&preds, threshold);
                if newly_now[a] > 0 && !found {
                    runs[ji].corpus_candidate = Some(gather_rows(&x, &[a]));
                }
                if found {
                    runs[ji].test = Some(GeneratedTest {
                        seed_index: seed_indices[ji],
                        input: gather_rows(&x, &[a]),
                        iterations: iter,
                        predictions: preds,
                        target_model: js[ji],
                    });
                    live[a] = false;
                }
            }
        }
        self.recycle_passes(passes);
        for rp in row_passes {
            self.recycle_passes(rp);
        }
        self.ws.put_tensor(x);
    }

    /// Per-job `[1, ...]` views of each model's batched pass, for the
    /// batch-1 consumers (coverage trackers, oracle, neuron picks).
    fn row_passes_of(&mut self, passes: &[ForwardPass], n_rows: usize) -> Vec<Vec<ForwardPass>> {
        let Self { ws, .. } = self;
        (0..n_rows).map(|a| passes.iter().map(|p| p.row_pass_ws(a, ws)).collect()).collect()
    }

    /// [`Generator::joint_gradient_from`] over a whole tile: one batched
    /// backward per model, with every live row's obj1/obj2 injections
    /// accumulated into shared `[A, ...]` seed tensors (keyed by activation
    /// index; `BTreeMap` so sites apply in ascending, deterministic order).
    #[allow(clippy::too_many_arguments)]
    fn tile_gradient(
        &mut self,
        passes: &[ForwardPass],
        row_passes: &[Vec<ForwardPass>],
        rows: &[usize],
        live: &[bool],
        cs: &[usize],
        js: &[usize],
        lanes: &mut [rng::Rng],
        job_signals: &[Vec<CoverageSignal>],
    ) -> Tensor {
        let mut total = self.ws.take_tensor(passes[0].input().shape());
        for (m, model) in self.models.iter().enumerate() {
            let pass = &passes[m];
            let mut batched: BTreeMap<usize, Tensor> = BTreeMap::new();
            // obj1 rows at the output layer.
            let out_shape = pass.output().shape().to_vec();
            let k: usize = out_shape[1..].iter().product();
            let mut out_seed = self.ws.take_tensor(&out_shape);
            for (a, &ji) in rows.iter().enumerate() {
                if !live[a] {
                    continue;
                }
                let weight = if m == js[ji] { -self.hp.lambda1 } else { 1.0 };
                match self.kind {
                    TaskKind::Classification => out_seed.data_mut()[a * k + cs[ji]] = weight,
                    TaskKind::Regression { .. } => {
                        out_seed.data_mut()[a * k..(a + 1) * k].fill(weight);
                    }
                }
            }
            batched.insert(model.num_layers(), out_seed);
            // obj2 rows: per live job, picks from the job's own coverage
            // clone and RNG lane — the same (iterate, model) draw order a
            // width-1 tile would make.
            if self.hp.lambda2 != 0.0 {
                for (a, &ji) in rows.iter().enumerate() {
                    if !live[a] {
                        continue;
                    }
                    let tracker = &job_signals[ji][m];
                    let picked: Vec<_> = match self.hp.neuron_pick {
                        crate::hyper::NeuronPick::Random => tracker
                            .pick_uncovered_k(&mut lanes[ji], self.hp.neurons_per_model.max(1)),
                        crate::hyper::NeuronPick::Nearest => {
                            tracker.pick_uncovered_nearest(&row_passes[a][m]).into_iter().collect()
                        }
                    };
                    for neuron in picked {
                        let (idx, seed) =
                            injection_for_neuron(model, neuron, tracker.granularity());
                        let direction = tracker.target_direction(neuron, &row_passes[a][m]);
                        let scale = self.hp.lambda2 * direction;
                        let entry = batched
                            .entry(idx)
                            .or_insert_with(|| self.ws.take_tensor(pass.activations[idx].shape()));
                        let per = entry.len() / rows.len();
                        let dst = &mut entry.data_mut()[a * per..(a + 1) * per];
                        for (d, &s) in dst.iter_mut().zip(seed.data().iter()) {
                            *d += s * scale;
                        }
                    }
                }
            }
            let injections: Vec<(usize, Tensor)> = batched.into_iter().collect();
            let g = model.input_gradient_ws(pass, &injections, &mut self.ws);
            total += &g;
            self.ws.put_tensor(g);
            for (_, t) in injections {
                self.ws.put_tensor(t);
            }
        }
        total
    }

    fn predictions_of(&self, passes: &[dx_nn::network::ForwardPass]) -> Vec<Prediction> {
        passes
            .iter()
            .map(|pass| match self.kind {
                TaskKind::Classification => class_of(pass.output()),
                TaskKind::Regression { .. } => value_of(pass.output()),
            })
            .collect()
    }

    /// Attempts to grow one difference-inducing input from one seed.
    pub fn generate_from_seed(
        &mut self,
        seed_index: usize,
        seed: &Tensor,
    ) -> Option<GeneratedTest> {
        let mut stats = RunStats::default();
        match self.grow(seed_index, seed, &mut stats) {
            SeedOutcome::Difference(t) => Some(t),
            _ => None,
        }
    }

    fn grow(&mut self, seed_index: usize, seed_x: &Tensor, stats: &mut RunStats) -> SeedOutcome {
        let threshold = self.direction_threshold();
        let initial = self.predict_all(seed_x);
        if differs(&initial, threshold) {
            // The models disagree on the seed itself (Algorithm 1 line 4-5
            // assumes agreement).
            if self.hp.count_preexisting {
                for (m, tracker) in self.models.iter().zip(self.signals.iter_mut()) {
                    tracker.update(&m.forward(seed_x));
                }
                return SeedOutcome::Difference(GeneratedTest {
                    seed_index,
                    input: seed_x.clone(),
                    iterations: 0,
                    predictions: initial,
                    target_model: 0,
                });
            }
            return SeedOutcome::Preexisting;
        }
        // The common class c (line 5) / the agreed direction for regression.
        let c = match initial[0] {
            Prediction::Class(c) => c,
            Prediction::Value(_) => 0,
        };
        // Line 6: randomly select the model to push away.
        let j = self.rng.gen_range(0..self.models.len());
        let mut x = seed_x.clone();
        for iter in 1..=self.hp.max_iters {
            stats.total_iterations += 1;
            let grad = self.joint_gradient(&x, c, j);
            let next = self.constraint.step(&x, &grad, self.hp.step);
            if next == x {
                // The constraint admits no further movement from here.
                return SeedOutcome::Exhausted;
            }
            x = next;
            let preds = self.predict_all(&x);
            if differs(&preds, threshold) {
                // Lines 15-19: record the test and update cov_tracker.
                for (m, tracker) in self.models.iter().zip(self.signals.iter_mut()) {
                    tracker.update(&m.forward(&x));
                }
                return SeedOutcome::Difference(GeneratedTest {
                    seed_index,
                    input: x,
                    iterations: iter,
                    predictions: preds,
                    target_model: j,
                });
            }
        }
        SeedOutcome::Exhausted
    }

    /// The gradient of Equation 3 with respect to the input:
    /// `∂[(Σ_{k≠j} F_k(x)[c] − λ1·F_j(x)[c]) + λ2·Σ_m f_{n_m}(x)]/∂x`.
    fn joint_gradient(&mut self, x: &Tensor, c: usize, j: usize) -> Tensor {
        let passes: Vec<_> = self.models.iter().map(|m| m.forward(x)).collect();
        self.joint_gradient_from(&passes, c, j)
    }

    /// [`Generator::joint_gradient`] over precomputed forward passes (one
    /// per model, at the same input) — lets callers that already ran the
    /// oracle reuse its passes.
    fn joint_gradient_from(&mut self, passes: &[ForwardPass], c: usize, j: usize) -> Tensor {
        let mut total = self.ws.take_tensor(passes[0].input().shape());
        for (m, (model, tracker)) in self.models.iter().zip(self.signals.iter()).enumerate() {
            let pass = &passes[m];
            let mut injections = Vec::with_capacity(2);
            // obj1 term at the output layer.
            let out_shape = pass.output().shape().to_vec();
            let weight = if m == j { -self.hp.lambda1 } else { 1.0 };
            let mut out_seed = self.ws.take_tensor(&out_shape);
            match self.kind {
                TaskKind::Classification => out_seed.set(&[0, c], weight),
                TaskKind::Regression { .. } => out_seed.data_mut().fill(weight),
            }
            injections.push((model.num_layers(), out_seed));
            // obj2 term: uncovered neuron(s) per model (line 33; the paper
            // picks one, `neurons_per_model` generalizes per §4.2).
            if self.hp.lambda2 != 0.0 {
                let picked: Vec<_> = match self.hp.neuron_pick {
                    crate::hyper::NeuronPick::Random => {
                        tracker.pick_uncovered_k(&mut self.rng, self.hp.neurons_per_model.max(1))
                    }
                    crate::hyper::NeuronPick::Nearest => {
                        tracker.pick_uncovered_nearest(pass).into_iter().collect()
                    }
                };
                for neuron in picked {
                    let (idx, seed) = injection_for_neuron(model, neuron, tracker.granularity());
                    // Steer toward the metric's actual gap: the neuron
                    // metric always raises activations, multisection may
                    // need to lower one to reach an unhit low section.
                    let direction = tracker.target_direction(neuron, pass);
                    injections.push((idx, seed.scale(self.hp.lambda2 * direction)));
                }
            }
            let g = model.input_gradient_ws(pass, &injections, &mut self.ws);
            total += &g;
            self.ws.put_tensor(g);
            for (_, t) in injections {
                self.ws.put_tensor(t);
            }
        }
        total
    }
}

enum SeedOutcome {
    Difference(GeneratedTest),
    Preexisting,
    Exhausted,
}

/// Concatenates `[1, ...]` rows into one `[A, ...]` batch, buffer from the
/// arena.
fn stack_rows(rows: &[Tensor], ws: &mut Workspace) -> Tensor {
    let mut buf = ws.take_empty(rows.len() * rows[0].len());
    for r in rows {
        buf.extend_from_slice(r.data());
    }
    let mut shape = rows[0].shape().to_vec();
    shape[0] = rows.len();
    Tensor::from_vec(buf, &shape)
}

/// Average iterations to the first difference between exactly two models —
/// the Table 12 measurement. Returns `None` (the paper's `-`) when no seed
/// yields a difference within `max_iters`.
pub fn mean_iterations_to_difference(
    a: &Network,
    b: &Network,
    seeds: &Tensor,
    hp: Hyperparams,
    constraint: Constraint,
    rng_seed: u64,
) -> Option<f32> {
    let mut gen = Generator::new(
        vec![a.clone(), b.clone()],
        TaskKind::Classification,
        hp,
        constraint,
        CoverageConfig::default(),
        rng_seed,
    );
    let n = seeds.shape()[0];
    let mut total = 0usize;
    let mut found = 0usize;
    for i in 0..n {
        let seed = gather_rows(seeds, &[i]);
        if let Some(test) = gen.generate_from_seed(i, &seed) {
            total += test.iterations;
            found += 1;
        }
    }
    if found == 0 {
        None
    } else {
        Some(total as f32 / found as f32)
    }
}

/// Convenience: unbatched view of a generated test's input.
pub fn test_input_sample(test: &GeneratedTest) -> Tensor {
    row(&test.input, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dx_nn::layer::Layer;

    fn mk_classifier(seed: u64) -> Network {
        let mut n = Network::new(
            &[20],
            vec![Layer::dense(20, 16), Layer::relu(), Layer::dense(16, 3), Layer::softmax()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    /// Three similar-but-different classifiers — the setting differential
    /// testing assumes (models mostly agree, boundaries differ slightly).
    fn similar_trio(seed: u64) -> Vec<Network> {
        let base = mk_classifier(seed);
        vec![base.clone(), base.perturbed(0.1, seed + 1), base.perturbed(0.1, seed + 2)]
    }

    fn mk_regressor(seed: u64) -> Network {
        let mut n = Network::new(
            &[20],
            vec![Layer::dense(20, 12), Layer::tanh(), Layer::dense(12, 1), Layer::tanh()],
        );
        n.init_weights(&mut rng::rng(seed));
        n
    }

    fn default_gen(seeds: u64) -> Generator {
        Generator::new(
            similar_trio(1),
            TaskKind::Classification,
            Hyperparams { step: 0.2, lambda1: 2.0, max_iters: 100, ..Default::default() },
            Constraint::Clip,
            CoverageConfig::default(),
            seeds,
        )
    }

    #[test]
    fn finds_differences_on_random_models() {
        let mut g = default_gen(7);
        let seeds = rng::uniform(&mut rng::rng(4), &[12, 20], 0.2, 0.8);
        let result = g.run(&seeds);
        assert!(result.stats.differences_found > 0, "no differences found: {:?}", result.stats);
        // Every reported test really is a disagreement.
        for t in &result.tests {
            assert!(differs(&t.predictions, 0.0));
            assert!(t.iterations >= 1);
        }
    }

    #[test]
    fn generated_inputs_respect_box_constraint() {
        let mut g = default_gen(8);
        let seeds = rng::uniform(&mut rng::rng(5), &[8, 20], 0.2, 0.8);
        let result = g.run(&seeds);
        for t in &result.tests {
            assert!(t.input.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn coverage_grows_during_run() {
        let mut g = default_gen(9);
        assert_eq!(g.mean_coverage(), 0.0);
        let seeds = rng::uniform(&mut rng::rng(6), &[10, 20], 0.2, 0.8);
        let _ = g.run(&seeds);
        assert!(g.mean_coverage() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let seeds = rng::uniform(&mut rng::rng(10), &[6, 20], 0.2, 0.8);
        let r1 = default_gen(11).run(&seeds);
        let r2 = default_gen(11).run(&seeds);
        assert_eq!(r1.stats.differences_found, r2.stats.differences_found);
        for (a, b) in r1.tests.iter().zip(r2.tests.iter()) {
            assert_eq!(a.input, b.input);
            assert_eq!(a.iterations, b.iterations);
        }
    }

    #[test]
    fn desired_coverage_stops_early() {
        let base = mk_classifier(1);
        let mut g = Generator::new(
            vec![base.clone(), base.perturbed(0.08, 2)],
            TaskKind::Classification,
            Hyperparams {
                step: 0.2,
                lambda1: 2.0,
                desired_coverage: Some(0.01),
                ..Default::default()
            },
            Constraint::Clip,
            CoverageConfig::default(),
            12,
        );
        let seeds = rng::uniform(&mut rng::rng(13), &[50, 20], 0.2, 0.8);
        let result = g.run(&seeds);
        assert!(result.stats.seeds_tried < 50, "should stop before exhausting seeds");
        assert!(g.mean_coverage() >= 0.01);
    }

    #[test]
    fn regression_task_finds_direction_differences() {
        let base = mk_regressor(20);
        let mut g = Generator::new(
            vec![base.clone(), base.perturbed(0.1, 21)],
            TaskKind::Regression { direction_threshold: 0.1 },
            Hyperparams { step: 0.2, max_iters: 120, lambda1: 2.0, ..Default::default() },
            Constraint::Clip,
            CoverageConfig::default(),
            22,
        );
        let seeds = rng::uniform(&mut rng::rng(23), &[15, 20], 0.2, 0.8);
        let result = g.run(&seeds);
        for t in &result.tests {
            assert!(differs(&t.predictions, 0.1));
        }
        // Untrained tanh regressors centred near zero should be easy to
        // split in 15 seeds.
        assert!(result.stats.differences_found > 0, "{:?}", result.stats);
    }

    #[test]
    fn identical_models_never_differ() {
        let m = mk_classifier(30);
        let mut g = Generator::new(
            vec![m.clone(), m],
            TaskKind::Classification,
            Hyperparams { step: 0.2, max_iters: 10, ..Default::default() },
            Constraint::Clip,
            CoverageConfig::default(),
            31,
        );
        let seeds = rng::uniform(&mut rng::rng(32), &[5, 20], 0.2, 0.8);
        let result = g.run(&seeds);
        assert_eq!(result.stats.differences_found, 0);
    }

    #[test]
    fn lambda2_zero_skips_neuron_objective() {
        // With λ2 = 0 the run must still work (Table 5's ablation arm).
        let base = mk_classifier(1);
        let mut g = Generator::new(
            vec![base.clone(), base.perturbed(0.08, 2)],
            TaskKind::Classification,
            Hyperparams { lambda2: 0.0, step: 0.2, lambda1: 2.0, ..Default::default() },
            Constraint::Clip,
            CoverageConfig::default(),
            33,
        );
        let seeds = rng::uniform(&mut rng::rng(34), &[8, 20], 0.2, 0.8);
        let result = g.run(&seeds);
        assert!(result.stats.seeds_tried > 0);
        // Coverage still updates from found differences.
        let _ = result.coverage;
    }

    #[test]
    fn mean_iterations_between_identical_models_is_none() {
        let m = mk_classifier(40);
        let seeds = rng::uniform(&mut rng::rng(41), &[4, 20], 0.2, 0.8);
        let out = mean_iterations_to_difference(
            &m,
            &m.clone(),
            &seeds,
            Hyperparams { max_iters: 15, step: 0.2, ..Default::default() },
            Constraint::Clip,
            42,
        );
        assert!(out.is_none());
    }

    #[test]
    fn multi_neuron_objective_runs() {
        // The §4.2 extension: several uncovered neurons jointly maximized.
        let mut g = Generator::new(
            similar_trio(60),
            TaskKind::Classification,
            Hyperparams { step: 0.2, lambda1: 2.0, neurons_per_model: 4, ..Default::default() },
            Constraint::Clip,
            CoverageConfig::default(),
            61,
        );
        let seeds = rng::uniform(&mut rng::rng(62), &[10, 20], 0.2, 0.8);
        let result = g.run(&seeds);
        assert!(result.stats.seeds_tried == 10);
        for t in &result.tests {
            assert!(differs(&t.predictions, 0.0));
        }
    }

    #[test]
    fn run_seed_is_deterministic() {
        let seeds = rng::uniform(&mut rng::rng(70), &[6, 20], 0.2, 0.8);
        let step = |mut g: Generator| -> Vec<SeedRun> {
            (0..6).map(|i| g.run_seed(i, &gather_rows(&seeds, &[i]))).collect()
        };
        let r1 = step(default_gen(71));
        let r2 = step(default_gen(71));
        for (a, b) in r1.iter().zip(r2.iter()) {
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.newly_covered, b.newly_covered);
            assert_eq!(a.test.is_some(), b.test.is_some());
            if let (Some(ta), Some(tb)) = (&a.test, &b.test) {
                assert_eq!(ta.input, tb.input);
            }
        }
    }

    #[test]
    fn run_seed_reports_real_differences_and_coverage() {
        let mut g = default_gen(72);
        let seeds = rng::uniform(&mut rng::rng(73), &[12, 20], 0.2, 0.8);
        let mut found = 0;
        let mut covered = 0;
        for i in 0..12 {
            let run = g.run_seed(i, &gather_rows(&seeds, &[i]));
            covered += run.newly_covered;
            if let Some(t) = &run.test {
                found += 1;
                assert!(differs(&t.predictions, 0.0));
                assert!(t.iterations >= 1);
                assert_eq!(t.iterations, run.iterations);
            }
            if let Some(candidate) = &run.corpus_candidate {
                // Corpus candidates keep the models in agreement.
                assert!(!differs(&g.predict_all(candidate), 0.0));
            }
        }
        assert!(found > 0, "no differences found via run_seed");
        // Per-iterate tracking must actually move coverage.
        assert!(covered > 0);
        assert!(g.mean_coverage() > 0.0);
    }

    #[test]
    fn run_seed_flags_preexisting_disagreement() {
        let mut g = default_gen(74);
        let seeds = rng::uniform(&mut rng::rng(75), &[40, 20], 0.2, 0.8);
        // Find a difference first, then re-feed it as a seed.
        let diff = (0..40).find_map(|i| g.run_seed(i, &gather_rows(&seeds, &[i])).test);
        let diff = diff.expect("needs at least one difference");
        let run = g.run_seed(0, &diff.input);
        assert!(run.preexisting);
        assert!(run.test.is_none(), "count_preexisting is off by default");
        assert_eq!(run.iterations, 0);
    }

    #[test]
    fn coverage_sync_round_trips() {
        let mut a = default_gen(76);
        let mut b = default_gen(77);
        let seeds = rng::uniform(&mut rng::rng(78), &[6, 20], 0.2, 0.8);
        for i in 0..6 {
            let x = gather_rows(&seeds, &[i]);
            if i % 2 == 0 {
                a.run_seed(i, &x);
            } else {
                b.run_seed(i, &x);
            }
        }
        let mut global: Vec<_> = a.signals().to_vec();
        let new_from_b = b.sync_coverage_into(&mut global);
        assert!(b.signals().iter().map(|t| t.covered_count()).sum::<usize>() >= new_from_b);
        // After adopting, both see at least the union's coverage.
        a.adopt_coverage(&global);
        b.adopt_coverage(&global);
        for (g, (ta, tb)) in global.iter().zip(a.signals().iter().zip(b.signals())) {
            assert_eq!(ta.covered_count(), g.covered_count());
            assert_eq!(tb.covered_count(), g.covered_count());
        }
    }

    #[test]
    fn run_batch_is_invariant_to_tile_width() {
        let seeds = rng::uniform(&mut rng::rng(80), &[9, 20], 0.2, 0.8);
        let indices: Vec<usize> = (0..9).collect();
        let runs_of = |batch: usize| {
            let mut g = default_gen(81);
            let runs = g.run_batch_tiled(&indices, &seeds, batch);
            (runs, g.rng_state(), g.coverage())
        };
        let (r1, s1, c1) = runs_of(1);
        for batch in [3, 8, 9, 16] {
            let (rb, sb, cb) = runs_of(batch);
            assert_eq!(s1, sb, "rng state differs at batch {batch}");
            assert_eq!(c1, cb, "coverage differs at batch {batch}");
            for (i, (a, b)) in r1.iter().zip(rb.iter()).enumerate() {
                assert_eq!(a.preexisting, b.preexisting, "seed {i} batch {batch}");
                assert_eq!(a.iterations, b.iterations, "seed {i} batch {batch}");
                assert_eq!(a.newly_covered, b.newly_covered, "seed {i} batch {batch}");
                assert_eq!(a.newly_by_component, b.newly_by_component, "seed {i} batch {batch}");
                assert_eq!(a.corpus_candidate, b.corpus_candidate, "seed {i} batch {batch}");
                assert_eq!(a.test.is_some(), b.test.is_some(), "seed {i} batch {batch}");
                if let (Some(ta), Some(tb)) = (&a.test, &b.test) {
                    assert_eq!(ta.input, tb.input, "seed {i} batch {batch}");
                    assert_eq!(ta.predictions, tb.predictions, "seed {i} batch {batch}");
                    assert_eq!(ta.target_model, tb.target_model, "seed {i} batch {batch}");
                    assert_eq!(ta.iterations, tb.iterations, "seed {i} batch {batch}");
                }
            }
        }
    }

    #[test]
    fn run_batch_tile_width_invariance_holds_for_multi_neuron_objective() {
        // Wider obj2 injections exercise the shared-seed accumulation path.
        let mk = || {
            Generator::new(
                similar_trio(1),
                TaskKind::Classification,
                Hyperparams {
                    step: 0.2,
                    lambda1: 2.0,
                    max_iters: 60,
                    neurons_per_model: 4,
                    ..Default::default()
                },
                Constraint::Clip,
                CoverageConfig::default(),
                86,
            )
        };
        let seeds = rng::uniform(&mut rng::rng(87), &[6, 20], 0.2, 0.8);
        let indices: Vec<usize> = (0..6).collect();
        let mut g1 = mk();
        let mut g8 = mk();
        let r1 = g1.run_batch_tiled(&indices, &seeds, 1);
        let r8 = g8.run_batch_tiled(&indices, &seeds, 8);
        assert_eq!(g1.rng_state(), g8.rng_state());
        assert_eq!(g1.coverage(), g8.coverage());
        for (a, b) in r1.iter().zip(r8.iter()) {
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.newly_covered, b.newly_covered);
            assert_eq!(
                a.test.as_ref().map(|t| t.input.clone()),
                b.test.as_ref().map(|t| t.input.clone())
            );
        }
    }

    #[test]
    fn run_batch_reports_real_differences() {
        let mut g = default_gen(82);
        let seeds = rng::uniform(&mut rng::rng(83), &[12, 20], 0.2, 0.8);
        let indices: Vec<usize> = (0..12).collect();
        let runs = g.run_batch_tiled(&indices, &seeds, 4);
        let mut found = 0;
        for (i, run) in runs.iter().enumerate() {
            if let Some(t) = &run.test {
                found += 1;
                assert_eq!(t.seed_index, i);
                assert!(differs(&t.predictions, 0.0));
                assert!(t.iterations >= 1);
                assert_eq!(t.iterations, run.iterations);
            }
            if let Some(c) = &run.corpus_candidate {
                assert!(!differs(&g.predict_all(c), 0.0));
            }
        }
        assert!(found > 0, "no differences found via run_batch");
        assert!(g.mean_coverage() > 0.0);
    }

    #[test]
    fn run_batch_flags_preexisting_rows() {
        let mut g = default_gen(84);
        let seeds = rng::uniform(&mut rng::rng(85), &[40, 20], 0.2, 0.8);
        let diff = (0..40)
            .find_map(|i| g.run_seed(i, &gather_rows(&seeds, &[i])).test)
            .expect("needs at least one difference");
        let mut data = gather_rows(&seeds, &[0]).data().to_vec();
        data.extend_from_slice(diff.input.data());
        let two = Tensor::from_vec(data, &[2, 20]);
        let runs = g.run_batch(&[7, 8], &two);
        assert!(!runs[0].preexisting);
        assert!(runs[1].preexisting);
        assert!(runs[1].test.is_none(), "count_preexisting is off by default");
        assert_eq!(runs[1].iterations, 0);
    }

    #[test]
    fn run_batch_of_nothing_is_empty() {
        let mut g = default_gen(88);
        assert!(g.run_batch(&[], &Tensor::zeros(&[0, 20])).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two models")]
    fn single_model_rejected() {
        Generator::new(
            vec![mk_classifier(50)],
            TaskKind::Classification,
            Hyperparams::default(),
            Constraint::Clip,
            CoverageConfig::default(),
            51,
        );
    }
}
