//! The four DeepXplore hyperparameters (§4.2) plus loop bounds.

/// How the obj2 neuron is selected each iteration (Algorithm 1 line 33).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum NeuronPick {
    /// A uniformly random uncovered neuron — the paper's strategy.
    #[default]
    Random,
    /// The uncovered neuron with the highest current activation ("nearest
    /// to firing") — an alternative evaluated by the ablation bench.
    Nearest,
}

/// Hyperparameters of Algorithm 1.
///
/// The paper's semantics, verbatim:
///
/// - `lambda1` balances minimizing the chosen model's confidence in the
///   seed class against keeping the other models' confidence up (Eq. 2).
/// - `lambda2` balances differential behaviour against neuron coverage
///   (Eq. 3).
/// - `step` is the gradient-ascent step size `s`.
/// - The activation threshold `t` lives in
///   [`dx_coverage::CoverageConfig::threshold`], next to the coverage state
///   it parameterizes.
///
/// Note on `step` scale: the paper's image experiments use `s = 10` on
/// pixel values in `[0, 255]`; this workspace normalizes pixels to
/// `[0, 1]`, so the equivalent step is `10/255 ≈ 0.04`.
#[derive(Clone, Copy, Debug)]
pub struct Hyperparams {
    /// λ1 of Equation 2.
    pub lambda1: f32,
    /// λ2 of Equation 3.
    pub lambda2: f32,
    /// Gradient-ascent step size `s`.
    pub step: f32,
    /// Iteration budget per seed before giving up.
    pub max_iters: usize,
    /// Stop once mean neuron coverage reaches this level (the paper's
    /// "desired coverage" `p`); `None` runs through all seeds.
    pub desired_coverage: Option<f32>,
    /// Count seeds on which the models *already* disagree as found
    /// differences (the original implementation does; Algorithm 1 as
    /// printed skips them). Off by default.
    pub count_preexisting: bool,
    /// obj2 neuron-selection strategy.
    pub neuron_pick: NeuronPick,
    /// Number of uncovered neurons jointly maximized per model and
    /// iteration. Algorithm 1 as printed uses one; the paper notes several
    /// can be maximized simultaneously (§4.2), which the ablation bench
    /// evaluates.
    pub neurons_per_model: usize,
}

impl Default for Hyperparams {
    fn default() -> Self {
        Self {
            lambda1: 1.0,
            lambda2: 0.1,
            step: 0.04,
            max_iters: 50,
            desired_coverage: None,
            count_preexisting: false,
            neuron_pick: NeuronPick::Random,
            neurons_per_model: 1,
        }
    }
}

impl Hyperparams {
    /// The paper's Table 2 settings for the image datasets (λ1 = 1,
    /// λ2 = 0.1, s = 10 on 8-bit pixels ⇒ 0.04 normalized).
    pub fn image_defaults() -> Self {
        Self::default()
    }

    /// The paper's Table 2 settings for the PDF models (λ1 = 2, λ2 = 0.1,
    /// s = 0.1).
    pub fn pdf_defaults() -> Self {
        Self { lambda1: 2.0, lambda2: 0.1, step: 0.1, ..Default::default() }
    }

    /// The paper's Table 2 settings for the Drebin models (λ1 = 1,
    /// λ2 = 0.5, s not applicable — feature flips are discrete).
    pub fn drebin_defaults() -> Self {
        Self { lambda1: 1.0, lambda2: 0.5, step: 1.0, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table2() {
        let img = Hyperparams::image_defaults();
        assert_eq!(img.lambda1, 1.0);
        assert_eq!(img.lambda2, 0.1);
        let pdf = Hyperparams::pdf_defaults();
        assert_eq!(pdf.lambda1, 2.0);
        assert_eq!(pdf.step, 0.1);
        let apk = Hyperparams::drebin_defaults();
        assert_eq!(apk.lambda2, 0.5);
    }
}
